// End-to-end control-plane tests on the real prototype cluster: the admin
// HTTP API over real sockets, drain/remove/add mid-run, heartbeat-driven
// auto-removal of a killed back-end, and /metrics correctness throughout.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/util/logging.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace TestTrace(uint64_t seed = 42, int sessions = 150) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 60;
  config.num_sessions = sessions;
  config.num_clients = 16;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig BaseConfig(int nodes) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 400;
  return config;
}

// Blocking HTTP/1.0 request against the admin API; returns "<status> <body>".
std::string AdminHttp(uint16_t port, const std::string& method, const std::string& path,
                      const std::string& body = "") {
  auto fd = ConnectTcp(port);
  if (!fd.ok()) {
    return "<connect failed>";
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  if (::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return "<send failed>";
  }
  std::string reply;
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = reply.find("\r\n");
  const size_t header_end = reply.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    return reply;
  }
  // "HTTP/1.0 200 OK" -> "200", plus the body.
  const std::string status_line = reply.substr(0, line_end);
  const size_t space = status_line.find(' ');
  return status_line.substr(space + 1, 3) + " " + reply.substr(header_end + 4);
}

TEST(AdminClusterTest, MetricsAndNodesEndpoints) {
  const Trace trace = TestTrace();
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 8;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());

  const std::string index = AdminHttp(cluster.admin_port(), "GET", "/");
  EXPECT_NE(index.find("200"), std::string::npos);
  EXPECT_NE(index.find("/metrics"), std::string::npos);

  const std::string metrics = AdminHttp(cluster.admin_port(), "GET", "/metrics");
  ASSERT_EQ(metrics.substr(0, 3), "200");
  // Per-node counters from all three back-ends, front-end counters, and the
  // dispatcher bridge must all be present.
  EXPECT_NE(metrics.find("lard_backend_requests_total{node=\"0\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_backend_cache_hits_total{node=\"2\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_fe_handoffs_total{node=\"1\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_node_load{node=\"0\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_cluster_active_nodes 3"), std::string::npos);
  EXPECT_NE(metrics.find("lard_dispatcher_requests"), std::string::npos);
  EXPECT_NE(metrics.find("lard_backend_heartbeats_total{node=\"0\"}"), std::string::npos);

  const std::string json = AdminHttp(cluster.admin_port(), "GET", "/metrics?format=json");
  ASSERT_EQ(json.substr(0, 3), "200");
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);

  const std::string nodes = AdminHttp(cluster.admin_port(), "GET", "/nodes");
  ASSERT_EQ(nodes.substr(0, 3), "200");
  EXPECT_NE(nodes.find("\"active_nodes\":3"), std::string::npos);
  EXPECT_NE(nodes.find("\"id\":2"), std::string::npos);
  EXPECT_NE(nodes.find("\"state\":\"active\""), std::string::npos);

  EXPECT_NE(AdminHttp(cluster.admin_port(), "GET", "/no/such").substr(0, 3), "200");
  cluster.Stop();
}

TEST(AdminClusterTest, DrainNodeMidRunFinishesCleanly) {
  const Trace trace = TestTrace(7, 300);
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // Drive load in the background; drain node 1 via the admin API mid-run.
  LoadResult result;
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = 8;
    load.recv_timeout_ms = 5000;
    result = RunLoad(load, trace);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::string drained = AdminHttp(cluster.admin_port(), "POST", "/nodes/1/drain");
  EXPECT_EQ(drained.substr(0, 3), "200") << drained;
  load_thread.join();

  // Every request still answered correctly: the draining node finished its
  // active persistent connections.
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.transport_errors, 0u);

  const std::string nodes = AdminHttp(cluster.admin_port(), "GET", "/nodes");
  EXPECT_NE(nodes.find("\"state\":\"draining\""), std::string::npos);
  EXPECT_NE(nodes.find("\"active_nodes\":2"), std::string::npos);

  // Draining twice is refused (409), as is draining a bogus id.
  EXPECT_EQ(AdminHttp(cluster.admin_port(), "POST", "/nodes/1/drain").substr(0, 3), "409");
  EXPECT_NE(AdminHttp(cluster.admin_port(), "POST", "/nodes/99/drain").substr(0, 3), "200");
  cluster.Stop();
}

TEST(AdminClusterTest, KilledBackendIsAutoRemovedByHeartbeats) {
  const Trace trace = TestTrace(13, 400);
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadResult result;
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = 8;
    load.recv_timeout_ms = 2000;  // stranded connections must not hang
    result = RunLoad(load, trace);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(cluster.KillNode(2));

  // Heartbeats stop; within the timeout the front-end must declare node 2
  // dead and evict it.
  bool removed = false;
  for (int i = 0; i < 100 && !removed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    removed = cluster.Snapshot().auto_removals > 0;
  }
  EXPECT_TRUE(removed) << "killed node was never auto-removed";
  load_thread.join();

  const std::string nodes = AdminHttp(cluster.admin_port(), "GET", "/nodes");
  EXPECT_NE(nodes.find("\"id\":2,\"state\":\"dead\""), std::string::npos) << nodes;

  // The cluster kept serving: every request either succeeded or failed fast
  // on the killed node's sockets, and the survivors answered the rest.
  EXPECT_GT(result.responses_ok, 0u);
  EXPECT_EQ(result.responses_bad, 0u);
  // New traffic after the removal is fine (same catalog, fresh sessions).
  LoadGeneratorConfig after;
  after.port = cluster.port();
  after.num_clients = 4;
  after.max_sessions = 40;
  const LoadResult post = RunLoad(after, trace);
  EXPECT_EQ(post.transport_errors, 0u);
  EXPECT_GT(post.responses_ok, 0u);
  cluster.Stop();
}

TEST(AdminClusterTest, AddNodeJoinsAndTakesTraffic) {
  const Trace trace = TestTrace(21, 200);
  Cluster cluster(BaseConfig(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  const std::string added = AdminHttp(cluster.admin_port(), "POST", "/nodes/add");
  ASSERT_EQ(added.substr(0, 3), "200") << added;
  EXPECT_NE(added.find("\"id\":2"), std::string::npos);

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 8;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.transport_errors, 0u);

  const ClusterSnapshot snapshot = cluster.Snapshot();
  ASSERT_EQ(snapshot.requests_per_node.size(), 3u);
  EXPECT_GT(snapshot.requests_per_node[2], 0u) << "joined node took no traffic";
  cluster.Stop();
}

TEST(AdminClusterTest, PolicySwitchAtRuntime) {
  const Trace trace = TestTrace(31, 100);
  Cluster cluster(BaseConfig(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // The reply carries the *canonical registered name*, never the raw body
  // (which used to be echoed unescaped into the JSON).
  const std::string switched = AdminHttp(cluster.admin_port(), "POST", "/policy", "wrr\n");
  EXPECT_EQ(switched.substr(0, 3), "200");
  EXPECT_NE(switched.find("{\"policy\":\"wrr\"}"), std::string::npos) << switched;
  const std::string nodes = AdminHttp(cluster.admin_port(), "GET", "/nodes");
  EXPECT_NE(nodes.find("\"policy\":\"WRR\""), std::string::npos) << nodes;
  EXPECT_NE(nodes.find("\"policy_key\":\"wrr\""), std::string::npos) << nodes;

  // Unknown names are rejected with the registered list; the injection body
  // must not leak back into the reply.
  const std::string rejected =
      AdminHttp(cluster.admin_port(), "POST", "/policy", "bogus\"}{\"x\":\"y");
  EXPECT_EQ(rejected.substr(0, 3), "400");
  EXPECT_EQ(rejected.find("bogus"), std::string::npos) << rejected;
  EXPECT_NE(rejected.find("extlard"), std::string::npos) << rejected;
  EXPECT_NE(rejected.find("wextlard"), std::string::npos) << rejected;

  // The new policies are selectable at runtime by registry name.
  const std::string weighted = AdminHttp(cluster.admin_port(), "POST", "/policy", "wextlard");
  EXPECT_EQ(weighted.substr(0, 3), "200");
  EXPECT_NE(weighted.find("{\"policy\":\"wextlard\"}"), std::string::npos) << weighted;

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 6;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  cluster.Stop();
}

TEST(AdminClusterTest, TraceEndpointReturnsFullSpanTrees) {
  const Trace trace = TestTrace(47, 120);
  ClusterConfig config = BaseConfig(2);
  config.trace_sample_every = 1;  // trace every connection for the assertion
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 6;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());

  // The default JSON rendering groups spans per trace id and includes the
  // whole FE->BE life of a request.
  const std::string traces = AdminHttp(cluster.admin_port(), "GET", "/trace");
  ASSERT_EQ(traces.substr(0, 3), "200");
  EXPECT_NE(traces.find("\"sample_every\":1"), std::string::npos);
  EXPECT_NE(traces.find("\"trace_id\":"), std::string::npos);
  for (const char* kind : {"accept", "parse", "policy", "handoff", "adopt", "serve", "flush"}) {
    EXPECT_NE(traces.find("\"kind\":\"" + std::string(kind) + "\""), std::string::npos)
        << "missing span kind " << kind;
  }
  // Per-component rings: front-end plus both back-ends.
  EXPECT_NE(traces.find("\"name\":\"fe0\""), std::string::npos);
  EXPECT_NE(traces.find("\"name\":\"be0\""), std::string::npos);
  EXPECT_NE(traces.find("\"name\":\"be1\""), std::string::npos);
  // The policy span carries the decision inputs.
  EXPECT_NE(traces.find("policy=extlard"), std::string::npos) << traces.substr(0, 2000);

  // Chrome trace-event format for about:tracing / Perfetto.
  const std::string chrome = AdminHttp(cluster.admin_port(), "GET", "/trace?format=chrome");
  ASSERT_EQ(chrome.substr(0, 3), "200");
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);

  EXPECT_EQ(AdminHttp(cluster.admin_port(), "GET", "/trace?format=bogus").substr(0, 3), "400");
  cluster.Stop();
}

TEST(AdminClusterTest, LogLevelEndpointSwitchesSeverity) {
  const Trace trace = TestTrace(51, 40);
  Cluster cluster(BaseConfig(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  const LogSeverity before = MinLogSeverity();

  const std::string raised = AdminHttp(cluster.admin_port(), "POST", "/loglevel", "error\n");
  EXPECT_EQ(raised.substr(0, 3), "200") << raised;
  EXPECT_NE(raised.find("{\"level\":\"error\"}"), std::string::npos) << raised;
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);

  EXPECT_EQ(AdminHttp(cluster.admin_port(), "POST", "/loglevel", "verbose").substr(0, 3), "400");
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError) << "bad level must not change the setting";

  const std::string lowered = AdminHttp(cluster.admin_port(), "POST", "/loglevel", "info");
  EXPECT_EQ(lowered.substr(0, 3), "200");
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kInfo);

  SetMinLogSeverity(before);
  cluster.Stop();
}

TEST(AdminClusterTest, WeightedAddNodeAndNodesReport) {
  const Trace trace = TestTrace(33, 100);
  Cluster cluster(BaseConfig(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // /nodes reports weight and normalized load for every node.
  std::string nodes = AdminHttp(cluster.admin_port(), "GET", "/nodes");
  EXPECT_NE(nodes.find("\"weight\":1"), std::string::npos) << nodes;
  EXPECT_NE(nodes.find("\"normalized_load\":"), std::string::npos) << nodes;

  // /nodes/add accepts an optional weight in the body (JSON or bare number).
  const std::string added =
      AdminHttp(cluster.admin_port(), "POST", "/nodes/add", "{\"weight\":2.5}");
  ASSERT_EQ(added.substr(0, 3), "200") << added;
  EXPECT_NE(added.find("\"id\":2"), std::string::npos) << added;
  EXPECT_NE(added.find("\"weight\":2.5"), std::string::npos) << added;
  nodes = AdminHttp(cluster.admin_port(), "GET", "/nodes");
  EXPECT_NE(nodes.find("\"weight\":2.5"), std::string::npos) << nodes;

  // Garbage, non-positive, misspelled-key and trailing-garbage weights are
  // all rejected before any node starts.
  EXPECT_EQ(AdminHttp(cluster.admin_port(), "POST", "/nodes/add", "{\"weight\":-1}").substr(0, 3),
            "400");
  EXPECT_EQ(AdminHttp(cluster.admin_port(), "POST", "/nodes/add", "junk").substr(0, 3), "400");
  EXPECT_EQ(
      AdminHttp(cluster.admin_port(), "POST", "/nodes/add", "{\"minweight\":7}").substr(0, 3),
      "400");
  EXPECT_EQ(AdminHttp(cluster.admin_port(), "POST", "/nodes/add", "{\"weight\":2,5}").substr(0, 3),
            "400");
  EXPECT_EQ(AdminHttp(cluster.admin_port(), "POST", "/nodes/add", "2.5x").substr(0, 3), "400");

  // The weighted node is a real member: it takes traffic.
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 8;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  const ClusterSnapshot snapshot = cluster.Snapshot();
  ASSERT_EQ(snapshot.requests_per_node.size(), 3u);
  EXPECT_GT(snapshot.requests_per_node[2], 0u) << "weighted node took no traffic";
  cluster.Stop();
}

}  // namespace
}  // namespace lard
