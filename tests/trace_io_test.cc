#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/trace_io.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

TEST(TraceIoTest, RoundTripsSyntheticTrace) {
  const Trace original = GenerateSyntheticTrace(SmallTraceConfig(31));
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(original, buffer).ok());
  auto loaded = ReadTrace(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const Trace& copy = loaded.value();
  ASSERT_EQ(copy.catalog().size(), original.catalog().size());
  for (TargetId id = 0; id < original.catalog().size(); ++id) {
    EXPECT_EQ(copy.catalog().Get(id).path, original.catalog().Get(id).path);
    EXPECT_EQ(copy.catalog().Get(id).size_bytes, original.catalog().Get(id).size_bytes);
  }
  ASSERT_EQ(copy.sessions().size(), original.sessions().size());
  for (size_t s = 0; s < original.sessions().size(); ++s) {
    const TraceSession& a = original.sessions()[s];
    const TraceSession& b = copy.sessions()[s];
    EXPECT_EQ(a.client_id, b.client_id);
    EXPECT_EQ(a.start_us, b.start_us);
    ASSERT_EQ(a.batches.size(), b.batches.size());
    for (size_t i = 0; i < a.batches.size(); ++i) {
      EXPECT_EQ(a.batches[i].offset_us, b.batches[i].offset_us);
      EXPECT_EQ(a.batches[i].targets, b.batches[i].targets);
    }
  }
  EXPECT_EQ(copy.total_response_bytes(), original.total_response_bytes());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(empty, buffer).ok());
  auto loaded = ReadTrace(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->catalog().size(), 0u);
  EXPECT_EQ(loaded->sessions().size(), 0u);
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::stringstream buffer("definitely not a trace file");
  EXPECT_FALSE(ReadTrace(buffer).ok());
}

TEST(TraceIoTest, RejectsTruncation) {
  const Trace original = GenerateSyntheticTrace(SmallTraceConfig(7));
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(original, buffer).ok());
  const std::string bytes = buffer.str();
  // Chop at several depths: header, mid-catalog, mid-sessions.
  for (const size_t keep : {size_t{4}, size_t{20}, bytes.size() / 2, bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, keep));
    EXPECT_FALSE(ReadTrace(truncated).ok()) << "kept " << keep << " bytes";
  }
}

TEST(TraceIoTest, RejectsOutOfRangeTargetIds) {
  Trace trace;
  const TargetId a = trace.catalog().Intern("/a", 10);
  TraceSession session;
  session.batches.push_back(TraceBatch{0, {a}});
  trace.sessions().push_back(session);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(trace, buffer).ok());
  std::string bytes = buffer.str();
  // The last u32 is the single target id; overwrite it with a large value.
  bytes[bytes.size() - 4] = static_cast<char>(0xff);
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(ReadTrace(corrupted).ok());
}

TEST(TraceIoTest, FileRoundTrip) {
  const Trace original = GenerateSyntheticTrace(SmallTraceConfig(77));
  const std::string path = ::testing::TempDir() + "/lard_trace_io_test.trc";
  ASSERT_TRUE(WriteTraceFile(original, path).ok());
  auto loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->total_requests(), original.total_requests());
  EXPECT_EQ(loaded->catalog().TotalBytes(), original.catalog().TotalBytes());
  ::unlink(path.c_str());
}

TEST(TraceIoTest, MissingFileIsIoError) {
  auto loaded = ReadTraceFile("/nonexistent/path/x.trc");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace lard
