#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/util/metrics.h"

namespace lard {
namespace {

TEST(MetricsTest, CounterFindOrCreateIsStable) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.Counter("lard_test_total");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(registry.Counter("lard_test_total"), counter);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(MetricsTest, GaugeSetsAndOverwrites) {
  MetricsRegistry registry;
  MetricGauge* gauge = registry.Gauge("lard_test_load");
  gauge->Set(3.5);
  gauge->Set(-1.25);
  EXPECT_DOUBLE_EQ(registry.Gauge("lard_test_load")->value(), -1.25);
}

TEST(MetricsTest, WithNodeFormatsLabel) {
  EXPECT_EQ(MetricsRegistry::WithNode("lard_node_load", 7), "lard_node_load{node=\"7\"}");
}

TEST(MetricsTest, HistogramPercentilesBracketTheData) {
  MetricsRegistry registry;
  MetricHistogram* histogram = registry.Histogram("lard_test_us");
  // 900 samples near 100, 100 samples near 100000: p50 must bracket 100, p99
  // must bracket 100000. Log-linear buckets (4 sub-buckets per octave) give
  // upper bounds within +25% of the sample, not the old factor of 2.
  for (int i = 0; i < 900; ++i) {
    histogram->Observe(100.0);
  }
  for (int i = 0; i < 100; ++i) {
    histogram->Observe(100000.0);
  }
  EXPECT_EQ(histogram->count(), 1000u);
  EXPECT_NEAR(histogram->sum(), 900 * 100.0 + 100 * 100000.0, 1.0);
  const double p50 = histogram->Percentile(50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 125.0);  // 100 lands in [96, 112): upper bound 112
  const double p99 = histogram->Percentile(99);
  EXPECT_GE(p99, 100000.0);
  EXPECT_LE(p99, 125000.0);  // 100000 lands in [98304, 114688): bound 114688
  // Percentiles are monotone in p.
  EXPECT_LE(histogram->Percentile(10), histogram->Percentile(90));
}

TEST(MetricsTest, HistogramHandlesEdgeSamples) {
  MetricHistogram histogram;
  histogram.Observe(0.0);
  histogram.Observe(-5.0);
  histogram.Observe(0.25);
  histogram.Observe(std::nan(""));
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_GT(histogram.Percentile(100), 0.0);  // everything landed in bucket 0
  EXPECT_LE(histogram.Percentile(100), 1.25);
}

TEST(MetricsTest, LogLinearBucketsAreTight) {
  // Every percentile upper bound is within +25% of the observed value, and
  // bucket bounds are strictly increasing across the whole range.
  for (const double value : {1.0, 3.0, 10.0, 100.0, 999.0, 4096.0, 1e6, 3.7e9}) {
    MetricHistogram histogram;
    histogram.Observe(value);
    const double p100 = histogram.Percentile(100);
    EXPECT_GE(p100, value) << value;
    EXPECT_LE(p100, value * 1.25 + 1e-9) << value;
  }
  for (int i = 1; i < MetricHistogram::kBuckets; ++i) {
    EXPECT_LT(MetricHistogram::BucketUpperBound(i - 1), MetricHistogram::BucketUpperBound(i));
  }
}

TEST(MetricsTest, ConcurrentPublishFromManyThreads) {
  // The dispatcher thread, N back-end threads and the admin renderer all hit
  // the registry at once; counts must not be lost and rendering must not
  // crash mid-publish.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      MetricCounter* counter = registry.Counter("lard_concurrent_total");
      MetricHistogram* histogram = registry.Histogram("lard_concurrent_us");
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>(i % 1024));
        if (i % 4096 == 0) {
          (void)registry.RenderText();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.Counter("lard_concurrent_total")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.Histogram("lard_concurrent_us")->count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, RenderTextContainsAllInstruments) {
  MetricsRegistry registry;
  registry.Counter("b_counter")->Increment(5);
  registry.Gauge("a_gauge")->Set(1.5);
  registry.Histogram("c_hist")->Observe(10.0);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("b_counter 5\n"), std::string::npos);
  EXPECT_NE(text.find("a_gauge 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("c_hist_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("c_hist_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("c_hist{quantile=\"0.99\"}"), std::string::npos);
  // Prometheus metadata so real scrapers ingest the exposition cleanly.
  EXPECT_NE(text.find("# TYPE b_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE a_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE c_hist summary\n"), std::string::npos);
}

TEST(MetricsTest, RenderTextStripsLabelsFromTypeLinesAndQuantiles) {
  MetricsRegistry registry;
  registry.Counter(MetricsRegistry::WithNode("lard_x_total", 0))->Increment();
  registry.Counter(MetricsRegistry::WithNode("lard_x_total", 1))->Increment();
  registry.Histogram(MetricsRegistry::WithFe("lard_y_us", 2))->Observe(5.0);
  const std::string text = registry.RenderText();
  // One TYPE line for the family, not one per labeled variant.
  const size_t first = text.find("# TYPE lard_x_total counter\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE lard_x_total counter\n", first + 1), std::string::npos);
  // Quantile labels merge into the existing label block.
  EXPECT_NE(text.find("lard_y_us{fe=\"2\",quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lard_y_us_count{fe=\"2\"} 1\n"), std::string::npos);
}

TEST(MetricsTest, RenderJsonIsWellFormedEnough) {
  MetricsRegistry registry;
  registry.Counter(MetricsRegistry::WithNode("lard_backend_requests_total", 3))->Increment(9);
  registry.Gauge("lard_cluster_active_nodes")->Set(4);
  registry.Histogram("lard_sim_batch_latency_us")->Observe(123.0);
  const std::string json = registry.RenderJson();
  // Label quotes must be escaped inside the JSON key.
  EXPECT_NE(json.find("\"lard_backend_requests_total{node=\\\"3\\\"}\":9"), std::string::npos);
  EXPECT_NE(json.find("\"lard_cluster_active_nodes\":4"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace lard
