// Control-plane semantics of the shared dispatcher: AddNode / DrainNode /
// RemoveNode, assignment eligibility, virtual-cache eviction, orphaned
// connections and load-accounting integrity across membership changes.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace lard {
namespace {

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() {
    for (int i = 0; i < 16; ++i) {
      targets_.push_back(
          catalog_.Intern("/page" + std::to_string(i) + ".html", 8 * 1024));
    }
  }

  Dispatcher MakeDispatcher(int nodes, Policy policy = Policy::kLard,
                            Mechanism mechanism = Mechanism::kSingleHandoff) {
    DispatcherConfig config;
    config.policy = policy;
    config.mechanism = mechanism;
    config.num_nodes = nodes;
    config.virtual_cache_bytes = 1024 * 1024;
    return Dispatcher(config, &catalog_, &stats_);
  }

  // Opens a connection and returns the node its first batch lands on.
  NodeId Open(Dispatcher& dispatcher, ConnId conn, TargetId target) {
    dispatcher.OnConnectionOpen(conn);
    const auto assignments = dispatcher.OnBatch(conn, {target});
    EXPECT_EQ(assignments.size(), 1u);
    EXPECT_EQ(assignments[0].action, AssignmentAction::kHandoff);
    return assignments[0].node;
  }

  TargetCatalog catalog_;
  NullBackendStats stats_;
  std::vector<TargetId> targets_;
};

TEST_F(MembershipTest, AddNodeAllocatesFreshAssignableIds) {
  Dispatcher dispatcher = MakeDispatcher(2);
  EXPECT_EQ(dispatcher.num_node_slots(), 2);
  EXPECT_EQ(dispatcher.active_node_count(), 2);
  const NodeId fresh = dispatcher.AddNode();
  EXPECT_EQ(fresh, 2);
  EXPECT_EQ(dispatcher.node_state(fresh), NodeState::kActive);
  EXPECT_EQ(dispatcher.active_node_count(), 3);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(fresh), 0.0);
  EXPECT_EQ(dispatcher.counters().nodes_added, 1u);  // initial nodes don't count

  // The new node participates in placement: with WRR and 3 nodes, three
  // simultaneous connections spread one per node.
  Dispatcher wrr = MakeDispatcher(2, Policy::kWrr);
  wrr.AddNode();
  std::vector<bool> seen(3, false);
  for (ConnId conn = 1; conn <= 3; ++conn) {
    seen[static_cast<size_t>(Open(wrr, conn, targets_[conn]))] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST_F(MembershipTest, DrainStopsNewAssignmentsButKeepsConnections) {
  Dispatcher dispatcher = MakeDispatcher(2, Policy::kWrr);
  const NodeId handling = Open(dispatcher, 1, targets_[0]);

  ASSERT_TRUE(dispatcher.DrainNode(handling));
  EXPECT_EQ(dispatcher.node_state(handling), NodeState::kDraining);
  EXPECT_EQ(dispatcher.counters().nodes_drained, 1u);

  // No new connection may land on the draining node...
  for (ConnId conn = 10; conn < 20; ++conn) {
    EXPECT_NE(Open(dispatcher, conn, targets_[conn % targets_.size()]), handling);
  }
  // ...but the existing connection keeps being served there.
  const auto assignments = dispatcher.OnBatch(1, {targets_[1], targets_[2]});
  for (const Assignment& assignment : assignments) {
    EXPECT_EQ(assignment.node, handling);
    EXPECT_EQ(assignment.action, AssignmentAction::kServeLocal);
  }
  dispatcher.OnConnectionClose(1);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(handling), 0.0);
}

TEST_F(MembershipTest, DrainRefusesLastActiveNodeAndBadIds) {
  Dispatcher dispatcher = MakeDispatcher(2);
  EXPECT_FALSE(dispatcher.DrainNode(-1));
  EXPECT_FALSE(dispatcher.DrainNode(7));
  EXPECT_TRUE(dispatcher.DrainNode(0));
  EXPECT_FALSE(dispatcher.DrainNode(0));  // already draining
  EXPECT_FALSE(dispatcher.DrainNode(1));  // last active node
  EXPECT_EQ(dispatcher.active_node_count(), 1);
}

TEST_F(MembershipTest, ExtendedLardNeverForwardsToDrainingNode) {
  // Node A caches a target; drain A; a connection on B with a busy disk must
  // not forward to A even though A has the only cached copy.
  class BusyDisk : public BackendStatsProvider {
   public:
    int DiskQueueLength(NodeId) const override { return 100; }
  };
  BusyDisk busy;
  DispatcherConfig config;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.num_nodes = 2;
  config.virtual_cache_bytes = 1024 * 1024;
  Dispatcher dispatcher(config, &catalog_, &busy);

  // Warm target 0 onto node 0 via a dedicated connection.
  dispatcher.OnConnectionOpen(1);
  NodeId warm_node = dispatcher.OnBatch(1, {targets_[0]})[0].node;
  dispatcher.OnConnectionClose(1);
  ASSERT_TRUE(dispatcher.TargetCachedAt(warm_node, targets_[0]));

  const NodeId other = warm_node == 0 ? 1 : 0;
  // A connection handled on the *other* node, asking for the warmed target
  // with a busy disk: before the drain this forwards to warm_node.
  dispatcher.OnConnectionOpen(2);
  (void)dispatcher.OnBatch(2, {targets_[5]});
  ASSERT_EQ(dispatcher.HandlingNode(2), other) << "LARD should spread cold targets";
  auto before = dispatcher.OnBatch(2, {targets_[0]});
  EXPECT_EQ(before[0].action, AssignmentAction::kForward);
  EXPECT_EQ(before[0].node, warm_node);

  // After draining warm_node the same request must be served locally.
  ASSERT_TRUE(dispatcher.DrainNode(warm_node));
  auto after = dispatcher.OnBatch(2, {targets_[0]});
  EXPECT_EQ(after[0].action, AssignmentAction::kServeLocal);
  EXPECT_EQ(after[0].node, other);
}

TEST_F(MembershipTest, RemoveNodeEvictsCacheAndOrphansConnections) {
  Dispatcher dispatcher = MakeDispatcher(3, Policy::kWrr);
  const NodeId victim = Open(dispatcher, 1, targets_[0]);
  ASSERT_TRUE(dispatcher.TargetCachedAt(victim, targets_[0]));
  EXPECT_GT(dispatcher.NodeLoad(victim), 0.0);

  std::vector<ConnId> orphans;
  ASSERT_TRUE(dispatcher.RemoveNode(victim, &orphans));
  EXPECT_EQ(dispatcher.node_state(victim), NodeState::kDead);
  EXPECT_EQ(orphans, std::vector<ConnId>{1});
  EXPECT_EQ(dispatcher.counters().orphaned_connections, 1u);
  // Virtual cache evicted, load zeroed, state forgotten.
  EXPECT_FALSE(dispatcher.TargetCachedAt(victim, targets_[0]));
  EXPECT_EQ(dispatcher.VirtualCacheBytes(victim), 0u);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(victim), 0.0);
  EXPECT_EQ(dispatcher.HandlingNode(1), kInvalidNode);
  EXPECT_EQ(dispatcher.open_connections(), 0u);

  // Idempotent; id not recycled by a later AddNode.
  EXPECT_FALSE(dispatcher.RemoveNode(victim));
  EXPECT_NE(dispatcher.AddNode(), victim);

  // New placements never land on the dead node.
  for (ConnId conn = 50; conn < 60; ++conn) {
    EXPECT_NE(Open(dispatcher, conn, targets_[conn % targets_.size()]), victim);
  }
}

TEST_F(MembershipTest, RemoveReleasesRemoteFractionsOnSurvivors) {
  // A connection on node A forwarding to node B parks 1/N load on B. If *A*
  // dies, B's fractional load must be released with the orphaned connection.
  class BusyDisk : public BackendStatsProvider {
   public:
    int DiskQueueLength(NodeId) const override { return 100; }
  };
  BusyDisk busy;
  DispatcherConfig config;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.num_nodes = 2;
  config.virtual_cache_bytes = 1024 * 1024;
  Dispatcher dispatcher(config, &catalog_, &busy);

  dispatcher.OnConnectionOpen(1);
  const NodeId warm_node = dispatcher.OnBatch(1, {targets_[0]})[0].node;
  dispatcher.OnConnectionClose(1);
  const NodeId other = warm_node == 0 ? 1 : 0;

  dispatcher.OnConnectionOpen(2);
  (void)dispatcher.OnBatch(2, {targets_[5]});
  ASSERT_EQ(dispatcher.HandlingNode(2), other);
  auto assignments = dispatcher.OnBatch(2, {targets_[0]});
  ASSERT_EQ(assignments[0].action, AssignmentAction::kForward);
  const double warm_load_with_fraction = dispatcher.NodeLoad(warm_node);
  EXPECT_GT(warm_load_with_fraction, 0.0);

  std::vector<ConnId> orphans;
  ASSERT_TRUE(dispatcher.RemoveNode(other, &orphans));
  EXPECT_EQ(orphans, std::vector<ConnId>{2});
  // The survivor's fractional load from the dead connection is gone.
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(warm_node), 0.0);
}

TEST_F(MembershipTest, SetPolicyTakesEffectOnFutureDecisions) {
  Dispatcher dispatcher = MakeDispatcher(2, Policy::kLard);
  // LARD sends repeat requests for one target to one node.
  const NodeId first = Open(dispatcher, 1, targets_[0]);
  dispatcher.OnConnectionClose(1);
  const NodeId second = Open(dispatcher, 2, targets_[0]);
  dispatcher.OnConnectionClose(2);
  EXPECT_EQ(first, second);

  dispatcher.SetPolicy(Policy::kWrr);
  EXPECT_EQ(dispatcher.config().policy, Policy::kWrr);
  // WRR rotates on an idle cluster regardless of cache affinity.
  const NodeId third = Open(dispatcher, 3, targets_[0]);
  const NodeId fourth = Open(dispatcher, 4, targets_[0]);
  EXPECT_NE(third, fourth);
}

TEST_F(MembershipTest, ReassignConnectionMovesLoadAndSeedsCache) {
  Dispatcher dispatcher = MakeDispatcher(2, Policy::kWrr);
  const NodeId old_node = Open(dispatcher, 1, targets_[0]);
  const NodeId other = old_node == 0 ? 1 : 0;
  ASSERT_DOUBLE_EQ(dispatcher.NodeLoad(old_node), 1.0);
  ASSERT_EQ(dispatcher.ConnectionCountOn(old_node), 1u);

  // Drain the handling node, then reassign (the reverse-handoff path): the
  // connection and its active 1-unit load move; the new node's virtual cache
  // is seeded with the pending target.
  ASSERT_TRUE(dispatcher.DrainNode(old_node));
  const NodeId moved = dispatcher.ReassignConnection(1, {targets_[3]});
  EXPECT_EQ(moved, other);
  EXPECT_EQ(dispatcher.HandlingNode(1), other);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(old_node), 0.0);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(other), 1.0);
  EXPECT_EQ(dispatcher.ConnectionCountOn(old_node), 0u);
  EXPECT_EQ(dispatcher.ConnectionCountOn(other), 1u);
  EXPECT_TRUE(dispatcher.TargetCachedAt(other, targets_[3]));
  EXPECT_EQ(dispatcher.counters().reassignments, 1u);

  // Subsequent batches land on the new node.
  const auto assignments = dispatcher.OnBatch(1, {targets_[3]});
  EXPECT_EQ(assignments[0].node, other);
  EXPECT_EQ(assignments[0].action, AssignmentAction::kServeLocal);
  dispatcher.OnConnectionClose(1);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(other), 0.0);
}

TEST_F(MembershipTest, ReassignIdleConnectionMovesNoLoad) {
  Dispatcher dispatcher = MakeDispatcher(2, Policy::kWrr);
  const NodeId old_node = Open(dispatcher, 1, targets_[0]);
  dispatcher.OnConnectionIdle(1);  // batch done: load released
  ASSERT_DOUBLE_EQ(dispatcher.NodeLoad(old_node), 0.0);

  ASSERT_TRUE(dispatcher.DrainNode(old_node));
  const NodeId moved = dispatcher.ReassignConnection(1);
  ASSERT_NE(moved, kInvalidNode);
  EXPECT_NE(moved, old_node);
  // Idle connections carry no load; nothing moves until the next batch.
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(old_node), 0.0);
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(moved), 0.0);
  (void)dispatcher.OnBatch(1, {targets_[1]});
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(moved), 1.0);
}

TEST_F(MembershipTest, ReassignReturnsInvalidWithoutStateOrNodes) {
  Dispatcher dispatcher = MakeDispatcher(2, Policy::kWrr);
  // Unknown connection.
  EXPECT_EQ(dispatcher.ReassignConnection(99), kInvalidNode);
  EXPECT_EQ(dispatcher.counters().reassignments, 0u);

  // No assignable node left: both removed.
  const NodeId node = Open(dispatcher, 1, targets_[0]);
  ASSERT_TRUE(dispatcher.RemoveNode(node == 0 ? 1 : 0));
  std::vector<ConnId> orphans;
  ASSERT_TRUE(dispatcher.RemoveNode(node, &orphans));
  EXPECT_EQ(orphans, std::vector<ConnId>{1});
  EXPECT_EQ(dispatcher.ReassignConnection(1), kInvalidNode);
}

TEST_F(MembershipTest, DoubleFailureDetectionIsIdempotent) {
  // Heartbeat loss and control-session EOF can both fire for the same dead
  // node; the second RemoveNode must be a counted no-op — no double
  // orphaning, no double removal, and connections already reassigned to a
  // survivor must stay there untouched.
  Dispatcher dispatcher = MakeDispatcher(3);
  std::vector<ConnId> on_victim;
  NodeId victim = kInvalidNode;
  for (ConnId conn = 1; conn <= 9; ++conn) {
    const NodeId node = Open(dispatcher, conn, targets_[conn % targets_.size()]);
    if (victim == kInvalidNode) {
      victim = node;
    }
    if (node == victim) {
      on_victim.push_back(conn);
    }
  }
  ASSERT_FALSE(on_victim.empty());

  std::vector<ConnId> orphans;
  ASSERT_TRUE(dispatcher.RemoveNode(victim, &orphans));
  EXPECT_EQ(orphans.size(), on_victim.size());
  EXPECT_EQ(dispatcher.counters().orphaned_connections, on_victim.size());
  EXPECT_EQ(dispatcher.counters().nodes_removed, 1u);

  // Failure replay resurrects the orphans onto survivors.
  std::unordered_map<ConnId, NodeId> placed;
  for (const ConnId conn : orphans) {
    dispatcher.OnConnectionOpen(conn);
    const NodeId target = dispatcher.ReassignConnection(
        conn, {}, Dispatcher::ReassignReason::kFailure);
    ASSERT_NE(target, kInvalidNode);
    ASSERT_NE(target, victim);
    placed[conn] = target;
  }
  EXPECT_EQ(dispatcher.counters().failure_reassignments, orphans.size());

  // The second detection path fires: it must change nothing.
  std::vector<ConnId> orphans_again;
  EXPECT_FALSE(dispatcher.RemoveNode(victim, &orphans_again));
  EXPECT_TRUE(orphans_again.empty()) << "a dead node must never orphan twice";
  EXPECT_EQ(dispatcher.counters().orphaned_connections, on_victim.size());
  EXPECT_EQ(dispatcher.counters().nodes_removed, 1u);
  for (const auto& [conn, node] : placed) {
    EXPECT_EQ(dispatcher.HandlingNode(conn), node)
        << "replayed connection " << conn << " moved by the duplicate removal";
  }
}

TEST_F(MembershipTest, RandomizedChurnKeepsLoadInvariants) {
  // Satellite invariant check: across randomized open/batch/idle/close/
  // drain/remove/add/reassign interleavings, NodeLoad never goes negative,
  // matches a from-scratch recomputation (WRR + single handoff: one unit per
  // active connection on its handling node), and the published gauges track.
  MetricsRegistry registry;
  DispatcherConfig config;
  config.policy = Policy::kWrr;
  config.mechanism = Mechanism::kSingleHandoff;
  config.num_nodes = 3;
  config.virtual_cache_bytes = 1024 * 1024;
  config.metrics = &registry;
  Dispatcher dispatcher(config, &catalog_, &stats_);

  struct ConnModel {
    NodeId handling = kInvalidNode;
    bool active = false;
  };
  std::unordered_map<ConnId, ConnModel> model;
  Rng rng(2026);
  ConnId next_conn = 1;

  auto check_invariants = [&]() {
    std::vector<double> expected(static_cast<size_t>(dispatcher.num_node_slots()), 0.0);
    for (const auto& [conn, state] : model) {
      if (state.active && state.handling != kInvalidNode &&
          dispatcher.node_state(state.handling) != NodeState::kDead) {
        expected[static_cast<size_t>(state.handling)] += 1.0;
      }
    }
    for (NodeId node = 0; node < dispatcher.num_node_slots(); ++node) {
      const double load = dispatcher.NodeLoad(node);
      ASSERT_GE(load, 0.0) << "negative load on node " << node;
      ASSERT_DOUBLE_EQ(load, expected[static_cast<size_t>(node)]) << "node " << node;
      ASSERT_DOUBLE_EQ(
          registry.Gauge(MetricsRegistry::WithNode("lard_node_load", node))->value(), load)
          << "gauge for node " << node;
      ASSERT_EQ(dispatcher.ConnectionCountOn(node),
                [&]() {
                  size_t count = 0;
                  for (const auto& [conn, state] : model) {
                    if (state.handling == node) {
                      ++count;
                    }
                  }
                  return count;
                }())
          << "connection count on node " << node;
    }
  };

  for (int step = 0; step < 600; ++step) {
    const uint64_t op = rng.NextUint64() % 100;
    if (op < 30 && dispatcher.active_node_count() > 0) {
      // Open + first batch.
      const ConnId conn = next_conn++;
      dispatcher.OnConnectionOpen(conn);
      const TargetId target = targets_[rng.NextUint64() % targets_.size()];
      const auto assignments = dispatcher.OnBatch(conn, {target});
      ASSERT_EQ(assignments.size(), 1u);
      model[conn] = {assignments[0].node, true};
    } else if (op < 50 && !model.empty()) {
      // Next batch on a random live connection.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextUint64() % model.size()));
      const auto assignments =
          dispatcher.OnBatch(it->first, {targets_[rng.NextUint64() % targets_.size()]});
      ASSERT_EQ(assignments[0].node, it->second.handling);
      it->second.active = true;
    } else if (op < 60 && !model.empty()) {
      // Idle: release the batch load.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextUint64() % model.size()));
      dispatcher.OnConnectionIdle(it->first);
      it->second.active = false;
    } else if (op < 72 && !model.empty()) {
      // Close.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextUint64() % model.size()));
      dispatcher.OnConnectionClose(it->first);
      model.erase(it);
    } else if (op < 80 && !model.empty() && dispatcher.active_node_count() > 0) {
      // Reverse handoff of a random connection.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextUint64() % model.size()));
      const NodeId moved = dispatcher.ReassignConnection(it->first);
      if (moved != kInvalidNode) {
        it->second.handling = moved;
      }
    } else if (op < 86) {
      // Drain a random node (may be refused; membership state only).
      (void)dispatcher.DrainNode(
          static_cast<NodeId>(rng.NextUint64() %
                              static_cast<uint64_t>(dispatcher.num_node_slots())));
    } else if (op < 92 && dispatcher.active_node_count() > 1) {
      // Remove a random node; its connections are orphaned.
      const NodeId victim = static_cast<NodeId>(
          rng.NextUint64() % static_cast<uint64_t>(dispatcher.num_node_slots()));
      std::vector<ConnId> orphans;
      if (dispatcher.RemoveNode(victim, &orphans)) {
        for (const ConnId conn : orphans) {
          model.erase(conn);
        }
      }
    } else {
      (void)dispatcher.AddNode();
    }
    check_invariants();
  }
}

TEST_F(MembershipTest, LoadGaugesTrackMembership) {
  MetricsRegistry registry;
  DispatcherConfig config;
  config.policy = Policy::kWrr;
  config.mechanism = Mechanism::kSingleHandoff;
  config.num_nodes = 1;
  config.metrics = &registry;
  Dispatcher dispatcher(config, &catalog_, &stats_);
  dispatcher.OnConnectionOpen(1);
  (void)dispatcher.OnBatch(1, {targets_[0]});
  EXPECT_DOUBLE_EQ(registry.Gauge(MetricsRegistry::WithNode("lard_node_load", 0))->value(), 1.0);
  std::vector<ConnId> orphans;
  ASSERT_TRUE(dispatcher.RemoveNode(0, &orphans));
  EXPECT_DOUBLE_EQ(registry.Gauge(MetricsRegistry::WithNode("lard_node_load", 0))->value(), 0.0);
}

}  // namespace
}  // namespace lard
