// Unit tests for the front-end mesh: the gossip wire codec, the
// MeshStateTable's staleness/epoch rules, and the dispatcher-side overlay
// (remote load merged into every policy's view, vcache hints, membership
// epochs, the shared capacity-weight validator).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "src/core/dispatcher.h"
#include "src/mesh/gossip.h"
#include "src/mesh/mesh_state.h"

namespace lard {
namespace {

GossipDelta SampleDelta(uint32_t fe, uint64_t seq, uint64_t epoch) {
  GossipDelta delta;
  delta.fe_id = fe;
  delta.seq = seq;
  delta.membership_epoch = epoch;
  delta.nodes.push_back({0, 1.5, 1.0, static_cast<uint8_t>(NodeState::kActive)});
  delta.nodes.push_back({1, 0.25, 2.0, static_cast<uint8_t>(NodeState::kDraining)});
  delta.hints.push_back({1, 7});
  delta.hints.push_back({0, 42});
  return delta;
}

TEST(GossipCodecTest, RoundTripsAllFields) {
  const GossipDelta delta = SampleDelta(3, 99, 12);
  const std::string encoded = EncodeGossipDelta(delta);

  GossipDelta decoded;
  ASSERT_TRUE(DecodeGossipDelta(encoded, &decoded));
  EXPECT_EQ(decoded.fe_id, 3u);
  EXPECT_EQ(decoded.seq, 99u);
  EXPECT_EQ(decoded.membership_epoch, 12u);
  ASSERT_EQ(decoded.nodes.size(), 2u);
  EXPECT_EQ(decoded.nodes[0].node, 0);
  EXPECT_DOUBLE_EQ(decoded.nodes[0].load, 1.5);
  EXPECT_DOUBLE_EQ(decoded.nodes[1].weight, 2.0);
  EXPECT_EQ(decoded.nodes[1].state, static_cast<uint8_t>(NodeState::kDraining));
  ASSERT_EQ(decoded.hints.size(), 2u);
  EXPECT_EQ(decoded.hints[0].node, 1);
  EXPECT_EQ(decoded.hints[0].target, 7u);
}

TEST(GossipCodecTest, RejectsTruncationTrailingBytesAndHostileCounts) {
  const std::string encoded = EncodeGossipDelta(SampleDelta(1, 2, 3));
  GossipDelta decoded;
  // Every strict prefix must fail cleanly.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeGossipDelta(std::string_view(encoded).substr(0, len), &decoded))
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_FALSE(DecodeGossipDelta(encoded + "x", &decoded));

  // A count field claiming more entries than the payload could hold must be
  // rejected before any allocation is attempted.
  GossipDelta tiny;
  tiny.fe_id = 1;
  tiny.seq = 1;
  std::string hostile = EncodeGossipDelta(tiny);
  // The node-count u32 sits right after fe_id(4) + seq(8) + epoch(8).
  hostile[20] = '\xff';
  hostile[21] = '\xff';
  hostile[22] = '\xff';
  hostile[23] = '\x7f';
  EXPECT_FALSE(DecodeGossipDelta(hostile, &decoded));
}

TEST(MeshStateTableTest, AggregatesPeersAndReplacesOldDeltas) {
  MeshStateTable table(0);
  GossipDelta from1 = SampleDelta(1, 1, 5);
  GossipDelta from2 = SampleDelta(2, 1, 5);
  EXPECT_TRUE(table.Apply(from1, 1000));
  EXPECT_TRUE(table.Apply(from2, 1000));
  EXPECT_EQ(table.peer_count(), 2u);
  EXPECT_DOUBLE_EQ(table.RemoteLoad(0), 3.0);   // 1.5 + 1.5
  EXPECT_DOUBLE_EQ(table.RemoteLoad(1), 0.5);   // 0.25 + 0.25
  EXPECT_DOUBLE_EQ(table.RemoteLoad(7), 0.0);   // unknown slots answer 0

  // A newer delta from peer 1 fully replaces its old contribution.
  GossipDelta update = SampleDelta(1, 2, 5);
  update.nodes[0].load = 0.0;
  update.nodes[1].load = 4.0;
  EXPECT_TRUE(table.Apply(update, 2000));
  EXPECT_DOUBLE_EQ(table.RemoteLoad(0), 1.5);
  EXPECT_DOUBLE_EQ(table.RemoteLoad(1), 4.25);

  // Forgetting the peer removes its share.
  table.RemovePeer(1);
  EXPECT_EQ(table.peer_count(), 1u);
  EXPECT_DOUBLE_EQ(table.RemoteLoad(0), 1.5);
  EXPECT_DOUBLE_EQ(table.RemoteLoad(1), 0.25);
}

TEST(MeshStateTableTest, DropsStaleAndSelfDeltas) {
  MeshStateTable table(0);
  EXPECT_TRUE(table.Apply(SampleDelta(1, 5, 2), 0));
  // Duplicate and reordered sequence numbers are stale, not errors.
  EXPECT_FALSE(table.Apply(SampleDelta(1, 5, 2), 0));
  EXPECT_FALSE(table.Apply(SampleDelta(1, 4, 2), 0));
  EXPECT_EQ(table.stale_drops(), 2u);
  EXPECT_EQ(table.epoch_regressions(), 0u);
  // Our own delta looping back is dropped too.
  EXPECT_FALSE(table.Apply(SampleDelta(0, 9, 2), 0));
  EXPECT_EQ(table.deltas_applied(), 1u);
}

TEST(MeshStateTableTest, FlagsEpochRegressionsAndTracksLag) {
  MeshStateTable table(0);
  EXPECT_TRUE(table.Apply(SampleDelta(1, 1, 10), 1000));
  // Newer sequence but an older membership epoch: protocol violation.
  EXPECT_FALSE(table.Apply(SampleDelta(1, 2, 9), 2000));
  EXPECT_EQ(table.epoch_regressions(), 1u);
  EXPECT_EQ(table.max_peer_epoch(), 10u);

  EXPECT_TRUE(table.Apply(SampleDelta(2, 1, 11), 4000));
  // Peer 1 last spoke at t=1000: it is the most out-of-date at t=10000.
  EXPECT_EQ(table.OldestPeerAgeUs(10000), 9000);
  EXPECT_EQ(table.max_peer_epoch(), 11u);
}

TEST(CapacityWeightValidatorTest, AcceptsPositivesRejectsEverythingElse) {
  EXPECT_TRUE(IsValidCapacityWeight(1.0));
  EXPECT_TRUE(IsValidCapacityWeight(0.25));
  EXPECT_TRUE(IsValidCapacityWeight(16.0));
  EXPECT_FALSE(IsValidCapacityWeight(0.0));
  EXPECT_FALSE(IsValidCapacityWeight(-1.0));
  EXPECT_FALSE(IsValidCapacityWeight(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(IsValidCapacityWeight(std::numeric_limits<double>::quiet_NaN()));
}

// --- Dispatcher-side overlay ---

class OverlayTest : public ::testing::Test {
 protected:
  void Build(int num_nodes, const RemoteLoadProvider* remote) {
    DispatcherConfig config;
    config.policy = Policy::kWrr;
    config.mechanism = Mechanism::kSingleHandoff;
    config.num_nodes = num_nodes;
    config.remote_loads = remote;
    dispatcher_ = std::make_unique<Dispatcher>(config, &catalog_, &stats_);
  }

  TargetCatalog catalog_;
  NullBackendStats stats_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

TEST_F(OverlayTest, RemoteLoadSteersWrrAwayFromBusyNodes) {
  const TargetId target = catalog_.Intern("/a", 1000);
  MeshStateTable mesh(0);
  // A peer reports 5 load units parked on node 0.
  GossipDelta delta;
  delta.fe_id = 1;
  delta.seq = 1;
  delta.nodes.push_back({0, 5.0, 1.0, static_cast<uint8_t>(NodeState::kActive)});
  ASSERT_TRUE(mesh.Apply(delta, 0));

  Build(2, &mesh);
  EXPECT_DOUBLE_EQ(dispatcher_->RemoteNodeLoad(0), 5.0);
  EXPECT_DOUBLE_EQ(dispatcher_->RemoteNodeLoad(1), 0.0);
  // Locally both nodes are idle; the overlay must push WRR onto node 1
  // repeatedly (without it, the round-robin cursor would alternate).
  for (ConnId conn = 1; conn <= 3; ++conn) {
    dispatcher_->OnConnectionOpen(conn);
    const std::vector<Assignment> assignments = dispatcher_->OnBatch(conn, {target});
    ASSERT_EQ(assignments.size(), 1u);
    EXPECT_EQ(assignments[0].node, 1) << "conn " << conn << " ignored the gossip overlay";
    dispatcher_->OnConnectionClose(conn);
  }
}

TEST_F(OverlayTest, NoteRemoteFetchSeedsTheVirtualCacheModel) {
  const TargetId target = catalog_.Intern("/hot", 4096);
  Build(2, nullptr);
  EXPECT_FALSE(dispatcher_->TargetCachedAt(1, target));
  dispatcher_->NoteRemoteFetch(1, target);
  EXPECT_TRUE(dispatcher_->TargetCachedAt(1, target));
  EXPECT_EQ(dispatcher_->VirtualCacheBytes(1), 4096u);
  // Out-of-range and invalid arguments are ignored, not fatal.
  dispatcher_->NoteRemoteFetch(99, target);
  dispatcher_->NoteRemoteFetch(0, kInvalidTarget);
  EXPECT_FALSE(dispatcher_->TargetCachedAt(0, target));
}

TEST_F(OverlayTest, MembershipEpochIsMonotoneAcrossAllMutations) {
  Build(2, nullptr);
  EXPECT_EQ(dispatcher_->membership_epoch(), 0u);  // initial membership is a given
  const NodeId added = dispatcher_->AddNode(2.0);
  EXPECT_EQ(dispatcher_->membership_epoch(), 1u);
  ASSERT_TRUE(dispatcher_->DrainNode(added));
  EXPECT_EQ(dispatcher_->membership_epoch(), 2u);
  ASSERT_TRUE(dispatcher_->RemoveNode(added));
  EXPECT_EQ(dispatcher_->membership_epoch(), 3u);
  // Refused mutations must not bump the epoch.
  EXPECT_FALSE(dispatcher_->RemoveNode(added));
  EXPECT_FALSE(dispatcher_->DrainNode(99));
  EXPECT_EQ(dispatcher_->membership_epoch(), 3u);
}

TEST_F(OverlayTest, CountBeliefDivergenceSpotsMissedMembershipNews) {
  Build(2, nullptr);
  // Agreement: a delta built from this dispatcher diverges from it nowhere.
  const GossipDelta self_view = BuildGossipDelta(1, 1, *dispatcher_, {});
  EXPECT_EQ(CountBeliefDivergence(self_view, *dispatcher_), 0u);

  // A peer that saw node 1 drain (and reweighted it) while we did not.
  GossipDelta ahead = self_view;
  ahead.nodes[1].state = static_cast<uint8_t>(NodeState::kDraining);
  EXPECT_EQ(CountBeliefDivergence(ahead, *dispatcher_), 1u);
  ahead.nodes[0].weight = 4.0;
  EXPECT_EQ(CountBeliefDivergence(ahead, *dispatcher_), 2u);

  // A peer that saw a join we missed entirely.
  GossipDelta wider = self_view;
  wider.nodes.push_back({2, 0.0, 1.0, static_cast<uint8_t>(NodeState::kActive)});
  EXPECT_EQ(CountBeliefDivergence(wider, *dispatcher_), 1u);
}

TEST(GossipHintKeyTest, RoundTrips) {
  const uint64_t key = MakeHintKey(7, 0xdeadbeefu);
  const GossipVcacheHint hint = HintFromKey(key);
  EXPECT_EQ(hint.node, 7);
  EXPECT_EQ(hint.target, 0xdeadbeefu);
}

TEST_F(OverlayTest, BuildGossipDeltaExportsLocalStateOnly) {
  const TargetId target = catalog_.Intern("/x", 1000);
  MeshStateTable mesh(0);
  GossipDelta remote;
  remote.fe_id = 1;
  remote.seq = 1;
  remote.nodes.push_back({0, 7.0, 1.0, static_cast<uint8_t>(NodeState::kActive)});
  ASSERT_TRUE(mesh.Apply(remote, 0));
  Build(2, &mesh);

  dispatcher_->OnConnectionOpen(1);
  (void)dispatcher_->OnBatch(1, {target});  // 1 local load unit somewhere

  const GossipDelta out = BuildGossipDelta(0, 1, *dispatcher_, {});
  ASSERT_EQ(out.nodes.size(), 2u);
  double total = 0.0;
  for (const GossipNodeEntry& entry : out.nodes) {
    total += entry.load;
  }
  // The exported loads are the dispatcher's own accounting (1 active conn),
  // never the 7 remote units — re-exporting those would double-count them
  // around the mesh.
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_EQ(out.membership_epoch, dispatcher_->membership_epoch());
}

}  // namespace
}  // namespace lard
