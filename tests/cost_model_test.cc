#include <gtest/gtest.h>

#include "src/sim/cost_model.h"

namespace lard {
namespace {

TEST(TransmitCostTest, RoundsUpTo512ByteUnits) {
  const ServerCostModel apache = ApacheCosts();
  EXPECT_DOUBLE_EQ(TransmitCostUs(apache, 0), 0.0);
  EXPECT_DOUBLE_EQ(TransmitCostUs(apache, 1), 40.0);
  EXPECT_DOUBLE_EQ(TransmitCostUs(apache, 512), 40.0);
  EXPECT_DOUBLE_EQ(TransmitCostUs(apache, 513), 80.0);
  EXPECT_DOUBLE_EQ(TransmitCostUs(apache, 8192), 16 * 40.0);
}

TEST(CostModelTest, ApacheHttp10ServiceRateNear1000PerSecond) {
  // The calibration sanity check behind Section 6: an 8 KB cached document
  // costs setup + teardown + request + transmit; the service rate should be
  // near the ~1000 req/s the ASPLOS'98 lineage reports for Apache.
  const ServerCostModel apache = ApacheCosts();
  const double per_request_us = apache.conn_setup_us + apache.conn_teardown_us +
                                apache.per_request_us + TransmitCostUs(apache, 8192);
  const double rate = 1e6 / per_request_us;
  EXPECT_GT(rate, 900.0);
  EXPECT_LT(rate, 1200.0);
}

TEST(CostModelTest, FlashIsRoughlyThreeTimesApache) {
  const ServerCostModel apache = ApacheCosts();
  const ServerCostModel flash = FlashCosts();
  const auto rate = [](const ServerCostModel& costs) {
    return 1e6 / (costs.conn_setup_us + costs.conn_teardown_us + costs.per_request_us +
                  TransmitCostUs(costs, 8192));
  };
  const double ratio = rate(flash) / rate(apache);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 3.5);
}

TEST(DiskModelTest, SmallReadIsSeekDominated) {
  const DiskCostModel disk;
  const double t = DiskServiceTimeUs(disk, 4096);
  EXPECT_DOUBLE_EQ(t, 28500.0 + 410.0);
}

TEST(DiskModelTest, TransferScalesWithSize) {
  const DiskCostModel disk;
  EXPECT_DOUBLE_EQ(DiskServiceTimeUs(disk, 8192) - DiskServiceTimeUs(disk, 4096), 410.0);
}

TEST(DiskModelTest, LongReadsPayExtraSeeks) {
  const DiskCostModel disk;
  // 44 KB boundary: one extra seek beyond it.
  const double just_below = DiskServiceTimeUs(disk, 44 * 1024);
  const double just_above = DiskServiceTimeUs(disk, 44 * 1024 + 4096);
  EXPECT_NEAR(just_above - just_below, 14000.0 + 410.0, 1.0);
  // 1 MB read: floor((1MB-1)/44KB) = 23 extra seeks.
  const double big = DiskServiceTimeUs(disk, 1024 * 1024);
  EXPECT_GT(big, 23 * 14000.0);
}

TEST(DiskModelTest, ZeroExtraSeekPeriodDisablesExtraSeeks) {
  DiskCostModel disk;
  disk.extra_seek_every_bytes = 0;
  EXPECT_DOUBLE_EQ(DiskServiceTimeUs(disk, 1024 * 1024),
                   disk.initial_latency_us + 256 * disk.transfer_us_per_4kb);
}

TEST(CostModelTest, PersonalitiesAreNamed) {
  EXPECT_EQ(ApacheCosts().name, "apache");
  EXPECT_EQ(FlashCosts().name, "flash");
}

}  // namespace
}  // namespace lard
