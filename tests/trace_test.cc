#include <gtest/gtest.h>

#include "src/trace/synthetic.h"
#include "src/trace/trace.h"
#include "src/trace/trace_stats.h"

namespace lard {
namespace {

TEST(TargetCatalogTest, InternIsIdempotent) {
  TargetCatalog catalog;
  const TargetId a = catalog.Intern("/a.html", 100);
  const TargetId b = catalog.Intern("/b.html", 200);
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.Intern("/a.html", 999), a);     // existing size wins
  EXPECT_EQ(catalog.Get(a).size_bytes, 100u);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.TotalBytes(), 300u);
}

TEST(TargetCatalogTest, FindMissingReturnsInvalid) {
  TargetCatalog catalog;
  EXPECT_EQ(catalog.Find("/nope"), kInvalidTarget);
  catalog.Intern("/yes", 1);
  EXPECT_NE(catalog.Find("/yes"), kInvalidTarget);
}

TEST(TraceTest, RequestAndByteAccounting) {
  Trace trace;
  const TargetId a = trace.catalog().Intern("/a", 1000);
  const TargetId b = trace.catalog().Intern("/b", 2000);
  TraceSession session;
  session.batches.push_back(TraceBatch{0, {a}});
  session.batches.push_back(TraceBatch{1000, {b, a}});
  trace.sessions().push_back(session);

  EXPECT_EQ(trace.total_requests(), 3u);
  EXPECT_EQ(trace.total_response_bytes(), 4000u);
  EXPECT_DOUBLE_EQ(trace.mean_response_bytes(), 4000.0 / 3);
  EXPECT_DOUBLE_EQ(trace.mean_requests_per_session(), 3.0);
}

TEST(TraceTest, ToHttp10FlattensEverything) {
  Trace trace;
  const TargetId a = trace.catalog().Intern("/a", 10);
  const TargetId b = trace.catalog().Intern("/b", 20);
  TraceSession session;
  session.client_id = 4;
  session.start_us = 100;
  session.batches.push_back(TraceBatch{0, {a, b}});
  session.batches.push_back(TraceBatch{500, {a}});
  trace.sessions().push_back(session);

  const Trace flat = trace.ToHttp10();
  ASSERT_EQ(flat.sessions().size(), 3u);
  for (const auto& single : flat.sessions()) {
    EXPECT_EQ(single.batches.size(), 1u);
    EXPECT_EQ(single.batches[0].targets.size(), 1u);
    EXPECT_EQ(single.client_id, 4u);
  }
  EXPECT_EQ(flat.total_requests(), 3u);
  EXPECT_EQ(flat.sessions()[1].start_us, 100);
  EXPECT_EQ(flat.sessions()[2].start_us, 600);
}

TEST(SyntheticTraceTest, DeterministicForSeed) {
  const SyntheticTraceConfig config = SmallTraceConfig(7);
  const Trace a = GenerateSyntheticTrace(config);
  const Trace b = GenerateSyntheticTrace(config);
  ASSERT_EQ(a.sessions().size(), b.sessions().size());
  ASSERT_EQ(a.catalog().size(), b.catalog().size());
  for (size_t i = 0; i < a.sessions().size(); ++i) {
    ASSERT_EQ(a.sessions()[i].batches.size(), b.sessions()[i].batches.size());
    EXPECT_EQ(a.sessions()[i].start_us, b.sessions()[i].start_us);
  }
  EXPECT_EQ(a.total_response_bytes(), b.total_response_bytes());
}

TEST(SyntheticTraceTest, SeedChangesWorkload) {
  const Trace a = GenerateSyntheticTrace(SmallTraceConfig(1));
  const Trace b = GenerateSyntheticTrace(SmallTraceConfig(2));
  EXPECT_NE(a.total_response_bytes(), b.total_response_bytes());
}

TEST(SyntheticTraceTest, MatchesPaperAggregateShape) {
  // The properties the evaluation depends on (DESIGN.md §2): small mean
  // response size, multi-request persistent connections, working set larger
  // than a single-node cache.
  SyntheticTraceConfig config;
  config.num_sessions = 5000;
  const Trace trace = GenerateSyntheticTrace(config);

  const double mean_size = trace.mean_response_bytes();
  EXPECT_GT(mean_size, 2.0 * 1024);
  EXPECT_LT(mean_size, 20.0 * 1024);  // paper: "less than ~13 KB" era traffic

  EXPECT_GT(trace.mean_requests_per_session(), 3.0);
  EXPECT_GT(trace.catalog().TotalBytes(), 200ull * 1024 * 1024);
  EXPECT_EQ(trace.sessions().size(), 5000u);
}

TEST(SyntheticTraceTest, PipelinedBatchStructure) {
  SyntheticTraceConfig config = SmallTraceConfig(3);
  config.pipeline_embedded_objects = true;
  const Trace trace = GenerateSyntheticTrace(config);
  // First batch of every session is the single HTML request (the paper's
  // assumption: later requests arrive only after the first response).
  for (const auto& session : trace.sessions()) {
    ASSERT_FALSE(session.batches.empty());
    EXPECT_EQ(session.batches[0].targets.size(), 1u);
    for (size_t i = 1; i < session.batches.size(); ++i) {
      EXPECT_GE(session.batches[i].offset_us, session.batches[i - 1].offset_us);
    }
  }
}

TEST(SyntheticTraceTest, SessionsSortedByStart) {
  const Trace trace = GenerateSyntheticTrace(SmallTraceConfig(5));
  for (size_t i = 1; i < trace.sessions().size(); ++i) {
    EXPECT_LE(trace.sessions()[i - 1].start_us, trace.sessions()[i].start_us);
  }
}

TEST(TraceStatsTest, CoverageCurveIsMonotone) {
  const Trace trace = GenerateSyntheticTrace(SmallTraceConfig(11));
  const TraceStats stats = ComputeTraceStats(trace);
  ASSERT_EQ(stats.coverage.size(), 4u);  // 97/98/99/100 %
  for (size_t i = 1; i < stats.coverage.size(); ++i) {
    EXPECT_GE(stats.coverage[i].bytes_needed, stats.coverage[i - 1].bytes_needed);
    EXPECT_GE(stats.coverage[i].targets_needed, stats.coverage[i - 1].targets_needed);
  }
  // Full coverage needs at most the footprint (only requested targets count).
  EXPECT_LE(stats.coverage.back().bytes_needed, stats.footprint_bytes);
  EXPECT_EQ(stats.coverage.back().request_fraction, 1.0);
}

TEST(TraceStatsTest, CountsMatchTrace) {
  const Trace trace = GenerateSyntheticTrace(SmallTraceConfig(13));
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.num_requests, trace.total_requests());
  EXPECT_EQ(stats.num_sessions, trace.sessions().size());
  EXPECT_EQ(stats.num_targets, trace.catalog().size());
  EXPECT_EQ(stats.transferred_bytes, trace.total_response_bytes());
  EXPECT_GE(stats.mean_batches_per_session, 1.0);
}

TEST(TraceStatsTest, SkewedWorkloadCoversCheaply) {
  // With Zipf popularity, 97% of requests need notably less memory than 100%.
  SyntheticTraceConfig config;
  config.num_pages = 2000;
  config.num_sessions = 20000;
  config.zipf_alpha = 1.1;
  const Trace trace = GenerateSyntheticTrace(config);
  const TraceStats stats = ComputeTraceStats(trace);
  ASSERT_EQ(stats.coverage.size(), 4u);
  EXPECT_LT(static_cast<double>(stats.coverage[0].bytes_needed),
            0.8 * static_cast<double>(stats.coverage[3].bytes_needed));
}

}  // namespace
}  // namespace lard
