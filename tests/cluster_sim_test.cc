#include <gtest/gtest.h>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

// A trace small enough for unit tests but with real cache pressure: the
// ~20 MB working set greatly exceeds one 2 MB node cache and roughly matches
// the aggregate cache of a mid-sized cluster.
Trace TestTrace() {
  SyntheticTraceConfig config;
  config.seed = 99;
  config.num_pages = 300;
  config.num_sessions = 1200;
  config.num_clients = 32;
  return GenerateSyntheticTrace(config);
}

ClusterSimConfig BaseConfig(int nodes, Policy policy, Mechanism mechanism) {
  ClusterSimConfig config;
  config.num_nodes = nodes;
  config.policy = policy;
  config.mechanism = mechanism;
  config.backend_cache_bytes = 2ull * 1024 * 1024;  // force cache pressure
  config.concurrent_sessions_per_node = 32;
  return config;
}

TEST(ClusterSimTest, ServesEveryRequestInTrace) {
  const Trace trace = TestTrace();
  ClusterSim sim(BaseConfig(4, Policy::kExtendedLard, Mechanism::kBackEndForwarding), &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_EQ(metrics.total_connections, trace.sessions().size());
  EXPECT_GT(metrics.throughput_rps, 0.0);
  EXPECT_GT(metrics.sim_seconds, 0.0);
  // Every request the nodes saw is a hit or a disk read.
  uint64_t served = 0;
  for (const auto& node : metrics.per_node) {
    served += node.cache_hits + node.disk_reads;
  }
  EXPECT_GE(served, metrics.total_requests);
}

TEST(ClusterSimTest, DeterministicAcrossRuns) {
  const Trace trace = TestTrace();
  const ClusterSimConfig config =
      BaseConfig(3, Policy::kExtendedLard, Mechanism::kBackEndForwarding);
  ClusterSim sim_a(config, &trace);
  ClusterSim sim_b(config, &trace);
  const ClusterSimMetrics a = sim_a.Run();
  const ClusterSimMetrics b = sim_b.Run();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

TEST(ClusterSimTest, TracerRecordsDeterministicVirtualTimeSpans) {
  const Trace trace = TestTrace();
  TracerConfig tracer_config;
  tracer_config.sample_every = 1;
  tracer_config.ring_capacity = 8192;

  // Two traced runs of the same scenario must record byte-identical span
  // sets: conn ids are deterministic and timestamps are virtual.
  std::string renders[2];
  for (int run = 0; run < 2; ++run) {
    Tracer tracer(tracer_config);
    ClusterSimConfig config =
        BaseConfig(3, Policy::kExtendedLard, Mechanism::kBackEndForwarding);
    config.tracer = &tracer;
    ClusterSim sim(config, &trace);
    const ClusterSimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.total_requests, trace.total_requests());
    EXPECT_GT(tracer.Ring("sim")->recorded(), 0u);
    renders[run] = tracer.RenderJson();
    EXPECT_NE(renders[run].find("\"kind\":\"policy\""), std::string::npos);
    EXPECT_NE(renders[run].find("\"kind\":\"serve\""), std::string::npos);
  }
  EXPECT_EQ(renders[0], renders[1]) << "sim spans must be run-to-run deterministic";

  // An untraced run is unaffected (null tracer is the default).
  ClusterSim untraced(BaseConfig(3, Policy::kExtendedLard, Mechanism::kBackEndForwarding),
                      &trace);
  EXPECT_EQ(untraced.Run().total_requests, trace.total_requests());
}

TEST(ClusterSimTest, Http10ModeCreatesConnectionPerRequest) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(2, Policy::kLard, Mechanism::kSingleHandoff);
  config.http10 = true;
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.total_connections, trace.total_requests());
}

TEST(ClusterSimTest, LardAggregatesCachesAcrossNodes) {
  // The ASPLOS'98 baseline claim (reproduced as Fig. 7's simple-LARD curve):
  // on HTTP/1.0, content-based distribution makes the cluster-wide hit rate
  // grow with node count while WRR's does not.
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(1, Policy::kLard, Mechanism::kSingleHandoff);
  config.http10 = true;
  ClusterSim lard1(config, &trace);
  config.num_nodes = 6;
  ClusterSim lard6(config, &trace);
  config.policy = Policy::kWrr;
  ClusterSim wrr6(config, &trace);
  const double hit1 = lard1.Run().cache_hit_rate;
  const double hit6 = lard6.Run().cache_hit_rate;
  const double wrr6_hit = wrr6.Run().cache_hit_rate;
  EXPECT_GT(hit6, hit1 + 0.1);
  EXPECT_GT(hit6, wrr6_hit + 0.1);
}

TEST(ClusterSimTest, LardBeatsWrrOnThroughputHttp10) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(6, Policy::kLard, Mechanism::kSingleHandoff);
  config.http10 = true;
  ClusterSim lard(config, &trace);
  config.policy = Policy::kWrr;
  ClusterSim wrr(config, &trace);
  EXPECT_GT(lard.Run().throughput_rps, 1.5 * wrr.Run().throughput_rps);
}

TEST(ClusterSimTest, SimpleLardLosesLocalityOnPersistentConnections) {
  // The paper's motivating negative result (Section 2.4 / Figs. 7-8): pinning
  // whole persistent connections to the first request's node degrades the
  // aggregate hit rate relative to per-request distribution (extended LARD
  // with back-end forwarding).
  const Trace trace = TestTrace();
  ClusterSim simple(BaseConfig(6, Policy::kLard, Mechanism::kSingleHandoff), &trace);
  ClusterSim extended(BaseConfig(6, Policy::kExtendedLard, Mechanism::kBackEndForwarding),
                      &trace);
  const ClusterSimMetrics simple_metrics = simple.Run();
  const ClusterSimMetrics extended_metrics = extended.Run();
  EXPECT_GT(extended_metrics.cache_hit_rate, simple_metrics.cache_hit_rate);
  EXPECT_GT(extended_metrics.throughput_rps, simple_metrics.throughput_rps);
}

TEST(ClusterSimTest, IdealHandoffIsUpperBoundForExtLard) {
  const Trace trace = TestTrace();
  ClusterSim ideal(BaseConfig(4, Policy::kExtendedLard, Mechanism::kIdealHandoff), &trace);
  ClusterSim forward(BaseConfig(4, Policy::kExtendedLard, Mechanism::kBackEndForwarding), &trace);
  const double ideal_rps = ideal.Run().throughput_rps;
  const double forward_rps = forward.Run().throughput_rps;
  // Zero-cost migration can only help (small tolerance for policy noise).
  EXPECT_GT(ideal_rps, 0.92 * forward_rps);
}

TEST(ClusterSimTest, ExtLardForwardsOnlyUnderBackEndForwarding) {
  const Trace trace = TestTrace();
  ClusterSim forward(BaseConfig(4, Policy::kExtendedLard, Mechanism::kBackEndForwarding), &trace);
  ClusterSim simple(BaseConfig(4, Policy::kLard, Mechanism::kSingleHandoff), &trace);
  const ClusterSimMetrics forward_metrics = forward.Run();
  const ClusterSimMetrics simple_metrics = simple.Run();
  EXPECT_EQ(simple_metrics.dispatcher.forwards, 0u);
  EXPECT_EQ(simple_metrics.dispatcher.migrations, 0u);
  EXPECT_EQ(forward_metrics.dispatcher.migrations, 0u);
}

TEST(ClusterSimTest, FrontEndUtilizationAccounted) {
  const Trace trace = TestTrace();
  ClusterSim sim(BaseConfig(4, Policy::kExtendedLard, Mechanism::kBackEndForwarding), &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.fe_utilization, 0.0);
  EXPECT_LT(metrics.fe_utilization, 1.5);  // accounted, not throttled
}

TEST(ClusterSimTest, RelayMechanismThrottlesAtFrontEnd) {
  const Trace trace = TestTrace();
  ClusterSim relay(BaseConfig(4, Policy::kExtendedLard, Mechanism::kRelayingFrontEnd), &trace);
  const ClusterSimMetrics metrics = relay.Run();
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_GT(metrics.dispatcher.relays, 0u);
}

TEST(ClusterSimTest, ThinkTimesStretchSimulatedTime) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(2, Policy::kExtendedLard, Mechanism::kBackEndForwarding);
  ClusterSim eager(config, &trace);
  config.use_think_times = true;
  ClusterSim relaxed(config, &trace);
  EXPECT_GT(relaxed.Run().sim_seconds, eager.Run().sim_seconds);
}

TEST(ClusterSimTest, IdleTimeoutReapsAndReopensDeterministically) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(3, Policy::kExtendedLard, Mechanism::kBackEndForwarding);
  config.use_think_times = true;
  // Well under the trace's inter-page think gaps (exponential, mean in
  // seconds) but above the 50ms parse delays: only genuine idle waits reap.
  config.idle_timeout_us = 200 * 1000;
  config.telemetry_interval_us = 1000 * 1000;

  std::string telemetry[2];
  for (int run = 0; run < 2; ++run) {
    ClusterSim sim(config, &trace);
    const ClusterSimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.total_requests, trace.total_requests());
    EXPECT_GT(metrics.idle_closes, 0u);
    // Every reaped session that had batches left came back on a fresh
    // connection, and none of that churn registered as a failover.
    EXPECT_GT(metrics.idle_reopens, 0u);
    EXPECT_LE(metrics.idle_reopens, metrics.idle_closes);
    EXPECT_EQ(metrics.failovers, 0u);
    telemetry[run] = sim.TelemetryJson();
    EXPECT_NE(telemetry[run].find("idle_close_rate"), std::string::npos);
  }
  EXPECT_EQ(telemetry[0], telemetry[1]) << "idle-close events must be run-to-run deterministic";

  // Knob off: no reaping, and the telemetry schema is untouched.
  config.idle_timeout_us = 0;
  ClusterSim off(config, &trace);
  const ClusterSimMetrics off_metrics = off.Run();
  EXPECT_EQ(off_metrics.idle_closes, 0u);
  EXPECT_EQ(off_metrics.idle_reopens, 0u);
  EXPECT_EQ(off.TelemetryJson().find("idle_close_rate"), std::string::npos);
}

TEST(ClusterSimTest, SingleNodeDegenerate) {
  const Trace trace = TestTrace();
  for (const Policy policy : {Policy::kWrr, Policy::kLard, Policy::kExtendedLard}) {
    ClusterSim sim(BaseConfig(1, policy, Mechanism::kSingleHandoff), &trace);
    const ClusterSimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.total_requests, trace.total_requests());
    EXPECT_EQ(metrics.per_node.size(), 1u);
    EXPECT_EQ(metrics.dispatcher.forwards, 0u);
  }
}

// Conservation across the full policy/mechanism matrix of Figs. 7/8.
struct SimCombo {
  Policy policy;
  Mechanism mechanism;
  bool http10;
};

class SimComboTest : public ::testing::TestWithParam<SimCombo> {};

TEST_P(SimComboTest, CompletesAndConserves) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(5, GetParam().policy, GetParam().mechanism);
  config.http10 = GetParam().http10;
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_GT(metrics.throughput_rps, 0.0);
  uint64_t node_requests = 0;
  for (const auto& node : metrics.per_node) {
    node_requests += node.requests;
  }
  EXPECT_GE(node_requests, metrics.total_requests);
}

INSTANTIATE_TEST_SUITE_P(
    FigureCombos, SimComboTest,
    ::testing::Values(SimCombo{Policy::kWrr, Mechanism::kSingleHandoff, true},
                      SimCombo{Policy::kWrr, Mechanism::kSingleHandoff, false},
                      SimCombo{Policy::kLard, Mechanism::kSingleHandoff, true},
                      SimCombo{Policy::kLard, Mechanism::kSingleHandoff, false},
                      SimCombo{Policy::kExtendedLard, Mechanism::kMultipleHandoff, false},
                      SimCombo{Policy::kExtendedLard, Mechanism::kBackEndForwarding, false},
                      SimCombo{Policy::kExtendedLard, Mechanism::kIdealHandoff, false},
                      SimCombo{Policy::kExtendedLard, Mechanism::kRelayingFrontEnd, false}));

}  // namespace
}  // namespace lard
