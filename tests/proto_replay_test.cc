// Crash-transparent request replay: the replay wire codec (kReplay /
// kReplayAck / kJournalAppend round-trips and hostile-input robustness), the
// front-end's replay-journal bookkeeping (ack trimming, splice-offset
// accumulation across repeated crashes, bounded-capacity overflow), the
// end-to-end crash-mid-pipeline path (a killed back-end's in-flight
// idempotent requests are re-served byte-consistently on a survivor over the
// *same* client TCP connection), the clean-giveup path for non-idempotent
// tails (502/close, never a spliced half-response), and the simulator's
// deterministic twin with its shared invariant lost == non_idempotent.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/http/response_parser.h"
#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/control_protocol.h"
#include "src/proto/replay_journal.h"
#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(ReplayWireTest, ReplayRoundTrip) {
  ReplayMsg msg;
  msg.conn_id = (7ull << 48) + 12345;
  msg.origin_node = 3;
  msg.splice_offset = 987654321;
  msg.autonomous = true;
  RequestDirective directive;
  directive.action = DirectiveAction::kLocal;
  directive.path = "/a/b/c.html";
  directive.cache_after_miss = false;
  msg.directives.push_back(directive);
  directive.path = "/second";
  directive.cache_after_miss = true;
  msg.directives.push_back(directive);
  msg.replay_input = "GET /a/b/c.html HTTP/1.1\r\n\r\nGET /second HTTP/1.1\r\n\r\n";

  ReplayMsg decoded;
  ASSERT_TRUE(DecodeReplay(EncodeReplay(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, msg.conn_id);
  EXPECT_EQ(decoded.origin_node, msg.origin_node);
  EXPECT_EQ(decoded.splice_offset, msg.splice_offset);
  EXPECT_EQ(decoded.autonomous, msg.autonomous);
  ASSERT_EQ(decoded.directives.size(), 2u);
  EXPECT_EQ(decoded.directives[0].path, "/a/b/c.html");
  EXPECT_FALSE(decoded.directives[0].cache_after_miss);
  EXPECT_EQ(decoded.directives[1].path, "/second");
  EXPECT_EQ(decoded.replay_input, msg.replay_input);
}

TEST(ReplayWireTest, ReplayAckRoundTrip) {
  ReplayAckMsg msg;
  msg.conn_id = 42;
  msg.completed = 17;
  msg.partial_bytes = 4096;
  ReplayAckMsg decoded;
  ASSERT_TRUE(DecodeReplayAck(EncodeReplayAck(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 42u);
  EXPECT_EQ(decoded.completed, 17u);
  EXPECT_EQ(decoded.partial_bytes, 4096u);
}

TEST(ReplayWireTest, JournalAppendRoundTrip) {
  JournalAppendMsg msg;
  msg.conn_id = 99;
  msg.method = "GET";
  msg.path = "/x";
  msg.request_bytes = "GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
  JournalAppendMsg decoded;
  ASSERT_TRUE(DecodeJournalAppend(EncodeJournalAppend(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 99u);
  EXPECT_EQ(decoded.method, "GET");
  EXPECT_EQ(decoded.path, "/x");
  EXPECT_EQ(decoded.request_bytes, msg.request_bytes);
}

TEST(ReplayWireTest, TruncatedFramesAreRejected) {
  ReplayMsg msg;
  msg.conn_id = 1;
  msg.origin_node = 0;
  RequestDirective directive;
  directive.path = "/p";
  msg.directives.push_back(directive);
  msg.replay_input = "GET /p HTTP/1.1\r\n\r\n";
  const std::string encoded = EncodeReplay(msg);
  // Every strict prefix must fail cleanly, never crash or mis-decode.
  for (size_t len = 0; len < encoded.size(); ++len) {
    ReplayMsg decoded;
    EXPECT_FALSE(DecodeReplay(std::string_view(encoded.data(), len), &decoded))
        << "prefix of " << len << " bytes decoded";
  }
  const std::string ack = EncodeReplayAck({5, 6, 7});
  for (size_t len = 0; len < ack.size(); ++len) {
    ReplayAckMsg decoded;
    EXPECT_FALSE(DecodeReplayAck(std::string_view(ack.data(), len), &decoded));
  }
  JournalAppendMsg append;
  append.conn_id = 1;
  append.method = "GET";
  append.path = "/p";
  append.request_bytes = "GET /p HTTP/1.1\r\n\r\n";
  const std::string append_encoded = EncodeJournalAppend(append);
  for (size_t len = 0; len < append_encoded.size(); ++len) {
    JournalAppendMsg decoded;
    EXPECT_FALSE(
        DecodeJournalAppend(std::string_view(append_encoded.data(), len), &decoded));
  }
}

TEST(ReplayWireTest, GarbageAndTrailingBytesAreRejected) {
  ReplayMsg decoded;
  EXPECT_FALSE(DecodeReplay("not a frame at all", &decoded));
  // A declared directive count far beyond the remaining bytes must fail
  // without reserving gigabytes (the count-vs-remaining bound).
  WireWriter writer;
  writer.U64(1);               // conn_id
  writer.U32(0);               // origin node
  writer.U64(0);               // splice offset
  writer.U8(0);                // autonomous
  writer.U32(0x00f00000);      // directive count: ~15M, but no bytes follow
  EXPECT_FALSE(DecodeReplay(writer.Take(), &decoded));
  // Trailing garbage after a valid encoding must also be rejected.
  ReplayAckMsg ack_decoded;
  std::string ack = EncodeReplayAck({1, 2, 3});
  ack += "x";
  EXPECT_FALSE(DecodeReplayAck(ack, &ack_decoded));
}

TEST(ReplayWireTest, HandoffCarriesReplayProtectedFlag) {
  HandoffMsg msg;
  msg.conn_id = 5;
  msg.autonomous = true;
  msg.replay_protected = true;
  msg.unparsed_input = "GET / HTTP/1.1\r\n\r\n";
  HandoffMsg decoded;
  ASSERT_TRUE(DecodeHandoff(EncodeHandoff(msg), &decoded));
  EXPECT_TRUE(decoded.replay_protected);
  msg.replay_protected = false;
  ASSERT_TRUE(DecodeHandoff(EncodeHandoff(msg), &decoded));
  EXPECT_FALSE(decoded.replay_protected);
}

// ---------------------------------------------------------------------------
// Journal bookkeeping
// ---------------------------------------------------------------------------

ReplayJournal::Entry MakeEntry(const std::string& path, bool idempotent = true) {
  ReplayJournal::Entry entry;
  entry.bytes = std::string(idempotent ? "GET " : "POST ") + path + " HTTP/1.1\r\n\r\n";
  entry.method = idempotent ? "GET" : "POST";
  entry.path = path;
  entry.idempotent = idempotent;
  return entry;
}

TEST(ReplayJournalTest, AcksTrimTheTailAndTrackThePartialOffset) {
  ReplayJournal journal(ReplayJournalConfig{});
  journal.Track(1, UniqueFd());
  journal.Append(1, MakeEntry("/a"));
  journal.Append(1, MakeEntry("/b"));
  journal.Append(1, MakeEntry("/c"));

  ReplayJournal::Plan plan = journal.PlanFor(1);
  ASSERT_TRUE(plan.tracked);
  ASSERT_TRUE(plan.replayable);
  ASSERT_EQ(plan.entries.size(), 3u);
  EXPECT_EQ(plan.splice_offset, 0u);
  EXPECT_FALSE(plan.mid_response);

  // /a's response fully flushed, 100 bytes of /b's flushed.
  journal.Ack(1, 1, 100);
  plan = journal.PlanFor(1);
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].path, "/b");
  EXPECT_EQ(plan.splice_offset, 100u);
  EXPECT_TRUE(plan.mid_response);

  // Progress is cumulative per node and monotone; a stale report is ignored.
  journal.Ack(1, 1, 40);
  EXPECT_EQ(journal.PlanFor(1).splice_offset, 40u);  // partial may move
  journal.Ack(1, 0, 999);                            // completed went backwards
  EXPECT_EQ(journal.PlanFor(1).splice_offset, 40u);

  journal.Ack(1, 3, 0);
  plan = journal.PlanFor(1);
  EXPECT_TRUE(plan.entries.empty());
  EXPECT_TRUE(plan.replayable);  // an empty tail replays trivially (idle conn)
}

TEST(ReplayJournalTest, SpliceOffsetAccumulatesAcrossRepeatedCrashes) {
  ReplayJournal journal(ReplayJournalConfig{});
  journal.Track(1, UniqueFd());
  journal.Append(1, MakeEntry("/a"));
  journal.Append(1, MakeEntry("/b"));

  // Node 1 flushed 150 bytes of /a's response, then crashed.
  journal.Ack(1, 0, 150);
  EXPECT_EQ(journal.PlanFor(1).splice_offset, 150u);
  journal.NoteReplaySent(1);

  // Node 2 (adopted with splice 150) flushed 70 further bytes, then crashed:
  // the next splice covers everything the client ever saw.
  journal.Ack(1, 0, 70);
  EXPECT_EQ(journal.PlanFor(1).splice_offset, 220u);
  journal.NoteReplaySent(1);

  // Node 3 finishes /a: the delivered-prefix bookkeeping resets with the pop.
  journal.Ack(1, 1, 30);
  ReplayJournal::Plan plan = journal.PlanFor(1);
  ASSERT_EQ(plan.entries.size(), 1u);
  EXPECT_EQ(plan.entries[0].path, "/b");
  EXPECT_EQ(plan.splice_offset, 30u);
}

TEST(ReplayJournalTest, NonIdempotentTailIsNotReplayable) {
  ReplayJournal journal(ReplayJournalConfig{});
  journal.Track(1, UniqueFd());
  journal.Append(1, MakeEntry("/a"));
  journal.Append(1, MakeEntry("/post-target", /*idempotent=*/false));
  journal.Append(1, MakeEntry("/c"));
  EXPECT_FALSE(journal.PlanFor(1).replayable);
  // Once the non-idempotent response is acknowledged the tail is clean again.
  journal.Ack(1, 2, 0);
  EXPECT_TRUE(journal.PlanFor(1).replayable);
}

TEST(ReplayJournalTest, OverflowDropsProtectionButKeepsTheVerdict) {
  ReplayJournalConfig config;
  config.max_entries_per_conn = 2;
  ReplayJournal journal(config);
  journal.Track(1, UniqueFd());
  journal.Append(1, MakeEntry("/a"));
  journal.Append(1, MakeEntry("/b"));
  EXPECT_TRUE(journal.PlanFor(1).replayable);
  journal.Append(1, MakeEntry("/c"));  // over the cap
  ReplayJournal::Plan plan = journal.PlanFor(1);
  EXPECT_TRUE(plan.tracked);
  EXPECT_FALSE(plan.replayable);
  EXPECT_EQ(journal.overflows(), 1u);
  // Rebuild after a cooperative handback must not silently re-arm a journal
  // that has already missed entries.
  journal.Rebuild(1, {MakeEntry("/d")}, "");
  EXPECT_FALSE(journal.PlanFor(1).replayable);
}

TEST(ReplayJournalTest, RebuildRestartsTheJournal) {
  ReplayJournal journal(ReplayJournalConfig{});
  journal.Track(1, UniqueFd());
  journal.Append(1, MakeEntry("/a"));
  journal.Append(1, MakeEntry("/b"));
  journal.Ack(1, 0, 500);
  journal.Rebuild(1, {MakeEntry("/b"), MakeEntry("/c")}, "GET /half");
  ReplayJournal::Plan plan = journal.PlanFor(1);
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].path, "/b");
  EXPECT_EQ(plan.splice_offset, 0u) << "handbacks flush first; no partial survives";
  EXPECT_EQ(plan.partial_tail, "GET /half");
  journal.Drop(1);
  EXPECT_FALSE(journal.PlanFor(1).tracked);
}

TEST(ReplayJournalTest, PartialTailRidesTheReplayAndStaysReplayable) {
  // The serving node's parser buffer (a request's consumed prefix) must ride
  // every replay verbatim: its suffix is still in the client socket, and the
  // adopting node can only reassemble the request from prefix + suffix.
  ReplayJournal journal(ReplayJournalConfig{});
  journal.Track(1, UniqueFd());
  journal.Append(1, MakeEntry("/a"));
  journal.SetPartialTail(1, "GET /torn-prefix HTTP/1.1\r\nHo");
  ReplayJournal::Plan plan = journal.PlanFor(1);
  EXPECT_TRUE(plan.replayable) << "an unreceived request cannot have executed";
  EXPECT_EQ(plan.partial_tail, "GET /torn-prefix HTTP/1.1\r\nHo");
  // The buffer drained into a complete (appended) request: the tail report
  // replaces the stored prefix with the new (empty) buffer.
  journal.SetPartialTail(1, "");
  journal.Append(1, MakeEntry("/torn-prefix"));
  plan = journal.PlanFor(1);
  EXPECT_TRUE(plan.partial_tail.empty());
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[1].path, "/torn-prefix");
}

TEST(ReplayWireTest, JournalTailRoundTrip) {
  JournalTailMsg msg;
  msg.conn_id = 77;
  msg.buffered = "GET /page HTT";
  JournalTailMsg decoded;
  ASSERT_TRUE(DecodeJournalTail(EncodeJournalTail(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 77u);
  EXPECT_EQ(decoded.buffered, "GET /page HTT");
  const std::string encoded = EncodeJournalTail(msg);
  for (size_t len = 0; len < encoded.size(); ++len) {
    JournalTailMsg truncated;
    EXPECT_FALSE(DecodeJournalTail(std::string_view(encoded.data(), len), &truncated));
  }
}

// ---------------------------------------------------------------------------
// End-to-end crash replay
// ---------------------------------------------------------------------------

Trace TestTrace(uint64_t seed = 42, int sessions = 300) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 60;
  config.num_sessions = sessions;
  config.num_clients = 16;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig CrashConfig(int nodes) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  // Cold targets cost ~8ms each: a kill right after a pipelined batch lands
  // reliably catches requests in flight.
  config.disk_time_scale = 0.3;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 400;
  config.retire_grace_ms = 1500;
  return config;
}

void SetRecvTimeout(int fd, int64_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// Reads until `count` responses parsed, EOF, timeout or parse error.
// Returns false on parse error (corrupt byte stream — the cardinal sin).
bool ReadResponses(int fd, size_t count, std::vector<HttpResponse>* responses) {
  ResponseParser parser;
  char buf[16384];
  while (responses->size() < count) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return true;  // EOF/timeout: caller inspects what arrived
    }
    if (parser.Feed(std::string_view(buf, static_cast<size_t>(n)), responses) ==
        ResponseParser::State::kError) {
      return false;
    }
  }
  return true;
}

const std::string* FindHeader(const HttpResponse& response, const std::string& name) {
  return response.headers.Find(name);
}

TEST(ProtoReplayTest, CrashMidPipelineReplaysIdempotentTailOnSameConnection) {
  const Trace trace = TestTrace(7);
  ClusterConfig config = CrashConfig(3);
  config.trace_sample_every = 1;  // the replay spans are asserted on below
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  SetRecvTimeout(fd.value().get(), 8000);

  // Warm-up round trip pins the connection and reveals the handling node.
  {
    const std::string request =
        "GET " + trace.catalog().Get(0).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));
  }
  std::vector<HttpResponse> responses;
  ASSERT_TRUE(ReadResponses(fd.value().get(), 1, &responses));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  const std::string* server = FindHeader(responses[0], "Server");
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->rfind("lard-be", 0), 0u) << *server;
  const NodeId handling = static_cast<NodeId>(std::stol(server->substr(7)));

  // A pipelined batch of cold targets (~8ms of disk each), then kill the
  // handling node while most of it is in flight.
  constexpr size_t kBatch = 12;
  std::string batch;
  for (size_t i = 0; i < kBatch; ++i) {
    batch += "GET " + trace.catalog().Get(i + 1).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  ASSERT_EQ(::send(fd.value().get(), batch.data(), batch.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(batch.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(cluster.KillNode(handling));

  // Every response of the batch still arrives on the *same* socket — the
  // un-flushed tail re-served by a survivor, byte-consistently enough for a
  // strict parser, each body verified against the catalog.
  responses.clear();
  ASSERT_TRUE(ReadResponses(fd.value().get(), kBatch, &responses))
      << "corrupt byte stream after the crash splice";
  ASSERT_EQ(responses.size(), kBatch) << "responses lost with the crashed node";
  for (size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(responses[i].status, 200) << "response " << i;
    EXPECT_EQ(responses[i].body.size(), trace.catalog().Get(i + 1).size_bytes)
        << "response " << i;
  }

  // The connection keeps working after recovery.
  {
    const std::string request =
        "GET " + trace.catalog().Get(20).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));
    responses.clear();
    ASSERT_TRUE(ReadResponses(fd.value().get(), 1, &responses));
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, 200);
    const std::string* survivor = FindHeader(responses[0], "Server");
    ASSERT_NE(survivor, nullptr);
    EXPECT_NE(*survivor, "lard-be" + std::to_string(handling))
        << "post-crash serving node must be a survivor";
  }

  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_GE(snapshot.replays, 1u) << "the crash must have triggered a journal replay";
  EXPECT_GE(snapshot.replays_adopted, 1u);
  EXPECT_EQ(snapshot.replay_giveups, 0u);
  EXPECT_EQ(snapshot.replays,
            cluster.frontend().dispatcher().counters().failure_reassignments)
      << "FE replays and dispatcher failure reassignments are the same events";

  // The crash left a causal trail in the tracer: the journaled requests, the
  // replay onto the survivor, and the survivor's kReplay adoption.
  const std::string traces = cluster.tracer()->RenderJson();
  EXPECT_NE(traces.find("\"kind\":\"journal\""), std::string::npos)
      << "journal appends left no spans";
  EXPECT_NE(traces.find("\"kind\":\"replay\""), std::string::npos)
      << "the crash replay left no spans";
  cluster.Stop();
}

TEST(ProtoReplayTest, NonIdempotentTailGivesUpCleanlyNeverSplices) {
  const Trace trace = TestTrace(11);
  ClusterConfig config = CrashConfig(2);
  // Paper-faithful disk latency (~28 ms per cold read): the long batch below
  // takes over a second to serve, so the kill reliably lands while the POST
  // deep in the pipeline is still unacknowledged — even on a sanitizer-slowed
  // machine.
  config.disk_time_scale = 1.0;
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  SetRecvTimeout(fd.value().get(), 5000);

  // Pin the connection and learn its node.
  std::string request = "GET " + trace.catalog().Get(0).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::vector<HttpResponse> responses;
  ASSERT_TRUE(ReadResponses(fd.value().get(), 1, &responses));
  ASSERT_EQ(responses.size(), 1u);
  const std::string* server = FindHeader(responses[0], "Server");
  ASSERT_NE(server, nullptr);
  const NodeId handling = static_cast<NodeId>(std::stol(server->substr(7)));

  // A long pipelined batch of cold targets with a POST deep inside: at crash
  // time the unacknowledged tail contains the non-idempotent request, so
  // replay must refuse and fail the client cleanly.
  constexpr size_t kBatch = 40;
  constexpr size_t kPostIndex = 30;
  std::string batch;
  for (size_t i = 0; i < kBatch; ++i) {
    const std::string& path = trace.catalog().Get(1 + i % 50).path;
    if (i == kPostIndex) {
      batch += "POST " + path + " HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
    } else {
      batch += "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    }
  }
  ASSERT_EQ(::send(fd.value().get(), batch.data(), batch.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(batch.size()));
  // Wait for the first few responses before killing: that proves the node
  // *received and parsed* the whole pipeline (including the POST — now in
  // the journal's unacknowledged tail). A kill before the node ever read the
  // batch would leave the POST unreceived in the socket buffer, and the
  // replay would — correctly — be fully transparent.
  responses.clear();
  ASSERT_TRUE(ReadResponses(fd.value().get(), 3, &responses));
  ASSERT_EQ(responses.size(), 3u);
  ASSERT_TRUE(cluster.KillNode(handling));

  // The client must see only well-formed responses followed by a clean
  // 502 or a close — never a corrupt stream.
  EXPECT_TRUE(ReadResponses(fd.value().get(), kBatch, &responses))
      << "corrupt byte stream: a spliced half-response leaked";
  for (const HttpResponse& response : responses) {
    EXPECT_TRUE(response.status == 200 || response.status == 502)
        << "unexpected status " << response.status;
  }
  EXPECT_LT(responses.size(), kBatch) << "a non-idempotent tail must not be replayed";

  // Generous deadline: sanitizer builds slow detection down considerably.
  ASSERT_TRUE([&] {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      if (cluster.Snapshot().replay_giveups >= 1) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }()) << "the crash must have been counted as a replay giveup";
  EXPECT_EQ(cluster.Snapshot().replays_adopted, 0u);
  cluster.Stop();
}

TEST(ProtoReplayTest, ReplayDisabledFallsBackToLegacyLoss) {
  const Trace trace = TestTrace(13);
  ClusterConfig config = CrashConfig(2);
  config.replay_enabled = false;
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  SetRecvTimeout(fd.value().get(), 1500);
  const std::string request =
      "GET " + trace.catalog().Get(0).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::vector<HttpResponse> responses;
  ASSERT_TRUE(ReadResponses(fd.value().get(), 1, &responses));
  ASSERT_EQ(responses.size(), 1u);
  const std::string* server = FindHeader(responses[0], "Server");
  ASSERT_NE(server, nullptr);
  const NodeId handling = static_cast<NodeId>(std::stol(server->substr(7)));

  const std::string next =
      "GET " + trace.catalog().Get(5).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd.value().get(), next.data(), next.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(next.size()));
  ASSERT_TRUE(cluster.KillNode(handling));
  responses.clear();
  ASSERT_TRUE(ReadResponses(fd.value().get(), 1, &responses));
  EXPECT_TRUE(responses.empty()) << "with replay disabled the request dies with the node";
  EXPECT_EQ(cluster.Snapshot().replays, 0u);
  cluster.Stop();
}

// ---------------------------------------------------------------------------
// The simulator twin
// ---------------------------------------------------------------------------

TEST(SimReplayTest, FailureReplayInvariantLostEqualsNonIdempotent) {
  const Trace trace = TestTrace(23, 600);
  ClusterSimConfig config;
  config.num_nodes = 4;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.concurrent_sessions_per_node = 16;
  config.failure_replay = true;
  config.non_idempotent_fraction = 0.2;
  config.membership_events = {{150000, MembershipAction::kNodeFailure, 1},
                              {400000, MembershipAction::kNodeFailure, 2}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.nodes_failed, 2u);
  EXPECT_GT(metrics.replayed_connections, 0u);
  EXPECT_GT(metrics.replayed_requests, 0u);
  // The shared sim/prototype invariant: exactly the non-idempotent in-flight
  // requests are lost; every idempotent one is replayed.
  EXPECT_EQ(metrics.lost_requests, metrics.non_idempotent_in_flight);
  EXPECT_EQ(metrics.replay_unplaceable, 0u);
  // Replayed connections continue (no legacy reconnect failovers).
  EXPECT_EQ(metrics.failovers, 0u);
  EXPECT_EQ(metrics.replayed_connections, metrics.dispatcher.failure_reassignments);
  // All requests were issued exactly once from the trace's point of view.
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
}

TEST(SimReplayTest, PureIdempotentWorkloadLosesNothing) {
  const Trace trace = TestTrace(29, 400);
  ClusterSimConfig config;
  config.num_nodes = 3;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.concurrent_sessions_per_node = 16;
  config.failure_replay = true;
  config.non_idempotent_fraction = 0.0;
  config.membership_events = {{200000, MembershipAction::kNodeFailure, 1}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.lost_requests, 0u);
  EXPECT_EQ(metrics.non_idempotent_in_flight, 0u);
  EXPECT_GT(metrics.replayed_connections, 0u);
  EXPECT_EQ(metrics.failovers, 0u);
}

TEST(SimReplayTest, LegacyModeIsUnchanged) {
  // With failure_replay off the old semantics hold: in-flight work completes
  // and orphaned sessions reconnect (failovers), nothing replayed or lost.
  const Trace trace = TestTrace(31, 300);
  ClusterSimConfig config;
  config.num_nodes = 3;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.concurrent_sessions_per_node = 16;
  config.membership_events = {{200000, MembershipAction::kNodeFailure, 1}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.failovers, 0u);
  EXPECT_EQ(metrics.replayed_requests, 0u);
  EXPECT_EQ(metrics.lost_requests, 0u);
  EXPECT_EQ(metrics.replayed_connections, 0u);
}

}  // namespace
}  // namespace lard
