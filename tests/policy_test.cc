// Tests for the pluggable routing-policy API (src/core/policy.h): the
// registry, the weighted/unweighted bit-identity regression, weighted
// steering on heterogeneous weights, LARD/R replica sets, and runtime policy
// switching mid-workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/core/policy.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

class FakeDiskStats : public BackendStatsProvider {
 public:
  explicit FakeDiskStats(int num_nodes) : queues_(static_cast<size_t>(num_nodes), 0) {}
  int DiskQueueLength(NodeId node) const override {
    return static_cast<size_t>(node) < queues_.size() ? queues_[static_cast<size_t>(node)] : 0;
  }
  void Set(NodeId node, int length) {
    if (static_cast<size_t>(node) >= queues_.size()) {
      queues_.resize(static_cast<size_t>(node) + 1, 0);
    }
    queues_[static_cast<size_t>(node)] = length;
  }

 private:
  std::vector<int> queues_;
};

// --- Registry ---

TEST(PolicyRegistryTest, BuiltinsAreRegistered) {
  const std::vector<std::string> names = PolicyRegistry::Global().Names();
  for (const char* expected : {"wrr", "lard", "extlard", "wextlard", "lardr"}) {
    EXPECT_TRUE(PolicyRegistry::Global().Contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
  const std::string csv = PolicyRegistry::Global().NamesCsv();
  EXPECT_NE(csv.find("extlard"), std::string::npos) << csv;
}

TEST(PolicyRegistryTest, CreateRoundTripsNamesAndRejectsUnknown) {
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    std::unique_ptr<RoutingPolicy> policy = PolicyRegistry::Global().Create(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_EQ(PolicyRegistry::Global().Create("no-such-policy"), nullptr);
  EXPECT_FALSE(PolicyRegistry::Global().Contains("no-such-policy"));
}

TEST(PolicyRegistryTest, EnumKeysResolve) {
  for (const Policy policy : {Policy::kWrr, Policy::kLard, Policy::kExtendedLard,
                              Policy::kWeightedExtendedLard, Policy::kLardReplication}) {
    EXPECT_TRUE(PolicyRegistry::Global().Contains(PolicyKey(policy))) << PolicyKey(policy);
    Policy parsed;
    ASSERT_TRUE(ParsePolicyName(PolicyKey(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
}

// --- Decision-trace harness ---

// Replays a synthetic P-HTTP trace through a dispatcher, interleaving a
// window of concurrent connections (so load builds up) and scripting the
// per-node disk-queue feedback (so extended LARD's busy-disk forwarding
// paths all fire). Every assignment is serialized into the returned decision
// trace; two configs are bit-identical iff their traces compare equal.
std::vector<std::string> DecisionTrace(const DispatcherConfig& base_config, const Trace& trace,
                                       int num_nodes) {
  FakeDiskStats stats(num_nodes);
  DispatcherConfig config = base_config;
  config.num_nodes = num_nodes;
  Dispatcher dispatcher(config, &trace.catalog(), &stats);

  std::vector<std::string> decisions;
  const size_t window = 24;  // concurrent connections
  struct Slot {
    const TraceSession* session = nullptr;
    size_t next_batch = 0;
    ConnId conn = 0;
  };
  std::vector<Slot> slots(window);
  size_t next_session = 0;
  ConnId next_conn = 1;
  uint64_t step = 0;

  auto refill = [&](Slot& slot) {
    while (next_session < trace.sessions().size()) {
      const TraceSession& session = trace.sessions()[next_session++];
      if (session.batches.empty()) {
        continue;
      }
      slot.session = &session;
      slot.next_batch = 0;
      slot.conn = next_conn++;
      dispatcher.OnConnectionOpen(slot.conn);
      return true;
    }
    slot.session = nullptr;
    return false;
  };
  for (Slot& slot : slots) {
    refill(slot);
  }

  bool progress = true;
  while (progress) {
    progress = false;
    for (Slot& slot : slots) {
      if (slot.session == nullptr) {
        continue;
      }
      progress = true;
      // Scripted, deterministic disk feedback: some nodes below the
      // low-queue threshold, some far above it, shifting every step.
      for (NodeId node = 0; node < num_nodes; ++node) {
        stats.Set(node, static_cast<int>((step + static_cast<uint64_t>(node) * 3) % 9));
      }
      ++step;
      const TraceBatch& batch = slot.session->batches[slot.next_batch++];
      const std::vector<Assignment> assignments = dispatcher.OnBatch(slot.conn, batch.targets);
      for (const Assignment& assignment : assignments) {
        decisions.push_back(assignment.ToString() +
                            (assignment.served_from_cache ? "+hit" : "+miss"));
      }
      if (slot.next_batch >= slot.session->batches.size()) {
        dispatcher.OnConnectionClose(slot.conn);
        refill(slot);
      }
    }
  }
  // Close out with the final aggregate state so load-accounting divergence
  // also fails the comparison.
  for (NodeId node = 0; node < num_nodes; ++node) {
    decisions.push_back("load:" + std::to_string(dispatcher.NodeLoad(node)));
  }
  const DispatcherCounters& counters = dispatcher.counters();
  decisions.push_back("counters:" + std::to_string(counters.handoffs) + "/" +
                      std::to_string(counters.local_serves) + "/" +
                      std::to_string(counters.forwards) + "/" +
                      std::to_string(counters.migrations) + "/" +
                      std::to_string(counters.served_without_caching));
  return decisions;
}

Trace RegressionTrace() {
  SyntheticTraceConfig config;
  config.seed = 7;
  config.num_pages = 300;
  config.num_sessions = 600;
  return GenerateSyntheticTrace(config);
}

// The acceptance regression: with every node weight at 1.0, weighted
// extended LARD must produce decision-for-decision identical assignments to
// extended LARD.
TEST(WeightedPolicyTest, EqualWeightsAreBitIdenticalToExtLard) {
  const Trace trace = RegressionTrace();
  const int nodes = 4;
  // Small caches relative to the footprint so eviction and forwarding happen.
  DispatcherConfig unweighted;
  unweighted.policy_name = "extlard";
  unweighted.mechanism = Mechanism::kBackEndForwarding;
  unweighted.virtual_cache_bytes = 2ull * 1024 * 1024;

  DispatcherConfig weighted = unweighted;
  weighted.policy_name = "wextlard";
  weighted.node_weights = std::vector<double>(nodes, 1.0);

  const std::vector<std::string> a = DecisionTrace(unweighted, trace, nodes);
  const std::vector<std::string> b = DecisionTrace(weighted, trace, nodes);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "decision " << i << " diverged";
  }
  // The same must hold under multiple handoff (migration accounting).
  unweighted.mechanism = Mechanism::kMultipleHandoff;
  weighted.mechanism = Mechanism::kMultipleHandoff;
  EXPECT_EQ(DecisionTrace(unweighted, trace, nodes), DecisionTrace(weighted, trace, nodes));
}

// The enum and the registry name select the same implementation.
TEST(WeightedPolicyTest, EnumAndNameConfigsAgree) {
  const Trace trace = RegressionTrace();
  DispatcherConfig by_enum;
  by_enum.policy = Policy::kExtendedLard;
  by_enum.virtual_cache_bytes = 2ull * 1024 * 1024;
  DispatcherConfig by_name = by_enum;
  by_name.policy_name = "extlard";
  EXPECT_EQ(DecisionTrace(by_enum, trace, 3), DecisionTrace(by_name, trace, 3));
}

// --- Weighted steering ---

TEST(WeightedPolicyTest, WeightsSteerPlacementTowardCapacity) {
  // Two nodes, 3:1 capacity. Cold targets tie on cost, so the normalized-load
  // tie-break allocates connections roughly 3:1.
  TargetCatalog catalog;
  FakeDiskStats stats(2);
  DispatcherConfig config;
  config.policy_name = "wextlard";
  config.mechanism = Mechanism::kBackEndForwarding;
  config.num_nodes = 2;
  config.node_weights = {3.0, 1.0};
  Dispatcher dispatcher(config, &catalog, &stats);
  EXPECT_DOUBLE_EQ(dispatcher.NodeWeight(0), 3.0);
  EXPECT_DOUBLE_EQ(dispatcher.NodeWeight(1), 1.0);

  int on_fast = 0;
  int on_slow = 0;
  for (ConnId conn = 1; conn <= 40; ++conn) {
    const TargetId target = catalog.Intern("/cold" + std::to_string(conn), 1000);
    dispatcher.OnConnectionOpen(conn);
    const auto assignments = dispatcher.OnBatch(conn, {target});  // stays open: 1 load unit
    (assignments[0].node == 0 ? on_fast : on_slow)++;
  }
  EXPECT_EQ(on_fast + on_slow, 40);
  // Exact 3:1 modulo rotation start-up: the fast node must carry close to
  // three quarters of the connections.
  EXPECT_GE(on_fast, 27) << "fast=" << on_fast << " slow=" << on_slow;
  EXPECT_GE(on_slow, 5) << "fast=" << on_fast << " slow=" << on_slow;
  EXPECT_DOUBLE_EQ(dispatcher.NodeLoad(0), static_cast<double>(on_fast));
  EXPECT_NEAR(dispatcher.NormalizedNodeLoad(0), static_cast<double>(on_fast) / 3.0, 1e-9);
}

TEST(WeightedPolicyTest, AddNodeCarriesWeightThroughMembership) {
  TargetCatalog catalog;
  FakeDiskStats stats(1);
  DispatcherConfig config;
  config.policy_name = "wextlard";
  config.num_nodes = 1;
  Dispatcher dispatcher(config, &catalog, &stats);
  const NodeId heavy = dispatcher.AddNode(4.0);
  EXPECT_DOUBLE_EQ(dispatcher.NodeWeight(heavy), 4.0);
  EXPECT_DOUBLE_EQ(dispatcher.NodeWeight(0), 1.0);

  // The joined heavy node should absorb most new cold connections.
  int on_heavy = 0;
  for (ConnId conn = 1; conn <= 20; ++conn) {
    const TargetId target = catalog.Intern("/t" + std::to_string(conn), 500);
    dispatcher.OnConnectionOpen(conn);
    if (dispatcher.OnBatch(conn, {target})[0].node == heavy) {
      ++on_heavy;
    }
  }
  EXPECT_GE(on_heavy, 14);
}

// --- LARD/R ---

TEST(LardReplicationTest, HotTargetSplitsAcrossReplicaSet) {
  TargetCatalog catalog;
  FakeDiskStats stats(3);
  LardParams params;
  params.l_idle = 2.0;
  params.l_overload = 8.0;  // T_high = 4
  params.miss_cost = 4.0;
  DispatcherConfig config;
  config.policy_name = "lardr";
  config.mechanism = Mechanism::kBackEndForwarding;
  config.num_nodes = 3;
  config.params = params;
  Dispatcher dispatcher(config, &catalog, &stats);

  const TargetId hot = catalog.Intern("/hot", 1000);
  std::set<NodeId> serving;
  for (ConnId conn = 1; conn <= 12; ++conn) {
    dispatcher.OnConnectionOpen(conn);
    serving.insert(dispatcher.OnBatch(conn, {hot})[0].node);  // conns stay open
  }
  // One node would sit at load 12 — far past T_high. The replica set must
  // have grown so the hot target's connections split across nodes.
  EXPECT_GE(serving.size(), 2u) << "hot target never replicated";
  // And the load actually split: no node carries everything.
  for (const NodeId node : serving) {
    EXPECT_LT(dispatcher.NodeLoad(node), 12.0);
  }
}

TEST(LardReplicationTest, ColdTargetsStayUnreplicated) {
  TargetCatalog catalog;
  FakeDiskStats stats(3);
  DispatcherConfig config;
  config.policy_name = "lardr";
  config.num_nodes = 3;
  Dispatcher dispatcher(config, &catalog, &stats);

  // Light traffic (loads below T_high): each target sticks to one node,
  // exactly like basic LARD.
  const TargetId t = catalog.Intern("/cold", 1000);
  const NodeId home = [&] {
    dispatcher.OnConnectionOpen(1);
    const NodeId node = dispatcher.OnBatch(1, {t})[0].node;
    dispatcher.OnConnectionClose(1);
    return node;
  }();
  for (ConnId conn = 2; conn <= 8; ++conn) {
    dispatcher.OnConnectionOpen(conn);
    EXPECT_EQ(dispatcher.OnBatch(conn, {t})[0].node, home);
    dispatcher.OnConnectionClose(conn);
  }
}

// --- Runtime policy switching (admin POST /policy) ---

TEST(PolicySwitchTest, SwitchMidWorkloadConservesLoadAndConnections) {
  TargetCatalog catalog;
  FakeDiskStats stats(3);
  DispatcherConfig config;
  config.policy_name = "extlard";
  config.mechanism = Mechanism::kBackEndForwarding;
  config.num_nodes = 3;
  Dispatcher dispatcher(config, &catalog, &stats);

  // A working set of open connections mid-batch.
  std::vector<TargetId> targets;
  for (int i = 0; i < 12; ++i) {
    targets.push_back(catalog.Intern("/doc" + std::to_string(i), 2000));
  }
  std::vector<NodeId> handling;
  for (ConnId conn = 1; conn <= 12; ++conn) {
    dispatcher.OnConnectionOpen(conn);
    dispatcher.OnBatch(conn, {targets[static_cast<size_t>(conn - 1)]});
    handling.push_back(dispatcher.HandlingNode(conn));
  }
  double total_before = 0.0;
  for (NodeId node = 0; node < 3; ++node) {
    total_before += dispatcher.NodeLoad(node);
  }

  ASSERT_TRUE(dispatcher.SetPolicyByName("wrr"));
  EXPECT_STREQ(dispatcher.policy().name(), "wrr");

  // Existing connections keep their handling nodes; loads are conserved.
  double total_after = 0.0;
  for (NodeId node = 0; node < 3; ++node) {
    total_after += dispatcher.NodeLoad(node);
  }
  EXPECT_DOUBLE_EQ(total_before, total_after);
  for (ConnId conn = 1; conn <= 12; ++conn) {
    EXPECT_EQ(dispatcher.HandlingNode(conn), handling[static_cast<size_t>(conn - 1)])
        << "conn " << conn << " moved on policy switch";
  }

  // Subsequent batches on existing connections stay pinned (WRR is
  // connection-granularity) and the per-node loads still sum correctly.
  for (ConnId conn = 1; conn <= 12; ++conn) {
    const auto assignments = dispatcher.OnBatch(conn, {targets[0]});
    EXPECT_EQ(assignments[0].node, handling[static_cast<size_t>(conn - 1)]);
  }

  // Every registered policy round-trips through the dispatcher by name...
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    ASSERT_TRUE(dispatcher.SetPolicyByName(name)) << name;
    EXPECT_EQ(dispatcher.policy().name(), name);
    double total = 0.0;
    for (NodeId node = 0; node < 3; ++node) {
      total += dispatcher.NodeLoad(node);
    }
    EXPECT_DOUBLE_EQ(total, total_before) << "load leaked switching to " << name;
  }
  // ...and an unknown name is rejected without touching the active policy.
  const std::string active = dispatcher.policy().name();
  EXPECT_FALSE(dispatcher.SetPolicyByName("bogus"));
  EXPECT_EQ(dispatcher.policy().name(), active);

  // The workload continues cleanly after all the switching.
  for (ConnId conn = 1; conn <= 12; ++conn) {
    dispatcher.OnConnectionClose(conn);
  }
  for (NodeId node = 0; node < 3; ++node) {
    EXPECT_NEAR(dispatcher.NodeLoad(node), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace lard
