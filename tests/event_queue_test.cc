#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/resources.h"

namespace lard {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30, [&]() { order.push_back(3); });
  queue.ScheduleAt(10, [&]() { order.push_back(1); });
  queue.ScheduleAt(20, [&]() { order.push_back(2); });
  EXPECT_EQ(queue.RunUntilEmpty(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now_us(), 30);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(5, [&order, i]() { order.push_back(i); });
  }
  queue.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CallbacksMayScheduleMore) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) {
      queue.ScheduleAfter(10, chain);
    }
  };
  queue.ScheduleAt(0, chain);
  queue.RunUntilEmpty();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(queue.now_us(), 40);
}

TEST(EventQueueTest, ScheduleAfterRounds) {
  EventQueue queue;
  bool fired = false;
  queue.ScheduleAfter(1.4, [&]() { fired = true; });
  queue.RunUntilEmpty();
  EXPECT_TRUE(fired);
  EXPECT_EQ(queue.now_us(), 1);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(10, [&]() { ++fired; });
  queue.ScheduleAt(20, [&]() { ++fired; });
  queue.ScheduleAt(30, [&]() { ++fired; });
  EXPECT_EQ(queue.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.pending(), 1u);
  queue.RunUntil(25, /*advance_clock=*/true);
  EXPECT_EQ(queue.now_us(), 25);
}

TEST(FifoServerTest, SerializesWork) {
  EventQueue queue;
  FifoServer server(&queue);
  std::vector<int64_t> completions;
  server.Submit(100, [&]() { completions.push_back(queue.now_us()); });
  server.Submit(50, [&]() { completions.push_back(queue.now_us()); });
  EXPECT_EQ(server.queue_length(), 2);
  queue.RunUntilEmpty();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100);
  EXPECT_EQ(completions[1], 150);  // FIFO: starts after the first finishes
  EXPECT_EQ(server.queue_length(), 0);
  EXPECT_DOUBLE_EQ(server.total_busy_us(), 150.0);
}

TEST(FifoServerTest, IdleGapsDoNotAccrueBusyTime) {
  EventQueue queue;
  FifoServer server(&queue);
  server.Submit(10, []() {});
  queue.RunUntilEmpty();
  // Later work after an idle gap.
  queue.ScheduleAt(100, [&]() { server.Submit(10, []() {}); });
  queue.RunUntilEmpty();
  EXPECT_EQ(queue.now_us(), 110);
  EXPECT_DOUBLE_EQ(server.total_busy_us(), 20.0);
  EXPECT_NEAR(server.Utilization(), 20.0 / 110.0, 1e-9);
}

TEST(DiskServerTest, UsesServiceTimeModel) {
  EventQueue queue;
  DiskCostModel costs;
  DiskServer disk(&queue, costs);
  int64_t completed_at = -1;
  disk.Read(4096, [&]() { completed_at = queue.now_us(); });
  EXPECT_EQ(disk.queue_length(), 1);
  queue.RunUntilEmpty();
  EXPECT_EQ(completed_at, static_cast<int64_t>(DiskServiceTimeUs(costs, 4096)));
  EXPECT_EQ(disk.queue_length(), 0);
}

TEST(DiskServerTest, QueueLengthTracksBacklog) {
  EventQueue queue;
  DiskCostModel costs;
  DiskServer disk(&queue, costs);
  for (int i = 0; i < 5; ++i) {
    disk.Read(4096, []() {});
  }
  EXPECT_EQ(disk.queue_length(), 5);
  queue.RunUntilEmpty();
  EXPECT_EQ(disk.queue_length(), 0);
}

}  // namespace
}  // namespace lard
