// The telemetry pipeline end to end: the kTelemetry wire codec, the
// simulator's deterministic virtual-time series, and the prototype cluster's
// admin surface (/timeseries, /cluster/health, /slowlog, /trace filtering).
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/control_protocol.h"
#include "src/proto/load_generator.h"
#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/util/logging.h"

namespace lard {
namespace {

// --- wire codec ---

TEST(TelemetryCodecTest, RoundTripPreservesEveryField) {
  TelemetryMsg msg;
  msg.seq = 0x1122334455667788ull;
  msg.t_ms = 1234567890123ll;
  msg.samples.push_back({"request_rate", 1234.5});
  msg.samples.push_back({"hit_ratio", 0.875});
  msg.samples.push_back({"latency_p99_us", -0.0});
  msg.samples.push_back({"", 3.5e300});  // empty name and extreme magnitude

  TelemetryMsg decoded;
  ASSERT_TRUE(DecodeTelemetry(EncodeTelemetry(msg), &decoded));
  EXPECT_EQ(decoded.seq, msg.seq);
  EXPECT_EQ(decoded.t_ms, msg.t_ms);
  ASSERT_EQ(decoded.samples.size(), msg.samples.size());
  for (size_t i = 0; i < msg.samples.size(); ++i) {
    EXPECT_EQ(decoded.samples[i].name, msg.samples[i].name) << i;
    EXPECT_DOUBLE_EQ(decoded.samples[i].value, msg.samples[i].value) << i;
  }
}

TEST(TelemetryCodecTest, EmptySampleRowRoundTrips) {
  TelemetryMsg msg;
  msg.seq = 7;
  msg.t_ms = 42;
  TelemetryMsg decoded;
  ASSERT_TRUE(DecodeTelemetry(EncodeTelemetry(msg), &decoded));
  EXPECT_EQ(decoded.seq, 7u);
  EXPECT_EQ(decoded.t_ms, 42);
  EXPECT_TRUE(decoded.samples.empty());
}

TEST(TelemetryCodecTest, TruncatedFramesAreRejectedNotCrashed) {
  TelemetryMsg msg;
  msg.seq = 99;
  msg.t_ms = 1000;
  msg.samples.push_back({"request_rate", 10.0});
  msg.samples.push_back({"disk_queue", 2.0});
  const std::string encoded = EncodeTelemetry(msg);
  for (size_t len = 0; len < encoded.size(); ++len) {
    TelemetryMsg decoded;
    EXPECT_FALSE(DecodeTelemetry(std::string_view(encoded).substr(0, len), &decoded))
        << "prefix of length " << len << " decoded";
  }
}

TEST(TelemetryCodecTest, GarbageFramesAreRejected) {
  TelemetryMsg decoded;
  EXPECT_FALSE(DecodeTelemetry("not a telemetry frame at all", &decoded));
  // A frame whose sample count claims more rows than the payload could hold
  // must be rejected by the bound check, not allocated.
  std::string bomb(16, '\0');  // seq + t_ms
  bomb += std::string("\xff\xff\xff\xff", 4);  // sample count
  EXPECT_FALSE(DecodeTelemetry(bomb, &decoded));
}

// --- simulator twin ---

Trace SimTrace() {
  SyntheticTraceConfig config;
  config.seed = 7;
  config.num_pages = 80;
  config.num_sessions = 400;
  config.num_clients = 32;
  config.max_size_bytes = 64 * 1024;
  return GenerateSyntheticTrace(config);
}

TEST(SimTelemetryTest, VirtualTimeSeriesIsByteIdenticalAcrossRuns) {
  const Trace trace = SimTrace();
  std::string first;
  uint64_t first_samples = 0;
  for (int run = 0; run < 2; ++run) {
    ClusterSimConfig config;
    config.num_nodes = 3;
    config.telemetry_interval_us = 50000;
    ClusterSim sim(config, &trace);
    const ClusterSimMetrics metrics = sim.Run();
    EXPECT_GT(metrics.telemetry_samples, 0u);
    const std::string json = sim.TelemetryJson();
    EXPECT_NE(json.find("request_rate"), std::string::npos);
    EXPECT_NE(json.find("cache_hit_ratio"), std::string::npos);
    EXPECT_NE(json.find("active_sessions"), std::string::npos);
    if (run == 0) {
      first = json;
      first_samples = metrics.telemetry_samples;
    } else {
      // The determinism contract: same config + trace -> byte-identical
      // series, because every timestamp is virtual.
      EXPECT_EQ(json, first);
      EXPECT_EQ(metrics.telemetry_samples, first_samples);
    }
  }
}

TEST(SimTelemetryTest, DisabledByDefault) {
  const Trace trace = SimTrace();
  ClusterSimConfig config;
  config.num_nodes = 2;
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.telemetry_samples, 0u);
  EXPECT_EQ(sim.telemetry(), nullptr);
  EXPECT_EQ(sim.TelemetryJson(), "{}");
}

// --- prototype cluster admin surface ---

Trace TestTrace() {
  SyntheticTraceConfig config;
  config.seed = 42;
  config.num_pages = 60;
  config.num_sessions = 200;
  config.num_clients = 16;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

// Blocking HTTP/1.0 request against the admin API; returns "<status> <body>".
std::string AdminHttp(uint16_t port, const std::string& method, const std::string& path,
                      const std::string& body = "") {
  auto fd = ConnectTcp(port);
  if (!fd.ok()) {
    return "<connect failed>";
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  if (::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return "<send failed>";
  }
  std::string reply;
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = reply.find("\r\n");
  const size_t header_end = reply.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    return reply;
  }
  const std::string status_line = reply.substr(0, line_end);
  const size_t space = status_line.find(' ');
  return status_line.substr(space + 1, 3) + " " + reply.substr(header_end + 4);
}

TEST(ClusterTelemetryTest, AdminSurfaceServesSeriesHealthSlowlogAndTraces) {
  const Trace trace = TestTrace();
  ClusterConfig config;
  config.num_nodes = 2;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 4ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.telemetry_interval_ms = 50;
  config.tracing_enabled = true;
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 8;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_GT(result.responses_ok, 0u);
  // A few sampling intervals so both tiers tick and BE rows ship to the FE.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const uint16_t admin = cluster.admin_port();

  // /timeseries: FE series plus the mirrored BE stores.
  const std::string series = AdminHttp(admin, "GET", "/timeseries");
  EXPECT_EQ(series.substr(0, 3), "200") << series;
  EXPECT_NE(series.find("\"fe0\""), std::string::npos) << series;
  EXPECT_NE(series.find("conn_rate"), std::string::npos);
  EXPECT_NE(series.find("\"be0\""), std::string::npos) << series;
  EXPECT_NE(series.find("request_rate"), std::string::npos);

  // Component + metric filters restrict the output.
  const std::string filtered =
      AdminHttp(admin, "GET", "/timeseries?component=fe0&metric=conn&window=60000");
  EXPECT_EQ(filtered.substr(0, 3), "200") << filtered;
  EXPECT_NE(filtered.find("conn_rate"), std::string::npos);
  EXPECT_EQ(filtered.find("\"be0\""), std::string::npos) << filtered;
  EXPECT_EQ(filtered.find("wakeup_p99_us"), std::string::npos);
  EXPECT_EQ(AdminHttp(admin, "GET", "/timeseries?window=banana").substr(0, 3), "400");

  // /cluster/health: merged watchdog verdict with per-component samples. A
  // lightly loaded cluster must report ok (the bench asserts the same under
  // real load — zero false transitions).
  const std::string health = AdminHttp(admin, "GET", "/cluster/health");
  EXPECT_EQ(health.substr(0, 3), "200") << health;
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"reasons\""), std::string::npos);
  EXPECT_NE(health.find("\"be0\""), std::string::npos) << health;

  // /slowlog: runtime-tunable threshold, strict parse.
  const std::string slowlog = AdminHttp(admin, "POST", "/slowlog", "2500");
  EXPECT_EQ(slowlog.substr(0, 3), "200") << slowlog;
  EXPECT_NE(slowlog.find("\"slow_threshold_us\":2500"), std::string::npos) << slowlog;
  EXPECT_EQ(cluster.tracer()->slow_threshold_us(), 2500);
  EXPECT_EQ(AdminHttp(admin, "POST", "/slowlog", "{\"threshold_us\":9000}").substr(0, 3), "200");
  EXPECT_EQ(cluster.tracer()->slow_threshold_us(), 9000);
  EXPECT_EQ(AdminHttp(admin, "POST", "/slowlog", "soon").substr(0, 3), "400");
  EXPECT_EQ(cluster.tracer()->slow_threshold_us(), 9000);

  // /trace?component= filters rings; unknown rings 404 instead of an empty
  // trace that hides typos.
  EXPECT_EQ(AdminHttp(admin, "GET", "/trace?component=fe0").substr(0, 3), "200");
  EXPECT_EQ(AdminHttp(admin, "GET", "/trace?component=nosuchring").substr(0, 3), "404");

  cluster.Stop();
}

TEST(ClusterTelemetryTest, DisabledTelemetryKeepsEndpointsHonest) {
  const Trace trace = TestTrace();
  ClusterConfig config;
  config.num_nodes = 2;
  config.backend_cache_bytes = 4ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.telemetry_interval_ms = 0;  // off
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  const uint16_t admin = cluster.admin_port();
  const std::string series = AdminHttp(admin, "GET", "/timeseries");
  EXPECT_EQ(series.substr(0, 3), "200") << series;
  EXPECT_EQ(series.find("conn_rate"), std::string::npos) << series;
  const std::string health = AdminHttp(admin, "GET", "/cluster/health");
  EXPECT_EQ(health.substr(0, 3), "200") << health;
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;

  cluster.Stop();
}

}  // namespace
}  // namespace lard
