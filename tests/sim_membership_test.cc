// Deterministic control-plane scenarios in the discrete-event simulator:
// NodeFailure (with connection failover), NodeJoin and NodeDrain replayed at
// fixed simulated times, and run-to-run determinism of the whole scenario.
#include <gtest/gtest.h>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/util/metrics.h"

namespace lard {
namespace {

Trace TestTrace(uint64_t seed = 3) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 120;
  config.num_sessions = 400;
  config.num_clients = 32;
  config.max_size_bytes = 64 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterSimConfig BaseConfig(int nodes) {
  ClusterSimConfig config;
  config.num_nodes = nodes;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 4ull * 1024 * 1024;
  config.concurrent_sessions_per_node = 16;
  return config;
}

TEST(SimMembershipTest, NodeFailureFailsOverAndFinishesTheTrace) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = BaseConfig(4);
  config.membership_events = {{/*at_us=*/200000, MembershipAction::kNodeFailure, /*node=*/1}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();

  // Every session still completes (the CHECK inside Run guarantees it); the
  // failure is visible in the control-plane counters.
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_EQ(metrics.nodes_failed, 1u);
  EXPECT_GT(metrics.failovers, 0u) << "node 1 should have held connections at t=0.2s";
  EXPECT_EQ(metrics.dispatcher.nodes_removed, 1u);
  EXPECT_GT(metrics.dispatcher.orphaned_connections, 0u);

  // The dead node served strictly less than the survivors (it worked only
  // 0.2 simulated seconds of the run).
  const auto& failed = metrics.per_node[1];
  for (int node : {0, 2, 3}) {
    EXPECT_LT(failed.requests, metrics.per_node[static_cast<size_t>(node)].requests);
  }
}

TEST(SimMembershipTest, ScenarioIsDeterministic) {
  const Trace trace = TestTrace(17);
  auto run_once = [&trace]() {
    ClusterSimConfig config = BaseConfig(3);
    config.membership_events = {
        {100000, MembershipAction::kNodeFailure, 0},
        {150000, MembershipAction::kNodeJoin, kInvalidNode},
    };
    ClusterSim sim(config, &trace);
    return sim.Run();
  };
  const ClusterSimMetrics a = run_once();
  const ClusterSimMetrics b = run_once();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i].requests, b.per_node[i].requests) << "node " << i;
  }
}

TEST(SimMembershipTest, NodeJoinExpandsCapacityAndTakesLoad) {
  const Trace trace = TestTrace(23);
  ClusterSimConfig config = BaseConfig(2);
  config.membership_events = {{50000, MembershipAction::kNodeJoin, kInvalidNode}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.nodes_joined, 1u);
  ASSERT_EQ(metrics.per_node.size(), 3u);
  EXPECT_GT(metrics.per_node[2].requests, 0u) << "joined node took no work";
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
}

TEST(SimMembershipTest, NodeDrainShedsNewWorkOnly) {
  const Trace trace = TestTrace(29);
  ClusterSimConfig config = BaseConfig(3);
  config.membership_events = {{100000, MembershipAction::kNodeDrain, 2}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.nodes_drained, 1u);
  EXPECT_EQ(metrics.failovers, 0u);  // drain loses no connections
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  // The drained node did some work (before + during drain-out) but clearly
  // less than the nodes that stayed active.
  EXPECT_GT(metrics.per_node[2].requests, 0u);
  for (int node : {0, 1}) {
    EXPECT_LT(metrics.per_node[2].requests,
              metrics.per_node[static_cast<size_t>(node)].requests);
  }
}

TEST(SimMembershipTest, FailureDuringThinkTimesStillCompletes) {
  // A node can die while sessions are parked in think-time waits (connection
  // established, no batch outstanding); those sessions must reconnect when
  // their next batch fires instead of tripping over erased dispatcher state.
  const Trace trace = TestTrace(41);
  ClusterSimConfig config = BaseConfig(3);
  config.use_think_times = true;
  config.membership_events = {{150000, MembershipAction::kNodeFailure, 0}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_EQ(metrics.nodes_failed, 1u);
  EXPECT_GT(metrics.failovers, 0u);
}

TEST(SimMembershipTest, FailureOfWholeBatchNodePublishesMetrics) {
  MetricsRegistry registry;
  const Trace trace = TestTrace(31);
  ClusterSimConfig config = BaseConfig(3);
  config.metrics = &registry;
  config.membership_events = {{120000, MembershipAction::kNodeFailure, 1}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(registry.Counter("lard_sim_requests_total")->value(), metrics.total_requests);
  EXPECT_EQ(registry.Counter("lard_sim_failovers_total")->value(), metrics.failovers);
  EXPECT_GT(registry.Histogram("lard_sim_batch_latency_us")->count(), 0u);
}

}  // namespace
}  // namespace lard
