// End-to-end keep-alive deadline tests on the real prototype cluster: the
// front-end's timer-wheel-backed idle reaper, activity rearms, the back-end
// idle sweep's kConnClosed notification, and the POST /idletimeout runtime
// knob. Real sockets throughout — an assertion that a connection "was
// reaped" means this process observed the FIN.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace TestTrace() {
  SyntheticTraceConfig config;
  config.seed = 31;
  config.num_pages = 20;
  config.num_sessions = 40;
  config.num_clients = 8;
  config.max_size_bytes = 16 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig BaseConfig(Mechanism mechanism, int64_t fe_idle_ms, int64_t be_idle_ms) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.policy = Policy::kExtendedLard;
  config.mechanism = mechanism;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.idle_timeout_ms = fe_idle_ms;
  config.idle_close_ms = be_idle_ms;
  return config;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// True once recv() reports EOF (the server closed); false on timeout while
// the connection is still open. Consumes and discards any payload bytes.
bool WaitForEof(int fd, int64_t timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  timeval tv{};
  tv.tv_sec = 0;
  tv.tv_usec = 50 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[4096];
  while (NowMs() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      return true;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;  // RST counts as closed too
    }
  }
  return false;
}

bool SendAll(int fd, const std::string& data) {
  return ::send(fd, data.data(), data.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(data.size());
}

// One pipelined GET for the first catalog target, reading until the full
// body arrived (Content-Length honored), leaving the connection open.
bool FetchOnce(int fd, const Trace& trace) {
  const std::string path = trace.catalog().Get(0).path;
  if (!SendAll(fd, "GET " + path + " HTTP/1.1\r\nHost: cluster\r\n\r\n")) {
    return false;
  }
  std::string reply;
  char buf[8192];
  const int64_t deadline = NowMs() + 5000;
  while (NowMs() < deadline) {
    const size_t header_end = reply.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const size_t marker = reply.find("Content-Length: ");
      if (marker != std::string::npos && marker < header_end) {
        const size_t body_len =
            static_cast<size_t>(std::stoll(reply.substr(marker + 16)));
        if (reply.size() >= header_end + 4 + body_len) {
          return reply.compare(0, 12, "HTTP/1.1 200") == 0;
        }
      }
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return false;
    }
    reply.append(buf, static_cast<size_t>(n));
  }
  return false;
}

std::string AdminPost(uint16_t port, const std::string& path, const std::string& body) {
  auto fd = ConnectTcp(port);
  if (!fd.ok()) {
    return "<connect failed>";
  }
  const std::string request = "POST " + path + " HTTP/1.0\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!SendAll(fd.value().get(), request)) {
    return "<send failed>";
  }
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  return reply;
}

TEST(ProtoIdleTimeoutTest, FrontEndReapsIdleConnectionAtDeadline) {
  const Trace trace = TestTrace();
  // Relay mode: every connection stays FE-owned for life, so the FE reaper
  // alone decides its fate (the BE sweep is off).
  Cluster cluster(BaseConfig(Mechanism::kRelayingFrontEnd, 300, 0), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  // Never sends a byte: the adoption-time deadline is the only clock.
  EXPECT_TRUE(WaitForEof(fd.value().get(), 5000)) << "idle connection never reaped";
  EXPECT_GE(cluster.frontend(0).counters().idle_closes.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(cluster.frontend(0).open_conns_fe_owned(), 0);
  cluster.Stop();
}

TEST(ProtoIdleTimeoutTest, ActivityRearmsTheDeadline) {
  const Trace trace = TestTrace();
  Cluster cluster(BaseConfig(Mechanism::kRelayingFrontEnd, 600, 0), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  // Keep fetching past several multiples of the deadline: every request
  // (bytes in) and response (bytes out) must push the deadline back.
  const int64_t start = NowMs();
  while (NowMs() - start < 2000) {
    ASSERT_TRUE(FetchOnce(fd.value().get(), trace)) << "live connection reaped mid-activity";
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  // Then stop touching it: the reap lands one deadline after the last byte.
  EXPECT_TRUE(WaitForEof(fd.value().get(), 5000)) << "connection never reaped after going idle";
  EXPECT_GE(cluster.frontend(0).counters().idle_closes.load(std::memory_order_relaxed), 1u);
  cluster.Stop();
}

TEST(ProtoIdleTimeoutTest, BackEndSweepClosesAdoptedConnAndNotifiesFrontEnd) {
  const Trace trace = TestTrace();
  // Handoff mode with the FE reaper off: after the first request the conn is
  // adopted by a back-end, whose idle sweep must close it AND tell the FE
  // (kConnClosed), so the FE-side journal/bookkeeping drains too.
  Cluster cluster(BaseConfig(Mechanism::kBackEndForwarding, 0, 300), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(FetchOnce(fd.value().get(), trace));
  EXPECT_EQ(cluster.frontend(0).open_conns_handed_off(), 1);
  EXPECT_TRUE(WaitForEof(fd.value().get(), 5000)) << "adopted connection never swept";
  // The FE heard about the close: the handed-off gauge (derived from the
  // dispatcher's live-connection table) must drain to zero.
  const int64_t deadline = NowMs() + 5000;
  while (cluster.frontend(0).open_conns_handed_off() != 0 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(cluster.frontend(0).open_conns_handed_off(), 0);
  EXPECT_EQ(cluster.frontend(0).open_conns_fe_owned(), 0);
  cluster.Stop();
}

TEST(ProtoIdleTimeoutTest, RuntimeKnobAppliesAtNextArm) {
  const Trace trace = TestTrace();
  // Reaping disabled at startup.
  Cluster cluster(BaseConfig(Mechanism::kRelayingFrontEnd, 0, 0), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto idle_before = ConnectTcp(cluster.port());
  ASSERT_TRUE(idle_before.ok());
  EXPECT_FALSE(WaitForEof(idle_before.value().get(), 700))
      << "reaped with the idle timeout disabled";

  EXPECT_NE(AdminPost(cluster.admin_port(), "/idletimeout", "idle_timeout_ms=300")
                .find(" 200 "),
            std::string::npos);
  EXPECT_NE(AdminPost(cluster.admin_port(), "/idletimeout", "not a number").find(" 400 "),
            std::string::npos);

  // A connection adopted after the change arms the new deadline...
  auto adopted_after = ConnectTcp(cluster.port());
  ASSERT_TRUE(adopted_after.ok());
  EXPECT_TRUE(WaitForEof(adopted_after.value().get(), 5000))
      << "new connection not reaped under the runtime-set deadline";

  // ...while the pre-change conn (no timer armed: the knob was 0 at adopt)
  // stays open until its next byte of activity arms one.
  EXPECT_FALSE(WaitForEof(idle_before.value().get(), 200));
  ASSERT_TRUE(SendAll(idle_before.value().get(), "GET "));  // partial request = activity
  EXPECT_TRUE(WaitForEof(idle_before.value().get(), 5000))
      << "touched connection never armed the runtime deadline";

  EXPECT_GE(cluster.frontend(0).counters().idle_closes.load(std::memory_order_relaxed), 2u);
  cluster.Stop();
}

}  // namespace
}  // namespace lard
