// End-to-end tests of the reverse-handoff path: a draining or admin-removed
// back-end gives its in-flight persistent connections back to the front-end
// (kHandback with no target), the dispatcher reassigns them
// (ReassignConnection), and the front-end re-handoffs them to surviving
// nodes — with zero client-visible resets, and with the simulator's
// deterministic NodeDrain twin reporting the same migration semantics.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/http/response_parser.h"
#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace TestTrace(uint64_t seed = 42, int sessions = 300) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 60;
  config.num_sessions = sessions;
  config.num_clients = 16;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig BaseConfig(int nodes, Policy policy = Policy::kExtendedLard,
                         Mechanism mechanism = Mechanism::kBackEndForwarding) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.policy = policy;
  config.mechanism = mechanism;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 2000;
  config.retire_grace_ms = 1500;
  return config;
}

// One serialized GET on an existing socket; returns the parsed response.
bool RoundTrip(int fd, const std::string& path, HttpResponse* response) {
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return false;
  }
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  char buf[16384];
  while (responses.empty()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return false;
    }
    if (parser.Feed(std::string_view(buf, static_cast<size_t>(n)), &responses) ==
        ResponseParser::State::kError) {
      return false;
    }
  }
  *response = responses[0];
  return true;
}

// Blocking HTTP/1.0 request against the admin API; returns the whole reply.
std::string AdminHttp(uint16_t port, const std::string& method, const std::string& path) {
  auto fd = ConnectTcp(port);
  if (!fd.ok()) {
    return "<connect failed>";
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return "<send failed>";
  }
  std::string reply;
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  return reply;
}

bool WaitFor(const std::function<bool()>& predicate, int64_t timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

TEST(ProtoRehandoffTest, IdleKeepAliveConnectionsMigrateOffDrainedNodes) {
  // Deterministic version of the rolling drain: six idle keep-alive
  // connections spread over three nodes; draining nodes 1 and 2 must migrate
  // their connections to node 0 and every connection must keep working with
  // zero client-visible resets.
  const Trace trace = TestTrace(7);
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  constexpr size_t kConns = 6;
  std::vector<UniqueFd> fds;
  for (size_t i = 0; i < kConns; ++i) {
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    HttpResponse response;
    // Distinct cold targets rotate round-robin across the nodes.
    ASSERT_TRUE(RoundTrip(fd.value().get(), trace.catalog().Get(i).path, &response))
        << "conn " << i;
    EXPECT_EQ(response.status, 200);
    fds.push_back(std::move(fd.value()));
  }

  ASSERT_TRUE(cluster.DrainNode(1));
  ASSERT_TRUE(cluster.DrainNode(2));

  // The drained nodes' idle connections come home and get re-handed-off.
  ASSERT_TRUE(WaitFor([&]() { return cluster.Snapshot().rehandoffs >= 3; }))
      << "only " << cluster.Snapshot().rehandoffs << " re-handoffs";

  // Every connection — migrated or not — still serves correctly on the same
  // socket: the drain was invisible to the clients.
  for (size_t i = 0; i < kConns; ++i) {
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(fds[i].get(), trace.catalog().Get(i + kConns).path, &response))
        << "conn " << i << " died across the drain";
    EXPECT_EQ(response.status, 200) << "conn " << i;
    EXPECT_EQ(response.body.size(), trace.catalog().Get(i + kConns).size_bytes) << "conn " << i;
  }

  cluster.Stop();
  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_GE(snapshot.drain_handbacks, snapshot.rehandoffs);
  // The FE's re-handoff count and the dispatcher's reassignment count are the
  // same events seen from the two layers.
  EXPECT_EQ(snapshot.rehandoffs, cluster.frontend().dispatcher().counters().reassignments);
}

TEST(ProtoRehandoffTest, DrainUnderLoadMigratesWithZeroResets) {
  // Sustained load-generator traffic while two of three nodes drain: every
  // request must still be answered correctly on its original connection.
  const Trace trace = TestTrace(11, 400);
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadResult result;
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = 8;
    load.recv_timeout_ms = 5000;
    result = RunLoad(load, trace);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(cluster.DrainNode(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(cluster.DrainNode(2));
  load_thread.join();

  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);

  cluster.Stop();
  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_GT(snapshot.rehandoffs, 0u) << "drain should have migrated live connections";
  EXPECT_GT(snapshot.drain_handbacks, 0u);
  EXPECT_EQ(snapshot.rehandoffs, cluster.frontend().dispatcher().counters().reassignments);
}

TEST(ProtoRehandoffTest, SingleHandoffAutonomousConnectionsAlsoMigrate) {
  // The giveback path is mechanism-agnostic: WRR over single handoff
  // (autonomous connections, no per-request consults) migrates too.
  const Trace trace = TestTrace(13);
  Cluster cluster(BaseConfig(2, Policy::kWrr, Mechanism::kSingleHandoff), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  std::vector<UniqueFd> fds;
  for (size_t i = 0; i < 4; ++i) {
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(fd.value().get(), trace.catalog().Get(i).path, &response));
    fds.push_back(std::move(fd.value()));
  }
  ASSERT_TRUE(cluster.DrainNode(0));
  ASSERT_TRUE(WaitFor([&]() { return cluster.Snapshot().rehandoffs >= 2; }));
  for (size_t i = 0; i < fds.size(); ++i) {
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(fds[i].get(), trace.catalog().Get(i + 4).path, &response))
        << "conn " << i;
    EXPECT_EQ(response.status, 200);
  }
  cluster.Stop();
}

TEST(ProtoRehandoffTest, GracefulRemoveMigratesThenRemoves) {
  // Admin remove of a live node: its connections must migrate (retire) before
  // the node disappears, and the node must actually end up dead.
  const Trace trace = TestTrace(17);
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  std::vector<UniqueFd> fds;
  for (size_t i = 0; i < 6; ++i) {
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(fd.value().get(), trace.catalog().Get(i).path, &response));
    fds.push_back(std::move(fd.value()));
  }

  ASSERT_TRUE(cluster.RemoveNode(1));
  // Retirement completes once the node's connections migrated away (well
  // before the grace period).
  ASSERT_TRUE(WaitFor([&]() {
    return cluster.metrics()->Gauge("lard_cluster_active_nodes")->value() <= 2.0 &&
           cluster.Snapshot().rehandoffs >= 2;
  }));
  ASSERT_TRUE(WaitFor([&]() {
    return AdminHttp(cluster.admin_port(), "GET", "/nodes")
               .find("\"id\":1,\"state\":\"dead\"") != std::string::npos;
  })) << AdminHttp(cluster.admin_port(), "GET", "/nodes");

  // No client saw the removal.
  for (size_t i = 0; i < fds.size(); ++i) {
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(fds[i].get(), trace.catalog().Get(i + 6).path, &response))
        << "conn " << i << " died across the graceful remove";
    EXPECT_EQ(response.status, 200);
  }
  EXPECT_EQ(cluster.Snapshot().auto_removals, 0u) << "retire must not count as a failure";
  cluster.Stop();
}

TEST(ProtoRehandoffTest, SimNodeDrainMigratesInsteadOfPinning) {
  // The simulator's NodeDrain twin: draining migrates connections (rehandoffs
  // > 0, counted identically by the sim and the shared dispatcher) and loses
  // none (failovers == 0), and the drained node goes fully idle afterwards.
  const Trace trace = TestTrace(23, 500);
  ClusterSimConfig config;
  config.num_nodes = 3;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.concurrent_sessions_per_node = 16;
  config.membership_events = {{100000, MembershipAction::kNodeDrain, 1}};
  ClusterSim sim(config, &trace);
  const ClusterSimMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_EQ(metrics.nodes_drained, 1u);
  EXPECT_EQ(metrics.failovers, 0u);
  EXPECT_GT(metrics.rehandoffs, 0u) << "drain must migrate the node's connections";
  // The same migrations seen from the sim layer and the shared dispatcher.
  EXPECT_EQ(metrics.rehandoffs, metrics.dispatcher.reassignments);
}

TEST(ProtoRehandoffTest, SimAndPrototypeDrainCountersAgreeInShape) {
  // Sim and prototype replay the same one-drain scenario; both must report
  // the migration through the same counter pair (rehandoffs ==
  // dispatcher.reassignments > 0) — the acceptance criterion that the two
  // implementations of NodeDrain share semantics.
  const Trace trace = TestTrace(29, 300);

  // Prototype. Three pinned keep-alive connections (one lands on each node —
  // cold targets rotate) guarantee the drained node holds a migratable
  // connection regardless of load timing.
  Cluster cluster(BaseConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<UniqueFd> pinned;
  for (size_t i = 0; i < 3; ++i) {
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(fd.value().get(), trace.catalog().Get(i).path, &response));
    pinned.push_back(std::move(fd.value()));
  }
  LoadResult result;
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = 8;
    load.recv_timeout_ms = 5000;
    result = RunLoad(load, trace);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(cluster.DrainNode(1));
  load_thread.join();
  ASSERT_TRUE(WaitFor([&]() { return cluster.Snapshot().rehandoffs >= 1; }));
  // The pinned connections survived the drain on their original sockets.
  for (size_t i = 0; i < pinned.size(); ++i) {
    HttpResponse response;
    ASSERT_TRUE(RoundTrip(pinned[i].get(), trace.catalog().Get(i + 3).path, &response))
        << "pinned conn " << i;
    EXPECT_EQ(response.status, 200);
  }
  pinned.clear();
  cluster.Stop();
  const ClusterSnapshot snapshot = cluster.Snapshot();
  const uint64_t prototype_reassignments =
      cluster.frontend().dispatcher().counters().reassignments;

  // Simulator.
  ClusterSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.policy = Policy::kExtendedLard;
  sim_config.mechanism = Mechanism::kBackEndForwarding;
  sim_config.backend_cache_bytes = 2ull * 1024 * 1024;
  sim_config.concurrent_sessions_per_node = 16;
  sim_config.membership_events = {{100000, MembershipAction::kNodeDrain, 1}};
  ClusterSim sim(sim_config, &trace);
  const ClusterSimMetrics sim_metrics = sim.Run();

  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_GT(snapshot.rehandoffs, 0u);
  EXPECT_EQ(snapshot.rehandoffs, prototype_reassignments);
  EXPECT_GT(sim_metrics.rehandoffs, 0u);
  EXPECT_EQ(sim_metrics.rehandoffs, sim_metrics.dispatcher.reassignments);
  EXPECT_EQ(sim_metrics.failovers, 0u);
}

}  // namespace
}  // namespace lard
