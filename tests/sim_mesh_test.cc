// Replicated-front-end-tier simulator tests: the mesh run completes with its
// invariants intact (unique connection ownership, monotone epochs, load
// conservation), gossip actually flows, membership events replay on every
// replica, and the shared capacity-weight validator rejects bad joins.
#include <gtest/gtest.h>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace TestTrace(int sessions = 1200) {
  SyntheticTraceConfig config;
  config.seed = 7;
  config.num_pages = 150;
  config.num_sessions = sessions;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterSimConfig MeshConfig(int frontends, int nodes = 4) {
  ClusterSimConfig config;
  config.num_nodes = nodes;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 4ull * 1024 * 1024;
  config.concurrent_sessions_per_node = 16;
  config.num_frontends = frontends;
  config.gossip_interval_us = 2000;
  return config;
}

void ExpectMeshInvariants(const ClusterSimMetrics& metrics) {
  EXPECT_EQ(metrics.ownership_violations, 0u) << "a connection was claimed by two dispatchers";
  EXPECT_EQ(metrics.mesh_epoch_regressions, 0u);
  // Membership events hit every replica at the same simulated instant, so
  // gossiped membership/weight beliefs must always agree.
  EXPECT_EQ(metrics.gossip_divergent_deltas, 0u);
  EXPECT_TRUE(metrics.mesh_epochs_converged);
  EXPECT_TRUE(metrics.mesh_load_conserved)
      << "a replica finished with leftover load or open connections";
}

TEST(SimMeshTest, TwoFrontEndsServeTheWholeTraceWithInvariantsIntact) {
  const Trace trace = TestTrace();
  ClusterSim sim(MeshConfig(2), &trace);
  const ClusterSimMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.total_connections, trace.sessions().size());
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_EQ(metrics.dispatcher.requests, trace.total_requests());
  EXPECT_EQ(metrics.frontends, 2);
  ASSERT_EQ(metrics.per_fe_utilization.size(), 2u);
  EXPECT_GT(metrics.gossip_rounds, 0u);
  EXPECT_GT(metrics.gossip_deltas_applied, 0u);
  EXPECT_GT(metrics.gossip_bytes, 0u);
  EXPECT_EQ(metrics.gossip_stale_drops, 0u);  // in-order channels never reorder
  ExpectMeshInvariants(metrics);

  // Both replicas must have taken a meaningful share of the sessions.
  EXPECT_GT(metrics.per_fe_utilization[0], 0.0);
  EXPECT_GT(metrics.per_fe_utilization[1], 0.0);
}

TEST(SimMeshTest, SingleFrontEndConfigMatchesLegacyBehaviour) {
  const Trace trace = TestTrace(600);
  // num_frontends = 1 must not change anything relative to a config that
  // never heard of the mesh — same decisions, same totals, no gossip.
  ClusterSimConfig legacy = MeshConfig(1);
  legacy.gossip_interval_us = 999999;  // irrelevant with one FE
  const ClusterSimMetrics a = ClusterSim(legacy, &trace).Run();
  const ClusterSimMetrics b = ClusterSim(MeshConfig(1), &trace).Run();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.dispatcher.handoffs, b.dispatcher.handoffs);
  EXPECT_EQ(a.dispatcher.forwards, b.dispatcher.forwards);
  EXPECT_EQ(a.dispatcher.local_serves, b.dispatcher.local_serves);
  EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
  EXPECT_EQ(a.gossip_rounds, 0u);
  EXPECT_EQ(b.gossip_rounds, 0u);
}

TEST(SimMeshTest, MembershipEventsReplayOnEveryReplica) {
  const Trace trace = TestTrace();
  ClusterSimConfig config = MeshConfig(2, 3);
  config.membership_events.push_back({30000, MembershipAction::kNodeJoin, kInvalidNode, 2.0, 2.0});
  config.membership_events.push_back({60000, MembershipAction::kNodeDrain, 1});
  config.membership_events.push_back({90000, MembershipAction::kNodeFailure, 2});
  const ClusterSimMetrics metrics = ClusterSim(config, &trace).Run();

  EXPECT_EQ(metrics.nodes_joined, 1u);
  EXPECT_EQ(metrics.nodes_drained, 1u);
  EXPECT_EQ(metrics.nodes_failed, 1u);
  // Each of the two dispatchers performed the same three mutations.
  EXPECT_EQ(metrics.dispatcher.nodes_added, 2u);
  EXPECT_EQ(metrics.dispatcher.nodes_drained, 2u);
  EXPECT_EQ(metrics.dispatcher.nodes_removed, 2u);
  ExpectMeshInvariants(metrics);
}

TEST(SimMeshTest, InvalidJoinWeightIsRejectedNotFatal) {
  const Trace trace = TestTrace(300);
  ClusterSimConfig config = MeshConfig(2, 2);
  MembershipEvent bad;
  bad.at_us = 10000;
  bad.action = MembershipAction::kNodeJoin;
  bad.weight = -2.0;  // IsValidCapacityWeight says no
  bad.speed = 1.0;
  config.membership_events.push_back(bad);
  MembershipEvent bad_speed;
  bad_speed.at_us = 20000;
  bad_speed.action = MembershipAction::kNodeJoin;
  bad_speed.weight = 1.0;
  bad_speed.speed = 0.0;
  config.membership_events.push_back(bad_speed);
  const ClusterSimMetrics metrics = ClusterSim(config, &trace).Run();

  EXPECT_EQ(metrics.nodes_joined, 0u);
  EXPECT_EQ(metrics.rejected_membership_events, 2u);
  EXPECT_EQ(metrics.dispatcher.nodes_added, 0u);
  ExpectMeshInvariants(metrics);
}

TEST(SimMeshTest, FourFrontEndsStillConserveEverything) {
  const Trace trace = TestTrace(800);
  const ClusterSimMetrics metrics = ClusterSim(MeshConfig(4, 6), &trace).Run();
  EXPECT_EQ(metrics.total_connections, trace.sessions().size());
  EXPECT_EQ(metrics.frontends, 4);
  ASSERT_EQ(metrics.per_fe_utilization.size(), 4u);
  ExpectMeshInvariants(metrics);
}

}  // namespace
}  // namespace lard
