#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/clf.h"
#include "src/trace/session_builder.h"

namespace lard {
namespace {

TEST(ClfTimestampTest, ParsesUtc) {
  auto ts = ParseClfTimestamp("10/Oct/1999:13:55:36 +0000");
  ASSERT_TRUE(ts.ok());
  // 1999-10-10T13:55:36Z = 939563736 epoch seconds.
  EXPECT_EQ(ts.value(), 939563736ll * 1000000);
}

TEST(ClfTimestampTest, AppliesTimezoneOffset) {
  auto utc = ParseClfTimestamp("10/Oct/1999:13:55:36 +0000");
  auto behind = ParseClfTimestamp("10/Oct/1999:07:55:36 -0600");
  ASSERT_TRUE(utc.ok());
  ASSERT_TRUE(behind.ok());
  EXPECT_EQ(utc.value(), behind.value());
}

TEST(ClfTimestampTest, RoundTrips) {
  const int64_t ts = 939563736ll * 1000000;
  auto parsed = ParseClfTimestamp(FormatClfTimestamp(ts));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), ts);
}

TEST(ClfTimestampTest, RejectsGarbage) {
  EXPECT_FALSE(ParseClfTimestamp("not a timestamp").ok());
  EXPECT_FALSE(ParseClfTimestamp("32/Oct/1999:13:55:36 +0000").ok());
  EXPECT_FALSE(ParseClfTimestamp("10/Foo/1999:13:55:36 +0000").ok());
}

TEST(ClfLineTest, ParsesCanonicalLine) {
  auto record =
      ParseClfLine("boffin.cs.rice.edu - - [10/Oct/1999:13:55:36 +0000] "
                   "\"GET /class/comp320/foo.html HTTP/1.0\" 200 2326");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->client_host, "boffin.cs.rice.edu");
  EXPECT_EQ(record->method, "GET");
  EXPECT_EQ(record->path, "/class/comp320/foo.html");
  EXPECT_EQ(record->status, 200);
  EXPECT_EQ(record->response_bytes, 2326u);
}

TEST(ClfLineTest, DashByteCountIsZero) {
  auto record = ParseClfLine(
      "h - - [10/Oct/1999:13:55:36 +0000] \"GET /x HTTP/1.0\" 304 -");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->response_bytes, 0u);
  EXPECT_EQ(record->status, 304);
}

TEST(ClfLineTest, RoundTripsThroughFormatter) {
  ClfRecord record;
  record.client_host = "client42";
  record.timestamp_us = 939563736ll * 1000000;
  record.method = "GET";
  record.path = "/a/b.gif";
  record.status = 200;
  record.response_bytes = 1234;
  auto reparsed = ParseClfLine(FormatClfLine(record));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->client_host, record.client_host);
  EXPECT_EQ(reparsed->timestamp_us, record.timestamp_us);
  EXPECT_EQ(reparsed->path, record.path);
  EXPECT_EQ(reparsed->response_bytes, record.response_bytes);
}

TEST(ClfLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseClfLine("").ok());
  EXPECT_FALSE(ParseClfLine("host").ok());
  EXPECT_FALSE(ParseClfLine("host - - no timestamp \"GET / HTTP/1.0\" 200 1").ok());
  EXPECT_FALSE(ParseClfLine("host - - [10/Oct/1999:13:55:36 +0000] \"BAD\" 200 1").ok());
  EXPECT_FALSE(
      ParseClfLine("host - - [10/Oct/1999:13:55:36 +0000] \"GET / HTTP/1.0\" abc 1").ok());
}

TEST(ClfStreamTest, SkipsBadLinesAndCounts) {
  std::istringstream in(
      "h1 - - [10/Oct/1999:13:55:36 +0000] \"GET /a HTTP/1.0\" 200 10\n"
      "garbage line\n"
      "h2 - - [10/Oct/1999:13:55:37 +0000] \"GET /b HTTP/1.0\" 200 20\n");
  size_t skipped = 0;
  const auto records = ParseClfStream(in, &skipped);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(skipped, 1u);
}

// --- Session builder: the paper's 60 s / 1 s heuristic ---

ClfRecord MakeRecord(const std::string& host, int64_t t_seconds, const std::string& path,
                     uint64_t bytes = 100, int status = 200) {
  ClfRecord record;
  record.client_host = host;
  record.timestamp_us = t_seconds * 1000000;
  record.method = "GET";
  record.path = path;
  record.status = status;
  record.response_bytes = bytes;
  return record;
}

TEST(SessionBuilderTest, GroupsWithinIdleGap) {
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 0, "/a"),
      MakeRecord("c1", 30, "/b"),   // 30 s gap -> same connection
      MakeRecord("c1", 120, "/c"),  // 90 s gap -> new connection
  };
  const Trace trace = BuildSessions(records, SessionBuilderConfig{});
  ASSERT_EQ(trace.sessions().size(), 2u);
  EXPECT_EQ(trace.sessions()[0].total_requests(), 2u);
  EXPECT_EQ(trace.sessions()[1].total_requests(), 1u);
}

TEST(SessionBuilderTest, SeparatesClients) {
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 0, "/a"),
      MakeRecord("c2", 1, "/b"),
      MakeRecord("c1", 2, "/c"),
  };
  const Trace trace = BuildSessions(records, SessionBuilderConfig{});
  ASSERT_EQ(trace.sessions().size(), 2u);
  size_t total = 0;
  for (const auto& session : trace.sessions()) {
    total += session.total_requests();
  }
  EXPECT_EQ(total, 3u);
}

TEST(SessionBuilderTest, FirstRequestIsItsOwnBatch) {
  // /a at t=0; /b,/c at t=10 within the batch window of each other.
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 0, "/a"),
      MakeRecord("c1", 10, "/b"),
      MakeRecord("c1", 10, "/c"),
  };
  const Trace trace = BuildSessions(records, SessionBuilderConfig{});
  ASSERT_EQ(trace.sessions().size(), 1u);
  const TraceSession& session = trace.sessions()[0];
  ASSERT_EQ(session.batches.size(), 2u);
  EXPECT_EQ(session.batches[0].targets.size(), 1u);
  EXPECT_EQ(session.batches[1].targets.size(), 2u);
}

TEST(SessionBuilderTest, BatchWindowSplits) {
  SessionBuilderConfig config;
  config.batch_window_us = 1 * 1000000;
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 0, "/a"),
      MakeRecord("c1", 5, "/b"),
      MakeRecord("c1", 10, "/c"),  // 5 s gaps: each its own batch
  };
  const Trace trace = BuildSessions(records, config);
  ASSERT_EQ(trace.sessions().size(), 1u);
  EXPECT_EQ(trace.sessions()[0].batches.size(), 3u);
}

TEST(SessionBuilderTest, DropsErrorsAndNonGets) {
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 0, "/a"),
      MakeRecord("c1", 1, "/missing", 0, 404),
      MakeRecord("c1", 2, "/redir", 0, 302),
  };
  ClfRecord post = MakeRecord("c1", 3, "/form");
  post.method = "POST";
  records.push_back(post);
  const Trace trace = BuildSessions(records, SessionBuilderConfig{});
  EXPECT_EQ(trace.total_requests(), 1u);
}

TEST(SessionBuilderTest, UnsortedInputIsSorted) {
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 10, "/b"),
      MakeRecord("c1", 0, "/a"),
  };
  const Trace trace = BuildSessions(records, SessionBuilderConfig{});
  ASSERT_EQ(trace.sessions().size(), 1u);
  ASSERT_EQ(trace.sessions()[0].batches.size(), 2u);
  // /a (t=0) must come first.
  const TargetId first = trace.sessions()[0].batches[0].targets[0];
  EXPECT_EQ(trace.catalog().Get(first).path, "/a");
}

// Parameterized sweep: the idle gap controls connection granularity.
class SessionGapTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SessionGapTest, GapBoundaryRespected) {
  const int64_t gap_s = GetParam();
  SessionBuilderConfig config;
  config.connection_idle_gap_us = gap_s * 1000000;
  std::vector<ClfRecord> records = {
      MakeRecord("c1", 0, "/a"),
      MakeRecord("c1", gap_s - 1, "/b"),  // inside the gap
      MakeRecord("c1", 2 * gap_s + 10, "/c"),  // outside
  };
  const Trace trace = BuildSessions(records, config);
  EXPECT_EQ(trace.sessions().size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Gaps, SessionGapTest, ::testing::Values(5, 15, 60, 300));

}  // namespace
}  // namespace lard
