// Integration tests of TCP multiple handoff in the prototype: a back-end
// flushes its responses, detaches the client socket, and hands it back to the
// front-end for migration to the node the dispatcher chose — the Section 7.2
// design the paper sketched but did not build.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include "src/http/http_message.h"
#include "src/http/request_parser.h"
#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace MigrationProneTrace(uint64_t seed = 5) {
  // Big working set + small caches + busy disks => the extended LARD policy
  // must move requests off the handling node.
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 200;
  config.num_sessions = 300;
  config.max_size_bytes = 64 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig MultiHandoffConfig(int nodes) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kMultipleHandoff;
  config.backend_cache_bytes = 1ull * 1024 * 1024;
  config.disk_time_scale = 0.05;
  config.params.low_disk_queue_threshold = 1;  // migrate aggressively
  return config;
}

TEST(ProtoMultiHandoffTest, ServesWholeTraceWithMigrations) {
  const Trace trace = MigrationProneTrace();
  Cluster cluster(MultiHandoffConfig(3), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 16;
  const LoadResult result = RunLoad(load, trace);
  const ClusterSnapshot snapshot = cluster.Snapshot();
  cluster.Stop();

  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_GT(snapshot.migrations, 0u) << "expected real connection migrations";
  // Multiple handoff never uses the lateral-fetch path.
  EXPECT_EQ(snapshot.lateral_out, 0u);
}

TEST(ProtoMultiHandoffTest, PipelinedBatchSurvivesMigration) {
  // One connection, pipelined requests spanning a migration: every response
  // must come back in order and byte-correct even though the socket changes
  // owning node mid-stream.
  const Trace trace = MigrationProneTrace(11);
  Cluster cluster(MultiHandoffConfig(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 8;
  const LoadResult warm = RunLoad(load, trace);  // warm caches, force spread
  ASSERT_EQ(warm.responses_bad, 0u);

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  std::string burst;
  const size_t kDepth = 24;
  for (size_t i = 0; i < kDepth; ++i) {
    // Stripe across many pages so the dispatcher wants different nodes.
    const TargetId target = static_cast<TargetId>((i * 97) % trace.catalog().size());
    burst += "GET " + trace.catalog().Get(target).path + " HTTP/1.1\r\n";
    if (i + 1 == kDepth) {
      burst += "Connection: close\r\n";
    }
    burst += "\r\n";
  }
  ASSERT_GT(::send(fd.value().get(), burst.data(), burst.size(), 0), 0);

  std::string wire;
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    wire.append(buf, static_cast<size_t>(n));
  }
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  ASSERT_NE(parser.Feed(wire, &responses), ResponseParser::State::kError);
  ASSERT_EQ(responses.size(), kDepth);
  for (size_t i = 0; i < kDepth; ++i) {
    const TargetId target = static_cast<TargetId>((i * 97) % trace.catalog().size());
    const Target& entry = trace.catalog().Get(target);
    EXPECT_EQ(responses[i].status, 200) << "response " << i;
    EXPECT_EQ(responses[i].body.size(), entry.size_bytes) << "response " << i;
    EXPECT_EQ(responses[i].body.rfind(entry.path, 0), 0u) << "response " << i << " out of order";
  }
  cluster.Stop();
}

TEST(ProtoMultiHandoffTest, RequestsSerializeRoundTrip) {
  // The hand-back replays unserved requests by re-serializing them; verify
  // Serialize -> parse is the identity on the fields that matter.
  HttpRequest request;
  request.method = "GET";
  request.path = "/dir/doc.html";
  request.version = HttpVersion::kHttp11;
  request.headers.Add("Host", "cluster");
  request.headers.Add("X-Custom", "v1");

  RequestParser parser;
  std::vector<HttpRequest> parsed;
  ASSERT_EQ(parser.Feed(request.Serialize(), &parsed), RequestParser::State::kNeedMore);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].method, "GET");
  EXPECT_EQ(parsed[0].path, "/dir/doc.html");
  EXPECT_EQ(parsed[0].version, HttpVersion::kHttp11);
  EXPECT_EQ(*parsed[0].headers.Find("Host"), "cluster");
  EXPECT_EQ(*parsed[0].headers.Find("X-Custom"), "v1");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(ProtoMultiHandoffTest, BodyBearingRequestSurvivesReplay) {
  HttpRequest request;
  request.method = "POST";
  request.path = "/form";
  request.body = "k=v&x=1";

  RequestParser parser;
  std::vector<HttpRequest> parsed;
  parser.Feed(request.Serialize(), &parsed);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].body, "k=v&x=1");
}

TEST(ProtoMultiHandoffTest, Http10StillWorksUnderMultiHandoffConfig) {
  // HTTP/1.0 connections carry one request: no migration can trigger, but
  // the configuration must still serve correctly.
  const Trace trace = MigrationProneTrace(13);
  Cluster cluster(MultiHandoffConfig(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 8;
  load.http10 = true;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  cluster.Stop();
}

}  // namespace
}  // namespace lard
