// SLO watchdog burn-rate semantics: escalation through degraded to critical,
// damped recovery (clear_hold), flap resistance, and the lock-free
// OverloadState mirror.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/obs/slo_watchdog.h"

namespace lard {
namespace {

SloRule Rule(const std::string& input, double ceiling, int fast_window = 4, int slow_window = 10,
             double fast_burn = 0.5, double slow_burn = 0.5, int clear_hold = 3) {
  SloRule rule;
  rule.name = input + "_rule";
  rule.input = input;
  rule.ceiling = ceiling;
  rule.fast_window = fast_window;
  rule.slow_window = slow_window;
  rule.fast_burn = fast_burn;
  rule.slow_burn = slow_burn;
  rule.clear_hold = clear_hold;
  return rule;
}

using Inputs = std::map<std::string, double>;

TEST(SloWatchdogTest, StaysOkBelowCeiling) {
  SloWatchdog watchdog("test", {Rule("p99", 100.0)});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(watchdog.Evaluate({{"p99", 50.0}}), HealthStatus::kOk);
  }
  EXPECT_EQ(watchdog.transitions(), 0u);
  EXPECT_DOUBLE_EQ(watchdog.overload().pressure.load(), 0.0);
}

TEST(SloWatchdogTest, FastWindowEscalatesToDegraded) {
  // fast_window 4, fast_burn 0.5: two violating ticks trip the fast window.
  SloWatchdog watchdog("test", {Rule("p99", 100.0)});
  EXPECT_EQ(watchdog.Evaluate({{"p99", 500.0}}), HealthStatus::kOk);
  EXPECT_EQ(watchdog.Evaluate({{"p99", 500.0}}), HealthStatus::kDegraded);
  EXPECT_EQ(watchdog.status(), HealthStatus::kDegraded);
  EXPECT_EQ(watchdog.transitions(), 1u);
  EXPECT_GT(watchdog.overload().pressure.load(), 0.0);
}

TEST(SloWatchdogTest, SustainedBurnEscalatesToCritical) {
  // Violations must also cover slow_burn of the slow window (10 ticks) for
  // critical: 5 violating ticks.
  SloWatchdog watchdog("test", {Rule("p99", 100.0)});
  HealthStatus status = HealthStatus::kOk;
  int ticks_to_critical = 0;
  for (int i = 0; i < 10 && status != HealthStatus::kCritical; ++i) {
    status = watchdog.Evaluate({{"p99", 500.0}});
    ++ticks_to_critical;
  }
  EXPECT_EQ(status, HealthStatus::kCritical);
  EXPECT_EQ(ticks_to_critical, 5);
  EXPECT_EQ(watchdog.transitions(), 2u);  // ok -> degraded -> critical
}

TEST(SloWatchdogTest, RecoveryIsDampedByClearHold) {
  SloWatchdog watchdog("test", {Rule("p99", 100.0)});
  watchdog.Evaluate({{"p99", 500.0}});
  watchdog.Evaluate({{"p99", 500.0}});
  ASSERT_EQ(watchdog.status(), HealthStatus::kDegraded);
  // The two violations keep the fast window hot (2/4 >= 0.5) for the next
  // two ticks, then clear_hold 3 must elapse: four clean ticks stay degraded.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(watchdog.Evaluate({{"p99", 10.0}}), HealthStatus::kDegraded) << i;
  }
  // Fifth clean tick completes the hold and releases.
  EXPECT_EQ(watchdog.Evaluate({{"p99", 10.0}}), HealthStatus::kOk);
  EXPECT_EQ(watchdog.transitions(), 2u);  // up once, down once
}

TEST(SloWatchdogTest, BoundaryRidingSignalDoesNotFlapEveryTick) {
  // Bursty signal: two violating ticks then three clean, repeating. The raw
  // verdict oscillates, but the clean streak never reaches clear_hold 3, so
  // the status latches degraded after the first trip — one transition in 40
  // ticks, not one per burst.
  SloWatchdog watchdog("test", {Rule("p99", 100.0)});
  for (int i = 0; i < 40; ++i) {
    watchdog.Evaluate({{"p99", (i % 5 < 2) ? 500.0 : 10.0}});
  }
  EXPECT_EQ(watchdog.status(), HealthStatus::kDegraded);
  EXPECT_EQ(watchdog.transitions(), 1u);
}

TEST(SloWatchdogTest, MissingInputsCountClean) {
  SloWatchdog watchdog("test", {Rule("p99", 100.0)});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(watchdog.Evaluate({}), HealthStatus::kOk);
  }
  // A warm-up with no data must never trip a rule.
  EXPECT_EQ(watchdog.transitions(), 0u);
}

TEST(SloWatchdogTest, WorstRuleWins) {
  SloWatchdog watchdog("test", {Rule("a", 100.0), Rule("b", 1.0)});
  // Only "b" violates; merged status follows it while "a" stays clean.
  watchdog.Evaluate({{"a", 5.0}, {"b", 2.0}});
  watchdog.Evaluate({{"a", 5.0}, {"b", 2.0}});
  EXPECT_EQ(watchdog.status(), HealthStatus::kDegraded);
  const std::string reasons = watchdog.ReasonsJson();
  EXPECT_NE(reasons.find("\"rule\":\"b_rule\""), std::string::npos);
  EXPECT_NE(reasons.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(reasons.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(reasons.find("\"ceiling\":1"), std::string::npos);
}

TEST(SloWatchdogTest, ReasonsJsonListsEveryRuleUpfront) {
  SloWatchdog watchdog("test", {Rule("x", 10.0), Rule("y", 20.0)});
  const std::string reasons = watchdog.ReasonsJson();
  EXPECT_EQ(reasons.front(), '[');
  EXPECT_EQ(reasons.back(), ']');
  EXPECT_NE(reasons.find("x_rule"), std::string::npos);
  EXPECT_NE(reasons.find("y_rule"), std::string::npos);
}

}  // namespace
}  // namespace lard
