// Robustness and edge-case tests of the prototype cluster: abrupt client
// disconnects, idle-timeout sweeping, pipelined bursts, relaying mode under
// concurrency, and keep-alive semantics over real sockets.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <thread>

#include "src/http/response_parser.h"
#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace SmallTrace(uint64_t seed = 42) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 30;
  config.num_sessions = 40;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig FastCluster(int nodes, Policy policy = Policy::kExtendedLard,
                          Mechanism mechanism = Mechanism::kBackEndForwarding) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.policy = policy;
  config.mechanism = mechanism;
  config.backend_cache_bytes = 4ull * 1024 * 1024;
  config.disk_time_scale = 0.01;
  return config;
}

// Reads until EOF or `want` bytes of parsed responses arrive.
std::string ReadAll(int fd) {
  std::string out;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

TEST(ProtoRobustnessTest, AbruptClientDisconnectMidResponse) {
  const Trace trace = SmallTrace();
  Cluster cluster(FastCluster(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // Open, send a request, and slam the connection shut without reading.
  for (int i = 0; i < 20; ++i) {
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    const std::string request = "GET " + trace.catalog().Get(0).path + " HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd.value().get(), request.data(), request.size(), 0), 0);
    fd.value().Reset();  // RST/EOF towards the cluster
  }
  // The cluster must still serve a well-behaved client correctly.
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 4;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  cluster.Stop();
}

TEST(ProtoRobustnessTest, GarbageRequestGets400) {
  const Trace trace = SmallTrace();
  Cluster cluster(FastCluster(1), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  const std::string garbage = "NOT-HTTP AT ALL\r\n\r\n";
  ASSERT_GT(::send(fd.value().get(), garbage.data(), garbage.size(), 0), 0);
  const std::string reply = ReadAll(fd.value().get());
  EXPECT_NE(reply.find("400"), std::string::npos);
  cluster.Stop();
}

TEST(ProtoRobustnessTest, PartialFirstBatchNeverCrashesTheFrontEnd) {
  // Regression: a first batch that parses to zero complete requests (a slow
  // or garbage client trickling bytes) must never reach the dispatcher's
  // non-empty-batch invariants and abort the front-end — the degenerate
  // batch gets a 400/close (or simply waits for more bytes) while the
  // cluster keeps serving everyone else.
  const Trace trace = SmallTrace();
  Cluster cluster(FastCluster(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // A mix of slow clients: a bare partial request line, a partial header
  // block, and a lone CRLF, each left dangling and then closed.
  for (const std::string& fragment :
       {std::string("GET /page0.html"), std::string("GET /page0.html HTTP/1.1\r\nHost: x"),
        std::string("\r\n")}) {
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    ASSERT_GT(::send(fd.value().get(), fragment.data(), fragment.size(), MSG_NOSIGNAL), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fd.value().Reset();  // abandon mid-request
  }

  // The front-end survived and still serves a well-behaved workload.
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 4;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  cluster.Stop();
}

TEST(ProtoRobustnessTest, IdleConnectionsSweptByServerTimeout) {
  const Trace trace = SmallTrace();
  ClusterConfig config = FastCluster(1);
  config.idle_close_ms = 150;  // aggressive idle close for the test
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  const std::string request = "GET " + trace.catalog().Get(0).path + " HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd.value().get(), request.data(), request.size(), 0), 0);
  // The server answers, then (after the idle window) closes: ReadAll
  // returning proves we got EOF rather than hanging forever.
  const std::string reply = ReadAll(fd.value().get());
  EXPECT_NE(reply.find("200"), std::string::npos);
  cluster.Stop();
}

TEST(ProtoRobustnessTest, DeepPipelineOneWrite) {
  // Many requests in a single write: responses must all arrive, in order.
  const Trace trace = SmallTrace();
  Cluster cluster(FastCluster(2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  std::string burst;
  const int kDepth = 32;
  for (int i = 0; i < kDepth; ++i) {
    const TargetId target = static_cast<TargetId>(i % trace.catalog().size());
    burst += "GET " + trace.catalog().Get(target).path + " HTTP/1.1\r\n";
    if (i + 1 == kDepth) {
      burst += "Connection: close\r\n";
    }
    burst += "\r\n";
  }
  ASSERT_GT(::send(fd.value().get(), burst.data(), burst.size(), 0), 0);
  const std::string wire = ReadAll(fd.value().get());
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  ASSERT_EQ(parser.Feed(wire, &responses), ResponseParser::State::kNeedMore);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kDepth));
  for (int i = 0; i < kDepth; ++i) {
    const TargetId target = static_cast<TargetId>(i % trace.catalog().size());
    const Target& entry = trace.catalog().Get(target);
    EXPECT_EQ(responses[static_cast<size_t>(i)].body.size(), entry.size_bytes) << "response " << i;
    // In-order: each body's header names its own path.
    EXPECT_EQ(responses[static_cast<size_t>(i)].body.rfind(entry.path, 0), 0u) << "response " << i;
  }
  cluster.Stop();
}

TEST(ProtoRobustnessTest, RelayModeUnderConcurrency) {
  const Trace trace = SmallTrace(9);
  Cluster cluster(FastCluster(3, Policy::kExtendedLard, Mechanism::kRelayingFrontEnd),
                  &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 12;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(cluster.Snapshot().requests_served, trace.total_requests());
  cluster.Stop();
}

TEST(ProtoRobustnessTest, Http10ConnectionClosesAfterResponse) {
  const Trace trace = SmallTrace();
  Cluster cluster(FastCluster(1), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  const std::string request = "GET " + trace.catalog().Get(0).path + " HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd.value().get(), request.data(), request.size(), 0), 0);
  const std::string wire = ReadAll(fd.value().get());  // EOF proves close
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  parser.Feed(wire, &responses);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].version, HttpVersion::kHttp10);
  ASSERT_NE(responses[0].headers.Find("Connection"), nullptr);
  EXPECT_EQ(*responses[0].headers.Find("Connection"), "close");
  cluster.Stop();
}

TEST(ProtoRobustnessTest, ManySmallClustersStartAndStop) {
  // Lifecycle churn: no leaked threads/fds preventing restarts.
  const Trace trace = SmallTrace();
  for (int round = 0; round < 5; ++round) {
    Cluster cluster(FastCluster(2), &trace.catalog());
    ASSERT_TRUE(cluster.Start().ok());
    auto fd = ConnectTcp(cluster.port());
    ASSERT_TRUE(fd.ok());
    cluster.Stop();
  }
}

// Keep-alive across policies, parameterized.
class ProtoPolicyParamTest : public ::testing::TestWithParam<Policy> {};

TEST_P(ProtoPolicyParamTest, SequentialKeepAliveRequests) {
  const Trace trace = SmallTrace(17);
  const Mechanism mechanism = GetParam() == Policy::kExtendedLard
                                  ? Mechanism::kBackEndForwarding
                                  : Mechanism::kSingleHandoff;
  Cluster cluster(FastCluster(2, GetParam(), mechanism), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());

  ResponseParser parser;
  for (int i = 0; i < 5; ++i) {
    const TargetId target = static_cast<TargetId>(i);
    const std::string request =
        "GET " + trace.catalog().Get(target).path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_GT(::send(fd.value().get(), request.data(), request.size(), 0), 0);
    std::vector<HttpResponse> responses;
    char buf[16384];
    while (responses.empty()) {
      const ssize_t n = ::recv(fd.value().get(), buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "connection died mid keep-alive sequence";
      ASSERT_NE(parser.Feed(std::string_view(buf, static_cast<size_t>(n)), &responses),
                ResponseParser::State::kError);
    }
    EXPECT_EQ(responses[0].status, 200);
    EXPECT_EQ(responses[0].body.size(), trace.catalog().Get(target).size_bytes);
  }
  cluster.Stop();
}

INSTANTIATE_TEST_SUITE_P(Policies, ProtoPolicyParamTest,
                         ::testing::Values(Policy::kWrr, Policy::kLard, Policy::kExtendedLard));

}  // namespace
}  // namespace lard
