#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <thread>

#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/fd.h"
#include "src/net/framed_channel.h"
#include "src/net/socket.h"

namespace lard {
namespace {

// Helper: run a loop on a thread, with setup/teardown marshalled onto it.
class LoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    thread_ = std::thread([this]() { loop_.Run(); });
  }
  void TearDown() override {
    loop_.Stop();
    thread_.join();
  }
  // Runs fn on the loop thread, waits for completion.
  void OnLoop(std::function<void()> fn) {
    std::promise<void> done;
    loop_.Post([&]() {
      fn();
      done.set_value();
    });
    done.get_future().wait();
  }

  EventLoop loop_;
  std::thread thread_;
};

TEST(UniqueFdTest, ClosesOnDestruction) {
  int raw;
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    UniqueFd a(fds[0]);
    UniqueFd b(fds[1]);
    raw = fds[0];
    EXPECT_TRUE(a.valid());
  }
  // fd should now be closed: fcntl fails.
  EXPECT_EQ(::fcntl(raw, F_GETFD), -1);
}

TEST(UniqueFdTest, MoveTransfersOwnership) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd a(fds[0]);
  UniqueFd b(fds[1]);
  UniqueFd moved = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.get(), fds[0]);
}

TEST(SocketTest, ListenConnectRoundTrip) {
  uint16_t port = 0;
  auto listener = ListenTcp(0, &port);
  ASSERT_TRUE(listener.ok());
  ASSERT_NE(port, 0);
  auto client = ConnectTcp(port);
  ASSERT_TRUE(client.ok());
  const int accepted = ::accept(listener.value().get(), nullptr, nullptr);
  ASSERT_GE(accepted, 0);
  UniqueFd server(accepted);
  ASSERT_EQ(::send(client.value().get(), "ping", 4, 0), 4);
  char buf[8] = {0};
  ASSERT_EQ(::recv(server.get(), buf, sizeof(buf), 0), 4);
  EXPECT_STREQ(buf, "ping");
}

TEST(SocketTest, UnixPairIsConnected) {
  auto pair = UnixPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(::send(pair.value().first.get(), "x", 1, 0), 1);
  char c = 0;
  ASSERT_EQ(::recv(pair.value().second.get(), &c, 1, 0), 1);
  EXPECT_EQ(c, 'x');
}

TEST_F(LoopFixture, PostRunsOnLoopThread) {
  std::promise<bool> in_loop;
  loop_.Post([&]() { in_loop.set_value(loop_.IsInLoopThread()); });
  EXPECT_TRUE(in_loop.get_future().get());
  EXPECT_FALSE(loop_.IsInLoopThread());
}

TEST_F(LoopFixture, TimerFires) {
  std::promise<void> fired;
  OnLoop([&]() { loop_.ScheduleAfterMs(10, [&]() { fired.set_value(); }); });
  EXPECT_EQ(fired.get_future().wait_for(std::chrono::seconds(5)), std::future_status::ready);
}

TEST_F(LoopFixture, CancelledTimerDoesNotFire) {
  std::atomic<bool> fired{false};
  OnLoop([&]() {
    const EventLoop::TimerId id = loop_.ScheduleAfterMs(20, [&]() { fired.store(true); });
    loop_.CancelTimer(id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(fired.load());
}

TEST_F(LoopFixture, ConnectionEchoes) {
  auto pair = UnixPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().first.get(), true).ok());
  UniqueFd outside = std::move(pair.value().second);

  std::unique_ptr<Connection> conn;
  OnLoop([&]() {
    conn = std::make_unique<Connection>(&loop_, std::move(pair.value().first));
    conn->set_on_data([&](std::string_view data) { conn->Write(data); });  // echo
    conn->Start();
  });
  ASSERT_EQ(::send(outside.get(), "hello", 5, 0), 5);
  char buf[8] = {0};
  ssize_t n = 0;
  for (int attempt = 0; attempt < 100 && n <= 0; ++attempt) {
    n = ::recv(outside.get(), buf, sizeof(buf), MSG_DONTWAIT);
    if (n <= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(n, 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  OnLoop([&]() { conn.reset(); });
}

TEST_F(LoopFixture, ConnectionDetachShipsUnconsumedBytes) {
  auto pair = UnixPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().first.get(), true).ok());
  UniqueFd outside = std::move(pair.value().second);

  std::unique_ptr<Connection> conn;
  std::promise<Connection::Detached> detached_promise;
  OnLoop([&]() {
    conn = std::make_unique<Connection>(&loop_, std::move(pair.value().first));
    conn->set_on_data([&](std::string_view data) {
      // Consume the first 4 bytes, push back the rest, then detach.
      conn->PushBack(data.substr(4));
      detached_promise.set_value(conn->Detach());
    });
    conn->Start();
  });
  ASSERT_EQ(::send(outside.get(), "headTAIL", 8, 0), 8);
  Connection::Detached detached = detached_promise.get_future().get();
  EXPECT_EQ(detached.unconsumed_input, "TAIL");
  ASSERT_TRUE(detached.fd.valid());
  // The detached fd is still the live socket: the peer can keep talking.
  ASSERT_EQ(::send(outside.get(), "more", 4, 0), 4);
  char buf[8] = {0};
  ssize_t n = -1;
  for (int attempt = 0; attempt < 100 && n <= 0; ++attempt) {
    n = ::recv(detached.fd.get(), buf, sizeof(buf), MSG_DONTWAIT);
    if (n <= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_EQ(n, 4);
  EXPECT_EQ(std::string(buf, 4), "more");
  OnLoop([&]() { conn.reset(); });
}

TEST_F(LoopFixture, FramedChannelRoundTrip) {
  auto pair = UnixPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().first.get(), true).ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().second.get(), true).ok());

  std::unique_ptr<FramedChannel> a;
  std::unique_ptr<FramedChannel> b;
  std::promise<std::pair<uint8_t, std::string>> received;
  OnLoop([&]() {
    a = std::make_unique<FramedChannel>(&loop_, std::move(pair.value().first));
    b = std::make_unique<FramedChannel>(&loop_, std::move(pair.value().second));
    b->set_on_message([&](uint8_t type, std::string payload, UniqueFd) {
      received.set_value({type, std::move(payload)});
    });
    a->Start();
    b->Start();
    a->Send(7, "payload bytes");
  });
  const auto [type, payload] = received.get_future().get();
  EXPECT_EQ(type, 7);
  EXPECT_EQ(payload, "payload bytes");
  OnLoop([&]() {
    a.reset();
    b.reset();
  });
}

TEST_F(LoopFixture, FramedChannelPassesFd) {
  auto pair = UnixPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().first.get(), true).ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().second.get(), true).ok());

  // The fd we pass: one end of a pipe; we verify by writing through it.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  UniqueFd read_end(pipe_fds[0]);

  std::unique_ptr<FramedChannel> a;
  std::unique_ptr<FramedChannel> b;
  std::promise<UniqueFd> received_fd;
  OnLoop([&]() {
    a = std::make_unique<FramedChannel>(&loop_, std::move(pair.value().first));
    b = std::make_unique<FramedChannel>(&loop_, std::move(pair.value().second));
    b->set_on_message([&](uint8_t, std::string, UniqueFd fd) {
      received_fd.set_value(std::move(fd));
    });
    a->Start();
    b->Start();
    a->SendWithFd(1, "handoff", UniqueFd(pipe_fds[1]));
  });
  UniqueFd write_end = received_fd.get_future().get();
  ASSERT_TRUE(write_end.valid());
  ASSERT_EQ(::write(write_end.get(), "via-scm", 7), 7);
  char buf[16] = {0};
  ASSERT_EQ(::read(read_end.get(), buf, sizeof(buf)), 7);
  EXPECT_EQ(std::string(buf, 7), "via-scm");
  OnLoop([&]() {
    a.reset();
    b.reset();
  });
}

TEST_F(LoopFixture, FramedChannelInterleavesManyMessages) {
  auto pair = UnixPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().first.get(), true).ok());
  ASSERT_TRUE(SetNonBlocking(pair.value().second.get(), true).ok());

  constexpr int kMessages = 500;
  std::unique_ptr<FramedChannel> a;
  std::unique_ptr<FramedChannel> b;
  std::promise<void> all_received;
  std::atomic<int> count{0};
  std::atomic<bool> in_order{true};
  OnLoop([&]() {
    a = std::make_unique<FramedChannel>(&loop_, std::move(pair.value().first));
    b = std::make_unique<FramedChannel>(&loop_, std::move(pair.value().second));
    b->set_on_message([&](uint8_t, std::string payload, UniqueFd) {
      const int expected = count.fetch_add(1);
      const std::string prefix = "msg" + std::to_string(expected) + ";";
      if (payload.rfind(prefix, 0) != 0) {
        in_order.store(false);
      }
      if (expected + 1 == kMessages) {
        all_received.set_value();
      }
    });
    a->Start();
    b->Start();
    for (int i = 0; i < kMessages; ++i) {
      // Mix small and large payloads to force partial writes and fragmented
      // frames on the receive side.
      std::string payload = "msg" + std::to_string(i) + ";";
      if (i % 7 == 0) {
        payload.append(60000, '#');
      }
      a->Send(2, payload);
    }
  });
  ASSERT_EQ(all_received.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(in_order.load());
  OnLoop([&]() {
    a.reset();
    b.reset();
  });
}

}  // namespace
}  // namespace lard
