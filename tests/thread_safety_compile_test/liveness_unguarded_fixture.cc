// Negative lint fixture: a posted lambda capturing `this` without
// LivenessToken::Guard. tools/lint/concurrency_lint.py MUST flag this file
// (the `concurrency_lint_negative` ctest runs the linter over it and expects
// a nonzero exit). The clang analysis cannot see this class of bug — lifetime
// of a queued closure vs. its owner — which is exactly why the linter exists.
#include <functional>

struct EventLoop {
  void Post(std::function<void()> task);
};

struct Widget {
  void Poke() {
    loop_->Post([this]() { ++pokes_; });  // outlives `this` if Widget dies first
  }
  EventLoop* loop_ = nullptr;
  int pokes_ = 0;
};
