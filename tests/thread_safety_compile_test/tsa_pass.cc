// Positive thread-safety fixture: correct use of the annotated primitives
// must compile cleanly under -Wthread-safety -Werror=thread-safety. If this
// file stops compiling, the annotation macros themselves broke — the paired
// negative fixture (tsa_guarded_field_fail.cc) is then meaningless.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    lard::MutexLock lock(&mutex_);
    balance_ += amount;
  }

  int balance() const {
    lard::MutexLock lock(&mutex_);
    return balance_;
  }

  void DepositLocked(int amount) LARD_REQUIRES(mutex_) { balance_ += amount; }

  void DepositTwice(int amount) LARD_EXCLUDES(mutex_) {
    mutex_.Lock();
    DepositLocked(amount);
    DepositLocked(amount);
    mutex_.Unlock();
  }

 private:
  mutable lard::Mutex mutex_;
  int balance_ LARD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.DepositTwice(2);
  return account.balance() == 5 ? 0 : 1;
}
