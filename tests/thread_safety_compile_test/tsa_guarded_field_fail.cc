// Negative thread-safety fixture: reading and writing a LARD_GUARDED_BY
// field without holding its mutex. This file MUST FAIL to compile under
// clang with -Wthread-safety -Werror=thread-safety — the build asserts that
// via try_compile (see CMakeLists.txt). If it ever compiles, the analysis
// has silently stopped enforcing the annotations.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Account {
 public:
  // Both the write and the read touch balance_ with mutex_ unheld.
  void Deposit(int amount) { balance_ += amount; }
  int balance() const { return balance_; }

 private:
  mutable lard::Mutex mutex_;
  int balance_ LARD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance();
}
