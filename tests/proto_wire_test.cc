#include <gtest/gtest.h>

#include "src/proto/content_store.h"
#include "src/proto/control_protocol.h"
#include "src/proto/wire.h"

namespace lard {
namespace {

// --- WireWriter / WireReader ---

TEST(WireTest, ScalarsRoundTrip) {
  WireWriter writer;
  writer.U8(7);
  writer.U32(0xdeadbeef);
  writer.U64(0x0123456789abcdefull);
  writer.Str("hello");

  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.U8(), 7);
  EXPECT_EQ(reader.U32(), 0xdeadbeefu);
  EXPECT_EQ(reader.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.Str(), "hello");
  EXPECT_TRUE(reader.Complete());
}

TEST(WireTest, EmptyStringRoundTrips) {
  WireWriter writer;
  writer.Str("");
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.Str(), "");
  EXPECT_TRUE(reader.Complete());
}

TEST(WireTest, TruncatedReadFails) {
  WireWriter writer;
  writer.U64(42);
  WireReader reader(std::string_view(writer.bytes()).substr(0, 5));
  reader.U64();
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Complete());
}

TEST(WireTest, TrailingBytesMeanIncomplete) {
  WireWriter writer;
  writer.U8(1);
  writer.U8(2);
  WireReader reader(writer.bytes());
  reader.U8();
  EXPECT_TRUE(reader.ok());
  EXPECT_FALSE(reader.Complete());
}

TEST(WireTest, BadStringLengthFailsCleanly) {
  WireWriter writer;
  writer.U32(1000);  // claims 1000 bytes, provides none
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.Str(), "");
  EXPECT_FALSE(reader.ok());
}

// --- Control protocol messages ---

TEST(ControlProtocolTest, HandoffRoundTrips) {
  HandoffMsg msg;
  msg.conn_id = 0x1122334455667788ull;
  msg.autonomous = true;
  RequestDirective local;
  local.path = "/a.html";
  msg.directives.push_back(local);
  RequestDirective lateral;
  lateral.action = DirectiveAction::kLateral;
  lateral.path = "/__be2/b.gif";
  lateral.cache_after_miss = false;
  msg.directives.push_back(lateral);
  RequestDirective migrate;
  migrate.action = DirectiveAction::kMigrate;
  migrate.node = 3;
  migrate.path = "/c.html";
  msg.directives.push_back(migrate);
  msg.unparsed_input = "GET /partial HTT";

  HandoffMsg decoded;
  ASSERT_TRUE(DecodeHandoff(EncodeHandoff(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, msg.conn_id);
  EXPECT_EQ(decoded.autonomous, true);
  ASSERT_EQ(decoded.directives.size(), 3u);
  EXPECT_EQ(decoded.directives[0].action, DirectiveAction::kLocal);
  EXPECT_EQ(decoded.directives[0].path, "/a.html");
  EXPECT_TRUE(decoded.directives[0].cache_after_miss);
  EXPECT_EQ(decoded.directives[1].action, DirectiveAction::kLateral);
  EXPECT_EQ(decoded.directives[1].path, "/__be2/b.gif");
  EXPECT_FALSE(decoded.directives[1].cache_after_miss);
  EXPECT_EQ(decoded.directives[2].action, DirectiveAction::kMigrate);
  EXPECT_EQ(decoded.directives[2].node, 3);
  EXPECT_EQ(decoded.unparsed_input, "GET /partial HTT");
}

TEST(ControlProtocolTest, ConsultRoundTrips) {
  ConsultMsg msg;
  msg.conn_id = 99;
  msg.disk_queue_len = 7;
  msg.paths = {"/x", "/y", "/z"};
  ConsultMsg decoded;
  ASSERT_TRUE(DecodeConsult(EncodeConsult(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 99u);
  EXPECT_EQ(decoded.disk_queue_len, 7u);
  EXPECT_EQ(decoded.paths, msg.paths);
}

TEST(ControlProtocolTest, AssignmentsRoundTrips) {
  AssignmentsMsg msg;
  msg.conn_id = 3;
  RequestDirective directive;
  directive.path = "/p";
  directive.cache_after_miss = false;
  msg.directives.push_back(directive);
  AssignmentsMsg decoded;
  ASSERT_TRUE(DecodeAssignments(EncodeAssignments(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 3u);
  ASSERT_EQ(decoded.directives.size(), 1u);
  EXPECT_FALSE(decoded.directives[0].cache_after_miss);
}

TEST(ControlProtocolTest, HandbackRoundTrips) {
  HandbackMsg msg;
  msg.conn_id = 77;
  msg.target_node = 2;
  RequestDirective first;
  first.path = "/moved.html";
  msg.directives.push_back(first);
  msg.replay_input = "GET /moved.html HTTP/1.1\r\n\r\nGET /nex";
  HandbackMsg decoded;
  ASSERT_TRUE(DecodeHandback(EncodeHandback(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 77u);
  EXPECT_EQ(decoded.target_node, 2);
  ASSERT_EQ(decoded.directives.size(), 1u);
  EXPECT_EQ(decoded.directives[0].path, "/moved.html");
  EXPECT_EQ(decoded.replay_input, msg.replay_input);
}

TEST(ControlProtocolTest, GivebackHandbackRoundTripsInvalidTarget) {
  // The drain/retire giveback flavour: target kInvalidNode (the front-end
  // reassigns), empty directives, just the fd's unconsumed parser bytes.
  HandbackMsg msg;
  msg.conn_id = 91;
  msg.target_node = kInvalidNode;
  msg.replay_input = "GET /half-a-req";
  HandbackMsg decoded;
  decoded.target_node = 5;  // must be overwritten
  ASSERT_TRUE(DecodeHandback(EncodeHandback(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 91u);
  EXPECT_EQ(decoded.target_node, kInvalidNode);
  EXPECT_TRUE(decoded.directives.empty());
  EXPECT_EQ(decoded.replay_input, "GET /half-a-req");
}

TEST(ControlProtocolTest, GivebackHandbackCarriesPendingDirectives) {
  // A giveback can still carry batch-1 directives waiting on a partial
  // request; they must survive the trip untouched.
  HandbackMsg msg;
  msg.conn_id = 7;
  msg.target_node = kInvalidNode;
  RequestDirective pending;
  pending.action = DirectiveAction::kLateral;
  pending.node = 3;
  pending.path = "/__be3/shared.html";
  pending.cache_after_miss = false;
  msg.directives.push_back(pending);
  HandbackMsg decoded;
  ASSERT_TRUE(DecodeHandback(EncodeHandback(msg), &decoded));
  ASSERT_EQ(decoded.directives.size(), 1u);
  EXPECT_EQ(decoded.directives[0].action, DirectiveAction::kLateral);
  EXPECT_EQ(decoded.directives[0].node, 3);
  EXPECT_EQ(decoded.directives[0].path, "/__be3/shared.html");
  EXPECT_FALSE(decoded.directives[0].cache_after_miss);
}

TEST(ControlProtocolTest, DrainPayloadScalarRoundTrips) {
  // kDrain carries a reserved u32 flags word; today it is always zero.
  uint32_t flags = 0xdeadbeef;
  ASSERT_TRUE(DecodeU32(EncodeU32(0), &flags));
  EXPECT_EQ(flags, 0u);
  // A truncated payload fails cleanly (the back-end drains regardless but
  // must not read past the buffer).
  EXPECT_FALSE(DecodeU32(std::string_view("\x01", 1), &flags));
}

TEST(ControlProtocolTest, DecodeRejectsBadDirectiveAction) {
  HandoffMsg msg;
  msg.conn_id = 1;
  RequestDirective directive;
  directive.path = "/a";
  msg.directives.push_back(directive);
  std::string encoded = EncodeHandoff(msg);
  // Corrupt the action byte (first byte after conn_id u64 + autonomous u8 +
  // count u32).
  encoded[8 + 1 + 4] = 9;
  HandoffMsg decoded;
  EXPECT_FALSE(DecodeHandoff(encoded, &decoded));
}

TEST(ControlProtocolTest, ScalarsRoundTrip) {
  uint64_t v64 = 0;
  ASSERT_TRUE(DecodeU64(EncodeU64(12345678901234ull), &v64));
  EXPECT_EQ(v64, 12345678901234ull);
  uint32_t v32 = 0;
  ASSERT_TRUE(DecodeU32(EncodeU32(77), &v32));
  EXPECT_EQ(v32, 77u);
}

TEST(ControlProtocolTest, DecodeRejectsTruncation) {
  HandoffMsg msg;
  msg.conn_id = 1;
  RequestDirective directive;
  directive.path = "/a";
  msg.directives.push_back(directive);
  const std::string encoded = EncodeHandoff(msg);
  HandoffMsg decoded;
  EXPECT_FALSE(DecodeHandoff(std::string_view(encoded).substr(0, encoded.size() - 3), &decoded));
  uint64_t v = 0;
  EXPECT_FALSE(DecodeU64("abc", &v));
}

TEST(ControlProtocolTest, HeartbeatRoundTrips) {
  HeartbeatMsg msg;
  msg.seq = 0x123456789abcull;
  msg.disk_queue_len = 17;
  msg.active_conns = 42;
  HeartbeatMsg decoded;
  ASSERT_TRUE(DecodeHeartbeat(EncodeHeartbeat(msg), &decoded));
  EXPECT_EQ(decoded.seq, msg.seq);
  EXPECT_EQ(decoded.disk_queue_len, 17u);
  EXPECT_EQ(decoded.active_conns, 42u);
}

// --- Decoder robustness: truncations and garbage against every decoder ---

// Valid encodings of every control message, used as truncation baselines.
std::vector<std::string> ValidEncodings() {
  HandoffMsg handoff;
  handoff.conn_id = 7;
  RequestDirective directive;
  directive.action = DirectiveAction::kLateral;
  directive.path = "/__be1/x.html";
  handoff.directives = {directive, directive};
  handoff.unparsed_input = "GET /tail";

  HandbackMsg handback;
  handback.conn_id = 8;
  handback.target_node = 1;
  handback.directives = {directive};
  handback.replay_input = "GET /y HTTP/1.1\r\n\r\n";

  ConsultMsg consult;
  consult.conn_id = 9;
  consult.disk_queue_len = 3;
  consult.paths = {"/a", "/b", "/c"};

  AssignmentsMsg assignments;
  assignments.conn_id = 10;
  assignments.directives = {directive};

  HeartbeatMsg heartbeat;
  heartbeat.seq = 11;

  return {EncodeHandoff(handoff), EncodeHandback(handback),   EncodeConsult(consult),
          EncodeAssignments(assignments), EncodeHeartbeat(heartbeat), EncodeU64(12),
          EncodeU32(13)};
}

// Runs every decoder over `payload`; none may crash, over-read, or report
// success-plus-garbage for inputs the encoders cannot produce.
void DecodeWithAll(std::string_view payload) {
  HandoffMsg handoff;
  (void)DecodeHandoff(payload, &handoff);
  HandbackMsg handback;
  (void)DecodeHandback(payload, &handback);
  ConsultMsg consult;
  (void)DecodeConsult(payload, &consult);
  AssignmentsMsg assignments;
  (void)DecodeAssignments(payload, &assignments);
  HeartbeatMsg heartbeat;
  (void)DecodeHeartbeat(payload, &heartbeat);
  uint64_t v64;
  (void)DecodeU64(payload, &v64);
  uint32_t v32;
  (void)DecodeU32(payload, &v32);
}

TEST(ControlProtocolRobustnessTest, EveryPrefixOfEveryMessageFailsCleanly) {
  const std::vector<std::string> encodings = ValidEncodings();
  for (size_t msg = 0; msg < encodings.size(); ++msg) {
    const std::string& encoded = encodings[msg];
    for (size_t len = 0; len < encoded.size(); ++len) {
      const std::string_view prefix(encoded.data(), len);
      // A strict prefix of message type T must never decode as T (all our
      // messages have fixed trailing fields, so Complete() cannot hold).
      DecodeWithAll(prefix);
      if (msg == 0) {
        HandoffMsg handoff;
        EXPECT_FALSE(DecodeHandoff(prefix, &handoff)) << "prefix length " << len;
      }
      if (msg == 2) {
        ConsultMsg consult;
        EXPECT_FALSE(DecodeConsult(prefix, &consult)) << "prefix length " << len;
      }
    }
  }
}

TEST(ControlProtocolRobustnessTest, DeterministicGarbageNeverCrashes) {
  // xorshift-ish deterministic byte soup, many lengths, all decoders.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next_byte = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<char>(state & 0xff);
  };
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const size_t len = (round * 7) % 96;
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(next_byte());
    }
    DecodeWithAll(garbage);
  }
}

TEST(ControlProtocolRobustnessTest, HugeDeclaredCountsFailFast) {
  // A handoff whose directive count claims 2^20-1 entries but carries no
  // bytes must fail before reserving gigabytes.
  WireWriter writer;
  writer.U64(1);                  // conn_id
  writer.U8(0);                   // autonomous
  writer.U32((1u << 20) - 1);     // directive count, no directive bytes
  HandoffMsg handoff;
  EXPECT_FALSE(DecodeHandoff(writer.bytes(), &handoff));
  EXPECT_TRUE(handoff.directives.empty());

  WireWriter consult_writer;
  consult_writer.U64(1);          // conn_id
  consult_writer.U32(0);          // disk queue
  consult_writer.U32(0xffffffff); // path count
  ConsultMsg consult;
  EXPECT_FALSE(DecodeConsult(consult_writer.bytes(), &consult));
  EXPECT_TRUE(consult.paths.empty());
}

TEST(ControlProtocolRobustnessTest, FlippedBytesNeverDecodeOutOfRangeActions) {
  // Flip each byte of a valid handoff in turn: decode either fails or yields
  // only in-range directive actions (the decoders' validation contract).
  HandoffMsg msg;
  msg.conn_id = 5;
  RequestDirective directive;
  directive.path = "/p.html";
  msg.directives = {directive};
  const std::string encoded = EncodeHandoff(msg);
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string mutated = encoded;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    HandoffMsg decoded;
    if (DecodeHandoff(mutated, &decoded)) {
      for (const RequestDirective& d : decoded.directives) {
        EXPECT_LE(static_cast<uint8_t>(d.action),
                  static_cast<uint8_t>(DirectiveAction::kMigrate));
      }
    }
  }
}

TEST(ControlProtocolRobustnessTest, TrailingJunkIsRejected) {
  // Each decoder must reject its own valid encoding with a byte appended
  // (framing guarantees exact payloads; Complete() enforces it).
  const std::vector<std::string> encodings = ValidEncodings();
  HandoffMsg handoff;
  EXPECT_FALSE(DecodeHandoff(encodings[0] + "!", &handoff));
  HandbackMsg handback;
  EXPECT_FALSE(DecodeHandback(encodings[1] + "!", &handback));
  ConsultMsg consult;
  EXPECT_FALSE(DecodeConsult(encodings[2] + "!", &consult));
  AssignmentsMsg assignments;
  EXPECT_FALSE(DecodeAssignments(encodings[3] + "!", &assignments));
  HeartbeatMsg heartbeat;
  EXPECT_FALSE(DecodeHeartbeat(encodings[4] + "!", &heartbeat));
  uint64_t v64;
  EXPECT_FALSE(DecodeU64(encodings[5] + "!", &v64));
  uint32_t v32;
  EXPECT_FALSE(DecodeU32(encodings[6] + "!", &v32));
}

// --- ContentStore ---

TEST(ContentStoreTest, BodyMatchesExpectedHelper) {
  TargetCatalog catalog;
  const TargetId id = catalog.Intern("/page1/index.html", 4096);
  ContentStore store(&catalog);
  const std::string body = store.BodyFor(id);
  EXPECT_EQ(body.size(), 4096u);
  EXPECT_EQ(body, ContentStore::ExpectedBody("/page1/index.html", 4096));
  // Header prefix embeds path and size.
  EXPECT_EQ(body.rfind("/page1/index.html#4096#", 0), 0u);
}

TEST(ContentStoreTest, DifferentPathsDifferentBodies) {
  EXPECT_NE(ContentStore::ExpectedBody("/a", 256), ContentStore::ExpectedBody("/b", 256));
}

TEST(ContentStoreTest, TinyBodyTruncatesHeader) {
  const std::string body = ContentStore::ExpectedBody("/long/path/name.html", 4);
  EXPECT_EQ(body.size(), 4u);
  EXPECT_EQ(body, "/lon");
}

TEST(ContentStoreTest, ZeroSizeBody) {
  EXPECT_TRUE(ContentStore::ExpectedBody("/x", 0).empty());
}

TEST(ContentStoreTest, ResolveFindsAndMisses) {
  TargetCatalog catalog;
  catalog.Intern("/exists", 10);
  ContentStore store(&catalog);
  EXPECT_NE(store.Resolve("/exists"), kInvalidTarget);
  EXPECT_EQ(store.Resolve("/missing"), kInvalidTarget);
}

}  // namespace
}  // namespace lard
