#include <gtest/gtest.h>

#include "src/proto/content_store.h"
#include "src/proto/control_protocol.h"
#include "src/proto/wire.h"

namespace lard {
namespace {

// --- WireWriter / WireReader ---

TEST(WireTest, ScalarsRoundTrip) {
  WireWriter writer;
  writer.U8(7);
  writer.U32(0xdeadbeef);
  writer.U64(0x0123456789abcdefull);
  writer.Str("hello");

  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.U8(), 7);
  EXPECT_EQ(reader.U32(), 0xdeadbeefu);
  EXPECT_EQ(reader.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.Str(), "hello");
  EXPECT_TRUE(reader.Complete());
}

TEST(WireTest, EmptyStringRoundTrips) {
  WireWriter writer;
  writer.Str("");
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.Str(), "");
  EXPECT_TRUE(reader.Complete());
}

TEST(WireTest, TruncatedReadFails) {
  WireWriter writer;
  writer.U64(42);
  WireReader reader(std::string_view(writer.bytes()).substr(0, 5));
  reader.U64();
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Complete());
}

TEST(WireTest, TrailingBytesMeanIncomplete) {
  WireWriter writer;
  writer.U8(1);
  writer.U8(2);
  WireReader reader(writer.bytes());
  reader.U8();
  EXPECT_TRUE(reader.ok());
  EXPECT_FALSE(reader.Complete());
}

TEST(WireTest, BadStringLengthFailsCleanly) {
  WireWriter writer;
  writer.U32(1000);  // claims 1000 bytes, provides none
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.Str(), "");
  EXPECT_FALSE(reader.ok());
}

// --- Control protocol messages ---

TEST(ControlProtocolTest, HandoffRoundTrips) {
  HandoffMsg msg;
  msg.conn_id = 0x1122334455667788ull;
  msg.autonomous = true;
  RequestDirective local;
  local.path = "/a.html";
  msg.directives.push_back(local);
  RequestDirective lateral;
  lateral.action = DirectiveAction::kLateral;
  lateral.path = "/__be2/b.gif";
  lateral.cache_after_miss = false;
  msg.directives.push_back(lateral);
  RequestDirective migrate;
  migrate.action = DirectiveAction::kMigrate;
  migrate.node = 3;
  migrate.path = "/c.html";
  msg.directives.push_back(migrate);
  msg.unparsed_input = "GET /partial HTT";

  HandoffMsg decoded;
  ASSERT_TRUE(DecodeHandoff(EncodeHandoff(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, msg.conn_id);
  EXPECT_EQ(decoded.autonomous, true);
  ASSERT_EQ(decoded.directives.size(), 3u);
  EXPECT_EQ(decoded.directives[0].action, DirectiveAction::kLocal);
  EXPECT_EQ(decoded.directives[0].path, "/a.html");
  EXPECT_TRUE(decoded.directives[0].cache_after_miss);
  EXPECT_EQ(decoded.directives[1].action, DirectiveAction::kLateral);
  EXPECT_EQ(decoded.directives[1].path, "/__be2/b.gif");
  EXPECT_FALSE(decoded.directives[1].cache_after_miss);
  EXPECT_EQ(decoded.directives[2].action, DirectiveAction::kMigrate);
  EXPECT_EQ(decoded.directives[2].node, 3);
  EXPECT_EQ(decoded.unparsed_input, "GET /partial HTT");
}

TEST(ControlProtocolTest, ConsultRoundTrips) {
  ConsultMsg msg;
  msg.conn_id = 99;
  msg.disk_queue_len = 7;
  msg.paths = {"/x", "/y", "/z"};
  ConsultMsg decoded;
  ASSERT_TRUE(DecodeConsult(EncodeConsult(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 99u);
  EXPECT_EQ(decoded.disk_queue_len, 7u);
  EXPECT_EQ(decoded.paths, msg.paths);
}

TEST(ControlProtocolTest, AssignmentsRoundTrips) {
  AssignmentsMsg msg;
  msg.conn_id = 3;
  RequestDirective directive;
  directive.path = "/p";
  directive.cache_after_miss = false;
  msg.directives.push_back(directive);
  AssignmentsMsg decoded;
  ASSERT_TRUE(DecodeAssignments(EncodeAssignments(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 3u);
  ASSERT_EQ(decoded.directives.size(), 1u);
  EXPECT_FALSE(decoded.directives[0].cache_after_miss);
}

TEST(ControlProtocolTest, HandbackRoundTrips) {
  HandbackMsg msg;
  msg.conn_id = 77;
  msg.target_node = 2;
  RequestDirective first;
  first.path = "/moved.html";
  msg.directives.push_back(first);
  msg.replay_input = "GET /moved.html HTTP/1.1\r\n\r\nGET /nex";
  HandbackMsg decoded;
  ASSERT_TRUE(DecodeHandback(EncodeHandback(msg), &decoded));
  EXPECT_EQ(decoded.conn_id, 77u);
  EXPECT_EQ(decoded.target_node, 2);
  ASSERT_EQ(decoded.directives.size(), 1u);
  EXPECT_EQ(decoded.directives[0].path, "/moved.html");
  EXPECT_EQ(decoded.replay_input, msg.replay_input);
}

TEST(ControlProtocolTest, DecodeRejectsBadDirectiveAction) {
  HandoffMsg msg;
  msg.conn_id = 1;
  RequestDirective directive;
  directive.path = "/a";
  msg.directives.push_back(directive);
  std::string encoded = EncodeHandoff(msg);
  // Corrupt the action byte (first byte after conn_id u64 + autonomous u8 +
  // count u32).
  encoded[8 + 1 + 4] = 9;
  HandoffMsg decoded;
  EXPECT_FALSE(DecodeHandoff(encoded, &decoded));
}

TEST(ControlProtocolTest, ScalarsRoundTrip) {
  uint64_t v64 = 0;
  ASSERT_TRUE(DecodeU64(EncodeU64(12345678901234ull), &v64));
  EXPECT_EQ(v64, 12345678901234ull);
  uint32_t v32 = 0;
  ASSERT_TRUE(DecodeU32(EncodeU32(77), &v32));
  EXPECT_EQ(v32, 77u);
}

TEST(ControlProtocolTest, DecodeRejectsTruncation) {
  HandoffMsg msg;
  msg.conn_id = 1;
  RequestDirective directive;
  directive.path = "/a";
  msg.directives.push_back(directive);
  const std::string encoded = EncodeHandoff(msg);
  HandoffMsg decoded;
  EXPECT_FALSE(DecodeHandoff(std::string_view(encoded).substr(0, encoded.size() - 3), &decoded));
  uint64_t v = 0;
  EXPECT_FALSE(DecodeU64("abc", &v));
}

// --- ContentStore ---

TEST(ContentStoreTest, BodyMatchesExpectedHelper) {
  TargetCatalog catalog;
  const TargetId id = catalog.Intern("/page1/index.html", 4096);
  ContentStore store(&catalog);
  const std::string body = store.BodyFor(id);
  EXPECT_EQ(body.size(), 4096u);
  EXPECT_EQ(body, ContentStore::ExpectedBody("/page1/index.html", 4096));
  // Header prefix embeds path and size.
  EXPECT_EQ(body.rfind("/page1/index.html#4096#", 0), 0u);
}

TEST(ContentStoreTest, DifferentPathsDifferentBodies) {
  EXPECT_NE(ContentStore::ExpectedBody("/a", 256), ContentStore::ExpectedBody("/b", 256));
}

TEST(ContentStoreTest, TinyBodyTruncatesHeader) {
  const std::string body = ContentStore::ExpectedBody("/long/path/name.html", 4);
  EXPECT_EQ(body.size(), 4u);
  EXPECT_EQ(body, "/lon");
}

TEST(ContentStoreTest, ZeroSizeBody) {
  EXPECT_TRUE(ContentStore::ExpectedBody("/x", 0).empty());
}

TEST(ContentStoreTest, ResolveFindsAndMisses) {
  TargetCatalog catalog;
  catalog.Intern("/exists", 10);
  ContentStore store(&catalog);
  EXPECT_NE(store.Resolve("/exists"), kInvalidTarget);
  EXPECT_EQ(store.Resolve("/missing"), kInvalidTarget);
}

}  // namespace
}  // namespace lard
