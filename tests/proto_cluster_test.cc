// End-to-end integration tests of the prototype cluster: real sockets on
// localhost, real fd-passing handoff, real lateral fetches — compressed disk
// time so the suite stays fast.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <future>
#include <thread>

#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

// Small but non-trivial workload: enough distinct pages to exceed the tiny
// back-end caches we configure, so the disk & lateral paths get exercised.
Trace TestTrace(uint64_t seed = 42) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 60;
  config.num_sessions = 120;
  config.num_clients = 16;
  config.max_size_bytes = 64 * 1024;  // keep bodies small for test speed
  return GenerateSyntheticTrace(config);
}

ClusterConfig BaseConfig(int nodes, Policy policy, Mechanism mechanism) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.policy = policy;
  config.mechanism = mechanism;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.disk_time_scale = 0.02;  // 28.5 ms seeks -> ~0.6 ms
  return config;
}

LoadResult Drive(Cluster& cluster, const Trace& trace, bool http10 = false, int clients = 8) {
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = clients;
  load.http10 = http10;
  return RunLoad(load, trace);
}

TEST(ProtoClusterTest, ServesWholeTraceCorrectly) {
  const Trace trace = TestTrace();
  Cluster cluster(BaseConfig(3, Policy::kExtendedLard, Mechanism::kBackEndForwarding),
                  &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  const LoadResult result = Drive(cluster, trace);
  EXPECT_EQ(result.sessions, trace.sessions().size());
  EXPECT_EQ(result.requests, trace.total_requests());
  EXPECT_EQ(result.responses_ok, result.requests);
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_GT(result.throughput_rps, 0.0);

  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_EQ(snapshot.requests_served, trace.total_requests());
  EXPECT_EQ(snapshot.not_found, 0u);
  EXPECT_EQ(snapshot.connections, trace.sessions().size());
  cluster.Stop();
}

TEST(ProtoClusterTest, EveryPolicyMechanismServesCorrectly) {
  struct Combo {
    Policy policy;
    Mechanism mechanism;
  };
  for (const Combo combo : {Combo{Policy::kWrr, Mechanism::kSingleHandoff},
                            Combo{Policy::kLard, Mechanism::kSingleHandoff},
                            Combo{Policy::kExtendedLard, Mechanism::kBackEndForwarding},
                            Combo{Policy::kExtendedLard, Mechanism::kRelayingFrontEnd}}) {
    const Trace trace = TestTrace(7);
    Cluster cluster(BaseConfig(2, combo.policy, combo.mechanism), &trace.catalog());
    ASSERT_TRUE(cluster.Start().ok());
    const LoadResult result = Drive(cluster, trace, /*http10=*/false, /*clients=*/6);
    EXPECT_EQ(result.responses_ok, trace.total_requests())
        << PolicyName(combo.policy) << "/" << MechanismName(combo.mechanism);
    EXPECT_EQ(result.responses_bad, 0u);
    cluster.Stop();
  }
}

TEST(ProtoClusterTest, Http10ModeWorks) {
  const Trace trace = TestTrace(11);
  Cluster cluster(BaseConfig(2, Policy::kLard, Mechanism::kSingleHandoff), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  const LoadResult result = Drive(cluster, trace, /*http10=*/true);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  // One connection per request at the front-end.
  EXPECT_EQ(cluster.Snapshot().connections, trace.total_requests());
  cluster.Stop();
}

TEST(ProtoClusterTest, ExtLardUsesLateralFetches) {
  // Force forwarding: single hot page set cached on node A, connections
  // arriving with busy disks. With enough load and tiny caches the extended
  // LARD policy must forward at least some requests.
  SyntheticTraceConfig config;
  config.seed = 5;
  config.num_pages = 200;    // working set >> per-node cache
  config.num_sessions = 300;
  config.max_size_bytes = 64 * 1024;
  const Trace trace = GenerateSyntheticTrace(config);

  ClusterConfig cluster_config = BaseConfig(3, Policy::kExtendedLard,
                                            Mechanism::kBackEndForwarding);
  cluster_config.backend_cache_bytes = 1ull * 1024 * 1024;
  cluster_config.disk_time_scale = 0.05;  // slower disk -> busier queues
  cluster_config.params.low_disk_queue_threshold = 1;  // forward aggressively
  Cluster cluster(cluster_config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  const LoadResult result = Drive(cluster, trace, false, 16);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_GT(snapshot.consults, 0u);
  EXPECT_GT(snapshot.lateral_out, 0u) << "expected some back-end forwarding";
  cluster.Stop();
}

TEST(ProtoClusterTest, UnknownPathsGet404) {
  Trace trace = TestTrace(13);
  Cluster cluster(BaseConfig(2, Policy::kExtendedLard, Mechanism::kBackEndForwarding),
                  &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // Hand-rolled request for a path outside the catalog.
  auto fd = ConnectTcp(cluster.port());
  ASSERT_TRUE(fd.ok());
  const std::string request = "GET /no/such/file HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd.value().get(), request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(reply.find("404"), std::string::npos);
  EXPECT_EQ(cluster.Snapshot().not_found, 1u);
  cluster.Stop();
}

TEST(ProtoClusterTest, SingleNodeCluster) {
  const Trace trace = TestTrace(17);
  Cluster cluster(BaseConfig(1, Policy::kExtendedLard, Mechanism::kBackEndForwarding),
                  &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  const LoadResult result = Drive(cluster, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(cluster.Snapshot().lateral_out, 0u);  // nowhere to forward
  cluster.Stop();
}

TEST(ProtoClusterTest, LardConcentratesTargetsPerNode) {
  // With LARD, each node should see a subset of the working set: total
  // distinct-target spread across nodes ~ partitioning. We verify via hit
  // rates: LARD's aggregate hit rate must beat WRR's on the same workload.
  SyntheticTraceConfig config;
  config.seed = 23;
  config.num_pages = 120;
  config.num_sessions = 400;
  config.max_size_bytes = 64 * 1024;
  const Trace trace = GenerateSyntheticTrace(config);

  double lard_hits = 0;
  double wrr_hits = 0;
  {
    Cluster cluster(BaseConfig(3, Policy::kLard, Mechanism::kSingleHandoff), &trace.catalog());
    ASSERT_TRUE(cluster.Start().ok());
    (void)Drive(cluster, trace, false, 12);
    lard_hits = cluster.Snapshot().cache_hit_rate;
    cluster.Stop();
  }
  {
    Cluster cluster(BaseConfig(3, Policy::kWrr, Mechanism::kSingleHandoff), &trace.catalog());
    ASSERT_TRUE(cluster.Start().ok());
    (void)Drive(cluster, trace, false, 12);
    wrr_hits = cluster.Snapshot().cache_hit_rate;
    cluster.Stop();
  }
  EXPECT_GT(lard_hits, wrr_hits) << "LARD should aggregate the node caches";
}

TEST(ProtoClusterTest, StopIsIdempotent) {
  const Trace trace = TestTrace(29);
  Cluster cluster(BaseConfig(2, Policy::kWrr, Mechanism::kSingleHandoff), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  cluster.Stop();
  cluster.Stop();
}

TEST(DiskGateTest, FcfsOrderingAndQueueLength) {
  EventLoop loop;
  std::thread thread([&]() { loop.Run(); });
  DiskCostModel costs;
  costs.initial_latency_us = 20000;  // 20 ms
  DiskGate gate(&loop, costs, 0.1);  // -> 2 ms per read

  std::promise<void> done;
  std::vector<int> order;
  loop.Post([&]() {
    gate.Read(1024, [&]() { order.push_back(1); });
    gate.Read(1024, [&]() { order.push_back(2); });
    gate.Read(1024, [&]() {
      order.push_back(3);
      done.set_value();
    });
    EXPECT_EQ(gate.queue_length(), 3);
  });
  done.get_future().wait();
  loop.Stop();
  thread.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(gate.queue_length(), 0);
  EXPECT_EQ(gate.total_reads(), 3u);
}

}  // namespace
}  // namespace lard
