#include <gtest/gtest.h>

#include "src/core/lru_cache.h"
#include "src/util/rng.h"

namespace lard {
namespace {

TEST(LruCacheTest, InsertAndContains) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Insert(1, 40));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 40u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  std::vector<TargetId> evicted;
  cache.Insert(3, 40, &evicted);  // must evict 1 (oldest)
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCacheTest, TouchPreventsEviction) {
  LruCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  EXPECT_TRUE(cache.Touch(1));  // 1 becomes MRU
  std::vector<TargetId> evicted;
  cache.Insert(3, 40, &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LruCacheTest, TouchMissingReturnsFalse) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Touch(9));
}

TEST(LruCacheTest, ReinsertRefreshesWithoutGrowth) {
  LruCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(1, 40);
  EXPECT_EQ(cache.used_bytes(), 40u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCacheTest, OversizedObjectNotCached) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Insert(1, 200));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, OversizedDoesNotEvictOthers) {
  LruCache cache(100);
  cache.Insert(1, 50);
  EXPECT_FALSE(cache.Insert(2, 150));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LruCacheTest, MultipleEvictionsForLargeInsert) {
  LruCache cache(100);
  cache.Insert(1, 30);
  cache.Insert(2, 30);
  cache.Insert(3, 30);
  std::vector<TargetId> evicted;
  cache.Insert(4, 90, &evicted);
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCacheTest, Erase) {
  LruCache cache(100);
  cache.Insert(1, 60);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  cache.Erase(1);  // idempotent
}

TEST(LruCacheTest, ZeroSizeEntries) {
  LruCache cache(10);
  EXPECT_TRUE(cache.Insert(1, 0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

// Property test: under random operations the byte budget is never exceeded
// and bookkeeping stays consistent.
class LruPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LruPropertyTest, InvariantsHoldUnderRandomOps) {
  const uint64_t capacity = GetParam();
  LruCache cache(capacity);
  Rng rng(capacity);
  uint64_t accounted = 0;
  std::unordered_map<TargetId, uint64_t> resident;

  for (int op = 0; op < 20000; ++op) {
    const TargetId id = static_cast<TargetId>(rng.NextBelow(64));
    const uint64_t size = rng.NextBelow(capacity / 2) + 1;
    switch (rng.NextBelow(3)) {
      case 0: {
        std::vector<TargetId> evicted;
        const bool inserted = cache.Insert(id, size, &evicted);
        for (const TargetId victim : evicted) {
          auto it = resident.find(victim);
          ASSERT_NE(it, resident.end());
          accounted -= it->second;
          resident.erase(it);
        }
        if (inserted && resident.find(id) == resident.end()) {
          resident[id] = size;
          accounted += size;
        }
        break;
      }
      case 1:
        cache.Touch(id);
        break;
      case 2: {
        auto it = resident.find(id);
        if (it != resident.end()) {
          accounted -= it->second;
          resident.erase(it);
        }
        cache.Erase(id);
        break;
      }
    }
    ASSERT_LE(cache.used_bytes(), capacity);
    ASSERT_EQ(cache.entry_count(), resident.size());
    ASSERT_EQ(cache.used_bytes(), accounted);
    for (const auto& [key, value] : resident) {
      ASSERT_TRUE(cache.Contains(key));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruPropertyTest, ::testing::Values(64, 1024, 65536));

}  // namespace
}  // namespace lard
