// TimeSeriesStore ring semantics (wrap, retention, NaN backfill, JSON) and
// the window samplers that feed it.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/obs/process_stats.h"
#include "src/obs/samplers.h"
#include "src/obs/time_series.h"
#include "src/util/metrics.h"

namespace lard {
namespace {

TimeSeriesConfig SmallConfig(int capacity) {
  TimeSeriesConfig config;
  config.interval_ms = 100;
  config.capacity = capacity;
  return config;
}

TEST(TimeSeriesStoreTest, AddSeriesIsFindOrCreate) {
  TimeSeriesStore store(SmallConfig(4));
  const int a = store.AddSeries("rate");
  EXPECT_EQ(store.AddSeries("rate"), a);
  EXPECT_EQ(store.FindSeries("rate"), a);
  EXPECT_EQ(store.FindSeries("absent"), -1);
  EXPECT_NE(store.AddSeries("other"), a);
}

TEST(TimeSeriesStoreTest, RingWrapKeepsNewestCapacitySamples) {
  TimeSeriesStore store(SmallConfig(3));
  const int series = store.AddSeries("v");
  for (int i = 0; i < 10; ++i) {
    store.Append(100 * (i + 1), {{series, static_cast<double>(i)}});
  }
  EXPECT_EQ(store.num_samples(), 3u);
  EXPECT_EQ(store.last_t_ms(), 1000);
  const auto points = store.Points("v", 0);
  ASSERT_EQ(points.size(), 3u);
  // Oldest first, and only the newest capacity samples survive the wrap.
  EXPECT_EQ(points[0].t_ms, 800);
  EXPECT_DOUBLE_EQ(points[0].value, 7.0);
  EXPECT_EQ(points[2].t_ms, 1000);
  EXPECT_DOUBLE_EQ(points[2].value, 9.0);
  EXPECT_DOUBLE_EQ(store.Latest("v"), 9.0);
}

TEST(TimeSeriesStoreTest, WindowRestrictsToNewestSamples) {
  TimeSeriesStore store(SmallConfig(10));
  const int series = store.AddSeries("v");
  for (int i = 0; i < 8; ++i) {
    store.Append(100 * (i + 1), {{series, static_cast<double>(i)}});
  }
  // Newest is t=800; a 250ms window keeps t in [550, 800].
  const auto points = store.Points("v", 250);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points.front().t_ms, 600);
  EXPECT_EQ(points.back().t_ms, 800);
}

TEST(TimeSeriesStoreTest, LateSeriesBackfillsNaNAndSparseAppendSkips) {
  TimeSeriesStore store(SmallConfig(8));
  const int a = store.AddSeries("a");
  store.Append(100, {{a, 1.0}});
  store.Append(200, {{a, 2.0}});
  const int b = store.AddSeries("b");  // late: slots at t=100/200 are NaN
  store.Append(300, {{a, 3.0}, {b, 30.0}});
  store.Append(400, {{b, 40.0}});  // sparse: "a" gets NaN this tick
  EXPECT_TRUE(store.Points("b", 0).size() == 2);
  EXPECT_DOUBLE_EQ(store.Points("b", 0).front().value, 30.0);
  // Points skips NaN slots; Latest skips the NaN at t=400.
  ASSERT_EQ(store.Points("a", 0).size(), 3u);
  EXPECT_DOUBLE_EQ(store.Latest("a"), 3.0);
  EXPECT_DOUBLE_EQ(store.Latest("b"), 40.0);
}

TEST(TimeSeriesStoreTest, LatestIsNaNWhenAbsentOrEmpty) {
  TimeSeriesStore store(SmallConfig(4));
  EXPECT_TRUE(std::isnan(store.Latest("missing")));
  store.AddSeries("empty");
  EXPECT_TRUE(std::isnan(store.Latest("empty")));
}

TEST(TimeSeriesStoreTest, RenderJsonFiltersAndNullsNaN) {
  TimeSeriesStore store(SmallConfig(4));
  const int rate = store.AddSeries("request_rate");
  store.AddSeries("open_conns");
  store.Append(100, {{rate, 5.0}});
  const std::string json = store.RenderJson("", 0);
  EXPECT_NE(json.find("\"interval_ms\":100"), std::string::npos);
  EXPECT_NE(json.find("\"request_rate\":[[100,5]]"), std::string::npos);
  // The un-appended series renders its slot as null, not NaN (invalid JSON).
  EXPECT_NE(json.find("\"open_conns\":[[100,null]]"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  // Metric filter is a substring match over series names.
  const std::string filtered = store.RenderJson("request", 0);
  EXPECT_NE(filtered.find("request_rate"), std::string::npos);
  EXPECT_EQ(filtered.find("open_conns"), std::string::npos);
}

TEST(CounterRateSamplerTest, RatesAndCounterResets) {
  CounterRateSampler sampler;
  // First sample: no baseline yet, the whole value counts over the window.
  EXPECT_DOUBLE_EQ(sampler.Sample(10, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(sampler.Sample(30, 2.0), 10.0);
  // Reset (restart): current < previous must not emit a negative rate — the
  // baseline restarts at zero so everything seen this window counts.
  EXPECT_DOUBLE_EQ(sampler.Sample(4, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(sampler.Sample(4, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(sampler.Sample(5, 0.0), 0.0);  // degenerate dt
}

TEST(HistogramWindowSamplerTest, QuantilesCoverOnlyTheWindow) {
  MetricsRegistry registry;
  MetricHistogram* histogram = registry.Histogram("lard_test_us");
  HistogramWindowSampler sampler;
  for (int i = 0; i < 100; ++i) {
    histogram->Observe(10.0);
  }
  auto window = sampler.Sample(*histogram);
  EXPECT_EQ(window.count, 100u);
  EXPECT_GE(window.p99, 10.0);
  EXPECT_LE(window.p99, 13.0);
  // Next window sees only the new (much larger) samples, not the cumulative
  // distribution — that is the whole point of the bucket-delta sampler.
  for (int i = 0; i < 50; ++i) {
    histogram->Observe(100000.0);
  }
  window = sampler.Sample(*histogram);
  EXPECT_EQ(window.count, 50u);
  EXPECT_GE(window.p50, 100000.0);
  // An idle tick is an empty window, all-zero quantiles.
  window = sampler.Sample(*histogram);
  EXPECT_EQ(window.count, 0u);
  EXPECT_DOUBLE_EQ(window.p99, 0.0);
}

TEST(ProcessStatsTest, ReadsLiveProcessAndPublishes) {
  const ProcessStats stats = ReadProcessStats();
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GT(stats.open_fds, 0);
  EXPECT_GE(stats.uptime_seconds, 0.0);

  MetricsRegistry registry;
  UpdateProcessMetrics(&registry);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("lard_build_info"), std::string::npos);
  EXPECT_NE(text.find("lard_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("lard_process_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("lard_process_open_fds"), std::string::npos);
}

}  // namespace
}  // namespace lard
