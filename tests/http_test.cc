#include <gtest/gtest.h>

#include "src/http/http_message.h"
#include "src/http/request_parser.h"
#include "src/http/response_parser.h"
#include "src/http/tagging.h"

namespace lard {
namespace {

// --- HttpHeaders / messages ---

TEST(HttpHeadersTest, CaseInsensitiveLookup) {
  HttpHeaders headers;
  headers.Add("Content-Length", "42");
  ASSERT_NE(headers.Find("content-length"), nullptr);
  EXPECT_EQ(*headers.Find("CONTENT-LENGTH"), "42");
  EXPECT_EQ(headers.Find("Host"), nullptr);
}

TEST(HttpHeadersTest, PreservesOrderAndDuplicates) {
  HttpHeaders headers;
  headers.Add("X-A", "1");
  headers.Add("X-A", "2");
  EXPECT_EQ(headers.size(), 2u);
  EXPECT_EQ(*headers.Find("X-A"), "1");  // first wins for lookup
}

TEST(HttpRequestTest, KeepAliveRules) {
  HttpRequest request;
  request.version = HttpVersion::kHttp11;
  EXPECT_TRUE(request.KeepAlive());  // 1.1 default persistent
  request.headers.Add("Connection", "close");
  EXPECT_FALSE(request.KeepAlive());

  HttpRequest old_request;
  old_request.version = HttpVersion::kHttp10;
  EXPECT_FALSE(old_request.KeepAlive());  // paper: 1.0 never persists
  old_request.headers.Add("Connection", "keep-alive");
  EXPECT_FALSE(old_request.KeepAlive());
}

TEST(HttpResponseTest, SerializeAddsContentLength) {
  HttpResponse response;
  response.body = "hello";
  const std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpResponseTest, SerializeKeepsExplicitContentLength) {
  HttpResponse response;
  response.headers.Add("Content-Length", "0");
  const std::string wire = response.Serialize();
  // Exactly one Content-Length.
  EXPECT_EQ(wire.find("Content-Length"), wire.rfind("Content-Length"));
}

// --- RequestParser ---

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  ASSERT_EQ(parser.Feed("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n", &requests),
            RequestParser::State::kNeedMore);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].method, "GET");
  EXPECT_EQ(requests[0].path, "/index.html");
  EXPECT_EQ(requests[0].version, HttpVersion::kHttp11);
  EXPECT_EQ(*requests[0].headers.Find("Host"), "x");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RequestParserTest, ByteAtATime) {
  const std::string wire = "GET /a HTTP/1.0\r\nUser-Agent: t\r\n\r\n";
  RequestParser parser;
  std::vector<HttpRequest> requests;
  for (const char c : wire) {
    ASSERT_EQ(parser.Feed(std::string_view(&c, 1), &requests), RequestParser::State::kNeedMore);
  }
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].version, HttpVersion::kHttp10);
}

TEST(RequestParserTest, PipelinedRequestsInOneRead) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\nHost: h\r\n\r\n",
      &requests);
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].path, "/a");
  EXPECT_EQ(requests[1].path, "/b");
  EXPECT_EQ(requests[2].path, "/c");
}

TEST(RequestParserTest, PipelinedSplitMidRequest) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  parser.Feed("GET /a HTTP/1.1\r\n\r\nGET /b HT", &requests);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_GT(parser.buffered_bytes(), 0u);
  parser.Feed("TP/1.1\r\n\r\n", &requests);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1].path, "/b");
}

TEST(RequestParserTest, BodyWithContentLength) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  parser.Feed("POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next HTTP/1.1\r\n\r\n",
              &requests);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].body, "hello");
  EXPECT_EQ(requests[1].path, "/next");
}

TEST(RequestParserTest, HeaderWhitespaceTrimmed) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  parser.Feed("GET / HTTP/1.1\r\nX-Pad:   spaced out  \r\n\r\n", &requests);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(*requests[0].headers.Find("X-Pad"), "spaced out");
}

TEST(RequestParserTest, RejectsMalformedRequestLine) {
  for (const char* bad :
       {"GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/2.0\r\n\r\n", "GET  / HTTP/1.1\r\n\r\n",
        "GET / HTTP/1.1 extra\r\n\r\n"}) {
    RequestParser parser;
    std::vector<HttpRequest> requests;
    EXPECT_EQ(parser.Feed(bad, &requests), RequestParser::State::kError) << bad;
  }
}

TEST(RequestParserTest, RejectsBadHeaders) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\nno colon here\r\n\r\n", &requests),
            RequestParser::State::kError);
}

TEST(RequestParserTest, RejectsAbsurdContentLength) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", &requests),
            RequestParser::State::kError);
}

TEST(RequestParserTest, ErrorStateIsSticky) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  parser.Feed("BAD\r\n\r\n", &requests);
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n\r\n", &requests), RequestParser::State::kError);
  EXPECT_TRUE(requests.empty());
}

// --- ResponseParser ---

TEST(ResponseParserTest, RoundTripsSerializedResponse) {
  HttpResponse out;
  out.status = 200;
  out.body = std::string(1000, 'x');
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  parser.Feed(out.Serialize(), &responses);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, out.body);
}

TEST(ResponseParserTest, PipelinedResponses) {
  HttpResponse a;
  a.body = "aa";
  HttpResponse b;
  b.status = 404;
  b.reason = "Not Found";
  b.body = "nope";
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  parser.Feed(a.Serialize() + b.Serialize(), &responses);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "aa");
  EXPECT_EQ(responses[1].status, 404);
}

TEST(ResponseParserTest, SplitAcrossReads) {
  HttpResponse out;
  out.body = std::string(100, 'y');
  const std::string wire = out.Serialize();
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  parser.Feed(wire.substr(0, 20), &responses);
  EXPECT_TRUE(responses.empty());
  parser.Feed(wire.substr(20), &responses);
  ASSERT_EQ(responses.size(), 1u);
}

TEST(ResponseParserTest, RejectsGarbage) {
  ResponseParser parser;
  std::vector<HttpResponse> responses;
  EXPECT_EQ(parser.Feed("SPDY/9 hello\r\n\r\n", &responses), ResponseParser::State::kError);
}

// --- Tagging (Section 7.3) ---

TEST(TaggingTest, RoundTrips) {
  const std::string tagged = TagPathForNode("/dir/file.html", 3);
  EXPECT_EQ(tagged, "/__be3/dir/file.html");
  NodeId node = kInvalidNode;
  std::string path;
  ASSERT_TRUE(ParseTaggedPath(tagged, &node, &path));
  EXPECT_EQ(node, 3);
  EXPECT_EQ(path, "/dir/file.html");
}

TEST(TaggingTest, PlainPathsAreNotTags) {
  NodeId node = kInvalidNode;
  std::string path;
  EXPECT_FALSE(ParseTaggedPath("/dir/file.html", &node, &path));
  EXPECT_FALSE(ParseTaggedPath("/__bex/file", &node, &path));
  EXPECT_FALSE(ParseTaggedPath("/__be9", &node, &path));  // no trailing path
  EXPECT_FALSE(ParseTaggedPath("/__be", &node, &path));
}

TEST(TaggingTest, MultiDigitNodes) {
  NodeId node = kInvalidNode;
  std::string path;
  ASSERT_TRUE(ParseTaggedPath(TagPathForNode("/x", 127), &node, &path));
  EXPECT_EQ(node, 127);
}

TEST(ReasonPhraseTest, KnownCodes) {
  EXPECT_STREQ(ReasonPhrase(200), "OK");
  EXPECT_STREQ(ReasonPhrase(404), "Not Found");
  EXPECT_STREQ(ReasonPhrase(418), "Unknown");
}

}  // namespace
}  // namespace lard
