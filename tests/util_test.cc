#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/table.h"

namespace lard {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad flag");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad flag");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusTest, StatusOrHoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kUnavailable, StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x = rng.NextBelow(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // every residue appears
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, GeometricMeanConverges) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextGeometric(0.25));
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(100.0, 1.5), 100.0);
  }
}

TEST(ZipfTest, RankOneMostPopular) {
  Rng rng(21);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  // Rank-0 frequency should approximate 1/H_100 ~ 0.192.
  EXPECT_NEAR(counts[0] / 100000.0, 0.192, 0.02);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  Rng rng(23);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count / 100000.0, 0.1, 0.01);
  }
}

// --- StreamingStats / percentiles / histogram ---

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 4);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_NEAR(stats.variance(), 1.25, 1e-12);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  StreamingStats all, left, right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 10;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(PercentileTest, ExactQuartiles) {
  PercentileTracker tracker;
  for (int i = 100; i >= 1; --i) {
    tracker.Add(i);
  }
  EXPECT_DOUBLE_EQ(tracker.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.Percentile(100), 100.0);
  EXPECT_NEAR(tracker.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(tracker.Percentile(95), 95.05, 0.1);
}

TEST(PercentileTest, AddAfterQueryResorts) {
  PercentileTracker tracker;
  tracker.Add(1.0);
  EXPECT_DOUBLE_EQ(tracker.Percentile(50), 1.0);
  tracker.Add(3.0);
  tracker.Add(2.0);
  EXPECT_DOUBLE_EQ(tracker.Percentile(100), 3.0);
}

TEST(LogHistogramTest, BucketsAndQuantiles) {
  LogHistogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.Add(1000);  // bucket [512, 1024)
  }
  histogram.Add(1 << 20);
  EXPECT_EQ(histogram.total_count(), 101u);
  EXPECT_LE(histogram.ApproxQuantile(0.5), 1024u);
  EXPECT_FALSE(histogram.ToString().empty());
}

// --- Table ---

TEST(TableTest, RendersAlignedAndCsv) {
  Table table({"name", "value"});
  table.Row().Cell("alpha").Cell(int64_t{42});
  table.Row().Cell("b").Cell(3.14159, 2);
  const std::string text = table.ToString();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_EQ(table.ToCsv(), "name,value\nalpha,42\nb,3.14\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// --- Flags ---

TEST(FlagsTest, ParsesAllTypes) {
  FlagSet flags("test");
  int64_t nodes = 1;
  double scale = 1.0;
  std::string name = "x";
  bool verbose = false;
  flags.AddInt("nodes", &nodes, "");
  flags.AddDouble("scale", &scale, "");
  flags.AddString("name", &name, "");
  flags.AddBool("verbose", &verbose, "");

  const char* argv[] = {"prog", "--nodes=8", "--scale", "0.5", "--name=rice", "--verbose=true"};
  flags.Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(nodes, 8);
  EXPECT_DOUBLE_EQ(scale, 0.5);
  EXPECT_EQ(name, "rice");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, UsageListsDefaults) {
  FlagSet flags("prog");
  int64_t n = 7;
  flags.AddInt("n", &n, "node count");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("7"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
}

}  // namespace
}  // namespace lard
