// Behavioural and property tests of the simulator beyond the basics in
// cluster_sim_test.cc: saturation curves, mechanism cost ordering, front-end
// limiting, latency behaviour, and workload-shape effects.
#include <gtest/gtest.h>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace MakeTrace(int64_t pages, int64_t sessions, uint64_t seed = 3,
                double pages_per_session = 1.2) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = pages;
  config.num_sessions = sessions;
  config.pages_per_session_mean = pages_per_session;
  return GenerateSyntheticTrace(config);
}

ClusterSimConfig Config(int nodes, Policy policy, Mechanism mechanism,
                        uint64_t cache_mb = 8) {
  ClusterSimConfig config;
  config.num_nodes = nodes;
  config.policy = policy;
  config.mechanism = mechanism;
  config.backend_cache_bytes = cache_mb * 1024 * 1024;
  return config;
}

TEST(SimBehaviorTest, ThroughputSaturatesWithLoad) {
  // Fig. 3's premise: beyond the knee, more concurrent connections buy
  // little throughput but much delay.
  const Trace trace = MakeTrace(50, 2000);
  double rps_low, rps_high, delay_low, delay_high;
  {
    ClusterSimConfig config = Config(1, Policy::kLard, Mechanism::kSingleHandoff, 64);
    config.concurrent_sessions_per_node = 4;
    ClusterSim sim(config, &trace);
    const ClusterSimMetrics metrics = sim.Run();
    rps_low = metrics.throughput_rps;
    delay_low = metrics.mean_batch_latency_ms;
  }
  {
    ClusterSimConfig config = Config(1, Policy::kLard, Mechanism::kSingleHandoff, 64);
    config.concurrent_sessions_per_node = 128;
    ClusterSim sim(config, &trace);
    const ClusterSimMetrics metrics = sim.Run();
    rps_high = metrics.throughput_rps;
    delay_high = metrics.mean_batch_latency_ms;
  }
  EXPECT_LT(rps_high, rps_low * 2.0) << "throughput should saturate";
  EXPECT_GT(delay_high, delay_low * 4.0) << "delay should keep climbing";
}

TEST(SimBehaviorTest, MigrationStallAddsLatencyNotThroughputLoss) {
  // Multiple handoff vs the zero-cost ideal: the pipeline stall should cost
  // some latency, not an order of magnitude of throughput.
  const Trace trace = MakeTrace(400, 6000);
  ClusterSim multi(Config(4, Policy::kExtendedLard, Mechanism::kMultipleHandoff), &trace);
  ClusterSim ideal(Config(4, Policy::kExtendedLard, Mechanism::kIdealHandoff), &trace);
  const ClusterSimMetrics multi_metrics = multi.Run();
  const ClusterSimMetrics ideal_metrics = ideal.Run();
  EXPECT_GT(multi_metrics.throughput_rps, 0.7 * ideal_metrics.throughput_rps);
  EXPECT_GE(ideal_metrics.throughput_rps, multi_metrics.throughput_rps * 0.98);
}

TEST(SimBehaviorTest, FrontEndLimitCapsThroughput) {
  const Trace trace = MakeTrace(100, 4000);
  ClusterSimConfig config = Config(8, Policy::kExtendedLard, Mechanism::kBackEndForwarding, 64);
  ClusterSim unlimited(config, &trace);
  config.model_front_end_limit = true;
  // Make the FE deliberately slow so it must bottleneck.
  config.fe_costs.per_request_us = 2000.0;
  ClusterSim limited(config, &trace);
  const double unlimited_rps = unlimited.Run().throughput_rps;
  const ClusterSimMetrics limited_metrics = limited.Run();
  EXPECT_LT(limited_metrics.throughput_rps, unlimited_rps);
  // A saturated FE: close to 100% utilization, throughput near 1/2000µs
  // (first requests pay the cheaper handoff cost, hence the slack).
  EXPECT_GT(limited_metrics.fe_utilization, 0.9);
  EXPECT_LT(limited_metrics.throughput_rps, 1e6 / 2000.0 * 1.3);
}

TEST(SimBehaviorTest, BiggerCachesNeverHurt) {
  const Trace trace = MakeTrace(600, 6000);
  double previous = 0.0;
  for (const uint64_t cache_mb : {2, 8, 32}) {
    ClusterSim sim(Config(4, Policy::kLard, Mechanism::kSingleHandoff, cache_mb), &trace);
    const double hit_rate = sim.Run().cache_hit_rate;
    EXPECT_GE(hit_rate, previous - 0.01) << cache_mb << " MB";
    previous = hit_rate;
  }
}

TEST(SimBehaviorTest, FlashOutrunsApacheWhenCpuBound) {
  // Cache-resident workload, long enough that the cold-start disk warmup
  // does not dominate: Flash's lower CPU costs must show directly.
  const Trace trace = MakeTrace(40, 10000);
  ClusterSimConfig config = Config(2, Policy::kLard, Mechanism::kSingleHandoff, 64);
  ClusterSim apache(config, &trace);
  config.server_costs = FlashCosts();
  ClusterSim flash(config, &trace);
  EXPECT_GT(flash.Run().throughput_rps, 1.5 * apache.Run().throughput_rps);
}

TEST(SimBehaviorTest, PhttpBeatsHttp10WhenCacheResident) {
  // The paper's 26%-gain regime: CPU-bound cluster, connection overhead
  // amortized over ~6-7 requests.
  const Trace trace = MakeTrace(40, 3000);
  ClusterSimConfig config = Config(2, Policy::kExtendedLard, Mechanism::kBackEndForwarding, 64);
  ClusterSim phttp(config, &trace);
  config.policy = Policy::kLard;
  config.mechanism = Mechanism::kSingleHandoff;
  config.http10 = true;
  ClusterSim http10(config, &trace);
  const double phttp_rps = phttp.Run().throughput_rps;
  const double http10_rps = http10.Run().throughput_rps;
  EXPECT_GT(phttp_rps, 1.05 * http10_rps);
  EXPECT_LT(phttp_rps, 1.6 * http10_rps);  // bounded by the setup-cost share
}

TEST(SimBehaviorTest, WrrInsensitiveToPersistentConnections) {
  // Paper: "WRR cannot obtain throughput advantages from persistent
  // connections on our workload as it remains disk bound".
  const Trace trace = MakeTrace(800, 8000);  // disk-bound: big working set
  ClusterSimConfig config = Config(4, Policy::kWrr, Mechanism::kSingleHandoff, 2);
  ClusterSim phttp(config, &trace);
  config.http10 = true;
  ClusterSim http10(config, &trace);
  const double ratio = phttp.Run().throughput_rps / http10.Run().throughput_rps;
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.25);
}

TEST(SimBehaviorTest, DispatcherLoadReturnsToZero) {
  const Trace trace = MakeTrace(100, 2000);
  for (const Mechanism mechanism :
       {Mechanism::kSingleHandoff, Mechanism::kBackEndForwarding,
        Mechanism::kMultipleHandoff, Mechanism::kRelayingFrontEnd}) {
    ClusterSim sim(Config(3, Policy::kExtendedLard, mechanism), &trace);
    const ClusterSimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.total_requests, trace.total_requests()) << MechanismName(mechanism);
  }
}

TEST(SimBehaviorTest, ThroughputScalesWithClusterForLard) {
  const Trace trace = MakeTrace(600, 8000);
  double previous = 0.0;
  for (const int nodes : {1, 2, 4, 8}) {
    ClusterSim sim(Config(nodes, Policy::kLard, Mechanism::kSingleHandoff, 4), &trace);
    const double rps = sim.Run().throughput_rps;
    EXPECT_GT(rps, previous) << nodes << " nodes";
    previous = rps;
  }
}

// Property sweep over seeds: conservation and determinism hold regardless of
// workload randomness.
class SimSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimSeedTest, ConservationAcrossSeeds) {
  const Trace trace = MakeTrace(150, 1500, GetParam());
  ClusterSim sim(Config(5, Policy::kExtendedLard, Mechanism::kBackEndForwarding), &trace);
  const ClusterSimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.total_requests, trace.total_requests());
  EXPECT_EQ(metrics.total_connections, trace.sessions().size());
  uint64_t served = 0;
  for (const auto& node : metrics.per_node) {
    served += node.cache_hits + node.disk_reads;
  }
  EXPECT_GE(served, metrics.total_requests);
  EXPECT_GT(metrics.cache_hit_rate, 0.0);
  EXPECT_LE(metrics.cache_hit_rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSeedTest, ::testing::Values(1, 7, 1999, 424242));

}  // namespace
}  // namespace lard
