#include <gtest/gtest.h>

#include "src/core/cost_metrics.h"

namespace lard {
namespace {

LardParams Defaults() { return LardParams{}; }

TEST(CostBalancingTest, ZeroBelowIdle) {
  const LardParams params = Defaults();
  EXPECT_EQ(CostBalancing(0, params), 0.0);
  EXPECT_EQ(CostBalancing(params.l_idle - 1, params), 0.0);
}

TEST(CostBalancingTest, LinearBetweenThresholds) {
  const LardParams params = Defaults();
  EXPECT_EQ(CostBalancing(params.l_idle, params), 0.0);
  EXPECT_EQ(CostBalancing(params.l_idle + 10, params), 10.0);
  EXPECT_EQ(CostBalancing(params.l_overload - 1, params),
            params.l_overload - 1 - params.l_idle);
}

TEST(CostBalancingTest, InfiniteAtOverload) {
  const LardParams params = Defaults();
  EXPECT_EQ(CostBalancing(params.l_overload, params), kInfiniteCost);
  EXPECT_EQ(CostBalancing(params.l_overload + 100, params), kInfiniteCost);
}

TEST(CostLocalityTest, FreeWhenCached) {
  const LardParams params = Defaults();
  EXPECT_EQ(CostLocality(true, params), 0.0);
  EXPECT_EQ(CostLocality(false, params), params.miss_cost);
}

TEST(CostReplacementTest, FreeWhenIdleOrCached) {
  const LardParams params = Defaults();
  EXPECT_EQ(CostReplacement(0, false, params), 0.0);           // idle, uncached
  EXPECT_EQ(CostReplacement(params.l_idle + 5, true, params), 0.0);   // busy, cached
  EXPECT_EQ(CostReplacement(params.l_idle + 5, false, params), params.miss_cost);
}

TEST(AggregateCostTest, SumsComponents) {
  const LardParams params = Defaults();
  const double load = params.l_idle + 7;
  EXPECT_EQ(AggregateCost(load, false, params), 7 + params.miss_cost + params.miss_cost);
  EXPECT_EQ(AggregateCost(load, true, params), 7.0);
  EXPECT_EQ(AggregateCost(0, false, params), params.miss_cost);
}

TEST(AggregateCostTest, CachedBusyNodeCanLoseToIdleUncachedNode) {
  // The LARD reassignment condition: a mapped node so loaded that an idle
  // node paying a full miss is still cheaper.
  const LardParams params = Defaults();
  const double busy = params.l_idle + params.miss_cost + 1;  // cost = miss+1
  EXPECT_GT(AggregateCost(busy, true, params), AggregateCost(0.0, false, params));
}

// Property sweep: aggregate cost is nondecreasing in load for fixed caching.
class CostMonotonicityTest : public ::testing::TestWithParam<bool> {};

TEST_P(CostMonotonicityTest, NondecreasingInLoad) {
  const LardParams params = Defaults();
  const bool cached = GetParam();
  double previous = AggregateCost(0, cached, params);
  for (double load = 1; load <= params.l_overload + 10; load += 1) {
    const double cost = AggregateCost(load, cached, params);
    EXPECT_GE(cost, previous) << "load " << load;
    previous = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(CachedOrNot, CostMonotonicityTest, ::testing::Bool());

}  // namespace
}  // namespace lard
