// TimerWheel unit tests: slot rounding, cross-rotation residency, cancel and
// rearm churn (the O(1) contract's correctness side) and monotonic-clock
// jumps. The wheel takes explicit `now` values, so everything here runs in
// virtual time — no sleeps. The EventLoop-facade tests at the bottom cover
// the wheel/heap routing and the tombstone purge.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/timer_wheel.h"

namespace lard {
namespace {

TEST(TimerWheelTest, FiresAtQuantizedDeadlineNeverEarly) {
  TimerWheel wheel(/*tick_ms=*/8, /*num_slots=*/64);
  int fired = 0;
  wheel.Arm(1, /*deadline_ms=*/1000, [&]() { ++fired; });
  // 1000 rounds up to tick 125 (= 1000ms exactly); nothing before then.
  EXPECT_EQ(wheel.Advance(999), 0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.Advance(1000), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.size(), 0u);

  // A deadline between ticks rounds *up*: 1001 → tick 126 → fires at 1008.
  wheel.Arm(2, 1001, [&]() { ++fired; });
  EXPECT_EQ(wheel.Advance(1007), 0);
  EXPECT_EQ(wheel.Advance(1008), 1);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextTick) {
  TimerWheel wheel(8, 64);
  bool fired = false;
  ASSERT_EQ(wheel.Advance(800), 0);  // settle the cursor at tick 100
  wheel.Arm(1, 800, [&]() { fired = true; });  // deadline == now
  EXPECT_EQ(wheel.Advance(808), 1);  // next tick boundary
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, SameTickTimersFireInArmingOrder) {
  // Timers quantized into one tick keep FIFO scheduling order — DiskGate's
  // FCFS contract rides on this (sub-tick completion times share a slot).
  TimerWheel wheel(8, 64);
  std::vector<int> order;
  ASSERT_EQ(wheel.Advance(800), 0);
  for (int i = 1; i <= 4; ++i) {
    wheel.Arm(static_cast<TimerWheel::TimerId>(i), 800 + i, [&order, i]() { order.push_back(i); });
  }
  EXPECT_EQ(wheel.Advance(808), 4);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheelTest, LaterRotationResidentSurvivesSlotVisit) {
  // Two entries hash to the same slot, one rotation apart: the near one
  // fires, the far one stays through the slot visit (the hashed-wheel
  // cascade) and fires a rotation later.
  TimerWheel wheel(8, 64);  // rotation = 512ms
  std::vector<int> order;
  ASSERT_EQ(wheel.Advance(8), 0);
  wheel.Arm(1, 16, [&]() { order.push_back(1); });
  wheel.Arm(2, 16 + 512, [&]() { order.push_back(2); });  // same slot, next turn
  EXPECT_EQ(wheel.Advance(16), 1);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(wheel.Advance(527), 0);  // a full sweep minus one tick: still resident
  EXPECT_EQ(wheel.Advance(528), 1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 2);
}

TEST(TimerWheelTest, CancelRearmChurnLeavesNothingBehind) {
  TimerWheel wheel(8, 512);
  int fired = 0;
  // The idle-timer pattern at scale: arm once, rearm on every "request",
  // cancel half the population, let the rest expire. No tombstones possible:
  // size() tracks live entries exactly.
  const int kConns = 10000;
  for (int i = 0; i < kConns; ++i) {
    wheel.Arm(static_cast<TimerWheel::TimerId>(i + 1), 100, [&]() { ++fired; });
  }
  EXPECT_EQ(wheel.size(), static_cast<size_t>(kConns));
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < kConns; ++i) {
      ASSERT_TRUE(wheel.Rearm(static_cast<TimerWheel::TimerId>(i + 1), 200 + round));
    }
  }
  EXPECT_EQ(wheel.size(), static_cast<size_t>(kConns));
  for (int i = 0; i < kConns; i += 2) {
    ASSERT_TRUE(wheel.Cancel(static_cast<TimerWheel::TimerId>(i + 1)));
  }
  EXPECT_EQ(wheel.size(), static_cast<size_t>(kConns) / 2);
  EXPECT_EQ(wheel.Advance(10000), kConns / 2);
  EXPECT_EQ(fired, kConns / 2);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_FALSE(wheel.Cancel(1));   // double-cancel reports dead
  EXPECT_FALSE(wheel.Rearm(2, 1)); // rearm after expiry reports dead
}

TEST(TimerWheelTest, ForwardClockJumpFiresEverythingDueOnce) {
  TimerWheel wheel(8, 64);
  int fired = 0;
  ASSERT_EQ(wheel.Advance(8), 0);
  for (int i = 0; i < 100; ++i) {
    wheel.Arm(static_cast<TimerWheel::TimerId>(i + 1), 16 + i * 8, [&]() { ++fired; });
  }
  wheel.Arm(1000, 1 << 20, [&]() { ++fired; });  // far beyond the jump
  // Suspend/resume: now leaps many rotations forward. One bounded sweep
  // fires everything due exactly once; the far timer stays.
  EXPECT_EQ(wheel.Advance(100000), 100);
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(wheel.Advance(100001), 0);  // no double fire after the jump
}

TEST(TimerWheelTest, BackwardClockJumpIsNoOp) {
  TimerWheel wheel(8, 64);
  int fired = 0;
  ASSERT_EQ(wheel.Advance(1000), 0);
  wheel.Arm(1, 1008, [&]() { ++fired; });
  EXPECT_EQ(wheel.Advance(500), 0);  // clock went backwards: hold position
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.Advance(1008), 1);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CallbackCanCancelAndRearmSiblingsInSameBatch) {
  TimerWheel wheel(8, 64);
  std::vector<int> order;
  ASSERT_EQ(wheel.Advance(8), 0);
  // All three are due in the same batch, and #1 fires first (same-tick
  // entries fire in arming order). It cancels #2 and rearms #3; both must
  // take effect even though the trio was collected together.
  wheel.Arm(1, 16, [&]() {
    order.push_back(1);
    EXPECT_TRUE(wheel.Cancel(2));
    EXPECT_TRUE(wheel.Rearm(3, 100));
  });
  wheel.Arm(2, 16, [&]() { order.push_back(2); });
  wheel.Arm(3, 16, [&]() { order.push_back(3); });
  EXPECT_EQ(wheel.Advance(16), 1);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(wheel.size(), 1u);  // #3 lives on at its new deadline
  EXPECT_EQ(wheel.Advance(104), 1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 3);
}

TEST(TimerWheelTest, MsUntilNextBoundsTheSleep) {
  TimerWheel wheel(8, 64);
  EXPECT_EQ(wheel.MsUntilNext(0), -1);  // empty: no wheel-imposed wakeup
  ASSERT_EQ(wheel.Advance(800), 0);
  wheel.Arm(1, 900, []() {});
  const int64_t until = wheel.MsUntilNext(800);
  EXPECT_GE(until, 0);
  // Sleeps at most to the quantized deadline (900 rounded up one tick).
  EXPECT_LE(until, 900 - 800 + 8);
}

// --- EventLoop facade: wheel routing, rearm, and the tombstone purge. ---

class LoopTimerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    thread_ = std::thread([this]() { loop_.Run(); });
  }
  void TearDown() override {
    loop_.Stop();
    thread_.join();
  }
  void RunOnLoop(std::function<void()> fn) {
    std::promise<void> done;
    loop_.Post([&]() {
      fn();
      done.set_value();
    });
    done.get_future().wait();
  }
  EventLoop loop_;
  std::thread thread_;
};

TEST_F(LoopTimerTest, ShortTimersFireAndRearmExtendsDeadline) {
  std::promise<void> fired;
  EventLoop::TimerId id = 0;
  const auto armed_at = std::chrono::steady_clock::now();
  RunOnLoop([&]() {
    id = loop_.ScheduleAfterMs(40, [&]() { fired.set_value(); });
    // Push the deadline out before it can fire: the O(1) rearm path.
    ASSERT_TRUE(loop_.RearmTimerMs(id, 120));
  });
  fired.get_future().wait();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - armed_at);
  EXPECT_GE(elapsed.count(), 100) << "rearm did not extend the deadline";
}

TEST_F(LoopTimerTest, CancelHeavyChurnPurgesHeapTombstones) {
  // Long-deadline timers take the heap path; cancelling nearly all of them
  // must not leave O(cancelled) tombstones behind (the pre-wheel bug).
  RunOnLoop([&]() {
    std::vector<EventLoop::TimerId> ids;
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 100; ++i) {
        ids.push_back(loop_.ScheduleAfterMs(3'600'000, []() { ADD_FAILURE(); }));
      }
      for (EventLoop::TimerId id : ids) {
        loop_.CancelTimer(id);
      }
      ids.clear();
    }
    EXPECT_EQ(loop_.pending_timers(), 0u);
    // 5000 cancels must not leave 5000 tombstones: the purge keeps the heap
    // proportional to the live population (here, none).
    EXPECT_LE(loop_.timer_heap_size(), 128u);
  });
}

TEST_F(LoopTimerTest, RearmRefusesHeapAndDeadTimers) {
  RunOnLoop([&]() {
    const EventLoop::TimerId heap_timer = loop_.ScheduleAfterMs(3'600'000, []() {});
    EXPECT_FALSE(loop_.RearmTimerMs(heap_timer, 50));  // heap-resident: no rearm
    loop_.CancelTimer(heap_timer);
    const EventLoop::TimerId wheel_timer = loop_.ScheduleAfterMs(50, []() {});
    loop_.CancelTimer(wheel_timer);
    EXPECT_FALSE(loop_.RearmTimerMs(wheel_timer, 50));  // dead: no rearm
  });
}

}  // namespace
}  // namespace lard
