// Unit tests for the tracing subsystem: span lifecycle through the rings,
// overwrite-oldest semantics, deterministic sampling, and well-formedness of
// the two render formats the admin server serves.
#include "src/util/tracing.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace lard {
namespace {

// Minimal structural JSON check: balanced braces/brackets outside strings,
// valid escapes, nothing after the top-level value. Catches the classic
// renderer bugs (stray comma handling is exercised by the substring checks).
bool JsonBalanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= text.size()) {
          return false;
        }
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) {
          return false;
        }
        if (depth == 0 && i + 1 != text.size()) {
          return false;  // trailing garbage
        }
        break;
      case ',':
        if (i + 1 < text.size() && (text[i + 1] == '}' || text[i + 1] == ']')) {
          return false;  // trailing comma
        }
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

TracerConfig TraceAll() {
  TracerConfig config;
  config.sample_every = 1;
  config.ring_capacity = 64;
  return config;
}

TEST(TraceRing, OverwritesOldestAndCountsEverything) {
  TraceRing ring("test", 4);
  for (uint32_t i = 0; i < 6; ++i) {
    TraceSpan span;
    span.trace_id = 7;
    span.seq = i;
    span.start_us = i;
    ring.Record(span);
  }
  EXPECT_EQ(ring.recorded(), 6u);
  const std::vector<TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: seqs 0 and 1 were overwritten.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, i + 2);
  }
}

TEST(TraceRing, SnapshotBeforeWrapIsInsertionOrder) {
  TraceRing ring("test", 8);
  for (uint32_t i = 0; i < 3; ++i) {
    TraceSpan span;
    span.seq = i;
    ring.Record(span);
  }
  const std::vector<TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_EQ(spans[2].seq, 2u);
}

TEST(Tracer, SamplingIsDeterministicAndPartial) {
  TracerConfig config;
  config.sample_every = 16;
  Tracer a(config);
  Tracer b(config);
  int sampled = 0;
  for (uint64_t id = 0; id < 4096; ++id) {
    EXPECT_EQ(a.Sampled(id), b.Sampled(id)) << "verdict must depend only on the id";
    sampled += a.Sampled(id) ? 1 : 0;
  }
  // ~1/16 of well-mixed ids: some, but far from all.
  EXPECT_GT(sampled, 64);
  EXPECT_LT(sampled, 1024);

  Tracer all(TraceAll());
  EXPECT_TRUE(all.Sampled(0));
  EXPECT_TRUE(all.Sampled(123456789));

  TracerConfig off;
  off.enabled = false;
  off.sample_every = 1;
  Tracer disabled(off);
  EXPECT_FALSE(disabled.Sampled(0));
}

TEST(Tracer, RecordSpanHonorsSamplingAndNullArguments) {
  TracerConfig config;
  config.sample_every = 16;
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("fe0");
  // Find an unsampled and a sampled id.
  uint64_t unsampled = 0;
  uint64_t sampled = 0;
  for (uint64_t id = 1; id < 10000 && (unsampled == 0 || sampled == 0); ++id) {
    (tracer.Sampled(id) ? sampled : unsampled) = id;
  }
  ASSERT_NE(unsampled, 0u);
  ASSERT_NE(sampled, 0u);

  RecordSpan(&tracer, ring, unsampled, 0, SpanKind::kServe, 1, 10, 5, "skipped");
  EXPECT_EQ(ring->recorded(), 0u);
  RecordSpan(&tracer, ring, sampled, 0, SpanKind::kServe, 1, 10, 5, "status=%d", 200);
  EXPECT_EQ(ring->recorded(), 1u);
  // Null tracer/ring are silent no-ops (components without a tracer).
  RecordSpan(nullptr, ring, sampled, 0, SpanKind::kServe, 1, 10, 5, "x");
  RecordSpan(&tracer, nullptr, sampled, 0, SpanKind::kServe, 1, 10, 5, "x");
  EXPECT_EQ(ring->recorded(), 1u);

  // The unsampled variant bypasses the per-id verdict but not the kill
  // switch.
  RecordSpanUnsampled(&tracer, ring, unsampled, 0, SpanKind::kGossip, -1, 10, 5, "round=1");
  EXPECT_EQ(ring->recorded(), 2u);
  TracerConfig off;
  off.enabled = false;
  Tracer disabled(off);
  TraceRing* off_ring = disabled.Ring("fe0");
  RecordSpanUnsampled(&disabled, off_ring, 1, 0, SpanKind::kGossip, -1, 10, 5, "round=1");
  EXPECT_EQ(off_ring->recorded(), 0u);
}

TEST(Tracer, RingIsFindOrCreateWithStablePointers) {
  Tracer tracer(TraceAll());
  TraceRing* fe = tracer.Ring("fe0");
  TraceRing* be = tracer.Ring("be1");
  EXPECT_NE(fe, be);
  EXPECT_EQ(tracer.Ring("fe0"), fe);
  EXPECT_EQ(fe->name(), "fe0");
}

TEST(Tracer, DetailIsTruncatedAndTerminated) {
  Tracer tracer(TraceAll());
  TraceRing* ring = tracer.Ring("fe0");
  const std::string longpath(200, 'a');
  RecordSpan(&tracer, ring, 1, 0, SpanKind::kParse, 0, 0, 0, "path=%s", longpath.c_str());
  const std::vector<TraceSpan> spans = ring->Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::strlen(spans[0].detail), sizeof(spans[0].detail) - 1);
}

TEST(Tracer, RenderJsonGroupsSpansByTraceSortedByStart) {
  Tracer tracer(TraceAll());
  TraceRing* fe = tracer.Ring("fe0");
  TraceRing* be = tracer.Ring("be1");
  // One request's life, recorded out of order and across rings.
  RecordSpan(&tracer, be, 42, 2, SpanKind::kServe, 1, 300, 50, "status=200 cache=h /x");
  RecordSpan(&tracer, fe, 42, 0, SpanKind::kAccept, 0, 100, 0, "fd=9");
  RecordSpan(&tracer, fe, 42, 1, SpanKind::kPolicy, 1, 200, 10, "policy=extlard");
  RecordSpan(&tracer, fe, 7, 0, SpanKind::kAccept, 0, 150, 0, "fd=10");

  const std::string json = tracer.RenderJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":7"), std::string::npos);
  // Within trace 42, accept must precede policy must precede serve.
  const size_t accept = json.find("\"kind\":\"accept\",\"seq\":0,\"node\":0,\"start_us\":100");
  const size_t policy = json.find("\"kind\":\"policy\"");
  const size_t serve = json.find("\"kind\":\"serve\"");
  ASSERT_NE(accept, std::string::npos);
  ASSERT_NE(policy, std::string::npos);
  ASSERT_NE(serve, std::string::npos);
  EXPECT_LT(accept, policy);
  EXPECT_LT(policy, serve);
  // Ring inventory rides along.
  EXPECT_NE(json.find("\"rings\":[{\"name\":\"fe0\""), std::string::npos);
}

TEST(Tracer, RenderJsonEscapesDetails) {
  Tracer tracer(TraceAll());
  TraceRing* ring = tracer.Ring("fe0");
  RecordSpan(&tracer, ring, 1, 0, SpanKind::kParse, 0, 0, 0, "path=\"a\\b\"");
  const std::string json = tracer.RenderJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("path=\\\"a\\\\b\\\""), std::string::npos);
}

TEST(Tracer, RenderChromeIsWellFormedTraceEventJson) {
  Tracer tracer(TraceAll());
  TraceRing* fe = tracer.Ring("fe0");
  TraceRing* be = tracer.Ring("be0");
  RecordSpan(&tracer, fe, 42, 0, SpanKind::kAccept, 0, 100, 0, "fd=9");
  RecordSpan(&tracer, be, 42, 1, SpanKind::kServe, 0, 200, 70, "status=200");
  RecordSpan(&tracer, be, 42, 2, SpanKind::kFlush, 0, 270, 0, "bytes=512");

  const std::string chrome = tracer.RenderChrome();
  EXPECT_TRUE(JsonBalanced(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  // One thread_name metadata record per ring.
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(chrome.find("\"args\":{\"name\":\"fe0\"}"), std::string::npos);
  EXPECT_NE(chrome.find("\"args\":{\"name\":\"be0\"}"), std::string::npos);
  // Complete events carry the span payload; zero durations render as 1 so
  // the viewer draws a visible slice.
  EXPECT_NE(chrome.find("\"name\":\"serve\",\"cat\":\"lard\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":270,\"dur\":1"), std::string::npos);
  EXPECT_NE(chrome.find("\"trace_id\":\"42\""), std::string::npos);
}

TEST(Tracer, EmptyRendersAreWellFormed) {
  Tracer tracer(TraceAll());
  EXPECT_TRUE(JsonBalanced(tracer.RenderJson()));
  EXPECT_TRUE(JsonBalanced(tracer.RenderChrome()));
}

TEST(Tracer, LogSlowHandlesSampledAndUnsampledTraces) {
  TracerConfig config;
  config.sample_every = 1;
  config.slow_threshold_us = 100;
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("be0");
  RecordSpan(&tracer, ring, 42, 0, SpanKind::kAdopt, 0, 0, 0, "fe=0");
  TraceSpan final_span;
  final_span.trace_id = 42;
  final_span.kind = SpanKind::kServe;
  final_span.duration_us = 5000;
  tracer.LogSlow(final_span);  // sampled: summary + tree (must not crash)

  TracerConfig sparse = config;
  sparse.sample_every = 1u << 30;
  Tracer sparse_tracer(sparse);
  sparse_tracer.LogSlow(final_span);  // unsampled: summary only
}

}  // namespace
}  // namespace lard
