// Failure-path tests for LateralClient, the pipelined back-end-to-back-end
// fetch channel: transport failure (status 0) mid-pipeline, FIFO response
// matching when errors interleave with successes, and reconnect-on-next-fetch
// after the peer goes away.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/socket.h"
#include "src/proto/lateral_client.h"

namespace lard {
namespace {

std::string OkResponse(const std::string& body) {
  return "HTTP/1.1 200 OK\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

// Drives a LateralClient on a real event loop; Fetch() calls are posted to
// the loop thread (the class contract) and results collected under a mutex.
class LateralClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto listener = ListenTcp(0, &port_);
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(listener.value());
    loop_thread_ = std::thread([this]() { loop_.Run(); });
  }

  void TearDown() override {
    loop_.Post([this]() { client_.reset(); });
    loop_.Stop();
    loop_thread_.join();
    if (peer_thread_.joinable()) {
      peer_thread_.join();
    }
  }

  void StartClient() {
    loop_.Post([this]() { client_ = std::make_unique<LateralClient>(&loop_, port_); });
  }

  // Issues a fetch from the loop thread; results land in results_ in
  // callback order.
  void Fetch(const std::string& path) { FetchAll({path}); }

  // Issues several fetches in ONE loop task, so all of them are in flight
  // before the loop can process any peer response — tests that expect "both
  // fetches fail together" must not race the peer's (instant, under
  // sanitizer timing) reply against the second Fetch's posting.
  void FetchAll(std::vector<std::string> paths) {
    loop_.Post([this, paths = std::move(paths)]() {
      for (const std::string& path : paths) {
        client_->Fetch(path, [this, path](int status, std::string body) {
          std::lock_guard<std::mutex> lock(mutex_);
          results_.push_back({path, status, std::move(body)});
          cv_.notify_all();
        });
      }
    });
  }

  void WaitForResults(size_t count) {
    std::unique_lock<std::mutex> lock(mutex_);
    ASSERT_TRUE(cv_.wait_for(lock, std::chrono::seconds(5),
                             [&]() { return results_.size() >= count; }))
        << "only " << results_.size() << " of " << count << " callbacks fired";
  }

  struct FetchResult {
    std::string path;
    int status = -1;
    std::string body;
  };

  uint16_t port_ = 0;
  UniqueFd listener_;
  EventLoop loop_;
  std::thread loop_thread_;
  std::thread peer_thread_;
  std::unique_ptr<LateralClient> client_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<FetchResult> results_;
};

TEST_F(LateralClientTest, TransportFailureMidPipelineFailsAllInFlightInOrder) {
  // Peer accepts, answers the first request, then slams the connection while
  // two more fetches are in flight.
  peer_thread_ = std::thread([this]() {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    ASSERT_GE(fd, 0);
    char buf[4096];
    size_t got = 0;
    std::string data;
    // Read until all three pipelined requests arrived (three "\r\n\r\n").
    while (got < 3) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      data.append(buf, static_cast<size_t>(n));
      got = 0;
      for (size_t pos = 0; (pos = data.find("\r\n\r\n", pos)) != std::string::npos; pos += 4) {
        ++got;
      }
    }
    const std::string response = OkResponse("first");
    (void)!::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
    ::usleep(50 * 1000);  // let the response drain before the reset
    ::close(fd);
  });

  StartClient();
  Fetch("/a");
  Fetch("/b");
  Fetch("/c");
  WaitForResults(3);

  std::lock_guard<std::mutex> lock(mutex_);
  ASSERT_EQ(results_.size(), 3u);
  // FIFO: /a got the one real response; /b and /c fail with transport
  // status 0 in issue order, not reversed or dropped.
  EXPECT_EQ(results_[0].path, "/a");
  EXPECT_EQ(results_[0].status, 200);
  EXPECT_EQ(results_[0].body, "first");
  EXPECT_EQ(results_[1].path, "/b");
  EXPECT_EQ(results_[1].status, 0);
  EXPECT_TRUE(results_[1].body.empty());
  EXPECT_EQ(results_[2].path, "/c");
  EXPECT_EQ(results_[2].status, 0);
}

TEST_F(LateralClientTest, GarbageResponseFailsPipelineWithStatusZero) {
  peer_thread_ = std::thread([this]() {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    ASSERT_GE(fd, 0);
    char buf[4096];
    (void)!::recv(fd, buf, sizeof(buf), 0);
    const std::string garbage = "NOT/HTTP nonsense\r\n\r\n";
    (void)!::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL);
    ::usleep(100 * 1000);
    ::close(fd);
  });

  StartClient();
  FetchAll({"/x", "/y"});
  WaitForResults(2);

  std::lock_guard<std::mutex> lock(mutex_);
  // A peer speaking garbage is a transport failure for everything in flight.
  EXPECT_EQ(results_[0].status, 0);
  EXPECT_EQ(results_[1].status, 0);
}

TEST_F(LateralClientTest, ReconnectsAfterPeerLossAndKeepsServing) {
  std::atomic<int> connections{0};
  peer_thread_ = std::thread([this, &connections]() {
    // First connection: die without answering. Second: behave.
    for (int round = 0; round < 2; ++round) {
      const int fd = ::accept(listener_.get(), nullptr, nullptr);
      if (fd < 0) {
        return;
      }
      ++connections;
      char buf[4096];
      (void)!::recv(fd, buf, sizeof(buf), 0);
      if (round == 1) {
        const std::string response = OkResponse("back");
        (void)!::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
        ::usleep(50 * 1000);
      }
      ::close(fd);
    }
  });

  StartClient();
  Fetch("/dead");
  WaitForResults(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EXPECT_EQ(results_[0].status, 0);
  }
  // The next fetch must transparently reconnect and succeed.
  Fetch("/alive");
  WaitForResults(2);
  std::lock_guard<std::mutex> lock(mutex_);
  EXPECT_EQ(results_[1].path, "/alive");
  EXPECT_EQ(results_[1].status, 200);
  EXPECT_EQ(results_[1].body, "back");
  EXPECT_EQ(connections.load(), 2);
  EXPECT_EQ(client_->fetches_issued(), 2u);
}

TEST_F(LateralClientTest, ConnectFailureFailsImmediatelyWithStatusZero) {
  // Nothing listens on the drained port once the listener closes.
  listener_ = UniqueFd();
  StartClient();
  Fetch("/nobody");
  WaitForResults(1);
  std::lock_guard<std::mutex> lock(mutex_);
  EXPECT_EQ(results_[0].status, 0);
}

}  // namespace
}  // namespace lard
