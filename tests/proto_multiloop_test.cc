// Reactor-per-core front-end tests: a multi-loop FE serves correctly, shards
// accepted connections across its loops, keeps every connection pinned to its
// owning loop for life (pinning_violations() stays 0 — the invariant the
// whole refactor rests on), and does all of that through randomized back-end
// membership churn. The explicit fe_loops=1 configuration must behave exactly
// like the classic single-loop harness regardless of LARD_FE_LOOPS.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/tracing.h"

namespace lard {
namespace {

Trace TestTrace(int sessions = 300) {
  SyntheticTraceConfig config;
  config.seed = 23;
  config.num_pages = 80;
  config.num_sessions = sessions;
  config.num_clients = 16;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig MultiLoopConfig(int nodes, int fe_loops, int frontends = 1) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.num_frontends = frontends;
  config.fe_loops = fe_loops;  // explicit: wins over LARD_FE_LOOPS
  config.gossip_interval_ms = 10;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 2000;
  config.retire_grace_ms = 2000;
  return config;
}

// How many of FE `fe`'s per-loop trace rings ("fe<fe>" = loop 0,
// "fe<fe>.<k>" = shard k) recorded at least one span.
int LoopsWithTraffic(Cluster& cluster, int fe) {
  const std::string loop0 = "fe" + std::to_string(fe);
  const std::string shard_prefix = loop0 + ".";
  int active = 0;
  for (const TraceRingSnapshot& ring : cluster.tracer()->SnapshotAll()) {
    const bool mine = ring.name == loop0 ||
                      ring.name.compare(0, shard_prefix.size(), shard_prefix) == 0;
    if (mine && ring.recorded > 0) {
      ++active;
    }
  }
  return active;
}

TEST(ProtoMultiLoopTest, FourLoopFrontEndServesAndShardsConnections) {
  const Trace trace = TestTrace();
  ClusterConfig config = MultiLoopConfig(3, 4);
  config.trace_sample_every = 1;  // every connection leaves accept spans
  Cluster cluster(config, &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_EQ(cluster.frontend().fe_loops(), 4);

  LoadGeneratorConfig load;
  load.ports = cluster.ports();
  load.num_clients = 8;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);

  // The accepted connections really sharded: with hundreds of connections
  // dealt across 4 loops (SO_REUSEPORT or the round-robin fallback), more
  // than one loop must have taken traffic...
  EXPECT_GE(LoopsWithTraffic(cluster, 0), 2);
  // ...and not one callback fired off its connection's owning loop.
  EXPECT_EQ(cluster.frontend().pinning_violations(), 0u);

  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_EQ(snapshot.requests_served, trace.total_requests());
  cluster.Stop();
}

TEST(ProtoMultiLoopTest, ExplicitSingleLoopMatchesClassicHarness) {
  const Trace trace = TestTrace(150);
  Cluster cluster(MultiLoopConfig(2, /*fe_loops=*/1), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());
  // Even with LARD_FE_LOOPS exported (the CI matrix does), an explicit
  // fe_loops=1 must produce the classic one-loop front end.
  EXPECT_EQ(cluster.frontend().fe_loops(), 1);

  LoadGeneratorConfig load;
  load.ports = cluster.ports();
  load.num_clients = 4;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_EQ(cluster.frontend().pinning_violations(), 0u);
  cluster.Stop();
}

// The churn test: two 4-loop front-ends under sustained load while a
// seeded RNG adds, drains and removes back-ends. Connection pinning must
// survive all of it — every giveback, re-handoff and node teardown crosses
// loops via posted closures, and this asserts none of them ever touched a
// connection from the wrong loop.
TEST(ProtoMultiLoopTest, PinningHoldsUnderRandomizedBackendChurn) {
  const Trace trace = TestTrace(800);
  Cluster cluster(MultiLoopConfig(3, 4, /*frontends=*/2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadResult result;
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.ports = cluster.ports();
    load.num_clients = 8;
    load.recv_timeout_ms = 10000;
    result = RunLoad(load, trace);
  });

  std::mt19937 rng(17);
  std::vector<NodeId> added;
  for (int op = 0; op < 6; ++op) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30 + rng() % 50));
    if (added.empty() || rng() % 2 == 0) {
      added.push_back(cluster.AddNode(1.0 + (rng() % 2)));
    } else {
      const size_t victim = rng() % added.size();
      EXPECT_TRUE(cluster.DrainNode(added[victim]));
      EXPECT_TRUE(cluster.RemoveNode(added[victim]));
      added.erase(added.begin() + static_cast<long>(victim));
    }
  }
  load_thread.join();

  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  for (int fe = 0; fe < 2; ++fe) {
    EXPECT_EQ(cluster.frontend(fe).pinning_violations(), 0u) << "fe=" << fe;
  }
  cluster.Stop();
}

}  // namespace
}  // namespace lard
