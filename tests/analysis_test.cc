#include <gtest/gtest.h>

#include "src/analysis/mechanism_analysis.h"

namespace lard {
namespace {

AnalysisConfig Apache() {
  AnalysisConfig config;
  config.costs = ApacheCosts();
  return config;
}

AnalysisConfig Flash() {
  AnalysisConfig config;
  config.costs = FlashCosts();
  return config;
}

TEST(AnalysisTest, ForwardingWinsForSmallResponses) {
  const AnalysisConfig config = Apache();
  EXPECT_GT(BackEndForwardingBandwidthMbps(config, 1024),
            MultiHandoffBandwidthMbps(config, 1024));
}

TEST(AnalysisTest, HandoffWinsForLargeResponses) {
  const AnalysisConfig config = Apache();
  EXPECT_LT(BackEndForwardingBandwidthMbps(config, 100 * 1024),
            MultiHandoffBandwidthMbps(config, 100 * 1024));
}

TEST(AnalysisTest, ApacheCrossoverNearTwelveKb) {
  // Figure 5: with our reconstructed handoff cost the crossover lands at
  // ~12 KB (see DESIGN.md §3); verify the solver and calibration agree.
  const double crossover = CrossoverFileSizeBytes(Apache());
  EXPECT_GT(crossover, 10.0 * 1024);
  EXPECT_LT(crossover, 14.0 * 1024);
}

TEST(AnalysisTest, FlashCrossoverNearSixKb) {
  const double crossover = CrossoverFileSizeBytes(Flash());
  EXPECT_GT(crossover, 4.5 * 1024);
  EXPECT_LT(crossover, 7.5 * 1024);
}

TEST(AnalysisTest, MechanismsTieAtCrossover) {
  for (const AnalysisConfig& config : {Apache(), Flash()}) {
    const double crossover = CrossoverFileSizeBytes(config);
    const double forwarding = BackEndForwardingBandwidthMbps(config, crossover);
    const double handoff = MultiHandoffBandwidthMbps(config, crossover);
    EXPECT_NEAR(forwarding / handoff, 1.0, 0.02) << config.costs.name;
  }
}

TEST(AnalysisTest, BandwidthIncreasesWithFileSize) {
  const AnalysisConfig config = Apache();
  double previous_multi = 0.0;
  double previous_forward = 0.0;
  for (double kb = 1; kb <= 100; kb += 1) {
    const double multi = MultiHandoffBandwidthMbps(config, kb * 1024);
    const double forward = BackEndForwardingBandwidthMbps(config, kb * 1024);
    EXPECT_GT(multi, previous_multi);
    EXPECT_GT(forward, previous_forward);
    previous_multi = multi;
    previous_forward = forward;
  }
}

TEST(AnalysisTest, BandwidthScalesWithNodes) {
  AnalysisConfig four = Apache();
  AnalysisConfig eight = Apache();
  eight.num_nodes = 8;
  EXPECT_NEAR(MultiHandoffBandwidthMbps(eight, 8192) / MultiHandoffBandwidthMbps(four, 8192),
              2.0, 1e-9);
}

TEST(AnalysisTest, SweepCoversRangeInOrder) {
  const auto points = SweepFileSizes(Apache(), 1, 100, 34);
  ASSERT_EQ(points.size(), 34u);
  EXPECT_DOUBLE_EQ(points.front().file_size_bytes, 1024.0);
  EXPECT_DOUBLE_EQ(points.back().file_size_bytes, 100.0 * 1024);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].file_size_bytes, points[i - 1].file_size_bytes);
  }
}

TEST(AnalysisTest, CrossoverIndependentOfRequestsPerConnection) {
  // The paper: "these results are nearly independent of the average number of
  // requests received on a persistent connection". In our model the per-
  // remote-request tradeoff is exactly independent of R.
  AnalysisConfig config = Apache();
  config.requests_per_connection = 2;
  const double crossover_short = CrossoverFileSizeBytes(config);
  config.requests_per_connection = 32;
  const double crossover_long = CrossoverFileSizeBytes(config);
  EXPECT_NEAR(crossover_short, crossover_long, 64.0);
}

TEST(AnalysisTest, HigherHandoffCostMovesCrossoverUp) {
  AnalysisConfig config = Apache();
  const double base = CrossoverFileSizeBytes(config);
  config.costs.handoff_us *= 2;
  EXPECT_GT(CrossoverFileSizeBytes(config), base);
}

TEST(AnalysisTest, CheaperForwardingMovesCrossoverUp) {
  AnalysisConfig config = Apache();
  const double base = CrossoverFileSizeBytes(config);
  config.forward_receive_factor = 0.0;  // free receive path
  EXPECT_GT(CrossoverFileSizeBytes(config), base);
}

}  // namespace
}  // namespace lard
