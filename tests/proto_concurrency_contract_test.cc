// Regression tests for the concurrency contract (docs/CONCURRENCY.md),
// covering the unguarded-access bugs the thread-safety annotation pass
// surfaced. Each test reproduces the original race shape; the file name
// keeps it inside the TSan CI job's test regex, so a regression shows up as
// a data-race report, not just a flaky assertion.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/proto/cluster.h"
#include "src/proto/disk_gate.h"
#include "src/sim/cost_model.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace SmallTrace() {
  SyntheticTraceConfig config;
  config.seed = 7;
  config.num_pages = 40;
  config.num_sessions = 50;
  config.num_clients = 8;
  config.max_size_bytes = 16 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.num_frontends = 1;
  config.gossip_interval_ms = 20;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 1ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 2000;
  config.retire_grace_ms = 2000;
  return config;
}

// Cluster::port()/ports()/num_frontends()/frontend() used to read fes_
// without nodes_mutex_, racing AddFrontEnd()'s reallocation of the vector.
// Hammer the accessors from reader threads while two replicas join.
TEST(ConcurrencyContractTest, ClusterAccessorsAreSafeDuringFrontEndJoin) {
  const Trace trace = SmallTrace();
  Cluster cluster(SmallConfig(), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&cluster, &stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_NE(cluster.port(), 0);
        EXPECT_GE(cluster.ports().size(), 1u);
        EXPECT_GE(cluster.num_frontends(), 1);
        std::this_thread::yield();
      }
    });
  }

  const int first = cluster.AddFrontEnd();
  const int second = cluster.AddFrontEnd();
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
  EXPECT_EQ(cluster.num_frontends(), 3);
  EXPECT_EQ(cluster.ports().size(), 3u);
  cluster.Stop();
}

// A DiskGate destroyed with a completion timer still pending must drop the
// completion (LivenessToken::Guard), not run it into the dead gate.
TEST(ConcurrencyContractTest, DiskGateDestructionDropsPendingCompletions) {
  EventLoop loop;
  std::thread runner([&loop]() { loop.Run(); });

  std::atomic<bool> completed{false};
  std::atomic<bool> destroyed{false};
  auto gate = std::make_unique<DiskGate>(&loop, DiskCostModel{}, /*time_scale=*/0.001);
  loop.Post([&]() {
    // Completion lands >= 1ms out; the gate dies in the same loop iteration,
    // so the timer is guaranteed to fire after ~DiskGate.
    gate->Read(4096, [&completed]() { completed.store(true); });
    gate.reset();
    destroyed.store(true);
  });
  while (!destroyed.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  EXPECT_FALSE(completed.load());
  loop.Stop();
  runner.join();
}

// Release builds count off-thread touches of loop-confined state instead of
// aborting; the counter is the health signal CI and ops scrape. Debug builds
// make the same touch fatal, so the counting path is release-only.
TEST(ConcurrencyContractTest, OffThreadLoopTouchIsCountedInRelease) {
#ifndef NDEBUG
  GTEST_SKIP() << "AssertInLoopThread is fatal in debug builds";
#else
  EventLoop loop;
  std::thread runner([&loop]() { loop.Run(); });
  std::atomic<bool> started{false};
  loop.Post([&started]() { started.store(true); });
  while (!started.load()) {
    std::this_thread::yield();
  }

  EXPECT_EQ(loop.pinning_violations(), 0u);
  // CancelTimer is a loop-confined API; with no timers registered the call
  // touches no state the loop thread also touches, so the only observable
  // effect is the violation count.
  loop.CancelTimer(12345);
  EXPECT_GE(loop.pinning_violations(), 1u);

  loop.Stop();
  runner.join();
#endif
}

// Before Run() and after Stop(), single-threaded setup/teardown from the
// owner thread is legal and must not count as a violation.
TEST(ConcurrencyContractTest, SetupBeforeRunDoesNotCountAsViolation) {
  EventLoop loop;
  const EventLoop::TimerId id = loop.ScheduleAfterMs(10'000, []() {});
  loop.CancelTimer(id);
  EXPECT_EQ(loop.pinning_violations(), 0u);
}

}  // namespace
}  // namespace lard
