// End-to-end tests of the replicated front-end tier on the real prototype:
// two front-ends with their own listen ports and control sessions, the
// pairwise gossip mesh, per-FE metrics labels, GET /mesh, and membership
// operations fanned out across the replicas.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"

namespace lard {
namespace {

Trace TestTrace(int sessions = 300) {
  SyntheticTraceConfig config;
  config.seed = 11;
  config.num_pages = 80;
  config.num_sessions = sessions;
  config.num_clients = 16;
  config.max_size_bytes = 32 * 1024;
  return GenerateSyntheticTrace(config);
}

ClusterConfig MeshConfig(int nodes, int frontends) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.num_frontends = frontends;
  config.gossip_interval_ms = 10;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;
  config.disk_time_scale = 0.02;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 2000;
  config.retire_grace_ms = 2000;
  return config;
}

// Blocking HTTP/1.0 request against the admin API; returns "<status> <body>".
std::string AdminHttp(uint16_t port, const std::string& method, const std::string& path,
                      const std::string& body = "") {
  auto fd = ConnectTcp(port);
  if (!fd.ok()) {
    return "<connect failed>";
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  if (::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return "<send failed>";
  }
  std::string reply;
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = reply.find("\r\n");
  const size_t header_end = reply.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    return reply;
  }
  const std::string status_line = reply.substr(0, line_end);
  const size_t space = status_line.find(' ');
  return status_line.substr(space + 1, 3) + " " + reply.substr(header_end + 4);
}

TEST(ProtoMeshTest, TwoFrontEndsServeSprayedTrafficCorrectly) {
  const Trace trace = TestTrace();
  Cluster cluster(MeshConfig(3, 2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  const std::vector<uint16_t> ports = cluster.ports();
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_NE(ports[0], ports[1]);

  LoadGeneratorConfig load;
  load.ports = ports;  // clients spray across the tier
  load.num_clients = 8;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);

  // Both replicas took connections, and each connection has exactly one
  // owner (the tier-wide accepted count matches the per-replica sum).
  const uint64_t fe0 = cluster.frontend(0).counters().connections_accepted.load();
  const uint64_t fe1 = cluster.frontend(1).counters().connections_accepted.load();
  EXPECT_GT(fe0, 0u);
  EXPECT_GT(fe1, 0u);
  const ClusterSnapshot snapshot = cluster.Snapshot();
  EXPECT_EQ(snapshot.connections, fe0 + fe1);
  EXPECT_EQ(snapshot.requests_served, trace.total_requests());

  // Gossip flowed: each replica applied deltas from the other and neither
  // saw an epoch regression.
  for (int fe = 0; fe < 2; ++fe) {
    const std::string mesh = cluster.frontend(fe).DescribeMeshJson();
    EXPECT_NE(mesh.find("\"peers\":[{"), std::string::npos) << mesh;
    EXPECT_NE(mesh.find("\"epoch_regressions\":0"), std::string::npos) << mesh;
  }
  cluster.Stop();
}

TEST(ProtoMeshTest, MeshEndpointAndPerFeMetricLabels) {
  const Trace trace = TestTrace(150);
  Cluster cluster(MeshConfig(2, 2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadGeneratorConfig load;
  load.ports = cluster.ports();
  load.num_clients = 4;
  (void)RunLoad(load, trace);
  // Let at least one gossip tick refresh the snapshots.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const std::string mesh = AdminHttp(cluster.admin_port(), "GET", "/mesh");
  EXPECT_EQ(mesh.substr(0, 3), "200") << mesh;
  EXPECT_NE(mesh.find("\"frontends\":2"), std::string::npos) << mesh;
  EXPECT_NE(mesh.find("\"fe_id\":0"), std::string::npos) << mesh;
  EXPECT_NE(mesh.find("\"fe_id\":1"), std::string::npos) << mesh;
  EXPECT_NE(mesh.find("\"membership_epoch\""), std::string::npos) << mesh;
  EXPECT_NE(mesh.find("\"gossip_lag_ms\""), std::string::npos) << mesh;

  const std::string metrics = AdminHttp(cluster.admin_port(), "GET", "/metrics");
  EXPECT_NE(metrics.find("lard_fe_connections_total{fe=\"0\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_fe_connections_total{fe=\"1\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_mesh_peers{fe=\"0\"}"), std::string::npos);
  EXPECT_NE(metrics.find("lard_mesh_deltas_sent_total{fe=\"1\"}"), std::string::npos);
  cluster.Stop();
}

TEST(ProtoMeshTest, MembershipOperationsFanOutToEveryReplica) {
  const Trace trace = TestTrace(150);
  Cluster cluster(MeshConfig(2, 2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // Replica dispatchers are loop-thread-confined; every read below runs on
  // the owning loop via InspectReplica (a bare cluster.frontend(fe) read
  // from this thread would be a data race — ThreadSanitizer agrees).
  const auto node_slots = [&](int fe) {
    int slots = 0;
    cluster.InspectReplica(
        fe, [&](const FrontEnd& frontend) { slots = frontend.dispatcher().num_node_slots(); });
    return slots;
  };
  const auto node_state = [&](int fe, NodeId node) {
    NodeState state = NodeState::kActive;
    cluster.InspectReplica(
        fe, [&](const FrontEnd& frontend) { state = frontend.dispatcher().node_state(node); });
    return state;
  };

  // Join: both replicas must allocate the same id (replica 0 registers
  // synchronously, the fan-out to replica 1 is posted — poll for it).
  const NodeId added = cluster.AddNode(2.0);
  EXPECT_EQ(added, 2);
  EXPECT_EQ(node_slots(0), 3);
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (node_slots(1) == 3) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(node_slots(1), 3);
  for (int fe = 0; fe < 2; ++fe) {
    double weight = 0.0;
    cluster.InspectReplica(fe, [&](const FrontEnd& frontend) {
      weight = frontend.dispatcher().NodeWeight(added);
    });
    EXPECT_DOUBLE_EQ(weight, 2.0);
  }

  // Drain: every replica stops assigning to the node (replica 0 answers
  // synchronously; the fan-out to the others is posted, so poll).
  ASSERT_TRUE(cluster.DrainNode(added));
  EXPECT_EQ(node_state(0, added), NodeState::kDraining);
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (node_state(1, added) == NodeState::kDraining) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(node_state(1, added), NodeState::kDraining);

  // Remove: the node disappears from both replicas (and its thread only
  // stops after both have let go — Stop() would hang otherwise).
  ASSERT_TRUE(cluster.RemoveNode(added));
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (node_state(0, added) == NodeState::kDead && node_state(1, added) == NodeState::kDead) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (int fe = 0; fe < 2; ++fe) {
    EXPECT_EQ(node_state(fe, added), NodeState::kDead);
  }

  // The tier still serves after the churn.
  LoadGeneratorConfig load;
  load.ports = cluster.ports();
  load.num_clients = 4;
  const LoadResult result = RunLoad(load, trace);
  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.transport_errors, 0u);
  cluster.Stop();
}

TEST(ProtoMeshTest, RuntimeFrontEndJoinAndLeave) {
  const Trace trace = TestTrace(200);
  Cluster cluster(MeshConfig(2, 2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  // A weighted node added before the join: the late FE must learn the
  // original weight, not default it.
  const NodeId weighted = cluster.AddNode(2.0);

  // Join: a third replica comes up at runtime with its own port and a
  // control session to every live back-end.
  const int joined = cluster.AddFrontEnd();
  ASSERT_EQ(joined, 2);
  std::vector<uint16_t> ports = cluster.ports();
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_NE(ports[2], 0);

  // Its dispatcher converged on the tier's membership (ids + weights).
  int slots = 0;
  double weight = 0.0;
  for (int attempt = 0; attempt < 100 && slots != 3; ++attempt) {
    cluster.InspectReplica(joined, [&](const FrontEnd& frontend) {
      slots = frontend.dispatcher().num_node_slots();
      weight = frontend.dispatcher().NodeWeight(weighted);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(slots, 3);
  EXPECT_DOUBLE_EQ(weight, 2.0);

  // The joined replica serves traffic addressed directly to it.
  LoadGeneratorConfig load;
  load.ports = {ports[2]};
  load.num_clients = 4;
  const LoadResult via_joined = RunLoad(load, trace);
  EXPECT_EQ(via_joined.responses_ok, trace.total_requests());
  EXPECT_EQ(via_joined.transport_errors, 0u);
  EXPECT_GT(cluster.frontend(joined).counters().connections_accepted.load(), 0u);

  // Leave: replica 0 (the control plane) is protected; the joined replica
  // goes away exactly once and its port slot zeroes out.
  EXPECT_FALSE(cluster.RemoveFrontEnd(0));
  EXPECT_TRUE(cluster.RemoveFrontEnd(joined));
  EXPECT_FALSE(cluster.RemoveFrontEnd(joined));
  ports = cluster.ports();
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[2], 0);

  // Membership verbs still work across the now-holey tier: the removal ack
  // threshold must count live replicas, or this RemoveNode would hang
  // waiting for an ack from the departed FE.
  ASSERT_TRUE(cluster.RemoveNode(weighted));
  const auto gone_everywhere = [&]() {
    for (int fe = 0; fe < 2; ++fe) {
      NodeState state = NodeState::kActive;
      cluster.InspectReplica(
          fe, [&](const FrontEnd& frontend) { state = frontend.dispatcher().node_state(weighted); });
      if (state != NodeState::kDead) {
        return false;
      }
    }
    return true;
  };
  for (int attempt = 0; attempt < 100 && !gone_everywhere(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gone_everywhere());

  // The surviving replicas keep serving.
  load.ports = {ports[0], ports[1]};
  const LoadResult after = RunLoad(load, trace);
  EXPECT_EQ(after.responses_ok, trace.total_requests());
  EXPECT_EQ(after.transport_errors, 0u);
  cluster.Stop();
}

TEST(ProtoMeshTest, DrainUnderLoadMigratesInsteadOfResetting) {
  const Trace trace = TestTrace(800);
  Cluster cluster(MeshConfig(3, 2), &trace.catalog());
  ASSERT_TRUE(cluster.Start().ok());

  LoadResult result;
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.ports = cluster.ports();
    load.num_clients = 8;
    load.recv_timeout_ms = 10000;
    result = RunLoad(load, trace);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(cluster.DrainNode(1));
  load_thread.join();

  EXPECT_EQ(result.responses_ok, trace.total_requests());
  EXPECT_EQ(result.responses_bad, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  cluster.Stop();
}

}  // namespace
}  // namespace lard
