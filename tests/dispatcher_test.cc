#include <gtest/gtest.h>

#include <memory>

#include "src/core/dispatcher.h"

namespace lard {
namespace {

// Scripted disk-queue feedback.
class FakeDiskStats : public BackendStatsProvider {
 public:
  explicit FakeDiskStats(int num_nodes) : queues_(static_cast<size_t>(num_nodes), 0) {}
  int DiskQueueLength(NodeId node) const override { return queues_[static_cast<size_t>(node)]; }
  void Set(NodeId node, int length) { queues_[static_cast<size_t>(node)] = length; }

 private:
  std::vector<int> queues_;
};

class DispatcherTest : public ::testing::Test {
 protected:
  void Build(Policy policy, Mechanism mechanism, int num_nodes,
             uint64_t cache_bytes = 1ull << 30, LardParams params = LardParams{}) {
    stats_ = std::make_unique<FakeDiskStats>(num_nodes);
    DispatcherConfig config;
    config.policy = policy;
    config.mechanism = mechanism;
    config.num_nodes = num_nodes;
    config.virtual_cache_bytes = cache_bytes;
    config.params = params;
    dispatcher_ = std::make_unique<Dispatcher>(config, &catalog_, stats_.get());
  }

  TargetId AddTarget(const std::string& path, uint64_t size = 1000) {
    return catalog_.Intern(path, size);
  }

  // Opens a connection and dispatches its first batch; returns assignments.
  std::vector<Assignment> OpenWithBatch(ConnId conn, const std::vector<TargetId>& targets) {
    dispatcher_->OnConnectionOpen(conn);
    return dispatcher_->OnBatch(conn, targets);
  }

  TargetCatalog catalog_;
  std::unique_ptr<FakeDiskStats> stats_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

// --- First-request (handoff) behaviour ---

TEST_F(DispatcherTest, FirstAssignmentIsHandoff) {
  Build(Policy::kLard, Mechanism::kSingleHandoff, 4);
  const TargetId t = AddTarget("/a");
  const auto assignments = OpenWithBatch(1, {t});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].action, AssignmentAction::kHandoff);
  EXPECT_GE(assignments[0].node, 0);
  EXPECT_EQ(dispatcher_->HandlingNode(1), assignments[0].node);
}

TEST_F(DispatcherTest, LardRoutesRepeatTargetToSameNode) {
  Build(Policy::kLard, Mechanism::kSingleHandoff, 4);
  const TargetId t = AddTarget("/hot.html");
  const NodeId first = OpenWithBatch(1, {t})[0].node;
  dispatcher_->OnConnectionClose(1);
  for (ConnId conn = 2; conn < 12; ++conn) {
    EXPECT_EQ(OpenWithBatch(conn, {t})[0].node, first) << "conn " << conn;
    dispatcher_->OnConnectionClose(conn);
  }
  EXPECT_TRUE(dispatcher_->TargetCachedAt(first, t));
}

TEST_F(DispatcherTest, LardPartitionsDistinctTargets) {
  // With idle nodes, distinct targets spread across the cluster (locality
  // partitioning, Fig. 1): each new target goes to an idle node and sticks.
  Build(Policy::kLard, Mechanism::kSingleHandoff, 4);
  std::set<NodeId> used;
  for (int i = 0; i < 4; ++i) {
    const TargetId t = AddTarget("/doc" + std::to_string(i));
    const auto assignments = OpenWithBatch(static_cast<ConnId>(i + 1), {t});
    used.insert(assignments[0].node);
  }
  // All nodes idle and costs tie: the tie-break must not pile everything on
  // one node once load differs. With load ties broken by lower load first,
  // at least two nodes must be used.
  EXPECT_GE(used.size(), 2u);
}

TEST_F(DispatcherTest, LardReassignsWhenMappedNodeOverloaded) {
  Build(Policy::kLard, Mechanism::kSingleHandoff, 2);
  const TargetId hot = AddTarget("/hot");
  const NodeId home = OpenWithBatch(1, {hot})[0].node;
  // Pile load beyond L_overload onto the home node with open connections.
  const LardParams params;
  const int pile = static_cast<int>(params.l_overload) + 5;
  ConnId conn = 100;
  int piled = 0;
  while (piled < pile) {
    const auto assignments = OpenWithBatch(conn, {hot});
    if (assignments[0].node == home) {
      ++piled;
    }
    ++conn;
  }
  // Now a fresh request for the hot target must flee to the other node.
  const auto assignments = OpenWithBatch(conn + 1, {hot});
  EXPECT_NE(assignments[0].node, home);
}

TEST_F(DispatcherTest, WrrIgnoresContent) {
  Build(Policy::kWrr, Mechanism::kSingleHandoff, 3);
  const TargetId t = AddTarget("/same");
  std::set<NodeId> used;
  for (ConnId conn = 1; conn <= 3; ++conn) {
    used.insert(OpenWithBatch(conn, {t})[0].node);  // conns stay open: load 1 each
  }
  // Same target, but WRR spreads by load: all three nodes get one connection.
  EXPECT_EQ(used.size(), 3u);
}

TEST_F(DispatcherTest, WrrPicksLeastLoaded) {
  Build(Policy::kWrr, Mechanism::kSingleHandoff, 2);
  const TargetId t = AddTarget("/x");
  const NodeId n1 = OpenWithBatch(1, {t})[0].node;
  const NodeId n2 = OpenWithBatch(2, {t})[0].node;
  EXPECT_NE(n1, n2);
  dispatcher_->OnConnectionClose(1);  // node n1 now idle
  EXPECT_EQ(OpenWithBatch(3, {t})[0].node, n1);
}

// --- Subsequent requests: mechanism constraints ---

TEST_F(DispatcherTest, SingleHandoffPinsSubsequentRequests) {
  Build(Policy::kLard, Mechanism::kSingleHandoff, 4);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  const auto batch2 = dispatcher_->OnBatch(1, {b});
  ASSERT_EQ(batch2.size(), 1u);
  EXPECT_EQ(batch2[0].action, AssignmentAction::kServeLocal);
  EXPECT_EQ(batch2[0].node, home);
}

TEST_F(DispatcherTest, ExtLardServesCachedTargetLocally) {
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 4);
  const TargetId a = AddTarget("/a");
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  stats_->Set(home, 100);  // disk busy — but /a is cached at home
  const auto again = dispatcher_->OnBatch(1, {a});
  EXPECT_EQ(again[0].action, AssignmentAction::kServeLocal);
  EXPECT_EQ(again[0].node, home);
}

TEST_F(DispatcherTest, ExtLardReadsFromIdleDiskAndCaches) {
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 4);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  stats_->Set(home, 0);  // idle disk
  const auto assignments = dispatcher_->OnBatch(1, {b});
  EXPECT_EQ(assignments[0].action, AssignmentAction::kServeLocal);
  EXPECT_TRUE(assignments[0].cache_after_miss);
  EXPECT_TRUE(dispatcher_->TargetCachedAt(home, b));
}

TEST_F(DispatcherTest, ExtLardForwardsToCachingNodeWhenDiskBusy) {
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 2);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  // Warm /b on some node via its own connection.
  const NodeId b_home = OpenWithBatch(10, {b})[0].node;
  dispatcher_->OnConnectionClose(10);
  // New connection for /a lands on the other node (LARD partitions).
  const auto first = OpenWithBatch(1, {a});
  const NodeId home = first[0].node;
  ASSERT_NE(home, b_home);
  stats_->Set(home, 100);  // busy disk at the handling node
  const auto assignments = dispatcher_->OnBatch(1, {b});
  EXPECT_EQ(assignments[0].action, AssignmentAction::kForward);
  EXPECT_EQ(assignments[0].node, b_home);
  EXPECT_GT(dispatcher_->counters().forwards, 0u);
}

TEST_F(DispatcherTest, ExtLardCachesFirstPlacementEvenWithBusyDisk) {
  // A target cached nowhere is a first placement, not replication: it must
  // enter the handling node's cache even when the disk is busy, or the
  // cluster could never warm up (see dispatcher.cc).
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 2);
  const TargetId a = AddTarget("/a");
  const TargetId cold = AddTarget("/cold");
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  stats_->Set(home, 100);  // busy disk, /cold cached nowhere
  const auto assignments = dispatcher_->OnBatch(1, {cold});
  EXPECT_EQ(assignments[0].action, AssignmentAction::kServeLocal);
  EXPECT_TRUE(assignments[0].cache_after_miss);
  EXPECT_TRUE(dispatcher_->TargetCachedAt(home, cold));
}

TEST_F(DispatcherTest, ExtLardAvoidsReplicationWhenServingDespiteRemoteCopy) {
  // The replication-avoidance heuristic: the target IS cached remotely, but
  // the remote node is past L_overload so the cost metrics keep the request
  // on the handling node — which must then serve from its busy disk WITHOUT
  // caching (a second copy would shrink the aggregate cache). Tiny LARD
  // parameters make the overload state easy to construct.
  LardParams params;
  params.l_idle = 1;
  params.l_overload = 3;
  params.miss_cost = 4;
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 2, 1ull << 30, params);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const NodeId b_home = OpenWithBatch(10, {b})[0].node;
  dispatcher_->OnConnectionClose(10);
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  ASSERT_NE(home, b_home);
  stats_->Set(home, 100);  // busy disk at the handling node
  // Three open connections for /b drive b_home to L_overload.
  ConnId conn = 100;
  while (dispatcher_->NodeLoad(b_home) < params.l_overload) {
    const auto assignments = OpenWithBatch(conn++, {b});
    ASSERT_EQ(assignments[0].node, b_home);
    ASSERT_LE(conn, 110u);
  }
  const auto assignments = dispatcher_->OnBatch(1, {b});
  EXPECT_EQ(assignments[0].action, AssignmentAction::kServeLocal);
  EXPECT_EQ(assignments[0].node, home);
  EXPECT_FALSE(assignments[0].cache_after_miss);
  EXPECT_FALSE(dispatcher_->TargetCachedAt(home, b));
  EXPECT_GT(dispatcher_->counters().served_without_caching, 0u);
}

TEST_F(DispatcherTest, MultiHandoffMigratesInsteadOfForwarding) {
  Build(Policy::kExtendedLard, Mechanism::kMultipleHandoff, 2);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const NodeId b_home = OpenWithBatch(10, {b})[0].node;
  dispatcher_->OnConnectionClose(10);
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  ASSERT_NE(home, b_home);
  stats_->Set(home, 100);
  const auto assignments = dispatcher_->OnBatch(1, {b});
  EXPECT_EQ(assignments[0].action, AssignmentAction::kMigrate);
  EXPECT_EQ(assignments[0].node, b_home);
  // The connection now lives on b_home.
  EXPECT_EQ(dispatcher_->HandlingNode(1), b_home);
  EXPECT_GT(dispatcher_->counters().migrations, 0u);
}

TEST_F(DispatcherTest, RelayingFrontEndNeverHandsOff) {
  Build(Policy::kExtendedLard, Mechanism::kRelayingFrontEnd, 3);
  const TargetId a = AddTarget("/a");
  const auto assignments = OpenWithBatch(1, {a, a, a});
  for (const auto& assignment : assignments) {
    EXPECT_EQ(assignment.action, AssignmentAction::kRelay);
  }
  EXPECT_EQ(dispatcher_->HandlingNode(1), kInvalidNode);
}

// --- Load accounting (Section 4.2) ---

TEST_F(DispatcherTest, ActiveConnectionIsOneLoadUnit) {
  Build(Policy::kLard, Mechanism::kSingleHandoff, 2);
  const TargetId a = AddTarget("/a");
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 1.0);
  dispatcher_->OnConnectionIdle(1);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 0.0);
  dispatcher_->OnBatch(1, {a});
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 1.0);
  dispatcher_->OnConnectionClose(1);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 0.0);
}

TEST_F(DispatcherTest, ForwardedBatchAddsFractionalLoad) {
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 2);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const TargetId c = AddTarget("/c");
  const NodeId remote_home = OpenWithBatch(10, {b})[0].node;
  dispatcher_->OnBatch(10, {c});
  dispatcher_->OnConnectionClose(10);

  const NodeId home = OpenWithBatch(1, {a})[0].node;
  ASSERT_NE(home, remote_home);
  stats_->Set(home, 100);
  // Batch of 4: two forwarded to remote_home -> 2 * (1/4) fractional load.
  const auto assignments = dispatcher_->OnBatch(1, {b, c, a, a});
  ASSERT_EQ(assignments.size(), 4u);
  EXPECT_EQ(assignments[0].action, AssignmentAction::kForward);
  EXPECT_EQ(assignments[1].action, AssignmentAction::kForward);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(remote_home), 0.5);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 1.0);

  // Next batch releases the previous batch's fractional loads.
  dispatcher_->OnBatch(1, {a});
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(remote_home), 0.0);
  dispatcher_->OnConnectionClose(1);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 0.0);
}

TEST_F(DispatcherTest, IdleReleasesFractionalLoads) {
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 2);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const NodeId remote_home = OpenWithBatch(10, {b})[0].node;
  dispatcher_->OnConnectionClose(10);
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  ASSERT_NE(home, remote_home);
  stats_->Set(home, 100);
  dispatcher_->OnBatch(1, {b});
  EXPECT_GT(dispatcher_->NodeLoad(remote_home), 0.0);
  dispatcher_->OnConnectionIdle(1);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(remote_home), 0.0);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 0.0);
}

TEST_F(DispatcherTest, MigrationMovesLoadUnit) {
  Build(Policy::kExtendedLard, Mechanism::kMultipleHandoff, 2);
  const TargetId a = AddTarget("/a");
  const TargetId b = AddTarget("/b");
  const NodeId b_home = OpenWithBatch(10, {b})[0].node;
  dispatcher_->OnConnectionClose(10);
  const NodeId home = OpenWithBatch(1, {a})[0].node;
  stats_->Set(home, 100);
  dispatcher_->OnBatch(1, {b});
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(b_home), 1.0);
  EXPECT_DOUBLE_EQ(dispatcher_->NodeLoad(home), 0.0);
  dispatcher_->OnConnectionClose(1);
}

// --- Cache modelling ---

TEST_F(DispatcherTest, VirtualCacheEvicts) {
  // Cache fits one 1000-byte target: serving /b evicts /a.
  Build(Policy::kLard, Mechanism::kSingleHandoff, 1, /*cache_bytes=*/1500);
  const TargetId a = AddTarget("/a", 1000);
  const TargetId b = AddTarget("/b", 1000);
  OpenWithBatch(1, {a});
  EXPECT_TRUE(dispatcher_->TargetCachedAt(0, a));
  dispatcher_->OnBatch(1, {b});
  EXPECT_TRUE(dispatcher_->TargetCachedAt(0, b));
  EXPECT_FALSE(dispatcher_->TargetCachedAt(0, a));
}

TEST_F(DispatcherTest, UnknownTargetIsLoadBalancedOnly) {
  Build(Policy::kLard, Mechanism::kSingleHandoff, 2);
  const auto assignments = OpenWithBatch(1, {kInvalidTarget});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].action, AssignmentAction::kHandoff);
  const auto next = dispatcher_->OnBatch(1, {kInvalidTarget});
  EXPECT_EQ(next[0].action, AssignmentAction::kServeLocal);
}

// --- Counters ---

TEST_F(DispatcherTest, CountersAddUp) {
  Build(Policy::kExtendedLard, Mechanism::kBackEndForwarding, 2);
  const TargetId a = AddTarget("/a");
  OpenWithBatch(1, {a});
  dispatcher_->OnBatch(1, {a});
  dispatcher_->OnConnectionClose(1);
  const DispatcherCounters& counters = dispatcher_->counters();
  EXPECT_EQ(counters.connections, 1u);
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.handoffs, 1u);
  EXPECT_EQ(counters.handoffs + counters.local_serves + counters.forwards +
                counters.migrations + counters.relays,
            counters.requests);
}

// Parameterized conservation check over every policy/mechanism combo used in
// the paper's figures.
struct Combo {
  Policy policy;
  Mechanism mechanism;
};

class ComboTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ComboTest, EveryRequestGetsExactlyOneAssignment) {
  TargetCatalog catalog;
  std::vector<TargetId> targets;
  for (int i = 0; i < 20; ++i) {
    targets.push_back(catalog.Intern("/t" + std::to_string(i), 500 + i));
  }
  FakeDiskStats stats(4);
  stats.Set(0, 100);  // one busy disk to exercise forwarding paths
  DispatcherConfig config;
  config.policy = GetParam().policy;
  config.mechanism = GetParam().mechanism;
  config.num_nodes = 4;
  Dispatcher dispatcher(config, &catalog, &stats);

  uint64_t expected_requests = 0;
  for (ConnId conn = 1; conn <= 50; ++conn) {
    dispatcher.OnConnectionOpen(conn);
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<TargetId> batch_targets;
      for (int i = 0; i < 4; ++i) {
        batch_targets.push_back(targets[(conn + batch * 4 + i) % targets.size()]);
      }
      const auto assignments = dispatcher.OnBatch(conn, batch_targets);
      ASSERT_EQ(assignments.size(), batch_targets.size());
      expected_requests += batch_targets.size();
      for (const auto& assignment : assignments) {
        ASSERT_GE(assignment.node, 0);
        ASSERT_LT(assignment.node, 4);
      }
    }
    if (conn % 2 == 0) {
      dispatcher.OnConnectionIdle(conn);
    }
    dispatcher.OnConnectionClose(conn);
  }
  EXPECT_EQ(dispatcher.counters().requests, expected_requests);
  // All load returned after every connection closed.
  for (NodeId node = 0; node < 4; ++node) {
    EXPECT_NEAR(dispatcher.NodeLoad(node), 0.0, 1e-9) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ComboTest,
    ::testing::Values(Combo{Policy::kWrr, Mechanism::kSingleHandoff},
                      Combo{Policy::kLard, Mechanism::kSingleHandoff},
                      Combo{Policy::kExtendedLard, Mechanism::kSingleHandoff},
                      Combo{Policy::kExtendedLard, Mechanism::kBackEndForwarding},
                      Combo{Policy::kExtendedLard, Mechanism::kMultipleHandoff},
                      Combo{Policy::kExtendedLard, Mechanism::kIdealHandoff},
                      Combo{Policy::kExtendedLard, Mechanism::kRelayingFrontEnd},
                      Combo{Policy::kWrr, Mechanism::kRelayingFrontEnd}));

}  // namespace
}  // namespace lard
