// Figure 8: the Figure 7 experiment under the Flash cost model. The paper's
// point: with a faster server, persistent-connection CPU savings matter more
// and simple-LARD's locality loss under P-HTTP is larger than with Apache.
#include "bench/sim_figure_driver.h"

int main(int argc, char** argv) {
  return lard::RunSimFigure(argc, argv, "Figure 8", "flash");
}
