#!/usr/bin/env python3
"""Bench-record gate: validates the smoke-run JSONs the CI benches emit.

The benches already exit non-zero on their own invariants; this step is the
second line of defense — it re-checks the *records* (schema + cross-field
invariants), so a bench that silently emitted an empty or malformed JSON
(or a refactor that broke a field the trajectory tracking relies on) fails
the build instead of uploading garbage. With --merge it also folds every
record into one bench-trajectory artifact so BENCH_*.json history can be
tracked across PRs from a single file.

Usage:
    check_bench_json.py [--merge OUT.json] RECORD.json [RECORD.json ...]

Each record is recognized by its file name (drain_failover, multi_frontend,
heterogeneous_cluster, failure_replay); unknown names only get the generic
schema checks (valid JSON object with a config block).
"""

import argparse
import json
import os
import sys

_FAILURES = []


def fail(record, message):
    _FAILURES.append(f"{record}: {message}")


def require(record, data, dotted_path, types=None):
    """Returns data[dotted.path], recording a failure when absent/mistyped."""
    node = data
    for key in dotted_path.split("."):
        if not isinstance(node, dict) or key not in node:
            fail(record, f"missing required field '{dotted_path}'")
            return None
        node = node[key]
    if types is not None and not isinstance(node, types):
        fail(record, f"field '{dotted_path}' has type {type(node).__name__}")
        return None
    return node


NUM = (int, float)


def check_samples(record, data, key="samples"):
    samples = require(record, data, key, list)
    if not samples:
        fail(record, f"'{key}' must be a non-empty list")
        return
    last_t = -1
    for i, sample in enumerate(samples):
        if not isinstance(sample, dict) or "t_ms" not in sample:
            fail(record, f"{key}[{i}] malformed")
            return
        if sample["t_ms"] < last_t:
            fail(record, f"{key}[{i}] time went backwards")
            return
        last_t = sample["t_ms"]


def check_drain_failover(record, data):
    check_samples(record, data)
    proto = require(record, data, "prototype", dict)
    if proto is None:
        return
    for key in ("requests", "responses_ok", "responses_bad", "transport_errors",
                "rehandoffs", "reassignments", "throughput_rps"):
        require(record, proto, key, NUM)
    if proto.get("responses_bad", 1) != 0 or proto.get("transport_errors", 1) != 0:
        fail(record, "client-visible errors during the rolling drain")
    if proto.get("responses_ok", 0) != proto.get("requests", -1):
        fail(record, "responses_ok != requests")
    if proto.get("rehandoffs", 0) == 0:
        fail(record, "no re-handoffs recorded during the drain")
    if proto.get("rehandoffs") != proto.get("reassignments"):
        fail(record, "prototype rehandoffs != dispatcher reassignments")
    drains = require(record, data, "drains", list)
    if drains is not None:
        if not drains:
            fail(record, "no drains recorded")
        for i, drain in enumerate(drains):
            if "recovery_ms" not in drain:
                fail(record, f"drains[{i}] missing recovery_ms")
            elif drain["recovery_ms"] is None or drain["recovery_ms"] < 0:
                fail(record, f"drains[{i}] never recovered (recovery_ms={drain['recovery_ms']})")
    slo = require(record, data, "slo", dict)
    if slo is not None:
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            require(record, slo, key, NUM)
    sim = require(record, data, "sim", dict)
    if sim is not None:
        if sim.get("failovers", 1) != 0:
            fail(record, "sim drains must migrate, not drop (failovers != 0)")
        if sim.get("rehandoffs", 0) == 0 or sim.get("rehandoffs") != sim.get("reassignments"):
            fail(record, "sim migration counters inconsistent")


def check_multi_frontend(record, data):
    runs = require(record, data, "runs", list)
    baseline = require(record, data, "baseline", dict)
    audited = ([] if runs is None else list(runs)) + ([] if baseline is None else [baseline])
    if not audited:
        fail(record, "no runs to audit")
    for i, run in enumerate(audited):
        where = f"runs[{i}]"
        for key in ("frontends", "throughput_rps", "ownership_violations",
                    "epoch_regressions", "load_conserved"):
            if key not in run:
                fail(record, f"{where} missing '{key}'")
        # The mesh audit invariants: a connection owned by exactly one
        # dispatcher, monotone membership epochs, load fully drained.
        if run.get("ownership_violations", 1) != 0:
            fail(record, f"{where}: ownership audit violated")
        if run.get("epoch_regressions", 1) != 0:
            fail(record, f"{where}: membership epoch regressed")
        if run.get("load_conserved") is not True:
            fail(record, f"{where}: load not conserved")
    require(record, data, "speedup_2fe", NUM)


def check_frontend_scalability(record, data):
    runs = require(record, data, "runs", list)
    if not runs:
        fail(record, "no loop-sweep runs recorded")
        return
    for i, run in enumerate(runs):
        for key in ("frontends", "fe_loops", "backends", "throughput_rps",
                    "fe_utilization"):
            if key not in run:
                fail(record, f"runs[{i}] missing '{key}'")
        if run.get("throughput_rps", 0) <= 0:
            fail(record, f"runs[{i}] throughput not positive")
    # The reactor-per-core acceptance floor: past the single-loop knee
    # (24 back-ends, saturated baseline), 4 loops must beat 1 loop by a wide
    # margin. The bench itself asserts >= 2x; the gate re-checks a slightly
    # looser 1.5x so run-to-run model drift fails loudly here, not silently.
    baseline_util = require(record, data, "baseline_util_24be", NUM)
    speedup = require(record, data, "speedup_4loop_24be", NUM)
    if baseline_util is not None and speedup is not None:
        if baseline_util < 0.95:
            fail(record, f"single-loop baseline not saturated ({baseline_util:.2f})")
        elif speedup < 1.5:
            fail(record, f"4-loop speedup at 24 back-ends too low: {speedup:.2f}x < 1.5x")


def check_heterogeneous_cluster(record, data):
    regimes = require(record, data, "regimes", list)
    if not regimes:
        fail(record, "no regimes recorded")
        return
    for r, regime in enumerate(regimes):
        policies = regime.get("policies")
        if not policies:
            fail(record, f"regimes[{r}] has no policy rows")
            continue
        for p, policy in enumerate(policies):
            for key in ("policy", "throughput_rps", "normalized_load_imbalance_cv"):
                if key not in policy:
                    fail(record, f"regimes[{r}].policies[{p}] missing '{key}'")
            if policy.get("throughput_rps", 0) <= 0:
                fail(record, f"regimes[{r}].policies[{p}] throughput not positive")
    regression = require(record, data, "equal_weight_regression", dict)
    if regression is not None and regression.get("identical") is not True:
        fail(record, "equal-weight run diverged from the unweighted baseline")


def check_failure_replay(record, data):
    check_samples(record, data)
    kills = require(record, data, "kills", list)
    if kills is not None and not kills:
        fail(record, "no kills recorded — the storm never crashed a node")
    with_replay = require(record, data, "with_replay", dict)
    if with_replay is not None:
        for key in ("requests", "responses_ok", "lost_requests", "replays",
                    "replay_giveups", "failure_reassignments"):
            require(record, with_replay, key, NUM)
        # The tentpole acceptance: idempotent workloads lose ~nothing per
        # crash with replay on.
        if with_replay.get("lost_requests", 1) != 0:
            fail(record, "requests lost despite replay (idempotent workload)")
        if with_replay.get("replays", 0) == 0:
            fail(record, "storm triggered no replays")
        if with_replay.get("replay_giveups", 1) != 0:
            fail(record, "replay giveups on a pure-GET workload")
        if with_replay.get("replays") != with_replay.get("failure_reassignments"):
            fail(record, "fe replays != dispatcher failure_reassignments")
    without = data.get("without_replay")
    if isinstance(without, dict) and with_replay is not None:
        if without.get("lost_requests", 0) <= with_replay.get("lost_requests", 0):
            fail(record, "baseline (no replay) lost no more than the replay run")
    sim = require(record, data, "sim", dict)
    if sim is not None:
        # The shared sim/prototype invariant.
        if sim.get("lost_requests") != sim.get("non_idempotent_in_flight"):
            fail(record, "sim invariant lost == non_idempotent_in_flight violated")
        if sim.get("pure_idempotent_lost", 1) != 0:
            fail(record, "sim lost requests on a pure-idempotent workload")
        if sim.get("replayed_requests", 0) == 0:
            fail(record, "sim storm replayed nothing")


def check_tracing_overhead(record, data):
    record_ns = require(record, data, "record_ns", dict)
    if record_ns is not None:
        for key in ("disabled", "unsampled", "sampled"):
            value = require(record, record_ns, key, NUM)
            if value is not None and value < 0:
                fail(record, f"record_ns.{key} is negative")
    modes = require(record, data, "modes", dict)
    if modes is None:
        return
    for name in ("untraced", "sampled", "full"):
        mode = require(record, modes, name, dict)
        if mode is None:
            continue
        if require(record, mode, "throughput_rps", NUM) in (None, 0):
            fail(record, f"modes.{name} has no throughput")
        if mode.get("responses_bad", 1) != 0 or mode.get("transport_errors", 1) != 0:
            fail(record, f"modes.{name} had client-visible errors")
    # Tracing must actually have happened in the traced modes...
    if modes.get("sampled", {}).get("spans_recorded", 0) == 0:
        fail(record, "sampled mode recorded no spans")
    if modes.get("full", {}).get("spans_recorded", 0) == 0:
        fail(record, "full mode recorded no spans")
    # ...and the PR's acceptance bound: default sampling costs < 2% of
    # throughput (best-of-N per mode absorbs run-to-run noise).
    ratio = require(record, data, "sampled_over_untraced", NUM)
    if ratio is not None and ratio < 0.98:
        fail(record, f"sampled tracing overhead too high: {ratio:.3f}x < 0.98x untraced")


def check_telemetry_overhead(record, data):
    modes = require(record, data, "modes", dict)
    if modes is not None:
        for name in ("off", "on"):
            mode = require(record, modes, name, dict)
            if mode is None:
                continue
            if require(record, mode, "throughput_rps", NUM) in (None, 0):
                fail(record, f"modes.{name} has no throughput")
            if mode.get("responses_bad", 1) != 0 or mode.get("transport_errors", 1) != 0:
                fail(record, f"modes.{name} had client-visible errors")
        # The pipeline must actually have sampled in the "on" mode...
        if modes.get("on", {}).get("fe_samples", 0) == 0:
            fail(record, "telemetry-on mode recorded no samples")
    # ...within the acceptance bound: sampling + shipping costs < 2% of
    # throughput (best-of-N per mode absorbs run-to-run noise).
    ratio = require(record, data, "on_over_off", NUM)
    if ratio is not None and ratio < 0.98:
        fail(record, f"telemetry overhead too high: {ratio:.3f}x < 0.98x telemetry-off")
    watchdog = require(record, data, "watchdog", dict)
    if watchdog is None:
        return
    # The watchdog acceptance: zero false transitions on a steady cacheable
    # load, detection of induced back-end saturation within 5 sampling
    # intervals, and the health view must carry mirrored back-end telemetry
    # (proof the kTelemetry shipping path worked end to end).
    if watchdog.get("steady_transitions", 1) != 0:
        fail(record, "watchdog flapped during steady state")
    if watchdog.get("steady_status") != "ok":
        fail(record, f"steady-state status is '{watchdog.get('steady_status')}', not 'ok'")
    if watchdog.get("be_mirrored") is not True:
        fail(record, "front-end health view carries no back-end telemetry")
    detection = require(record, watchdog, "detection_intervals", NUM)
    if detection is not None:
        if detection < 0:
            fail(record, "watchdog never detected the saturated back-ends")
        elif detection > 5:
            fail(record, f"detection took {detection:.1f} sampling intervals (> 5)")


def check_connection_scale(record, data):
    target = require(record, data, "config.target_conns", NUM)
    sustained = require(record, data, "max_sustained_conns", NUM)
    # The headline acceptance: one FE process holds the whole requested sweep
    # concurrently (the CI smoke asks for 50k).
    if target is not None and sustained is not None and sustained < target:
        fail(record, f"sustained only {sustained} of {target} idle connections")
    sweep = require(record, data, "sweep", list)
    if not sweep:
        fail(record, "no sweep points recorded")
        return
    for i, point in enumerate(sweep):
        for key in ("connections", "sustained", "rss_bytes_per_conn", "leaked_conns"):
            if key not in point:
                fail(record, f"sweep[{i}] missing '{key}'")
        if point.get("sustained") is not True:
            fail(record, f"sweep[{i}]: {point.get('connections')} connections not sustained")
        if point.get("leaked_conns", 1) != 0:
            fail(record, f"sweep[{i}]: {point.get('leaked_conns')} connections leaked")
        # The connection-memory-diet ceiling: user-space RSS per idle conn.
        # Measured ~0.7-0.9 KB (FeConn + Conn buffers + epoll bookkeeping);
        # the 8 KB gate is allocator-noise headroom, not the target.
        if point.get("connections", 0) >= 5000 and \
                point.get("rss_bytes_per_conn", 1 << 30) > 8192:
            fail(record, f"sweep[{i}]: {point.get('rss_bytes_per_conn'):.0f} RSS bytes/conn "
                         "> 8192 ceiling")
    reap = require(record, data, "idle_reap", dict)
    if reap is not None:
        if reap.get("ok") is not True:
            fail(record, "idle-reap phase failed")
        if reap.get("idle_closes") != reap.get("conns"):
            fail(record, f"reaped {reap.get('idle_closes')} of {reap.get('conns')} idle conns")
        lateness = require(record, reap, "reap_lateness_ms", NUM)
        if lateness is not None and lateness > 2000:
            fail(record, f"idle reap ran {lateness:.0f} ms past the deadline (> 2000)")
    wheel = require(record, data, "timer_wheel", dict)
    if wheel is not None:
        if wheel.get("fired") != wheel.get("entries"):
            fail(record, f"wheel fired {wheel.get('fired')} of {wheel.get('entries')} timers")
        # O(1) per-op bounds at bench scale (~tens of ns measured; the gates
        # absorb CI-runner noise, a heap would blow through them as N grows).
        for key, bound in (("arm_ns", 5000), ("rearm_ns", 2000), ("cancel_ns", 2000),
                           ("advance_ns_per_tick", 1000000)):
            value = require(record, wheel, key, NUM)
            if value is not None and value > bound:
                fail(record, f"timer_wheel.{key} = {value:.0f} ns exceeds {bound}")
    open_loop = require(record, data, "open_loop", dict)
    if open_loop is not None:
        if open_loop.get("responses_ok") != open_loop.get("requests"):
            fail(record, "open-loop run dropped responses")
        if open_loop.get("responses_bad", 1) != 0 or open_loop.get("transport_errors", 1) != 0:
            fail(record, "open-loop run had client-visible errors")
        if open_loop.get("requests", 0) == 0:
            fail(record, "open-loop run served nothing")


CHECKERS = {
    "connection_scale": check_connection_scale,
    "drain_failover": check_drain_failover,
    "frontend_scalability": check_frontend_scalability,
    "multi_frontend": check_multi_frontend,
    "heterogeneous_cluster": check_heterogeneous_cluster,
    "failure_replay": check_failure_replay,
    "tracing_overhead": check_tracing_overhead,
    "telemetry_overhead": check_telemetry_overhead,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--merge", metavar="OUT",
                        help="write all validated records into one trajectory JSON")
    parser.add_argument("records", nargs="+", help="bench record JSONs to validate")
    args = parser.parse_args()

    merged = {}
    for path in args.records:
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            fail(name, f"unreadable record: {error}")
            continue
        if not isinstance(data, dict):
            fail(name, "top-level JSON is not an object")
            continue
        require(name, data, "config", dict)
        checker = CHECKERS.get(name)
        if checker is not None:
            checker(name, data)
        else:
            print(f"note: no specific checker for '{name}', generic checks only")
        merged[name] = data

    if args.merge and not _FAILURES:
        with open(args.merge, "w", encoding="utf-8") as handle:
            json.dump({"records": merged}, handle, indent=1, sort_keys=True)
        print(f"merged {len(merged)} records into {args.merge}")

    if _FAILURES:
        for failure in _FAILURES:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"ok: {len(merged)} bench records pass schema + invariant checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
