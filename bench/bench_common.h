// Shared workload and run helpers for the figure-reproduction benches.
//
// All simulator benches use the same Rice-like synthetic trace (DESIGN.md §2)
// unless flags override it: ~6k pages / ~40k targets / ~400 MB footprint —
// working set >> one 85 MB node cache, < the 10-node aggregate — which is the
// regime Figs. 7/8 live in.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"

namespace lard {

// Defaults calibrated so the cluster lives in the paper's regime (see
// EXPERIMENTS.md): ~20k targets / ~200 MB footprint, working set >> one 32 MB
// node cache and ~ the aggregate cache of a mid-size cluster; sessions mostly
// one page + embedded objects (~6.5 requests per persistent connection); the
// default 30k sessions (~230k requests) keep compulsory first-touch misses a
// small fraction, as in the paper's two-month trace (the recorded figures use
// --sessions 60000).
inline SyntheticTraceConfig PaperScaleTraceConfig(int64_t sessions = 30000, uint64_t seed = 42) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 3000;
  config.num_sessions = sessions;
  config.num_clients = 512;
  config.zipf_alpha = 1.0;
  config.pages_per_session_mean = 1.2;
  return config;
}

// One policy/mechanism curve of Figs. 7/8.
struct SimCurve {
  std::string label;
  Policy policy;
  Mechanism mechanism;
  bool http10;
};

// The seven curves of Figures 7 and 8, in the paper's legend order.
inline std::vector<SimCurve> FigureSevenCurves() {
  return {
      {"zeroCost-extLARD-PHTTP", Policy::kExtendedLard, Mechanism::kIdealHandoff, false},
      {"multiHandoff-extLARD-PHTTP", Policy::kExtendedLard, Mechanism::kMultipleHandoff, false},
      {"BEforward-extLARD-PHTTP", Policy::kExtendedLard, Mechanism::kBackEndForwarding, false},
      {"simple-LARD", Policy::kLard, Mechanism::kSingleHandoff, true},
      {"simple-LARD-PHTTP", Policy::kLard, Mechanism::kSingleHandoff, false},
      {"WRR-PHTTP", Policy::kWrr, Mechanism::kSingleHandoff, false},
      {"WRR", Policy::kWrr, Mechanism::kSingleHandoff, true},
  };
}

// 32 MB per-node cache: the ASPLOS'98 lineage value (the paper's own sim
// number is garbled in our copy; its prototype observed 70-97 MB on 128 MB
// machines — sweep with --cache-mb).
inline ClusterSimMetrics RunSimPoint(const Trace& trace, const SimCurve& curve, int nodes,
                                     const ServerCostModel& costs,
                                     uint64_t cache_bytes = 32ull * 1024 * 1024,
                                     const LardParams& params = LardParams{}) {
  ClusterSimConfig config;
  config.num_nodes = nodes;
  config.policy = curve.policy;
  config.mechanism = curve.mechanism;
  config.http10 = curve.http10;
  config.server_costs = costs;
  config.backend_cache_bytes = cache_bytes;
  config.lard_params = params;
  ClusterSim sim(config, &trace);
  return sim.Run();
}

}  // namespace lard

#endif  // BENCH_BENCH_COMMON_H_
