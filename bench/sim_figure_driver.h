// Shared driver for the Figure 7 (Apache) and Figure 8 (Flash) benches:
// simulated cluster throughput vs node count for the seven policy/mechanism
// combinations, plus the paper's headline ratios.
#ifndef BENCH_SIM_FIGURE_DRIVER_H_
#define BENCH_SIM_FIGURE_DRIVER_H_

namespace lard {

// `figure_name` is "Figure 7" / "Figure 8"; `default_personality` is
// "apache" or "flash" (overridable with --personality).
int RunSimFigure(int argc, char** argv, const char* figure_name,
                 const char* default_personality);

}  // namespace lard

#endif  // BENCH_SIM_FIGURE_DRIVER_H_
