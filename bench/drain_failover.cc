// Rolling-drain failover scenario bench: a cluster under sustained
// load-generator traffic has its back-ends drained (and optionally removed +
// replaced) one after another. The reverse-handoff machinery must migrate
// every in-flight P-HTTP connection to a surviving node with zero
// client-visible resets; this bench records the throughput curve across the
// rolling restart, the per-drain recovery latency (time until the drained
// node holds no client connections), and the migration counters — and checks
// that the simulator's deterministic twin of the scenario agrees with the
// prototype that drains migrate rather than drop.
//
// Output: a human-readable table plus (with --json) a machine-readable record
// so CI can track the trajectory. Exit code is non-zero when an invariant
// fails (client-visible resets, no migrations, sim/prototype disagreement).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Sample {
  int64_t t_ms = 0;
  uint64_t requests_total = 0;
};

// Per-request latency percentiles inside one sampling window. Every request
// of a pipelined batch experiences the batch's latency, so batch samples are
// expanded by their request count before ranking.
struct WindowSlo {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  uint64_t requests = 0;
};

WindowSlo SloOver(const std::vector<LatencySample>& samples, int64_t from_ms, int64_t to_ms) {
  PercentileTracker tracker;
  WindowSlo slo;
  for (const LatencySample& sample : samples) {
    if (sample.t_ms < from_ms || sample.t_ms >= to_ms) {
      continue;
    }
    slo.requests += sample.requests;
    for (uint32_t i = 0; i < sample.requests; ++i) {
      tracker.Add(sample.latency_ms);
    }
  }
  if (tracker.count() > 0) {
    slo.p50 = tracker.Percentile(50.0);
    slo.p95 = tracker.Percentile(95.0);
    slo.p99 = tracker.Percentile(99.0);
  }
  return slo;
}

struct DrainRecord {
  NodeId node = kInvalidNode;
  int64_t at_ms = 0;           // offset from load start
  int64_t recovery_ms = -1;    // time until the node held zero client conns
  uint64_t rehandoffs_after = 0;
};

uint64_t TotalBackendRequests(MetricsRegistry* metrics, int node_slots) {
  uint64_t total = 0;
  for (int node = 0; node < node_slots; ++node) {
    total += metrics->Counter(MetricsRegistry::WithNode("lard_backend_requests_total", node))
                 ->value();
  }
  return total;
}

int Main(int argc, char** argv) {
  FlagSet flags("drain_failover");
  int64_t nodes = 4;
  int64_t sessions = 6000;
  int64_t clients = 32;
  int64_t drain_interval_ms = 400;
  int64_t sample_interval_ms = 100;
  bool remove_after_drain = true;
  bool add_replacement = true;
  bool smoke = false;
  std::string json;
  std::string csv;
  flags.AddInt("nodes", &nodes, "initial cluster size");
  flags.AddInt("sessions", &sessions, "trace sessions to replay");
  flags.AddInt("clients", &clients, "concurrent load-generator clients");
  flags.AddInt("drain-interval-ms", &drain_interval_ms, "pause between rolling drains");
  flags.AddInt("sample-interval-ms", &sample_interval_ms, "throughput sampling period");
  flags.AddBool("remove", &remove_after_drain, "admin-remove each node once drained");
  flags.AddBool("add", &add_replacement, "join a replacement node after each removal");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI");
  flags.AddString("json", &json, "write the scenario record as JSON here");
  flags.AddString("csv", &csv, "also write the throughput table as CSV here");
  flags.Parse(argc, argv);

  if (smoke) {
    nodes = 3;
    sessions = 1200;
    clients = 12;
    drain_interval_ms = 250;
  }

  SyntheticTraceConfig trace_config;
  trace_config.seed = 42;
  trace_config.num_pages = 200;
  trace_config.num_sessions = sessions;
  trace_config.num_clients = static_cast<int>(clients);
  trace_config.max_size_bytes = 32 * 1024;
  const Trace trace = GenerateSyntheticTrace(trace_config);

  ClusterConfig cluster_config;
  cluster_config.num_nodes = static_cast<int>(nodes);
  cluster_config.policy = Policy::kExtendedLard;
  cluster_config.mechanism = Mechanism::kBackEndForwarding;
  cluster_config.backend_cache_bytes = 4ull * 1024 * 1024;
  cluster_config.disk_time_scale = 0.02;
  cluster_config.heartbeat_interval_ms = 100;
  cluster_config.heartbeat_timeout_ms = 2000;
  cluster_config.retire_grace_ms = 2000;
  Cluster cluster(cluster_config, &trace.catalog());
  Status status = cluster.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n", status.ToString().c_str());
    return 1;
  }

  LoadResult result;
  std::atomic<bool> load_done{false};
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = static_cast<int>(clients);
    load.recv_timeout_ms = 10000;
    load.record_latencies = true;  // the drain storm is judged by SLO curves
    result = RunLoad(load, trace);
    load_done.store(true, std::memory_order_release);
  });

  const int64_t start_ms = NowMs();
  std::vector<Sample> samples;
  std::vector<DrainRecord> drains;
  drains.reserve(static_cast<size_t>(nodes));  // `recovering` points into this
  MetricsRegistry* metrics = cluster.metrics();

  // Rolling drain: nodes 1..N-1 in sequence (node 0 stays so the cluster is
  // never empty), with throughput sampled throughout.
  NodeId next_victim = 1;
  int64_t next_drain_ms = start_ms + drain_interval_ms;
  int node_slots = static_cast<int>(nodes);
  DrainRecord* recovering = nullptr;

  while (!load_done.load(std::memory_order_acquire)) {
    samples.push_back({NowMs() - start_ms, TotalBackendRequests(metrics, node_slots)});

    if (recovering != nullptr) {
      const double open =
          metrics
              ->Gauge(MetricsRegistry::WithNode("lard_backend_open_connections",
                                                recovering->node))
              ->value();
      if (open <= 0.0) {
        recovering->recovery_ms = NowMs() - start_ms - recovering->at_ms;
        recovering->rehandoffs_after = cluster.Snapshot().rehandoffs;
        if (remove_after_drain) {
          cluster.RemoveNode(recovering->node);
          if (add_replacement) {
            if (cluster.AddNode() != kInvalidNode) {
              ++node_slots;
            }
          }
        }
        recovering = nullptr;
      }
    }

    if (recovering == nullptr && next_victim < static_cast<NodeId>(nodes) &&
        NowMs() >= next_drain_ms) {
      if (cluster.DrainNode(next_victim)) {
        drains.push_back({next_victim, NowMs() - start_ms, -1, 0});
        recovering = &drains.back();
      }
      ++next_victim;
      next_drain_ms = NowMs() + drain_interval_ms;
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(sample_interval_ms));
  }
  load_thread.join();
  samples.push_back({NowMs() - start_ms, TotalBackendRequests(metrics, node_slots)});
  const int64_t wall_ms = NowMs() - start_ms;

  const ClusterSnapshot snapshot = cluster.Snapshot();
  const uint64_t reassignments = cluster.frontend().dispatcher().counters().reassignments;
  cluster.Stop();

  // The simulator's deterministic twin: the same rolling drain replayed as
  // membership events. Drains must migrate, not drop (failovers == 0), and
  // the migration counter must equal the dispatcher's reassignment count.
  ClusterSimConfig sim_config;
  sim_config.num_nodes = static_cast<int>(nodes);
  sim_config.policy = Policy::kExtendedLard;
  sim_config.mechanism = Mechanism::kBackEndForwarding;
  sim_config.backend_cache_bytes = cluster_config.backend_cache_bytes;
  sim_config.concurrent_sessions_per_node = 16;
  for (NodeId victim = 1; victim < static_cast<NodeId>(nodes); ++victim) {
    sim_config.membership_events.push_back(
        {static_cast<SimTimeUs>(victim) * 100000, MembershipAction::kNodeDrain, victim});
  }
  ClusterSim sim(sim_config, &trace);
  const ClusterSimMetrics sim_metrics = sim.Run();

  // --- report ---
  // Latency SLO curve alongside the throughput curve: per-request
  // p50/p95/p99 inside each sampling window, so a drain-induced latency
  // storm shows up even when the mean barely moves.
  std::vector<WindowSlo> window_slos;
  Table table({"t (ms)", "cumulative req", "req/s (window)", "p50 ms", "p95 ms", "p99 ms"});
  for (size_t i = 1; i < samples.size(); ++i) {
    const double dt_s =
        static_cast<double>(samples[i].t_ms - samples[i - 1].t_ms) / 1000.0;
    const double window_rps =
        dt_s > 0.0
            ? static_cast<double>(samples[i].requests_total - samples[i - 1].requests_total) /
                  dt_s
            : 0.0;
    const WindowSlo slo = SloOver(result.latency_samples, samples[i - 1].t_ms, samples[i].t_ms);
    window_slos.push_back(slo);
    table.Row()
        .Cell(samples[i].t_ms)
        .Cell(static_cast<int64_t>(samples[i].requests_total))
        .Cell(window_rps, 0)
        .Cell(slo.p50, 1)
        .Cell(slo.p95, 1)
        .Cell(slo.p99, 1);
  }
  table.Print("Throughput and latency SLO across the rolling drain", csv);
  const WindowSlo overall_slo =
      SloOver(result.latency_samples, 0, std::numeric_limits<int64_t>::max());

  std::printf("\nrolling drain of %lld-node cluster: %llu requests in %.2fs (%.0f req/s)\n",
              static_cast<long long>(nodes), static_cast<unsigned long long>(result.requests),
              static_cast<double>(wall_ms) / 1000.0, result.throughput_rps);
  std::printf("per-request latency over the whole storm: p50=%.1fms p95=%.1fms p99=%.1fms\n",
              overall_slo.p50, overall_slo.p95, overall_slo.p99);
  for (const DrainRecord& drain : drains) {
    std::printf("  node %d drained at t=%lldms, recovered in %lldms\n", drain.node,
                static_cast<long long>(drain.at_ms), static_cast<long long>(drain.recovery_ms));
  }
  std::printf("prototype: rehandoffs=%llu drain_handbacks=%llu reassignments=%llu "
              "resets(bad=%llu transport=%llu)\n",
              static_cast<unsigned long long>(snapshot.rehandoffs),
              static_cast<unsigned long long>(snapshot.drain_handbacks),
              static_cast<unsigned long long>(reassignments),
              static_cast<unsigned long long>(result.responses_bad),
              static_cast<unsigned long long>(result.transport_errors));
  std::printf("simulator: rehandoffs=%llu reassignments=%llu failovers=%llu\n",
              static_cast<unsigned long long>(sim_metrics.rehandoffs),
              static_cast<unsigned long long>(sim_metrics.dispatcher.reassignments),
              static_cast<unsigned long long>(sim_metrics.failovers));

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"nodes\":" << nodes << ",\"sessions\":" << sessions
        << ",\"clients\":" << clients << ",\"drain_interval_ms\":" << drain_interval_ms
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},";
    out << "\"samples\":[";
    for (size_t i = 0; i < samples.size(); ++i) {
      out << (i == 0 ? "" : ",") << "{\"t_ms\":" << samples[i].t_ms
          << ",\"requests_total\":" << samples[i].requests_total;
      if (i > 0 && i - 1 < window_slos.size()) {
        const WindowSlo& slo = window_slos[i - 1];
        out << ",\"p50_ms\":" << slo.p50 << ",\"p95_ms\":" << slo.p95
            << ",\"p99_ms\":" << slo.p99 << ",\"window_requests\":" << slo.requests;
      }
      out << "}";
    }
    out << "],\"slo\":{\"p50_ms\":" << overall_slo.p50 << ",\"p95_ms\":" << overall_slo.p95
        << ",\"p99_ms\":" << overall_slo.p99 << "},\"drains\":[";
    for (size_t i = 0; i < drains.size(); ++i) {
      out << (i == 0 ? "" : ",") << "{\"node\":" << drains[i].node
          << ",\"at_ms\":" << drains[i].at_ms << ",\"recovery_ms\":" << drains[i].recovery_ms
          << "}";
    }
    out << "],\"prototype\":{\"requests\":" << result.requests
        << ",\"responses_ok\":" << result.responses_ok
        << ",\"responses_bad\":" << result.responses_bad
        << ",\"transport_errors\":" << result.transport_errors
        << ",\"throughput_rps\":" << result.throughput_rps
        << ",\"rehandoffs\":" << snapshot.rehandoffs
        << ",\"drain_handbacks\":" << snapshot.drain_handbacks
        << ",\"reassignments\":" << reassignments << "},";
    out << "\"sim\":{\"rehandoffs\":" << sim_metrics.rehandoffs
        << ",\"reassignments\":" << sim_metrics.dispatcher.reassignments
        << ",\"failovers\":" << sim_metrics.failovers
        << ",\"throughput_rps\":" << sim_metrics.throughput_rps << "}}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // --- invariants (the bench doubles as an end-to-end check) ---
  int failures = 0;
  if (result.responses_ok != result.requests || result.responses_bad != 0 ||
      result.transport_errors != 0) {
    std::fprintf(stderr, "FAIL: client-visible errors during the rolling drain "
                         "(ok=%llu/%llu bad=%llu transport=%llu)\n",
                 static_cast<unsigned long long>(result.responses_ok),
                 static_cast<unsigned long long>(result.requests),
                 static_cast<unsigned long long>(result.responses_bad),
                 static_cast<unsigned long long>(result.transport_errors));
    ++failures;
  }
  if (snapshot.rehandoffs == 0) {
    std::fprintf(stderr, "FAIL: no connections were re-handed-off during the drain\n");
    ++failures;
  }
  if (snapshot.rehandoffs != reassignments) {
    std::fprintf(stderr, "FAIL: prototype migration counters disagree (rehandoffs=%llu "
                         "reassignments=%llu)\n",
                 static_cast<unsigned long long>(snapshot.rehandoffs),
                 static_cast<unsigned long long>(reassignments));
    ++failures;
  }
  if (sim_metrics.rehandoffs == 0 || sim_metrics.rehandoffs != sim_metrics.dispatcher.reassignments) {
    std::fprintf(stderr, "FAIL: sim migration counters inconsistent (rehandoffs=%llu "
                         "reassignments=%llu)\n",
                 static_cast<unsigned long long>(sim_metrics.rehandoffs),
                 static_cast<unsigned long long>(sim_metrics.dispatcher.reassignments));
    ++failures;
  }
  if (sim_metrics.failovers != 0) {
    std::fprintf(stderr, "FAIL: sim drains must migrate, not drop (failovers=%llu)\n",
                 static_cast<unsigned long long>(sim_metrics.failovers));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
