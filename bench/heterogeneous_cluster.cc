// Heterogeneous-cluster scenario bench: a 2x-speed-skewed cluster (half the
// back-ends run CPU and disk twice as fast) replayed in the simulator under
// every relevant routing policy, weighted and unweighted, in two load
// regimes:
//
//   * moderate — the closed-loop concurrency sits well inside the cost
//     model's balancing band. Capacity-blind extLARD overdrives the slow
//     half; the weighted policy evens out the per-node *normalized load*
//     (each node's bottleneck utilization — work per unit of capacity).
//   * saturated — concurrency near L_overload. Here capacity-blindness is
//     catastrophic: unweighted extLARD pushes the slow half past overload,
//     its caches thrash and cluster throughput collapses, while the weighted
//     policy keeps the fast half absorbing its true share.
//
// Output: a human-readable table per regime plus (with --json) a
// machine-readable record so CI can track the trajectory. Exit code is
// non-zero when an invariant fails:
//   * moderate regime: weighted extLARD shrinks the normalized load
//     imbalance (and does not lose meaningful throughput),
//   * saturated regime: weighted extLARD beats unweighted throughput,
//   * with all weights equal, the weighted policy reproduces the unweighted
//     decision counters exactly (the bit-identity regression, also
//     unit-tested in tests/policy_test.cc).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

struct PolicyRun {
  std::string label;
  std::string policy_name;
  bool weighted = false;  // node_weights track the true speeds
};

struct RunRecord {
  PolicyRun run;
  ClusterSimMetrics metrics;
  double imbalance_cv = 0.0;     // stddev/mean of per-node bottleneck utilization
  double imbalance_ratio = 0.0;  // max/min of per-node bottleneck utilization
};

struct RegimeResult {
  std::string name;
  int sessions_per_node = 0;
  std::vector<RunRecord> records;

  const RunRecord* Find(const std::string& policy_name) const {
    for (const RunRecord& record : records) {
      if (record.run.policy_name == policy_name) {
        return &record;
      }
    }
    return nullptr;
  }
};

// Normalized load imbalance across the membership. A node's *normalized
// load* is the work it carries per unit of its capacity; the simulator's
// direct hardware measurement of that quantity is the node's bottleneck
// utilization (a fast node doing twice the requests of a slow one shows the
// *same* utilization, because its resources run twice as fast). A perfectly
// capacity-aware policy drives these toward equality (cv -> 0, ratio -> 1);
// a capacity-blind one idles the fast half while the slow half saturates.
void ComputeImbalance(const ClusterSimMetrics& metrics, double* cv, double* ratio) {
  std::vector<double> util;
  for (const BackendSimMetrics& node : metrics.per_node) {
    util.push_back(std::max(node.cpu_utilization, node.disk_utilization));
  }
  double sum = 0.0;
  double min = util.empty() ? 0.0 : util[0];
  double max = min;
  for (const double u : util) {
    sum += u;
    min = std::min(min, u);
    max = std::max(max, u);
  }
  const double mean = util.empty() ? 0.0 : sum / static_cast<double>(util.size());
  double var = 0.0;
  for (const double u : util) {
    var += (u - mean) * (u - mean);
  }
  var = util.empty() ? 0.0 : var / static_cast<double>(util.size());
  *cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  *ratio = min > 0.0 ? max / min : 0.0;
}

bool SameDecisions(const DispatcherCounters& a, const DispatcherCounters& b) {
  return a.requests == b.requests && a.handoffs == b.handoffs &&
         a.local_serves == b.local_serves && a.forwards == b.forwards &&
         a.migrations == b.migrations && a.relays == b.relays &&
         a.served_without_caching == b.served_without_caching;
}

int Main(int argc, char** argv) {
  FlagSet flags("heterogeneous_cluster");
  int64_t nodes = 4;
  int64_t pages = 400;
  int64_t sessions = 8000;
  int64_t cache_mb = 4;
  int64_t moderate_spn = 64;
  int64_t saturated_spn = 128;
  int64_t seed = 42;
  double fast_speed = 2.0;
  bool smoke = false;
  std::string json;
  std::string csv;
  flags.AddInt("nodes", &nodes, "cluster size (first half runs at --fast-speed)");
  flags.AddInt("pages", &pages, "distinct pages in the corpus");
  flags.AddInt("sessions", &sessions, "trace sessions to replay");
  flags.AddInt("cache-mb", &cache_mb, "per-node cache (MB)");
  flags.AddInt("moderate-spn", &moderate_spn,
               "closed-loop concurrency per node, moderate regime");
  flags.AddInt("saturated-spn", &saturated_spn,
               "closed-loop concurrency per node, saturated regime (~L_overload)");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddDouble("fast-speed", &fast_speed, "speed multiplier of the fast half");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI");
  flags.AddString("json", &json, "write the scenario record as JSON here");
  flags.AddString("csv", &csv, "also write the comparison tables as CSV here");
  flags.Parse(argc, argv);

  if (smoke) {
    nodes = 4;
    pages = 400;
    sessions = 3000;
    cache_mb = 4;
  }

  // The skew: fast first half, slow second half.
  std::vector<double> speeds(static_cast<size_t>(nodes), 1.0);
  for (size_t i = 0; i < speeds.size() / 2; ++i) {
    speeds[i] = fast_speed;
  }

  SyntheticTraceConfig workload;
  workload.seed = static_cast<uint64_t>(seed);
  workload.num_pages = pages;
  workload.num_sessions = sessions;
  const Trace trace = GenerateSyntheticTrace(workload);
  const TraceStats stats = ComputeTraceStats(trace);
  std::printf("workload: %zu targets, %.0f MB footprint, %zu requests\n", stats.num_targets,
              static_cast<double>(stats.footprint_bytes) / 1e6, stats.num_requests);
  std::printf("cluster: %lld nodes, speeds [", static_cast<long long>(nodes));
  for (size_t i = 0; i < speeds.size(); ++i) {
    std::printf("%s%.1f", i == 0 ? "" : " ", speeds[i]);
  }
  std::printf("], %lld MB cache/node\n", static_cast<long long>(cache_mb));

  const PolicyRun runs[] = {
      {"WRR (unweighted)", "wrr", false},
      {"extLARD (unweighted)", "extlard", false},
      {"wextLARD (weights=speeds)", "wextlard", true},
      {"LARD/R (unweighted)", "lardr", false},
  };

  auto run_sim = [&](const std::string& policy_name, const std::vector<double>& weights,
                     int sessions_per_node) -> ClusterSimMetrics {
    ClusterSimConfig config;
    config.num_nodes = static_cast<int>(nodes);
    config.policy_name = policy_name;
    config.mechanism = Mechanism::kBackEndForwarding;
    config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
    config.concurrent_sessions_per_node = sessions_per_node;
    config.node_speeds = speeds;
    config.node_weights = weights;
    return ClusterSim(config, &trace).Run();
  };
  const std::vector<double> unit_weights(static_cast<size_t>(nodes), 1.0);

  std::vector<RegimeResult> regimes;
  for (const auto& [regime_name, spn] :
       std::vector<std::pair<std::string, int64_t>>{{"moderate", moderate_spn},
                                                    {"saturated", saturated_spn}}) {
    RegimeResult regime;
    regime.name = regime_name;
    regime.sessions_per_node = static_cast<int>(spn);
    for (const PolicyRun& run : runs) {
      RunRecord record;
      record.run = run;
      record.metrics = run_sim(run.policy_name, run.weighted ? speeds : unit_weights,
                               static_cast<int>(spn));
      ComputeImbalance(record.metrics, &record.imbalance_cv, &record.imbalance_ratio);
      regime.records.push_back(std::move(record));
    }

    Table table({"policy", "req/s", "Mb/s", "hit rate", "batch ms", "norm-load cv",
                 "max/min norm load"});
    for (const RunRecord& record : regime.records) {
      table.Row()
          .Cell(record.run.label)
          .Cell(record.metrics.throughput_rps, 0)
          .Cell(record.metrics.throughput_mbps, 1)
          .Cell(record.metrics.cache_hit_rate, 3)
          .Cell(record.metrics.mean_batch_latency_ms, 1)
          .Cell(record.imbalance_cv, 3)
          .Cell(record.imbalance_ratio, 2);
    }
    table.Print(regime.name + " regime (" + std::to_string(spn) +
                    " sessions/node; normalized load = bottleneck utilization)",
                csv.empty() ? csv : regime.name + "-" + csv);
    regimes.push_back(std::move(regime));
  }

  // The bit-identity regression: with every weight at 1.0, the weighted
  // policy must make exactly the decisions the unweighted one does.
  const ClusterSimMetrics equal_weights =
      run_sim("wextlard", unit_weights, static_cast<int>(moderate_spn));
  const RunRecord* moderate_ext = regimes[0].Find("extlard");
  const RunRecord* moderate_wext = regimes[0].Find("wextlard");
  const RunRecord* saturated_ext = regimes[1].Find("extlard");
  const RunRecord* saturated_wext = regimes[1].Find("wextlard");
  const bool identical_under_equal_weights =
      moderate_ext != nullptr &&
      SameDecisions(equal_weights.dispatcher, moderate_ext->metrics.dispatcher);

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"nodes\":" << nodes << ",\"sessions\":" << sessions
        << ",\"pages\":" << pages << ",\"cache_mb\":" << cache_mb
        << ",\"fast_speed\":" << fast_speed << ",\"smoke\":" << (smoke ? "true" : "false")
        << ",\"speeds\":[";
    for (size_t i = 0; i < speeds.size(); ++i) {
      out << (i == 0 ? "" : ",") << speeds[i];
    }
    out << "]},\"regimes\":[";
    for (size_t r = 0; r < regimes.size(); ++r) {
      const RegimeResult& regime = regimes[r];
      out << (r == 0 ? "" : ",") << "{\"name\":\"" << regime.name
          << "\",\"sessions_per_node\":" << regime.sessions_per_node << ",\"policies\":[";
      for (size_t i = 0; i < regime.records.size(); ++i) {
        const RunRecord& record = regime.records[i];
        out << (i == 0 ? "" : ",") << "{\"policy\":\"" << record.run.policy_name
            << "\",\"weighted\":" << (record.run.weighted ? "true" : "false")
            << ",\"throughput_rps\":" << record.metrics.throughput_rps
            << ",\"cache_hit_rate\":" << record.metrics.cache_hit_rate
            << ",\"mean_batch_latency_ms\":" << record.metrics.mean_batch_latency_ms
            << ",\"normalized_load_imbalance_cv\":" << record.imbalance_cv
            << ",\"normalized_load_max_min_ratio\":" << record.imbalance_ratio
            << ",\"per_node\":[";
        for (size_t node = 0; node < record.metrics.per_node.size(); ++node) {
          const BackendSimMetrics& per_node = record.metrics.per_node[node];
          out << (node == 0 ? "" : ",") << "{\"requests\":" << per_node.requests
              << ",\"speed\":" << (node < speeds.size() ? speeds[node] : 1.0)
              << ",\"cpu_utilization\":" << per_node.cpu_utilization
              << ",\"disk_utilization\":" << per_node.disk_utilization
              << ",\"normalized_load\":"
              << std::max(per_node.cpu_utilization, per_node.disk_utilization) << "}";
        }
        out << "]}";
      }
      out << "]}";
    }
    out << "],\"equal_weight_regression\":{\"identical\":"
        << (identical_under_equal_weights ? "true" : "false") << "}}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // --- invariants (the bench doubles as an end-to-end check) ---
  int failures = 0;
  if (moderate_ext == nullptr || moderate_wext == nullptr || saturated_ext == nullptr ||
      saturated_wext == nullptr) {
    std::fprintf(stderr, "FAIL: missing extlard/wextlard runs\n");
    return 1;
  }
  if (!identical_under_equal_weights) {
    std::fprintf(stderr,
                 "FAIL: wextlard with all weights 1.0 diverged from extlard "
                 "(requests %llu vs %llu, forwards %llu vs %llu)\n",
                 static_cast<unsigned long long>(equal_weights.dispatcher.requests),
                 static_cast<unsigned long long>(moderate_ext->metrics.dispatcher.requests),
                 static_cast<unsigned long long>(equal_weights.dispatcher.forwards),
                 static_cast<unsigned long long>(moderate_ext->metrics.dispatcher.forwards));
    ++failures;
  }
  // Moderate regime: the weights must even out the normalized load without
  // giving up meaningful throughput.
  if (moderate_wext->imbalance_cv >= moderate_ext->imbalance_cv) {
    std::fprintf(stderr,
                 "FAIL: [moderate] weighted extLARD did not shrink the normalized load "
                 "imbalance (cv %.3f vs %.3f)\n",
                 moderate_wext->imbalance_cv, moderate_ext->imbalance_cv);
    ++failures;
  }
  if (moderate_wext->metrics.throughput_rps < 0.9 * moderate_ext->metrics.throughput_rps) {
    std::fprintf(stderr,
                 "FAIL: [moderate] weighted extLARD gave up >10%% throughput "
                 "(%.0f vs %.0f req/s)\n",
                 moderate_wext->metrics.throughput_rps, moderate_ext->metrics.throughput_rps);
    ++failures;
  }
  // Saturated regime: capacity-blindness must cost real throughput, and the
  // weighted policy must win it back.
  if (saturated_wext->metrics.throughput_rps <= saturated_ext->metrics.throughput_rps) {
    std::fprintf(stderr,
                 "FAIL: [saturated] weighted extLARD did not beat unweighted "
                 "(%.0f vs %.0f req/s)\n",
                 saturated_wext->metrics.throughput_rps,
                 saturated_ext->metrics.throughput_rps);
    ++failures;
  }
  for (const RegimeResult& regime : regimes) {
    for (const RunRecord& record : regime.records) {
      if (record.metrics.total_requests != regime.records[0].metrics.total_requests) {
        std::fprintf(stderr,
                     "FAIL: [%s] policies served different request totals (%llu vs %llu)\n",
                     regime.name.c_str(),
                     static_cast<unsigned long long>(record.metrics.total_requests),
                     static_cast<unsigned long long>(regime.records[0].metrics.total_requests));
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
