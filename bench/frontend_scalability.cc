// The paper's front-end scalability estimate (Section 8.2): running extended
// LARD with back-end forwarding on six Apache back-ends leaves the front-end
// CPU ~60% utilized, implying one front-end CPU supports ~10 back-ends of
// equal speed. We account front-end CPU (accept, handoff, per-request
// forwarding-module work) in the simulator and report utilization and the
// implied supportable back-end count per cluster size.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("frontend_scalability");
  int64_t max_nodes = 10;
  int64_t sessions = 30000;
  std::string csv;
  flags.AddInt("max-nodes", &max_nodes, "largest cluster size");
  flags.AddInt("sessions", &sessions, "trace sessions");
  flags.AddString("csv", &csv, "also write CSV here");
  flags.Parse(argc, argv);

  const Trace trace = GenerateSyntheticTrace(PaperScaleTraceConfig(sessions));
  const SimCurve curve{"BEforward-extLARD-PHTTP", Policy::kExtendedLard,
                       Mechanism::kBackEndForwarding, false};

  Table table({"back-ends", "cluster req/s", "FE utilization", "supportable back-ends"});
  double util_at_6 = 0.0;
  for (int nodes = 1; nodes <= max_nodes; ++nodes) {
    const ClusterSimMetrics metrics = RunSimPoint(trace, curve, nodes, ApacheCosts());
    const double supportable =
        metrics.fe_utilization > 0.0 ? static_cast<double>(nodes) / metrics.fe_utilization : 0.0;
    if (nodes == 6) {
      util_at_6 = metrics.fe_utilization;
    }
    table.Row()
        .Cell(static_cast<int64_t>(nodes))
        .Cell(metrics.throughput_rps, 0)
        .Cell(metrics.fe_utilization, 3)
        .Cell(supportable, 1);
  }
  table.Print("Front-end CPU scalability (Apache back-ends, extLARD + BE forwarding)", csv);
  if (util_at_6 > 0.0) {
    std::printf("\nat 6 back-ends the FE is %.0f%% utilized -> one FE CPU supports ~%.0f "
                "back-ends (paper: ~60%% -> ~10 back-ends)\n",
                100.0 * util_at_6, 6.0 / util_at_6);
  }
  return 0;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
