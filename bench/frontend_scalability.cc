// Front-end scalability, two ways.
//
// 1. The paper's estimate (Section 8.2): running extended LARD with back-end
//    forwarding on six Apache back-ends leaves the front-end CPU ~60%
//    utilized, implying one front-end CPU supports ~10 back-ends of equal
//    speed. We account front-end CPU (accept, handoff, per-request
//    forwarding-module work) and report utilization and the implied
//    supportable back-end count per cluster size.
//
// 2. The reactor-per-core sweep: with the FE CPU *actually limiting*
//    (model_front_end_limit) and the cost model calibrated to the paper's
//    measurement (fe_cost_scale, see bench/multi_frontend.cc), sweep
//    fe_loops x front-ends x back-ends. The single-loop FE's throughput
//    curve flattens at its ~10-back-end knee; each added loop is another FE
//    CPU serving its pinned share of the connections, so the knee moves out
//    ~proportionally — until the back-ends themselves saturate. A replicated
//    tier (2 FEs) shifts the knee the same way, and the two compose. Below
//    the knee the table deliberately shows the opposite (same story as
//    bench/multi_frontend's knee table): at 10 back-ends a saturated
//    single-loop FE is accidental admission control, and unlocking it with
//    more loops overdrives the back-ends past extLARD's good regime.
//
// Output: human-readable tables plus (with --json) a machine-readable record
// so CI can track the trajectory (bench/check_bench_json.py enforces the
// speedup invariant). Exit code is non-zero when a check fails:
//   * at 24 back-ends with a saturated (>=95% utilized) single-loop FE, the
//     4-loop FE must reach >= 2x the single-loop throughput;
//   * every run's dispatcher load accounting must have drained to zero.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

struct LoopRun {
  int frontends = 1;
  int fe_loops = 1;
  int backends = 0;
  ClusterSimMetrics metrics;
  double min_fe_util = 0.0;
};

int Main(int argc, char** argv) {
  FlagSet flags("frontend_scalability");
  int64_t max_nodes = 10;
  int64_t sessions = 30000;
  int64_t sweep_sessions = 20000;
  // Same calibration as bench/multi_frontend.cc: our simulator's
  // forwarding-module costs are cheaper than the paper's measured prototype;
  // this factor puts the single-loop saturation knee inside the 10-24
  // back-end band the sweep covers.
  double fe_cost_scale = 2.7;
  int64_t cache_mb = 64;
  bool estimate = true;
  bool sweep = true;
  bool smoke = false;
  std::string json;
  std::string csv;
  flags.AddInt("max-nodes", &max_nodes, "largest cluster size for the paper estimate");
  flags.AddInt("sessions", &sessions, "trace sessions for the paper estimate");
  flags.AddInt("sweep-sessions", &sweep_sessions, "trace sessions for the loop sweep");
  flags.AddDouble("fe-cost-scale", &fe_cost_scale,
                  "scale the FE cost model (default calibrates to the paper's ~60% at 6)");
  flags.AddInt("cache-mb", &cache_mb, "per-node cache (MB) for the loop sweep");
  flags.AddBool("estimate", &estimate, "run the Section 8.2 utilization estimate");
  flags.AddBool("sweep", &sweep, "run the reactor-per-core loop sweep");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI (single-FE sweep only)");
  flags.AddString("json", &json, "write the sweep record as JSON here");
  flags.AddString("csv", &csv, "also write the tables as CSV here");
  flags.Parse(argc, argv);

  int failures = 0;

  // --- Part 1: the paper's accounting estimate. ---
  if (estimate && !smoke) {
    const Trace trace = GenerateSyntheticTrace(PaperScaleTraceConfig(sessions));
    const SimCurve curve{"BEforward-extLARD-PHTTP", Policy::kExtendedLard,
                         Mechanism::kBackEndForwarding, false};
    Table table({"back-ends", "cluster req/s", "FE utilization", "supportable back-ends"});
    double util_at_6 = 0.0;
    for (int nodes = 1; nodes <= max_nodes; ++nodes) {
      const ClusterSimMetrics metrics = RunSimPoint(trace, curve, nodes, ApacheCosts());
      const double supportable = metrics.fe_utilization > 0.0
                                     ? static_cast<double>(nodes) / metrics.fe_utilization
                                     : 0.0;
      if (nodes == 6) {
        util_at_6 = metrics.fe_utilization;
      }
      table.Row()
          .Cell(static_cast<int64_t>(nodes))
          .Cell(metrics.throughput_rps, 0)
          .Cell(metrics.fe_utilization, 3)
          .Cell(supportable, 1);
    }
    table.Print("Front-end CPU scalability (Apache back-ends, extLARD + BE forwarding)",
                csv.empty() ? csv : "estimate-" + csv);
    if (util_at_6 > 0.0) {
      std::printf("\nat 6 back-ends the FE is %.0f%% utilized -> one FE CPU supports ~%.0f "
                  "back-ends (paper: ~60%% -> ~10 back-ends)\n",
                  100.0 * util_at_6, 6.0 / util_at_6);
    }
  }

  // --- Part 2: the reactor-per-core sweep. ---
  std::vector<LoopRun> runs;
  double speedup_4loop_24be = 0.0;
  double baseline_util_24be = 0.0;
  if (sweep) {
    const Trace trace = GenerateSyntheticTrace(PaperScaleTraceConfig(sweep_sessions));
    auto run_point = [&](int frontends, int fe_loops, int node_count) -> LoopRun {
      ClusterSimConfig config;
      config.num_nodes = node_count;
      config.policy = Policy::kExtendedLard;
      config.mechanism = Mechanism::kBackEndForwarding;
      config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
      config.model_front_end_limit = true;  // the FE loop CPUs really serialize
      config.concurrent_sessions_per_node = 128;
      config.num_frontends = frontends;
      config.fe_loops = fe_loops;
      config.fe_costs.accept_us *= fe_cost_scale;
      config.fe_costs.handoff_us *= fe_cost_scale;
      config.fe_costs.per_request_us *= fe_cost_scale;
      config.fe_costs.conn_close_us *= fe_cost_scale;
      config.fe_costs.migrate_us *= fe_cost_scale;
      LoopRun run;
      run.frontends = frontends;
      run.fe_loops = fe_loops;
      run.backends = node_count;
      run.metrics = ClusterSim(config, &trace).Run();
      run.min_fe_util = run.metrics.per_fe_utilization.empty()
                            ? 0.0
                            : *std::min_element(run.metrics.per_fe_utilization.begin(),
                                                run.metrics.per_fe_utilization.end());
      if (!run.metrics.mesh_load_conserved) {
        std::fprintf(stderr, "FAIL: [fe=%d loops=%d be=%d] dispatcher load not conserved\n",
                     frontends, fe_loops, node_count);
        ++failures;
      }
      return run;
    };

    const std::vector<int> fe_counts = smoke ? std::vector<int>{1} : std::vector<int>{1, 2};
    Table table({"back-ends", "FEs", "loops/FE", "cluster req/s", "speedup vs 1-loop",
                 "max FE util"});
    for (const int node_count : {10, 16, 24}) {
      for (const int frontends : fe_counts) {
        double one_loop_rps = 0.0;
        for (const int fe_loops : {1, 2, 4}) {
          LoopRun run = run_point(frontends, fe_loops, node_count);
          if (fe_loops == 1) {
            one_loop_rps = run.metrics.throughput_rps;
          }
          const double speedup =
              one_loop_rps > 0.0 ? run.metrics.throughput_rps / one_loop_rps : 0.0;
          if (frontends == 1 && node_count == 24) {
            if (fe_loops == 1) {
              baseline_util_24be = run.metrics.fe_utilization;
            } else if (fe_loops == 4) {
              speedup_4loop_24be = speedup;
            }
          }
          table.Row()
              .Cell(static_cast<int64_t>(node_count))
              .Cell(static_cast<int64_t>(frontends))
              .Cell(static_cast<int64_t>(fe_loops))
              .Cell(run.metrics.throughput_rps, 0)
              .Cell(speedup, 2)
              .Cell(run.metrics.fe_utilization, 3);
          runs.push_back(std::move(run));
        }
      }
    }
    table.Print("Reactor-per-core front end: the knee moves with the loop count "
                "(FE CPU limiting; extLARD + BE forwarding)",
                csv);

    // The headline acceptance check: at 24 back-ends (past the single-loop
    // knee) the 4-loop FE must at least double the single-loop throughput.
    if (baseline_util_24be >= 0.95) {
      std::printf("\nsingle-loop FE at 24 back-ends: %.1f%% utilized; 4 loops reach %.2fx\n",
                  100.0 * baseline_util_24be, speedup_4loop_24be);
      if (speedup_4loop_24be < 2.0) {
        std::fprintf(stderr,
                     "FAIL: 4 loops only reached %.2fx the saturated single-loop "
                     "throughput at 24 back-ends (need >= 2x)\n",
                     speedup_4loop_24be);
        ++failures;
      }
    } else {
      std::printf("\nnote: single-loop FE only %.1f%% utilized at 24 back-ends — the "
                  "speedup check needs a saturated baseline (raise --fe-cost-scale)\n",
                  100.0 * baseline_util_24be);
    }
  }

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"sweep_sessions\":" << sweep_sessions
        << ",\"fe_cost_scale\":" << fe_cost_scale << ",\"cache_mb\":" << cache_mb
        << ",\"smoke\":" << (smoke ? "true" : "false") << "}";
    out << ",\"baseline_util_24be\":" << baseline_util_24be
        << ",\"speedup_4loop_24be\":" << speedup_4loop_24be << ",\"runs\":[";
    for (size_t i = 0; i < runs.size(); ++i) {
      const LoopRun& run = runs[i];
      out << (i == 0 ? "" : ",") << "{\"frontends\":" << run.frontends
          << ",\"fe_loops\":" << run.fe_loops << ",\"backends\":" << run.backends
          << ",\"throughput_rps\":" << run.metrics.throughput_rps
          << ",\"fe_utilization\":" << run.metrics.fe_utilization
          << ",\"min_fe_utilization\":" << run.min_fe_util
          << ",\"cache_hit_rate\":" << run.metrics.cache_hit_rate << "}";
    }
    out << "]}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
