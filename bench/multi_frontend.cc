// Replicated front-end tier scenario bench: the paper's Section 8.2 estimate
// (reproduced by bench/frontend_scalability) says one front-end CPU saturates
// at ~10 back-ends — past that the whole cluster is capped by the FE, not by
// its back-ends. This bench runs the simulator with the front-end CPU
// *actually limiting* (model_front_end_limit) and sweeps
//
//   * the knee: back-end count x {1, 2} front-ends — the single-FE curve
//     flattens once the FE saturates, the 2-FE curve keeps climbing. (Below
//     the knee the table shows the opposite, on purpose: at 10 back-ends a
//     saturated single FE is accidental admission control, and doubling the
//     tier just overdrives the back-ends past extLARD's good regime — the
//     reason to replicate the front-end is the knee, not reflex);
//   * the mesh: front-end count x gossip interval at a back-end count where
//     one FE is saturated — throughput must scale while the LARD miss ratio
//     stays close to the single-FE oracle (whose dispatcher sees *every*
//     placement; the replicas only see gossip).
//
// Output: human-readable tables plus (with --json) a machine-readable record
// so CI can track the trajectory. Exit code is non-zero when a check fails:
//   * mesh invariants (from the simulator's built-in audits): no connection
//     owned by two dispatchers, no membership-epoch regression, every
//     replica's load accounting drained to zero, epochs converged;
//   * with 2 FEs at a back-end count where a single FE is >=95% utilized:
//     throughput >= 1.8x the single-FE figure and a cache-miss ratio within
//     10% relative of single-FE extLARD.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

struct MeshRun {
  int frontends = 1;
  int backends = 0;
  SimTimeUs gossip_us = 0;
  ClusterSimMetrics metrics;
  double miss_ratio = 0.0;
  double min_fe_util = 0.0;
};

double MissRatio(const ClusterSimMetrics& metrics) { return 1.0 - metrics.cache_hit_rate; }

int CheckInvariants(const MeshRun& run) {
  int failures = 0;
  if (run.metrics.ownership_violations != 0) {
    std::fprintf(stderr, "FAIL: [fe=%d gossip=%lldus] %llu connections double-owned\n",
                 run.frontends, static_cast<long long>(run.gossip_us),
                 static_cast<unsigned long long>(run.metrics.ownership_violations));
    ++failures;
  }
  if (run.metrics.mesh_epoch_regressions != 0) {
    std::fprintf(stderr, "FAIL: [fe=%d gossip=%lldus] membership epoch regressed %llu times\n",
                 run.frontends, static_cast<long long>(run.gossip_us),
                 static_cast<unsigned long long>(run.metrics.mesh_epoch_regressions));
    ++failures;
  }
  if (!run.metrics.mesh_load_conserved) {
    std::fprintf(stderr,
                 "FAIL: [fe=%d gossip=%lldus] dispatcher load not conserved (leftover load or "
                 "open connections after the trace drained)\n",
                 run.frontends, static_cast<long long>(run.gossip_us));
    ++failures;
  }
  if (!run.metrics.mesh_epochs_converged) {
    std::fprintf(stderr, "FAIL: [fe=%d gossip=%lldus] replicas ended on different epochs\n",
                 run.frontends, static_cast<long long>(run.gossip_us));
    ++failures;
  }
  if (run.frontends > 1 && run.metrics.gossip_rounds == 0) {
    std::fprintf(stderr, "FAIL: [fe=%d] mesh run finished without a single gossip round\n",
                 run.frontends);
    ++failures;
  }
  return failures;
}

int Main(int argc, char** argv) {
  FlagSet flags("multi_frontend");
  int64_t backends = 24;
  int64_t sessions = 20000;
  int64_t max_frontends = 4;
  int64_t gossip_us = 5000;
  // Our simulator's forwarding-module costs are cheaper than the paper's
  // measured prototype (one FE CPU would support ~27 back-ends; Section 8.2
  // measured ~60% utilization at 6, i.e. ~10 supportable). This factor
  // scales the FE cost model to the paper's measurement so the saturation
  // knee lands inside the 10-24 back-end band the scenario sweeps.
  double fe_cost_scale = 2.7;
  int64_t cache_mb = 64;
  bool knee = true;
  bool smoke = false;
  std::string json;
  std::string csv;
  flags.AddInt("backends", &backends, "back-ends for the mesh sweep (pick past the FE knee)");
  flags.AddInt("sessions", &sessions, "trace sessions");
  flags.AddInt("max-frontends", &max_frontends, "largest front-end tier (doubling from 1)");
  flags.AddInt("gossip-us", &gossip_us, "base gossip interval; the sweep runs 1/5x, 1x, 4x");
  flags.AddInt("cache-mb", &cache_mb, "per-node cache (MB)");
  flags.AddDouble("fe-cost-scale", &fe_cost_scale,
                  "scale the FE cost model (default calibrates to the paper's ~60% at 6)");
  flags.AddBool("knee", &knee, "also sweep back-end count at 1 vs 2 front-ends");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI");
  flags.AddString("json", &json, "write the scenario record as JSON here");
  flags.AddString("csv", &csv, "also write the sweep tables as CSV here");
  flags.Parse(argc, argv);

  if (smoke) {
    // Small enough for CI, big enough that compulsory first-touch misses
    // don't turn the run disk-bound (which would mask the FE knee).
    backends = 24;
    sessions = 20000;
    max_frontends = 2;
    knee = false;
  }

  const Trace trace = GenerateSyntheticTrace(PaperScaleTraceConfig(sessions));

  auto run_point = [&](int frontends, int node_count, SimTimeUs interval) -> MeshRun {
    ClusterSimConfig config;
    config.num_nodes = node_count;
    config.policy = Policy::kExtendedLard;
    config.mechanism = Mechanism::kBackEndForwarding;
    config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
    config.model_front_end_limit = true;  // the FE CPU really serializes
    config.concurrent_sessions_per_node = 128;  // enough in flight to expose the bottleneck
    config.num_frontends = frontends;
    config.gossip_interval_us = interval;
    config.fe_costs.accept_us *= fe_cost_scale;
    config.fe_costs.handoff_us *= fe_cost_scale;
    config.fe_costs.per_request_us *= fe_cost_scale;
    config.fe_costs.conn_close_us *= fe_cost_scale;
    config.fe_costs.migrate_us *= fe_cost_scale;
    MeshRun run;
    run.frontends = frontends;
    run.backends = node_count;
    run.gossip_us = interval;
    run.metrics = ClusterSim(config, &trace).Run();
    run.miss_ratio = MissRatio(run.metrics);
    run.min_fe_util = run.metrics.per_fe_utilization.empty()
                          ? 0.0
                          : *std::min_element(run.metrics.per_fe_utilization.begin(),
                                              run.metrics.per_fe_utilization.end());
    return run;
  };

  int failures = 0;
  std::vector<MeshRun> knee_runs;
  if (knee) {
    Table table({"back-ends", "FEs", "cluster req/s", "max FE util", "miss ratio"});
    for (const int node_count : {10, 16, 24}) {
      for (const int frontends : {1, 2}) {
        MeshRun run = run_point(frontends, node_count, static_cast<SimTimeUs>(gossip_us));
        failures += CheckInvariants(run);
        table.Row()
            .Cell(static_cast<int64_t>(node_count))
            .Cell(static_cast<int64_t>(frontends))
            .Cell(run.metrics.throughput_rps, 0)
            .Cell(run.metrics.fe_utilization, 3)
            .Cell(run.miss_ratio, 3);
        knee_runs.push_back(std::move(run));
      }
    }
    table.Print("The front-end knee: one FE saturates, two keep climbing",
                csv.empty() ? csv : "knee-" + csv);
  }

  // The mesh sweep at the configured (post-knee) back-end count.
  const std::vector<SimTimeUs> intervals = {
      std::max<SimTimeUs>(gossip_us / 5, 1), static_cast<SimTimeUs>(gossip_us),
      static_cast<SimTimeUs>(gossip_us) * 4};
  std::vector<MeshRun> runs;
  Table sweep({"FEs", "gossip (us)", "cluster req/s", "speedup", "max FE util", "min FE util",
               "miss ratio", "BE cpu idle", "BE disk idle", "gossip rounds", "gossip KB"});
  MeshRun baseline = run_point(1, static_cast<int>(backends), intervals[1]);
  failures += CheckInvariants(baseline);
  sweep.Row()
      .Cell(static_cast<int64_t>(1))
      .Cell(static_cast<int64_t>(0))
      .Cell(baseline.metrics.throughput_rps, 0)
      .Cell(1.0, 2)
      .Cell(baseline.metrics.fe_utilization, 3)
      .Cell(baseline.min_fe_util, 3)
      .Cell(baseline.miss_ratio, 3)
      .Cell(baseline.metrics.mean_cpu_idle, 3)
      .Cell(baseline.metrics.mean_disk_idle, 3)
      .Cell(static_cast<int64_t>(0))
      .Cell(0.0, 0);
  for (int frontends = 2; frontends <= max_frontends; frontends *= 2) {
    for (const SimTimeUs interval : intervals) {
      MeshRun run = run_point(frontends, static_cast<int>(backends), interval);
      failures += CheckInvariants(run);
      sweep.Row()
          .Cell(static_cast<int64_t>(frontends))
          .Cell(static_cast<int64_t>(interval))
          .Cell(run.metrics.throughput_rps, 0)
          .Cell(run.metrics.throughput_rps / baseline.metrics.throughput_rps, 2)
          .Cell(run.metrics.fe_utilization, 3)
          .Cell(run.min_fe_util, 3)
          .Cell(run.miss_ratio, 3)
          .Cell(run.metrics.mean_cpu_idle, 3)
          .Cell(run.metrics.mean_disk_idle, 3)
          .Cell(static_cast<int64_t>(run.metrics.gossip_rounds))
          .Cell(static_cast<double>(run.metrics.gossip_bytes) / 1024.0, 0);
      runs.push_back(std::move(run));
    }
  }
  sweep.Print("Front-end mesh sweep at " + std::to_string(backends) +
                  " back-ends (FE CPU limiting; extLARD + BE forwarding)",
              csv);

  // The headline acceptance check: with the single FE saturated, a 2-FE tier
  // must nearly double throughput without giving up LARD's locality.
  const MeshRun* two_fe = nullptr;
  for (const MeshRun& run : runs) {
    if (run.frontends == 2 && run.gossip_us == intervals[1]) {
      two_fe = &run;
    }
  }
  double speedup = 0.0;
  if (two_fe != nullptr) {
    speedup = two_fe->metrics.throughput_rps / baseline.metrics.throughput_rps;
    std::printf("\nsingle FE at %lld back-ends: %.1f%% utilized, %.0f req/s\n"
                "two FEs (gossip %lldus): %.0f req/s (%.2fx), miss ratio %.3f vs %.3f "
                "(%.1f%% relative)\n",
                static_cast<long long>(backends), 100.0 * baseline.metrics.fe_utilization,
                baseline.metrics.throughput_rps, static_cast<long long>(intervals[1]),
                two_fe->metrics.throughput_rps, speedup, two_fe->miss_ratio,
                baseline.miss_ratio,
                baseline.miss_ratio > 0.0
                    ? 100.0 * (two_fe->miss_ratio - baseline.miss_ratio) / baseline.miss_ratio
                    : 0.0);
    if (baseline.metrics.fe_utilization >= 0.95) {
      if (speedup < 1.8) {
        std::fprintf(stderr,
                     "FAIL: 2 front-ends only reached %.2fx the saturated single-FE "
                     "throughput (need >= 1.8x)\n",
                     speedup);
        ++failures;
      }
    } else {
      std::printf("note: single FE only %.1f%% utilized at %lld back-ends — the speedup "
                  "check needs a saturated baseline (raise --backends)\n",
                  100.0 * baseline.metrics.fe_utilization, static_cast<long long>(backends));
    }
    if (baseline.miss_ratio > 0.0 &&
        (two_fe->miss_ratio - baseline.miss_ratio) / baseline.miss_ratio > 0.10) {
      std::fprintf(stderr,
                   "FAIL: 2-FE miss ratio %.3f is more than 10%% above the single-FE "
                   "oracle's %.3f\n",
                   two_fe->miss_ratio, baseline.miss_ratio);
      ++failures;
    }
  }

  if (!json.empty()) {
    auto emit_run = [](std::ostringstream& out, const MeshRun& run) {
      out << "{\"frontends\":" << run.frontends << ",\"backends\":" << run.backends
          << ",\"gossip_us\":" << run.gossip_us
          << ",\"throughput_rps\":" << run.metrics.throughput_rps
          << ",\"fe_utilization\":" << run.metrics.fe_utilization
          << ",\"min_fe_utilization\":" << run.min_fe_util
          << ",\"miss_ratio\":" << run.miss_ratio
          << ",\"cache_hit_rate\":" << run.metrics.cache_hit_rate
          << ",\"gossip_rounds\":" << run.metrics.gossip_rounds
          << ",\"gossip_bytes\":" << run.metrics.gossip_bytes
          << ",\"gossip_stale_drops\":" << run.metrics.gossip_stale_drops
          << ",\"max_gossip_lag_us\":" << run.metrics.max_gossip_lag_us
          << ",\"ownership_violations\":" << run.metrics.ownership_violations
          << ",\"epoch_regressions\":" << run.metrics.mesh_epoch_regressions
          << ",\"load_conserved\":" << (run.metrics.mesh_load_conserved ? "true" : "false")
          << "}";
    };
    std::ostringstream out;
    out << "{\"config\":{\"backends\":" << backends << ",\"sessions\":" << sessions
        << ",\"max_frontends\":" << max_frontends << ",\"gossip_us\":" << gossip_us
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},";
    out << "\"baseline\":";
    emit_run(out, baseline);
    out << ",\"speedup_2fe\":" << speedup << ",\"runs\":[";
    for (size_t i = 0; i < runs.size(); ++i) {
      out << (i == 0 ? "" : ",");
      emit_run(out, runs[i]);
    }
    out << "],\"knee\":[";
    for (size_t i = 0; i < knee_runs.size(); ++i) {
      out << (i == 0 ? "" : ",");
      emit_run(out, knee_runs[i]);
    }
    out << "]}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
