// Figure 7: simulated cluster throughput (requests/s) vs number of back-end
// nodes, Apache cost model, for the seven policy/mechanism combinations of
// the paper's legend. Prints the figure's series plus the headline ratios.
#include "bench/sim_figure_driver.h"

int main(int argc, char** argv) {
  return lard::RunSimFigure(argc, argv, "Figure 7", "apache");
}
