// Connection-scale bench: how many idle persistent connections one FE
// process sustains, and what each one costs.
//
// The paper's P-HTTP argument stands on the server holding connections open
// across requests (Section 2); at cluster scale that means the front-end's
// per-connection state and its idle-timer machinery are the capacity limits,
// not the request path. Four phases:
//
//   1. Sustain sweep: open N idle client connections (1k -> 100k+, smoke
//      holds 50k) against one FE process, verify every one is concurrently
//      FE-owned, and report user-space RSS per connection. Closing them all
//      must drain the per-state gauges to exactly zero — a leak check, not
//      an estimate.
//   2. Idle reap: with the keep-alive deadline set at runtime through
//      POST /idletimeout, a batch of idle connections must be reaped at
//      deadline + epsilon. Reports the reap lateness (how far past the
//      deadline the last connection closed).
//   3. Timer-wheel microcost: arm/rearm/cancel/advance per-op cost of the
//      hashed wheel at bench scale, against a binary-heap baseline with
//      lazy-cancel tombstones (what EventLoop used for every timer before
//      the wheel).
//   4. Open-loop tail: Poisson arrivals at a fixed offered rate (the
//      coordinated-omission-safe mode of the load generator); reports p95
//      batch latency and schedule start-lag at that rate.
//
// Output: tables plus (--json) a machine-readable record;
// bench/check_bench_json.py enforces the invariants (sustained >= target,
// zero leaked connections, bytes/conn ceiling, wheel per-op bounds, clean
// open-loop run). Exit code is non-zero when a phase fails.
//
// File descriptors: N connections cost 2N+slack fds in this one process
// (client + server end). The bench raises RLIMIT_NOFILE to the hard limit
// and fails fast if that is still too small — CI raises the hard limit
// (`ulimit -n`) before running. More than ~28k connections to one
// destination tuple also exhausts one source IP's ephemeral ports, so
// client sockets bind source addresses cycling 127.0.0.{2..9}.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/socket.h"
#include "src/net/timer_wheel.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Soft limit up to the hard limit (unprivileged); returns the resulting cap.
uint64_t RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return 0;
  }
  limit.rlim_cur = limit.rlim_max;
  (void)::setrlimit(RLIMIT_NOFILE, &limit);
  (void)::getrlimit(RLIMIT_NOFILE, &limit);
  return static_cast<uint64_t>(limit.rlim_cur);
}

// Resident set from /proc/self/statm (pages) — user-space memory only;
// kernel socket buffers are accounted elsewhere and excluded by design.
uint64_t ReadRssBytes() {
  std::ifstream statm("/proc/self/statm");
  uint64_t total_pages = 0;
  uint64_t rss_pages = 0;
  statm >> total_pages >> rss_pages;
  return rss_pages * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

// Blocking connect to 127.0.0.1:port with the source bound to
// 127.0.0.(2 + src_index % 8): each source IP is a fresh ephemeral-port
// space, so the 4-tuple never runs dry below ~224k connections.
int ConnectFromIndexedSource(uint16_t port, int src_index) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in src{};
  src.sin_family = AF_INET;
  src.sin_port = 0;
  src.sin_addr.s_addr = htonl(0x7F000002u + static_cast<uint32_t>(src_index % 8));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&src), sizeof(src)) != 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(port);
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct ConnectBatch {
  std::vector<int> fds;
  uint64_t failures = 0;
  double seconds = 0.0;
};

// Opens `count` idle connections with `threads` workers, each retrying
// transient failures (listen-backlog overflow shows up as refusals under a
// fast enough connect storm).
ConnectBatch OpenConnections(uint16_t port, size_t count, int threads) {
  ConnectBatch batch;
  batch.fds.assign(count, -1);
  std::vector<uint64_t> failures(static_cast<size_t>(threads), 0);
  const int64_t start_ms = NowMs();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&batch, &failures, port, count, threads, t]() {
      for (size_t i = static_cast<size_t>(t); i < count; i += static_cast<size_t>(threads)) {
        int fd = -1;
        for (int attempt = 0; attempt < 8 && fd < 0; ++attempt) {
          if (attempt > 0) {
            // lard-lint: allow(blocking-call) client-side backoff thread.
            std::this_thread::sleep_for(std::chrono::milliseconds(5 << attempt));
          }
          fd = ConnectFromIndexedSource(port, t);
        }
        if (fd < 0) {
          ++failures[static_cast<size_t>(t)];
        }
        batch.fds[i] = fd;
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  for (const uint64_t n : failures) {
    batch.failures += n;
  }
  batch.seconds = static_cast<double>(NowMs() - start_ms) / 1000.0;
  return batch;
}

void CloseAll(std::vector<int>* fds) {
  for (int& fd : *fds) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

// Every connection in this bench stays FE-owned (nothing is ever dispatched),
// so one gauge covers them all.
int64_t OpenConns(const Cluster& cluster) {
  return cluster.frontend(0).open_conns_fe_owned() +
         cluster.frontend(0).open_conns_handed_off();
}

bool WaitForOpenConns(const Cluster& cluster, int64_t want, int64_t timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (NowMs() < deadline) {
    if (OpenConns(cluster) == want) {
      return true;
    }
    // lard-lint: allow(blocking-call) bench poll thread.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return OpenConns(cluster) == want;
}

// Minimal admin client: POST `body` and return true on a 200.
bool AdminPost(uint16_t admin_port, const std::string& path, const std::string& body) {
  auto fd = ConnectTcp(admin_port);
  if (!fd.ok()) {
    return false;
  }
  std::ostringstream request;
  request << "POST " << path << " HTTP/1.0\r\nContent-Length: " << body.size() << "\r\n\r\n"
          << body;
  const std::string wire = request.str();
  if (::send(fd.value().get(), wire.data(), wire.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(wire.size())) {
    return false;
  }
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  return reply.find(" 200 ") != std::string::npos;
}

struct SweepPoint {
  size_t connections = 0;
  bool sustained = false;
  double connect_seconds = 0.0;
  double drain_seconds = 0.0;
  double rss_bytes_per_conn = 0.0;
  int64_t leaked_conns = 0;
};

struct WheelCosts {
  size_t entries = 0;
  uint64_t fired = 0;
  double arm_ns = 0.0;
  double rearm_ns = 0.0;
  double cancel_ns = 0.0;
  double advance_ns_per_tick = 0.0;
  double heap_push_ns = 0.0;
  double heap_rearm_ns = 0.0;
};

double NsPerOp(const std::chrono::steady_clock::time_point& start, size_t ops) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return ops == 0 ? 0.0
                  : static_cast<double>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
                        static_cast<double>(ops);
}

// Per-op costs of the hashed wheel at `entries` live timers, plus the
// pre-wheel baseline: a binary heap where cancel/rearm leaves a tombstone
// that is paid for at pop time (EventLoop's old strategy for every timer).
WheelCosts MeasureWheel(size_t entries) {
  WheelCosts costs;
  costs.entries = entries;
  TimerWheel wheel;
  const int64_t base_ms = 1;
  const int64_t horizon = wheel.horizon_ms();

  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries; ++i) {
    wheel.Arm(static_cast<uint64_t>(i + 1),
              base_ms + static_cast<int64_t>(i) % (horizon / 2), []() {});
  }
  costs.arm_ns = NsPerOp(start, entries);

  // The hot path at scale: every byte of client activity rearms that
  // connection's deadline.
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries; ++i) {
    wheel.Rearm(static_cast<uint64_t>(i + 1),
                base_ms + horizon / 2 + static_cast<int64_t>(i) % (horizon / 4));
  }
  costs.rearm_ns = NsPerOp(start, entries);

  uint64_t ticks = 0;
  start = std::chrono::steady_clock::now();
  for (int64_t now = base_ms; wheel.size() > 0; now += wheel.tick_ms()) {
    wheel.Advance(now, [](const std::function<void()>& fn) { fn(); });
    ++ticks;
  }
  const auto advance_elapsed = std::chrono::steady_clock::now() - start;
  costs.advance_ns_per_tick =
      ticks == 0 ? 0.0
                 : static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           advance_elapsed)
                                           .count()) /
                       static_cast<double>(ticks);
  costs.fired = wheel.total_fired();

  for (size_t i = 0; i < entries; ++i) {
    wheel.Arm(static_cast<uint64_t>(i + 1),
              base_ms + static_cast<int64_t>(i) % (horizon / 2), []() {});
  }
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries; ++i) {
    wheel.Cancel(static_cast<uint64_t>(i + 1));
  }
  costs.cancel_ns = NsPerOp(start, entries);

  // Heap baseline. Rearm = push the new deadline and leave the old entry as
  // a tombstone; the drain pops 2x entries and discards half. The measured
  // rearm cost charges both halves to the rearm, as EventLoop did.
  using HeapEntry = std::pair<int64_t, uint64_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries; ++i) {
    heap.emplace(base_ms + static_cast<int64_t>(i) % (horizon / 2),
                 static_cast<uint64_t>(i + 1));
  }
  costs.heap_push_ns = NsPerOp(start, entries);
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries; ++i) {
    heap.emplace(base_ms + horizon / 2 + static_cast<int64_t>(i) % (horizon / 4),
                 static_cast<uint64_t>(i + 1));
  }
  while (!heap.empty()) {
    heap.pop();
  }
  costs.heap_rearm_ns = NsPerOp(start, entries);
  return costs;
}

int Main(int argc, char** argv) {
  FlagSet flags("connection_scale");
  int64_t conns = 100000;
  int64_t reap_conns = 5000;
  int64_t reap_timeout_ms = 1000;
  int64_t open_loop_sessions = 4000;
  double open_loop_rps = 2000.0;
  int64_t threads = 8;
  bool smoke = false;
  std::string json;
  std::string csv;
  flags.AddInt("conns", &conns, "largest sweep point (concurrent idle connections)");
  flags.AddInt("reap-conns", &reap_conns, "connections for the idle-reap phase");
  flags.AddInt("reap-timeout-ms", &reap_timeout_ms,
               "keep-alive deadline for the idle-reap phase (wheel-resident: < ~4s)");
  flags.AddInt("open-loop-sessions", &open_loop_sessions, "sessions for the open-loop phase");
  flags.AddDouble("open-loop-rps", &open_loop_rps, "offered session rate for the open-loop phase");
  flags.AddInt("threads", &threads, "client connect workers");
  flags.AddBool("smoke", &smoke, "CI configuration: 50k-connection sweep cap");
  flags.AddString("json", &json, "write the record as JSON here");
  flags.AddString("csv", &csv, "also write the sweep table as CSV here");
  flags.Parse(argc, argv);
  if (smoke) {
    conns = std::min<int64_t>(conns, 50000);
  }

  int failures = 0;
  const uint64_t fd_cap = RaiseFdLimit();
  const uint64_t fd_needed = 2 * static_cast<uint64_t>(conns) + 256;
  if (fd_cap < fd_needed) {
    std::fprintf(stderr,
                 "FAIL: RLIMIT_NOFILE hard cap %llu < %llu needed for %lld connections "
                 "(raise `ulimit -n` / the hard limit, or pass a smaller --conns)\n",
                 static_cast<unsigned long long>(fd_cap),
                 static_cast<unsigned long long>(fd_needed), static_cast<long long>(conns));
    return 1;
  }

  // A tiny catalog: the sweep never requests anything, and the open-loop
  // phase wants small bodies so the tail reflects scheduling, not disk.
  SyntheticTraceConfig trace_config;
  trace_config.seed = 7;
  trace_config.num_pages = 120;
  trace_config.num_sessions = open_loop_sessions;
  trace_config.num_clients = 64;
  trace_config.max_size_bytes = 16 * 1024;
  const Trace trace = GenerateSyntheticTrace(trace_config);

  ClusterConfig config;
  config.num_nodes = 1;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.disk_time_scale = 0.02;
  config.idle_timeout_ms = 0;   // phase 1 holds connections open indefinitely
  config.idle_close_ms = 0;     // and the back-end must not reap either
  config.tracing_enabled = false;  // no span ring churn while counting bytes
  Cluster cluster(config, &trace.catalog());
  const Status started = cluster.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "FAIL: cluster start: %s\n", started.message().c_str());
    return 1;
  }

  // --- Phase 1: sustain sweep. ---
  std::vector<size_t> points;
  for (const int64_t n : {static_cast<int64_t>(1000), static_cast<int64_t>(10000), conns}) {
    if (n > 0 && n <= conns &&
        (points.empty() || static_cast<size_t>(n) > points.back())) {
      points.push_back(static_cast<size_t>(n));
    }
  }
  std::vector<SweepPoint> sweep;
  size_t max_sustained = 0;
  const uint64_t rss_baseline = ReadRssBytes();
  Table sweep_table({"connections", "sustained", "connect s", "RSS bytes/conn", "drain s",
                     "leaked"});
  for (const size_t n : points) {
    SweepPoint point;
    point.connections = n;
    ConnectBatch batch = OpenConnections(cluster.port(), n, static_cast<int>(threads));
    point.connect_seconds = batch.seconds;
    const bool all_open =
        batch.failures == 0 && WaitForOpenConns(cluster, static_cast<int64_t>(n), 60000);
    // "Sustained" means still all open after a settle window, not a peak
    // the reaper or an accept backlog collapse immediately takes back.
    if (all_open) {
      // lard-lint: allow(blocking-call) bench settle window.
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
    point.sustained = all_open && OpenConns(cluster) == static_cast<int64_t>(n);
    const uint64_t rss_peak = ReadRssBytes();
    point.rss_bytes_per_conn =
        rss_peak > rss_baseline
            ? static_cast<double>(rss_peak - rss_baseline) / static_cast<double>(n)
            : 0.0;
    const int64_t drain_start = NowMs();
    CloseAll(&batch.fds);
    const bool drained = WaitForOpenConns(cluster, 0, 60000);
    point.drain_seconds = static_cast<double>(NowMs() - drain_start) / 1000.0;
    point.leaked_conns = drained ? 0 : OpenConns(cluster);
    if (point.sustained) {
      max_sustained = std::max(max_sustained, n);
    } else {
      std::fprintf(stderr, "FAIL: only %lld of %zu connections held open (%llu connect errors)\n",
                   static_cast<long long>(OpenConns(cluster)), n,
                   static_cast<unsigned long long>(batch.failures));
      ++failures;
    }
    if (point.leaked_conns != 0) {
      std::fprintf(stderr, "FAIL: %lld connections leaked after closing all %zu\n",
                   static_cast<long long>(point.leaked_conns), n);
      ++failures;
    }
    sweep_table.Row()
        .Cell(static_cast<int64_t>(n))
        .Cell(point.sustained ? "yes" : "NO")
        .Cell(point.connect_seconds, 2)
        .Cell(point.rss_bytes_per_conn, 0)
        .Cell(point.drain_seconds, 2)
        .Cell(point.leaked_conns);
    sweep.push_back(point);
  }
  sweep_table.Print("Idle-connection sustain sweep (one FE process)", csv);

  // --- Phase 2: idle reap at a runtime-set deadline. ---
  const uint64_t idle_closes_before =
      cluster.frontend(0).counters().idle_closes.load(std::memory_order_relaxed);
  bool reap_ok = AdminPost(cluster.admin_port(), "/idletimeout",
                           "idle_timeout_ms=" + std::to_string(reap_timeout_ms));
  if (!reap_ok) {
    std::fprintf(stderr, "FAIL: POST /idletimeout rejected\n");
    ++failures;
  }
  const size_t reap_n = static_cast<size_t>(std::min<int64_t>(reap_conns, conns));
  ConnectBatch reap_batch = OpenConnections(cluster.port(), reap_n, static_cast<int>(threads));
  const int64_t reap_connect_end_ms = NowMs();
  // Every connection armed its deadline at adoption (all before connect-end);
  // with a deadline shorter than the connect storm the earliest conns reap
  // while the last ones are still connecting, so completion — every armed
  // conn counted reaped and the gauge back at zero — is the signal, not a
  // peak gauge reading. Lateness is measured against the LAST conn's
  // deadline, so a slow connect phase makes it conservative (negative).
  auto reap_done = [&]() {
    return cluster.frontend(0).counters().idle_closes.load(std::memory_order_relaxed) -
                   idle_closes_before >=
               reap_n &&
           OpenConns(cluster) == 0;
  };
  const int64_t reap_deadline = NowMs() + reap_timeout_ms + 30000;
  while (!reap_done() && NowMs() < reap_deadline) {
    // lard-lint: allow(blocking-call) bench poll thread.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const bool reap_drained = reap_batch.failures == 0 && reap_done();
  const double reap_lateness_ms =
      reap_drained ? static_cast<double>(NowMs() - reap_connect_end_ms - reap_timeout_ms) : -1.0;
  const uint64_t reap_closes =
      cluster.frontend(0).counters().idle_closes.load(std::memory_order_relaxed) -
      idle_closes_before;
  CloseAll(&reap_batch.fds);
  if (!reap_drained || reap_closes != reap_n) {
    std::fprintf(stderr,
                 "FAIL: idle reap: %zu connections armed (%llu connect errors), %llu reaped, "
                 "drained=%d\n",
                 reap_n, static_cast<unsigned long long>(reap_batch.failures),
                 static_cast<unsigned long long>(reap_closes), reap_drained ? 1 : 0);
    ++failures;
    reap_ok = false;
  } else {
    std::printf("\nidle reap: %zu connections reaped %.0f ms past the %lld ms deadline\n",
                reap_n, reap_lateness_ms, static_cast<long long>(reap_timeout_ms));
  }

  // --- Phase 3: timer-wheel microcost. ---
  const WheelCosts wheel = MeasureWheel(static_cast<size_t>(conns));
  std::printf("\ntimer wheel @ %zu entries: arm %.0f ns, rearm %.0f ns, cancel %.0f ns, "
              "advance %.0f ns/tick (heap baseline: push %.0f ns, rearm+drain %.0f ns)\n",
              wheel.entries, wheel.arm_ns, wheel.rearm_ns, wheel.cancel_ns,
              wheel.advance_ns_per_tick, wheel.heap_push_ns, wheel.heap_rearm_ns);
  if (wheel.fired != wheel.entries) {
    std::fprintf(stderr, "FAIL: wheel fired %llu of %zu armed timers\n",
                 static_cast<unsigned long long>(wheel.fired), wheel.entries);
    ++failures;
  }

  // --- Phase 4: open-loop tail latency. ---
  // Restore a long deadline first so the reaper never races an active batch's
  // think gap (and the restore path itself gets exercised).
  if (!AdminPost(cluster.admin_port(), "/idletimeout", "idle_timeout_ms=30000")) {
    std::fprintf(stderr, "FAIL: POST /idletimeout restore rejected\n");
    ++failures;
  }
  LoadGeneratorConfig load;
  load.port = cluster.port();
  load.num_clients = 32;
  load.open_loop_rps = open_loop_rps;
  LoadResult open_loop = RunLoad(load, trace);
  std::printf("\nopen loop @ %.0f sessions/s offered: %.0f req/s served, p95 batch %.2f ms, "
              "start lag mean %.2f ms max %.2f ms (%llu late)\n",
              open_loop.offered_rps, open_loop.throughput_rps, open_loop.p95_batch_latency_ms,
              open_loop.mean_start_lag_ms, open_loop.max_start_lag_ms,
              static_cast<unsigned long long>(open_loop.late_sessions));
  if (open_loop.responses_ok != open_loop.requests || open_loop.transport_errors != 0 ||
      open_loop.responses_bad != 0) {
    std::fprintf(stderr, "FAIL: open-loop run: %llu/%llu ok, %llu bad, %llu transport errors\n",
                 static_cast<unsigned long long>(open_loop.responses_ok),
                 static_cast<unsigned long long>(open_loop.requests),
                 static_cast<unsigned long long>(open_loop.responses_bad),
                 static_cast<unsigned long long>(open_loop.transport_errors));
    ++failures;
  }
  cluster.Stop();

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"target_conns\":" << conns << ",\"reap_timeout_ms\":" << reap_timeout_ms
        << ",\"open_loop_rps\":" << open_loop_rps << ",\"smoke\":" << (smoke ? "true" : "false")
        << "}";
    out << ",\"max_sustained_conns\":" << max_sustained << ",\"sweep\":[";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& point = sweep[i];
      out << (i == 0 ? "" : ",") << "{\"connections\":" << point.connections
          << ",\"sustained\":" << (point.sustained ? "true" : "false")
          << ",\"connect_seconds\":" << point.connect_seconds
          << ",\"rss_bytes_per_conn\":" << point.rss_bytes_per_conn
          << ",\"drain_seconds\":" << point.drain_seconds
          << ",\"leaked_conns\":" << point.leaked_conns << "}";
    }
    out << "],\"idle_reap\":{\"conns\":" << reap_n << ",\"idle_closes\":" << reap_closes
        << ",\"reap_lateness_ms\":" << reap_lateness_ms
        << ",\"ok\":" << (reap_ok && reap_drained ? "true" : "false") << "}";
    out << ",\"timer_wheel\":{\"entries\":" << wheel.entries << ",\"fired\":" << wheel.fired
        << ",\"arm_ns\":" << wheel.arm_ns << ",\"rearm_ns\":" << wheel.rearm_ns
        << ",\"cancel_ns\":" << wheel.cancel_ns
        << ",\"advance_ns_per_tick\":" << wheel.advance_ns_per_tick
        << ",\"heap_push_ns\":" << wheel.heap_push_ns
        << ",\"heap_rearm_ns\":" << wheel.heap_rearm_ns << "}";
    out << ",\"open_loop\":{\"offered_rps\":" << open_loop.offered_rps
        << ",\"throughput_rps\":" << open_loop.throughput_rps
        << ",\"requests\":" << open_loop.requests
        << ",\"responses_ok\":" << open_loop.responses_ok
        << ",\"responses_bad\":" << open_loop.responses_bad
        << ",\"transport_errors\":" << open_loop.transport_errors
        << ",\"p95_batch_latency_ms\":" << open_loop.p95_batch_latency_ms
        << ",\"mean_start_lag_ms\":" << open_loop.mean_start_lag_ms
        << ",\"max_start_lag_ms\":" << open_loop.max_start_lag_ms
        << ",\"late_sessions\":" << open_loop.late_sessions << "}";
    out << "}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
