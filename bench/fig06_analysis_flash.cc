// Figure 6: the Figure 5 analysis under the Flash cost model — lower per-byte
// cost moves the handoff/forwarding crossover to a smaller response size.
#include "bench/analysis_figure_driver.h"

int main(int argc, char** argv) {
  return lard::RunAnalysisFigure(argc, argv, "Figure 6", /*flash=*/true);
}
