// Figure 3: a single back-end server's throughput and delay as a function of
// load (number of active connections). The paper uses this curve to motivate
// the L_idle / L_overload thresholds of the LARD cost metrics: throughput
// saturates past a knee while delay keeps climbing.
//
// We sweep the closed-loop client population of a one-node cluster on a
// cache-resident workload (so the CPU, not the disk, shapes the curve, as in
// the paper's sketch).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("fig03_backend_load_curve");
  int64_t max_connections = 192;
  std::string csv;
  std::string personality = "apache";
  flags.AddInt("max-connections", &max_connections, "largest client population");
  flags.AddString("personality", &personality, "apache | flash");
  flags.AddString("csv", &csv, "also write CSV here");
  flags.Parse(argc, argv);

  // Small working set: everything fits in the cache after warmup.
  SyntheticTraceConfig trace_config;
  trace_config.seed = 7;
  trace_config.num_pages = 60;
  trace_config.num_sessions = 4000;
  const Trace trace = GenerateSyntheticTrace(trace_config);

  Table table({"active connections", "throughput (req/s)", "mean batch delay (ms)",
               "cpu idle", "disk idle"});
  const ServerCostModel costs = personality == "flash" ? FlashCosts() : ApacheCosts();
  const LardParams params;
  for (int64_t conns = 2; conns <= max_connections; conns *= 2) {
    ClusterSimConfig config;
    config.num_nodes = 1;
    config.policy = Policy::kLard;
    config.mechanism = Mechanism::kSingleHandoff;
    config.server_costs = costs;
    config.concurrent_sessions_per_node = static_cast<int>(conns);
    ClusterSim sim(config, &trace);
    const ClusterSimMetrics metrics = sim.Run();
    table.Row()
        .Cell(conns)
        .Cell(metrics.throughput_rps, 0)
        .Cell(metrics.mean_batch_latency_ms, 2)
        .Cell(metrics.mean_cpu_idle, 3)
        .Cell(metrics.mean_disk_idle, 3);
  }
  table.Print("Figure 3 analogue: single back-end throughput & delay vs load [" + costs.name +
                  "]",
              csv);
  std::printf("\nL_idle=%.0f and L_overload=%.0f (LARD defaults) bracket the knee of this "
              "curve: below the knee delay is flat, past it throughput is saturated and only "
              "delay grows.\n",
              params.l_idle, params.l_overload);
  return 0;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
