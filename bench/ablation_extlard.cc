// Ablation of the extended-LARD design choices the paper motivates but whose
// constants were garbled in our copy (DESIGN.md §3):
//   1. the "low disk utilization" threshold (queued disk events),
//   2. the 1/N batch load accounting for remote nodes (Section 4.2),
//   3. the replication-avoidance no-cache heuristic.
// Each row is a full Figure-7-style simulation at a fixed cluster size.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("ablation_extlard");
  int64_t nodes = 6;
  int64_t sessions = 30000;
  int64_t pages = 0;
  int64_t cache_mb = 32;
  std::string csv;
  flags.AddInt("nodes", &nodes, "cluster size");
  flags.AddInt("sessions", &sessions, "trace sessions");
  flags.AddInt("pages", &pages, "corpus pages (0 = default)");
  flags.AddInt("cache-mb", &cache_mb, "per-node cache (MB)");
  flags.AddString("csv", &csv, "also write CSV here");
  flags.Parse(argc, argv);

  SyntheticTraceConfig trace_config = PaperScaleTraceConfig(sessions);
  if (pages > 0) {
    trace_config.num_pages = pages;
  }
  const Trace trace = GenerateSyntheticTrace(trace_config);
  const SimCurve curve{"BEforward-extLARD-PHTTP", Policy::kExtendedLard,
                       Mechanism::kBackEndForwarding, false};

  Table table({"variant", "req/s", "hit rate", "forwards", "no-cache serves"});
  auto run = [&](const std::string& label, const LardParams& params) {
    const ClusterSimMetrics metrics =
        RunSimPoint(trace, curve, static_cast<int>(nodes), ApacheCosts(),
                    static_cast<uint64_t>(cache_mb) * 1024 * 1024, params);
    table.Row()
        .Cell(label)
        .Cell(metrics.throughput_rps, 0)
        .Cell(metrics.cache_hit_rate, 3)
        .Cell(static_cast<int64_t>(metrics.dispatcher.forwards))
        .Cell(static_cast<int64_t>(metrics.dispatcher.served_without_caching));
  };

  // 1. Disk-queue threshold sweep (default 4 [reconstructed]); 0 disables the
  //    read-from-idle-disk shortcut entirely.
  for (const int threshold : {0, 1, 2, 4, 8, 16, 64}) {
    LardParams params;
    params.low_disk_queue_threshold = threshold;
    run("disk-threshold=" + std::to_string(threshold), params);
  }
  // 2. Full-unit instead of 1/N batch load accounting.
  {
    LardParams params;
    params.fractional_batch_load = false;
    run("batch-load=1 (no 1/N)", params);
  }
  // 3. Disable the replication-avoidance heuristic.
  {
    LardParams params;
    params.no_cache_when_busy = false;
    run("always-cache-on-miss", params);
  }
  table.Print("Extended-LARD ablation (" + std::to_string(nodes) +
                  " Apache nodes, BE forwarding, P-HTTP)",
              csv);
  std::printf("\ndefaults: disk-threshold=4, 1/N batch accounting on, no-cache heuristic on\n");
  return 0;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
