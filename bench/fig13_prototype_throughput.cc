// Figure 13: throughput of the *prototype* cluster (real sockets, real
// fd-passing handoff, real lateral fetches on localhost) vs number of
// back-end nodes, for the five configurations the paper measured:
//   BEforward-extLARD-PHTTP, simple-LARD, simple-LARD-PHTTP, WRR-PHTTP, WRR,
// plus one extension row: multiHandoff-extLARD-PHTTP (real connection
// migration via fd hand-back, which the paper's prototype did not build).
//
// Notes vs the paper's testbed (DESIGN.md §2): the "disk" is the simulated
// FCFS seek model (scaled by --disk-scale so the bench completes quickly) and
// all nodes share one host, so absolute req/s differ from the paper's
// 300 MHz/100 Mb/s testbed; the *ordering and relative gaps* are the result.
#include <cstdio>

#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

struct ProtoCurve {
  std::string label;
  Policy policy;
  Mechanism mechanism;
  bool http10;
};

int Main(int argc, char** argv) {
  FlagSet flags("fig13_prototype_throughput");
  int64_t max_nodes = 4;
  int64_t sessions = 700;
  int64_t clients = 24;
  int64_t cache_mb = 6;
  double disk_scale = 0.08;
  std::string csv;
  flags.AddInt("max-nodes", &max_nodes, "largest cluster size (paper: 6)");
  flags.AddInt("sessions", &sessions, "sessions per measurement");
  flags.AddInt("clients", &clients, "concurrent load-generator clients");
  flags.AddInt("cache-mb", &cache_mb, "per-node cache (MB); keep << working set");
  flags.AddDouble("disk-scale", &disk_scale, "disk time compression (1.0 = paper-faithful)");
  flags.AddString("csv", &csv, "also write CSV here");
  flags.Parse(argc, argv);

  // Working set sized so 1 node thrashes and max_nodes nodes roughly hold it.
  SyntheticTraceConfig trace_config;
  trace_config.seed = 42;
  trace_config.num_pages = 400;
  trace_config.num_sessions = sessions;
  trace_config.num_clients = 128;
  trace_config.max_size_bytes = 256 * 1024;
  const Trace trace = GenerateSyntheticTrace(trace_config);
  std::printf("prototype workload: %zu targets, %.0f MB footprint, %zu requests\n",
              trace.catalog().size(), static_cast<double>(trace.catalog().TotalBytes()) / 1e6,
              trace.total_requests());

  const std::vector<ProtoCurve> curves = {
      {"BEforward-extLARD-PHTTP", Policy::kExtendedLard, Mechanism::kBackEndForwarding, false},
      // Our extension: the paper's prototype never implemented multiple
      // handoff; ours migrates connections by handing the fd back through
      // the front-end (Section 7.2's sketched design).
      {"multiHandoff-extLARD-PHTTP", Policy::kExtendedLard, Mechanism::kMultipleHandoff, false},
      {"simple-LARD", Policy::kLard, Mechanism::kSingleHandoff, true},
      {"simple-LARD-PHTTP", Policy::kLard, Mechanism::kSingleHandoff, false},
      {"WRR-PHTTP", Policy::kWrr, Mechanism::kSingleHandoff, false},
      {"WRR", Policy::kWrr, Mechanism::kSingleHandoff, true},
  };

  std::vector<std::string> columns = {"configuration"};
  for (int nodes = 1; nodes <= max_nodes; ++nodes) {
    columns.push_back(std::to_string(nodes));
  }
  Table table(columns);

  std::vector<std::vector<double>> series(curves.size());
  for (size_t c = 0; c < curves.size(); ++c) {
    const ProtoCurve& curve = curves[c];
    std::vector<std::string> row = {curve.label};
    for (int nodes = 1; nodes <= max_nodes; ++nodes) {
      ClusterConfig config;
      config.num_nodes = nodes;
      config.policy = curve.policy;
      config.mechanism = curve.mechanism;
      config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
      config.disk_time_scale = disk_scale;
      Cluster cluster(config, &trace.catalog());
      if (!cluster.Start().ok()) {
        std::fprintf(stderr, "cluster start failed\n");
        return 1;
      }
      LoadGeneratorConfig load;
      load.port = cluster.port();
      load.num_clients = static_cast<int>(clients);
      load.http10 = curve.http10;
      const LoadResult result = RunLoad(load, trace);
      cluster.Stop();
      if (result.responses_bad != 0 || result.transport_errors != 0) {
        std::fprintf(stderr, "  %s @%d nodes: %llu bad responses, %llu transport errors\n",
                     curve.label.c_str(), nodes,
                     static_cast<unsigned long long>(result.responses_bad),
                     static_cast<unsigned long long>(result.transport_errors));
      }
      series[c].push_back(result.throughput_rps);
      row.push_back(FormatDouble(result.throughput_rps, 0));
    }
    table.AddRow(row);
    std::printf("  %-26s done\n", curve.label.c_str());
  }
  table.Print("Figure 13 analogue: prototype throughput (req/s) vs cluster size", csv);

  const size_t last = static_cast<size_t>(max_nodes - 1);
  const double be = series[0][last];
  const double multi = series[1][last];
  const double simple = series[2][last];
  const double simple_phttp = series[3][last];
  const double wrr_phttp = series[4][last];
  const double wrr = series[5][last];
  std::printf("\nheadline comparisons at %lld nodes:\n", static_cast<long long>(max_nodes));
  std::printf("  extLARD-BEforward vs WRR           : %.2fx   (paper: ~4x)\n", be / wrr);
  std::printf("  extLARD-BEforward vs WRR-PHTTP     : %.2fx\n", be / wrr_phttp);
  std::printf("  multiHandoff vs BEforward          : %+.1f%%  (extension; sim: within ~6%%)\n",
              100.0 * (multi - be) / be);
  std::printf("  P-HTTP gain with extLARD           : %+.1f%%  (paper: up to ~26%%)\n",
              100.0 * (be - simple) / simple);
  std::printf("  simple-LARD-PHTTP vs simple-LARD   : %+.1f%%  (paper: up to ~35%% loss)\n",
              100.0 * (simple_phttp - simple) / simple);
  return 0;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
