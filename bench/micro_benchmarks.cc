// Google-benchmark microbenchmarks for the hot paths of the library: the
// dispatcher decision, the LRU cache, the HTTP parser, the event engine and
// the workload sampler. These bound how much of a real deployment's budget
// the policy machinery itself would consume.
#include <benchmark/benchmark.h>

#include <atomic>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/http/request_parser.h"
#include "src/net/event_loop.h"
#include "src/net/timer_wheel.h"
#include "src/sim/event_queue.h"
#include "src/sim/resources.h"
#include "src/util/rng.h"
#include "src/util/tracing.h"

namespace lard {
namespace {

void BM_LruCacheHit(benchmark::State& state) {
  LruCache cache(1ull << 30);
  for (TargetId id = 0; id < 1024; ++id) {
    cache.Insert(id, 8192);
  }
  TargetId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Touch(id));
    id = (id + 1) & 1023;
  }
}
BENCHMARK(BM_LruCacheHit);

void BM_LruCacheInsertEvict(benchmark::State& state) {
  LruCache cache(1024 * 8192 / 2);  // half the ids fit
  TargetId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Insert(id, 8192));
    id = (id + 1) & 1023;
  }
}
BENCHMARK(BM_LruCacheInsertEvict);

void BM_DispatcherFirstRequest(benchmark::State& state) {
  TargetCatalog catalog;
  std::vector<TargetId> targets;
  for (int i = 0; i < 4096; ++i) {
    targets.push_back(catalog.Intern("/t" + std::to_string(i), 8192));
  }
  NullBackendStats stats;
  DispatcherConfig config;
  config.policy = Policy::kLard;
  config.mechanism = Mechanism::kSingleHandoff;
  config.num_nodes = static_cast<int>(state.range(0));
  Dispatcher dispatcher(config, &catalog, &stats);
  ConnId conn = 1;
  size_t t = 0;
  for (auto _ : state) {
    dispatcher.OnConnectionOpen(conn);
    benchmark::DoNotOptimize(dispatcher.OnBatch(conn, {targets[t & 4095]}));
    dispatcher.OnConnectionClose(conn);
    ++conn;
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatcherFirstRequest)->Arg(4)->Arg(16)->Arg(64);

void BM_DispatcherExtLardBatch(benchmark::State& state) {
  TargetCatalog catalog;
  std::vector<TargetId> targets;
  for (int i = 0; i < 4096; ++i) {
    targets.push_back(catalog.Intern("/t" + std::to_string(i), 8192));
  }
  NullBackendStats stats;
  DispatcherConfig config;
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.num_nodes = 8;
  Dispatcher dispatcher(config, &catalog, &stats);
  dispatcher.OnConnectionOpen(1);
  dispatcher.OnBatch(1, {targets[0]});
  size_t t = 0;
  std::vector<TargetId> batch(8);
  for (auto _ : state) {
    for (auto& entry : batch) {
      entry = targets[t++ & 4095];
    }
    benchmark::DoNotOptimize(dispatcher.OnBatch(1, batch));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DispatcherExtLardBatch);

void BM_RequestParserPipelined(benchmark::State& state) {
  std::string wire;
  for (int i = 0; i < 8; ++i) {
    wire += "GET /page" + std::to_string(i) + "/obj.dat HTTP/1.1\r\nHost: cluster\r\n\r\n";
  }
  for (auto _ : state) {
    RequestParser parser;
    std::vector<HttpRequest> requests;
    parser.Feed(wire, &requests);
    benchmark::DoNotOptimize(requests);
  }
  state.SetItemsProcessed(state.iterations() * 8);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_RequestParserPipelined);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      queue.ScheduleAt(i * 7 % 997, [&fired]() { ++fired; });
    }
    queue.RunUntilEmpty();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_FifoServerSubmit(benchmark::State& state) {
  EventQueue queue;
  FifoServer server(&queue);
  for (auto _ : state) {
    server.Submit(10.0, []() {});
    if (queue.pending() > 4096) {
      state.PauseTiming();
      queue.RunUntilEmpty();
      state.ResumeTiming();
    }
  }
  queue.RunUntilEmpty();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoServerSubmit);

// The three costs a request can pay at a RecordSpan call site: tracer
// disabled (one branch), enabled but this connection unsampled (one hash —
// the steady-state hot path at the default 1/16 sampling), and sampled
// (snprintf + locked ring write).
void BM_RecordSpanDisabled(benchmark::State& state) {
  TracerConfig config;
  config.enabled = false;
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("bench");
  uint32_t seq = 0;
  for (auto _ : state) {
    RecordSpan(&tracer, ring, 7, seq++, SpanKind::kServe, 1, 0, 0, "status=%d", 200);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordSpanDisabled);

void BM_RecordSpanUnsampled(benchmark::State& state) {
  TracerConfig config;
  config.sample_every = 1u << 30;  // effectively nothing samples
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("bench");
  uint64_t id = 1;
  uint32_t seq = 0;
  for (auto _ : state) {
    RecordSpan(&tracer, ring, id++, seq++, SpanKind::kServe, 1, 0, 0, "status=%d", 200);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordSpanUnsampled);

void BM_RecordSpanSampled(benchmark::State& state) {
  TracerConfig config;
  config.sample_every = 1;
  config.ring_capacity = 4096;
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("bench");
  uint32_t seq = 0;
  for (auto _ : state) {
    RecordSpan(&tracer, ring, 7, seq++, SpanKind::kServe, 1, 0, 0, "status=%d cache=%c", 200,
               'h');
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordSpanSampled);

void BM_TraceRingSnapshot(benchmark::State& state) {
  TracerConfig config;
  config.sample_every = 1;
  config.ring_capacity = 2048;
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("bench");
  for (uint32_t i = 0; i < 4096; ++i) {
    RecordSpan(&tracer, ring, 7, i, SpanKind::kServe, 1, i, 1, "status=%d", 200);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring->Snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRingSnapshot);

// Cross-loop post round trip: another thread posts to a running loop and
// waits for the closure to execute. This is the price every CompleteHandoff
// pays to hop from a shard loop to the control-plane loop in the
// reactor-per-core front end, and what the Post wakeup-contention fix
// (atomic pending count + in-thread eventfd skip) was about.
void BM_EventLoopCrossPost(benchmark::State& state) {
  EventLoop loop;
  std::thread runner([&loop]() { loop.Run(); });
  for (auto _ : state) {
    std::atomic<bool> done{false};
    loop.Post([&done]() { done.store(true, std::memory_order_release); });
    while (!done.load(std::memory_order_acquire)) {
    }
  }
  loop.Stop();
  runner.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventLoopCrossPost);

// Same-loop self-posts: tasks a loop queues onto itself (deferred conn-map
// erases, re-scheduled work) take the no-wakeup fast path — no eventfd
// write, no syscall. A batch per round trip amortizes the one cross-thread
// hop that kicks each measurement off.
void BM_EventLoopSelfPost(benchmark::State& state) {
  constexpr int kBatch = 256;
  EventLoop loop;
  std::thread runner([&loop]() { loop.Run(); });
  for (auto _ : state) {
    std::atomic<bool> done{false};
    loop.Post([&loop, &done]() {
      for (int i = 0; i < kBatch - 1; ++i) {
        loop.Post([]() {});
      }
      loop.Post([&done]() { done.store(true, std::memory_order_release); });
    });
    while (!done.load(std::memory_order_acquire)) {
    }
  }
  loop.Stop();
  runner.join();
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventLoopSelfPost);

// The connection keep-alive hot path at scale: rearm one deadline among N
// live timers. The wheel unlinks and relinks two intrusive list nodes —
// flat across N — where the old heap strategy (push the new deadline, leave
// a tombstone to discard at pop) grows with log N and doubles the heap's
// occupancy under churn. Run both at 1k and 100k live timers to see the
// divergence the O(1) claim is about.
void BM_TimerWheelRearm(benchmark::State& state) {
  const size_t live = static_cast<size_t>(state.range(0));
  TimerWheel wheel;
  const int64_t horizon = wheel.horizon_ms();
  for (size_t i = 0; i < live; ++i) {
    wheel.Arm(i + 1, 1 + static_cast<int64_t>(i) % (horizon - 2), []() {});
  }
  uint64_t id = 1;
  int64_t deadline = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wheel.Rearm(id, 1 + deadline % (horizon - 2)));
    id = id % live + 1;
    deadline += 13;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerWheelRearm)->Arg(1000)->Arg(100000);

void BM_TimerHeapRearmBaseline(benchmark::State& state) {
  const size_t live = static_cast<size_t>(state.range(0));
  using Entry = std::pair<int64_t, uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (size_t i = 0; i < live; ++i) {
    heap.emplace(1 + static_cast<int64_t>(i) % 4093, i + 1);
  }
  uint64_t id = 1;
  int64_t deadline = 1;
  for (auto _ : state) {
    // Lazy-cancel rearm: push the new deadline now, pay the tombstone pop
    // later. Charge both halves here, holding occupancy near `live`.
    heap.emplace(1 + deadline % 4093, id);
    heap.pop();
    id = id % live + 1;
    deadline += 13;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerHeapRearmBaseline)->Arg(1000)->Arg(100000);

// One tick of wheel advance with N live timers spread across the horizon:
// slot bookkeeping plus the ~N/512 deadline fires that tick owns. This is
// the steady-state cost the event loop pays every 8 ms at scale. The wheel
// is refilled (untimed) whenever a rotation drains it.
void BM_TimerWheelAdvanceTick(benchmark::State& state) {
  const size_t live = static_cast<size_t>(state.range(0));
  TimerWheel wheel;
  const int64_t horizon = wheel.horizon_ms();
  int64_t now = 0;
  for (auto _ : state) {
    if (wheel.empty()) {
      state.PauseTiming();
      for (size_t i = 0; i < live; ++i) {
        wheel.Arm(i + 1, now + 1 + static_cast<int64_t>(i) % (horizon - 2), []() {});
      }
      state.ResumeTiming();
    }
    now += wheel.tick_ms();
    wheel.Advance(now, [](const std::function<void()>& fn) { fn(); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerWheelAdvanceTick)->Arg(1000)->Arg(100000);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfSampler zipf(40000, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace lard

BENCHMARK_MAIN();
