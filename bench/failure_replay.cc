// Kill-storm failure-replay scenario bench: a cluster under sustained
// load-generator traffic has back-ends *killed* (uncooperative crash: the
// node's loop stops dead, no drain, no handback) one after another, each
// replaced by a fresh join. With crash-transparent replay the front-end's
// journal re-serves every in-flight idempotent request on a survivor over
// the same client TCP connection, so client-visible failures per crash drop
// to ~0; the same storm with replay disabled shows the paper's baseline —
// every request in flight on the crashed node is lost. The simulator's
// deterministic twin replays the storm as NodeFailure events with a
// non-idempotent request mix and must report the shared invariant
// lost == non_idempotent_in_flight.
//
// Output: throughput/goodput curve across the storm, per-kill recovery
// latency, requests-lost-per-crash with and without replay, and (with
// --json) a machine-readable record for CI's bench-invariant gate. Exit code
// is non-zero when an invariant fails.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Sample {
  int64_t t_ms = 0;
  uint64_t requests_total = 0;
};

struct KillRecord {
  NodeId node = kInvalidNode;
  int64_t at_ms = 0;
  int64_t recovery_ms = -1;  // time until goodput regained half its pre-kill rate
};

struct StormResult {
  LoadResult load;
  ClusterSnapshot snapshot;
  uint64_t failure_reassignments = 0;
  std::vector<Sample> samples;
  std::vector<KillRecord> kills;
  uint64_t lost_requests = 0;
};

uint64_t TotalBackendRequests(MetricsRegistry* metrics, int node_slots) {
  uint64_t total = 0;
  for (int node = 0; node < node_slots; ++node) {
    total += metrics->Counter(MetricsRegistry::WithNode("lard_backend_requests_total", node))
                 ->value();
  }
  return total;
}

double WindowRps(const std::vector<Sample>& samples, size_t i) {
  if (i == 0 || i >= samples.size()) {
    return 0.0;
  }
  const double dt_s =
      static_cast<double>(samples[i].t_ms - samples[i - 1].t_ms) / 1000.0;
  return dt_s > 0.0 ? static_cast<double>(samples[i].requests_total -
                                          samples[i - 1].requests_total) /
                          dt_s
                    : 0.0;
}

// One kill-storm run against a fresh cluster. `replay` toggles the journal.
StormResult RunStorm(const Trace& trace, int64_t nodes, int64_t clients, int64_t kills,
                     int64_t kill_interval_ms, int64_t sample_interval_ms,
                     int64_t heartbeat_timeout_ms, bool replay, bool add_replacement) {
  ClusterConfig config;
  config.num_nodes = static_cast<int>(nodes);
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 4ull * 1024 * 1024;
  config.disk_time_scale = 0.05;
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = heartbeat_timeout_ms;
  config.retire_grace_ms = 1000;
  config.replay_enabled = replay;
  Cluster cluster(config, &trace.catalog());
  Status status = cluster.Start();
  LARD_CHECK(status.ok()) << status.ToString();

  StormResult result;
  std::atomic<bool> load_done{false};
  std::thread load_thread([&]() {
    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = static_cast<int>(clients);
    // With replay the stall is bounded by crash detection (one heartbeat
    // timeout) + the re-handoff; without it, stranded reads must fail fast
    // so the baseline measures losses, not timeouts.
    load.recv_timeout_ms = replay ? 10000 : heartbeat_timeout_ms + 700;
    result.load = RunLoad(load, trace);
    load_done.store(true, std::memory_order_release);
  });

  const int64_t start_ms = NowMs();
  MetricsRegistry* metrics = cluster.metrics();
  int node_slots = static_cast<int>(nodes);
  NodeId next_victim = 1;  // node 0 always survives
  int64_t next_kill_ms = start_ms + kill_interval_ms;
  int64_t kills_left = kills;

  while (!load_done.load(std::memory_order_acquire)) {
    result.samples.push_back({NowMs() - start_ms, TotalBackendRequests(metrics, node_slots)});

    // Per-kill recovery: first sampling window after the kill whose goodput
    // regained half of the pre-kill rate.
    if (!result.kills.empty() && result.kills.back().recovery_ms < 0 &&
        result.samples.size() >= 2) {
      KillRecord& kill = result.kills.back();
      double pre = 0.0;
      int pre_windows = 0;
      for (size_t i = result.samples.size(); i-- > 1;) {
        if (result.samples[i].t_ms <= kill.at_ms && pre_windows < 3) {
          pre += WindowRps(result.samples, i);
          ++pre_windows;
        }
      }
      pre = pre_windows > 0 ? pre / pre_windows : 0.0;
      const size_t last = result.samples.size() - 1;
      if (result.samples[last].t_ms > kill.at_ms &&
          WindowRps(result.samples, last) >= 0.5 * pre) {
        kill.recovery_ms = result.samples[last].t_ms - kill.at_ms;
      }
    }

    if (kills_left > 0 && NowMs() >= next_kill_ms &&
        next_victim < static_cast<NodeId>(node_slots)) {
      if (cluster.KillNode(next_victim)) {
        result.kills.push_back({next_victim, NowMs() - start_ms, -1});
        --kills_left;
        if (add_replacement && cluster.AddNode() != kInvalidNode) {
          ++node_slots;
        }
      }
      ++next_victim;
      next_kill_ms = NowMs() + kill_interval_ms;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sample_interval_ms));
  }
  load_thread.join();
  result.samples.push_back({NowMs() - start_ms, TotalBackendRequests(metrics, node_slots)});

  result.snapshot = cluster.Snapshot();
  result.failure_reassignments =
      cluster.frontend().dispatcher().counters().failure_reassignments;
  result.lost_requests = result.load.requests - result.load.responses_ok;
  cluster.Stop();
  return result;
}

int Main(int argc, char** argv) {
  FlagSet flags("failure_replay");
  int64_t nodes = 4;
  int64_t sessions = 6000;
  int64_t clients = 32;
  int64_t kills = 3;
  int64_t kill_interval_ms = 900;
  int64_t sample_interval_ms = 100;
  int64_t heartbeat_timeout_ms = 500;
  bool add_replacement = true;
  bool baseline = true;
  bool smoke = false;
  std::string json;
  std::string csv;
  flags.AddInt("nodes", &nodes, "initial cluster size");
  flags.AddInt("sessions", &sessions, "trace sessions to replay (per storm)");
  flags.AddInt("clients", &clients, "concurrent load-generator clients");
  flags.AddInt("kills", &kills, "how many back-ends to kill");
  flags.AddInt("kill-interval-ms", &kill_interval_ms, "pause between kills");
  flags.AddInt("sample-interval-ms", &sample_interval_ms, "throughput sampling period");
  flags.AddInt("heartbeat-timeout-ms", &heartbeat_timeout_ms,
               "front-end crash-detection timeout");
  flags.AddBool("add", &add_replacement, "join a replacement node after each kill");
  flags.AddBool("baseline", &baseline, "also run the storm with replay disabled");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI");
  flags.AddString("json", &json, "write the scenario record as JSON here");
  flags.AddString("csv", &csv, "also write the throughput table as CSV here");
  flags.Parse(argc, argv);

  if (smoke) {
    nodes = 3;
    sessions = 1500;
    clients = 12;
    kills = 2;
    kill_interval_ms = 600;
  }

  SyntheticTraceConfig trace_config;
  trace_config.seed = 42;
  trace_config.num_pages = 200;
  trace_config.num_sessions = sessions;
  trace_config.num_clients = static_cast<int>(clients);
  trace_config.max_size_bytes = 32 * 1024;
  const Trace trace = GenerateSyntheticTrace(trace_config);

  std::printf("=== kill storm WITH crash-transparent replay ===\n");
  const StormResult with_replay =
      RunStorm(trace, nodes, clients, kills, kill_interval_ms, sample_interval_ms,
               heartbeat_timeout_ms, /*replay=*/true, add_replacement);
  StormResult without_replay;
  if (baseline) {
    std::printf("=== kill storm WITHOUT replay (baseline) ===\n");
    without_replay =
        RunStorm(trace, nodes, clients, kills, kill_interval_ms, sample_interval_ms,
                 heartbeat_timeout_ms, /*replay=*/false, add_replacement);
  }

  // The simulator's deterministic twin: the same storm as scripted
  // NodeFailure events, with a non-idempotent request mix so the lost ==
  // non_idempotent invariant is exercised, plus a pure-GET run that must
  // lose nothing.
  ClusterSimConfig sim_config;
  sim_config.num_nodes = static_cast<int>(nodes);
  sim_config.policy = Policy::kExtendedLard;
  sim_config.mechanism = Mechanism::kBackEndForwarding;
  sim_config.backend_cache_bytes = 4ull * 1024 * 1024;
  sim_config.concurrent_sessions_per_node = 16;
  sim_config.failure_replay = true;
  sim_config.non_idempotent_fraction = 0.1;
  for (int64_t kill = 0; kill < kills && kill + 1 < nodes; ++kill) {
    sim_config.membership_events.push_back(
        {static_cast<SimTimeUs>(kill + 1) * 150000, MembershipAction::kNodeFailure,
         static_cast<NodeId>(kill + 1)});
  }
  ClusterSim sim(sim_config, &trace);
  const ClusterSimMetrics sim_metrics = sim.Run();

  ClusterSimConfig pure_config = sim_config;
  pure_config.non_idempotent_fraction = 0.0;
  ClusterSim pure_sim(pure_config, &trace);
  const ClusterSimMetrics pure_metrics = pure_sim.Run();

  // --- report ---
  Table table({"t (ms)", "cumulative req", "req/s (window)"});
  for (size_t i = 1; i < with_replay.samples.size(); ++i) {
    table.Row()
        .Cell(with_replay.samples[i].t_ms)
        .Cell(static_cast<int64_t>(with_replay.samples[i].requests_total))
        .Cell(WindowRps(with_replay.samples, i), 0);
  }
  table.Print("Goodput across the kill storm (replay enabled)", csv);

  const double kills_run = static_cast<double>(with_replay.kills.size());
  const double lost_per_crash_with =
      kills_run > 0 ? static_cast<double>(with_replay.lost_requests) / kills_run : 0.0;
  const double lost_per_crash_without =
      baseline && !without_replay.kills.empty()
          ? static_cast<double>(without_replay.lost_requests) /
                static_cast<double>(without_replay.kills.size())
          : 0.0;

  std::printf("\nkill storm on a %lld-node cluster (%zu kills):\n",
              static_cast<long long>(nodes), with_replay.kills.size());
  for (const KillRecord& kill : with_replay.kills) {
    std::printf("  node %d killed at t=%lldms, goodput recovered in %lldms\n", kill.node,
                static_cast<long long>(kill.at_ms),
                static_cast<long long>(kill.recovery_ms));
  }
  std::printf("with replay:    %llu requests, lost %llu (%.2f/crash), replays=%llu "
              "giveups=%llu adopted=%llu spliced=%llu\n",
              static_cast<unsigned long long>(with_replay.load.requests),
              static_cast<unsigned long long>(with_replay.lost_requests),
              lost_per_crash_with,
              static_cast<unsigned long long>(with_replay.snapshot.replays),
              static_cast<unsigned long long>(with_replay.snapshot.replay_giveups),
              static_cast<unsigned long long>(with_replay.snapshot.replays_adopted),
              static_cast<unsigned long long>(with_replay.snapshot.spliced_responses));
  if (baseline) {
    std::printf("without replay: %llu requests, lost %llu (%.2f/crash)\n",
                static_cast<unsigned long long>(without_replay.load.requests),
                static_cast<unsigned long long>(without_replay.lost_requests),
                lost_per_crash_without);
  }
  std::printf("sim twin: replayed_conns=%llu replayed_reqs=%llu lost=%llu "
              "non_idempotent_in_flight=%llu (invariant %s)\n",
              static_cast<unsigned long long>(sim_metrics.replayed_connections),
              static_cast<unsigned long long>(sim_metrics.replayed_requests),
              static_cast<unsigned long long>(sim_metrics.lost_requests),
              static_cast<unsigned long long>(sim_metrics.non_idempotent_in_flight),
              sim_metrics.lost_requests == sim_metrics.non_idempotent_in_flight ? "ok"
                                                                                 : "VIOLATED");

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"nodes\":" << nodes << ",\"sessions\":" << sessions
        << ",\"clients\":" << clients << ",\"kills\":" << kills
        << ",\"kill_interval_ms\":" << kill_interval_ms
        << ",\"heartbeat_timeout_ms\":" << heartbeat_timeout_ms
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},";
    out << "\"samples\":[";
    for (size_t i = 0; i < with_replay.samples.size(); ++i) {
      out << (i == 0 ? "" : ",") << "{\"t_ms\":" << with_replay.samples[i].t_ms
          << ",\"requests_total\":" << with_replay.samples[i].requests_total << "}";
    }
    out << "],\"kills\":[";
    for (size_t i = 0; i < with_replay.kills.size(); ++i) {
      out << (i == 0 ? "" : ",") << "{\"node\":" << with_replay.kills[i].node
          << ",\"at_ms\":" << with_replay.kills[i].at_ms
          << ",\"recovery_ms\":" << with_replay.kills[i].recovery_ms << "}";
    }
    out << "],\"with_replay\":{\"requests\":" << with_replay.load.requests
        << ",\"responses_ok\":" << with_replay.load.responses_ok
        << ",\"responses_bad\":" << with_replay.load.responses_bad
        << ",\"transport_errors\":" << with_replay.load.transport_errors
        << ",\"lost_requests\":" << with_replay.lost_requests
        << ",\"lost_per_crash\":" << lost_per_crash_with
        << ",\"throughput_rps\":" << with_replay.load.throughput_rps
        << ",\"replays\":" << with_replay.snapshot.replays
        << ",\"replay_giveups\":" << with_replay.snapshot.replay_giveups
        << ",\"replays_adopted\":" << with_replay.snapshot.replays_adopted
        << ",\"spliced_responses\":" << with_replay.snapshot.spliced_responses
        << ",\"failure_reassignments\":" << with_replay.failure_reassignments
        << ",\"auto_removals\":" << with_replay.snapshot.auto_removals << "}";
    if (baseline) {
      out << ",\"without_replay\":{\"requests\":" << without_replay.load.requests
          << ",\"responses_ok\":" << without_replay.load.responses_ok
          << ",\"responses_bad\":" << without_replay.load.responses_bad
          << ",\"transport_errors\":" << without_replay.load.transport_errors
          << ",\"lost_requests\":" << without_replay.lost_requests
          << ",\"lost_per_crash\":" << lost_per_crash_without
          << ",\"throughput_rps\":" << without_replay.load.throughput_rps
          << ",\"replays\":" << without_replay.snapshot.replays << "}";
    }
    out << ",\"sim\":{\"nodes_failed\":" << sim_metrics.nodes_failed
        << ",\"replayed_connections\":" << sim_metrics.replayed_connections
        << ",\"replayed_requests\":" << sim_metrics.replayed_requests
        << ",\"lost_requests\":" << sim_metrics.lost_requests
        << ",\"non_idempotent_in_flight\":" << sim_metrics.non_idempotent_in_flight
        << ",\"replay_unplaceable\":" << sim_metrics.replay_unplaceable
        << ",\"failovers\":" << sim_metrics.failovers
        << ",\"failure_reassignments\":" << sim_metrics.dispatcher.failure_reassignments
        << ",\"pure_idempotent_lost\":" << pure_metrics.lost_requests << "}}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // --- invariants (the bench doubles as an end-to-end check) ---
  int failures = 0;
  if (with_replay.load.responses_bad != 0 || with_replay.load.transport_errors != 0 ||
      with_replay.lost_requests != 0) {
    std::fprintf(stderr,
                 "FAIL: client-visible failures with replay enabled (lost=%llu bad=%llu "
                 "transport=%llu) — idempotent crashes must be invisible\n",
                 static_cast<unsigned long long>(with_replay.lost_requests),
                 static_cast<unsigned long long>(with_replay.load.responses_bad),
                 static_cast<unsigned long long>(with_replay.load.transport_errors));
    ++failures;
  }
  if (with_replay.snapshot.replays == 0) {
    std::fprintf(stderr, "FAIL: the kill storm triggered no journal replays\n");
    ++failures;
  }
  if (with_replay.snapshot.replays != with_replay.failure_reassignments) {
    std::fprintf(stderr,
                 "FAIL: replay counters disagree (fe replays=%llu dispatcher "
                 "failure_reassignments=%llu)\n",
                 static_cast<unsigned long long>(with_replay.snapshot.replays),
                 static_cast<unsigned long long>(with_replay.failure_reassignments));
    ++failures;
  }
  if (with_replay.snapshot.replay_giveups != 0) {
    std::fprintf(stderr, "FAIL: giveups on a pure-GET workload (%llu)\n",
                 static_cast<unsigned long long>(with_replay.snapshot.replay_giveups));
    ++failures;
  }
  if (baseline && without_replay.lost_requests == 0) {
    std::fprintf(stderr,
                 "FAIL: the no-replay baseline lost nothing — the storm is not "
                 "exercising the crash path\n");
    ++failures;
  }
  if (sim_metrics.lost_requests != sim_metrics.non_idempotent_in_flight) {
    std::fprintf(stderr,
                 "FAIL: sim invariant violated (lost=%llu non_idempotent=%llu)\n",
                 static_cast<unsigned long long>(sim_metrics.lost_requests),
                 static_cast<unsigned long long>(sim_metrics.non_idempotent_in_flight));
    ++failures;
  }
  if (pure_metrics.lost_requests != 0) {
    std::fprintf(stderr, "FAIL: sim lost requests on a pure-idempotent workload (%llu)\n",
                 static_cast<unsigned long long>(pure_metrics.lost_requests));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
