#include "bench/sim_figure_driver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {

int RunSimFigure(int argc, char** argv, const char* figure_name,
                 const char* default_personality) {
  FlagSet flags(figure_name);
  int64_t max_nodes = 10;
  int64_t sessions = 60000;
  int64_t pages = 0;  // 0 = PaperScaleTraceConfig default
  double alpha = 0.0;
  double pages_per_session = 0.0;
  int64_t seed = 42;
  int64_t cache_mb = 32;
  std::string csv;
  std::string personality = default_personality;
  flags.AddInt("max-nodes", &max_nodes, "largest cluster size to simulate");
  flags.AddInt("sessions", &sessions, "trace sessions (more = slower, smoother)");
  flags.AddInt("pages", &pages, "distinct pages in the corpus (0 = default)");
  flags.AddDouble("alpha", &alpha, "Zipf popularity exponent (0 = default)");
  flags.AddDouble("pages-per-session", &pages_per_session,
                  "mean page visits per persistent connection (0 = default)");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddInt("cache-mb", &cache_mb, "per-node file cache size (MB)");
  flags.AddString("csv", &csv, "also write CSV here");
  flags.AddString("personality", &personality, "apache | flash");
  flags.Parse(argc, argv);

  const ServerCostModel costs = personality == "flash" ? FlashCosts() : ApacheCosts();
  const uint64_t cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
  std::printf("%s: generating Rice-like trace (%lld sessions)...\n", figure_name,
              static_cast<long long>(sessions));
  SyntheticTraceConfig trace_config =
      PaperScaleTraceConfig(sessions, static_cast<uint64_t>(seed));
  if (pages > 0) {
    trace_config.num_pages = pages;
  }
  if (alpha > 0.0) {
    trace_config.zipf_alpha = alpha;
  }
  if (pages_per_session > 0.0) {
    trace_config.pages_per_session_mean = pages_per_session;
  }
  const Trace trace = GenerateSyntheticTrace(trace_config);
  std::printf("trace: %zu targets, %.0f MB footprint, %zu requests, %.1f req/conn\n",
              trace.catalog().size(), static_cast<double>(trace.catalog().TotalBytes()) / 1e6,
              trace.total_requests(), trace.mean_requests_per_session());

  std::vector<std::string> columns = {"policy/mechanism"};
  for (int nodes = 1; nodes <= max_nodes; ++nodes) {
    columns.push_back(std::to_string(nodes));
  }
  Table table(columns);

  std::vector<std::vector<double>> throughput;
  const auto curves = FigureSevenCurves();
  for (const SimCurve& curve : curves) {
    std::vector<std::string> row = {curve.label};
    std::vector<double> series;
    for (int nodes = 1; nodes <= max_nodes; ++nodes) {
      const ClusterSimMetrics metrics = RunSimPoint(trace, curve, nodes, costs, cache_bytes);
      series.push_back(metrics.throughput_rps);
      row.push_back(FormatDouble(metrics.throughput_rps, 0));
    }
    throughput.push_back(series);
    table.AddRow(row);
    std::printf("  %-28s done\n", curve.label.c_str());
  }
  table.Print(std::string(figure_name) + " analogue: throughput (req/s) vs cluster size [" +
                  costs.name + "]",
              csv);

  const size_t last = static_cast<size_t>(max_nodes - 1);
  const auto at = [&](const char* label) -> const std::vector<double>& {
    for (size_t i = 0; i < curves.size(); ++i) {
      if (curves[i].label == label) {
        return throughput[i];
      }
    }
    std::fprintf(stderr, "missing curve %s\n", label);
    std::abort();
  };
  const double be = at("BEforward-extLARD-PHTTP")[last];
  const double multi = at("multiHandoff-extLARD-PHTTP")[last];
  const double ideal = at("zeroCost-extLARD-PHTTP")[last];
  const double simple = at("simple-LARD")[last];
  const double simple_phttp = at("simple-LARD-PHTTP")[last];
  const double wrr = at("WRR")[last];

  double worst_simple_loss = 0.0;
  for (size_t n = 0; n <= last; ++n) {
    const double loss = 1.0 - at("simple-LARD-PHTTP")[n] / std::max(at("simple-LARD")[n], 1e-9);
    worst_simple_loss = std::max(worst_simple_loss, loss);
  }

  std::printf("\nheadline comparisons at %lld nodes:\n", static_cast<long long>(max_nodes));
  std::printf("  BEforward-extLARD vs WRR              : %.2fx  (paper: ~4x)\n", be / wrr);
  std::printf("  BEforward below zeroCost ideal by     : %.1f%%  (paper: within ~6%%)\n",
              100.0 * (1.0 - be / ideal));
  std::printf("  BEforward vs multiHandoff             : %+.1f%%  (paper: within ~6%%)\n",
              100.0 * (be - multi) / multi);
  std::printf("  extLARD P-HTTP gain over simple-LARD  : %+.1f%%  (paper: up to ~26%%)\n",
              100.0 * (be - simple) / simple);
  std::printf("  simple-LARD-PHTTP vs simple-LARD      : %+.1f%% at max nodes, worst case "
              "-%.1f%%  (paper: up to ~35%% loss on Apache, larger on Flash)\n",
              100.0 * (simple_phttp - simple) / simple, 100.0 * worst_simple_loss);
  return 0;
}

}  // namespace lard
