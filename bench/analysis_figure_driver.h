// Shared driver for the Figure 5 (Apache) / Figure 6 (Flash) analytic benches.
#ifndef BENCH_ANALYSIS_FIGURE_DRIVER_H_
#define BENCH_ANALYSIS_FIGURE_DRIVER_H_

namespace lard {

int RunAnalysisFigure(int argc, char** argv, const char* figure_name, bool flash);

}  // namespace lard

#endif  // BENCH_ANALYSIS_FIGURE_DRIVER_H_
