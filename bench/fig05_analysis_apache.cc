// Figure 5: analytic cluster bandwidth vs mean response size for the TCP
// multiple-handoff and back-end-forwarding mechanisms, Apache cost model,
// 4 nodes, pessimal policy (every request after the first served remotely).
// Prints the two series and the crossover point.
#include "bench/analysis_figure_driver.h"

int main(int argc, char** argv) {
  return lard::RunAnalysisFigure(argc, argv, "Figure 5", /*flash=*/false);
}
