// Telemetry-overhead bench: the cost and the value of the telemetry pipeline.
//
// 1. Overhead: the same load-generator workload against fresh clusters with
//    telemetry off (telemetry_interval_ms = 0: no stores, no per-request
//    latency histogram, no kTelemetry traffic) and on, reporting best-of-N
//    throughput per mode. The CI gate (check_bench_json.py) enforces the
//    acceptance bound: telemetry-on throughput >= 0.98x telemetry-off.
//
// 2. Watchdog detection latency: one cluster with a fast sampling interval
//    and a single p99-latency rule runs a cache-friendly steady workload
//    (asserting zero watchdog transitions), then switches to an uncachable
//    disk-bound workload that saturates the back-ends, and measures how many
//    sampling intervals pass before /cluster/health leaves "ok". The gate:
//    detection within 5 intervals, zero false transitions during steady
//    state.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/slo_watchdog.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"

namespace lard {
namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  std::string mode;
  double best_rps = 0.0;
  std::vector<double> runs_rps;
  uint64_t fe_samples = 0;  // FE TimeSeriesStore rows across the runs
  uint64_t responses_ok = 0;
  uint64_t responses_bad = 0;
  uint64_t transport_errors = 0;
};

ModeResult RunMode(const std::string& mode, const Trace& trace, int64_t nodes, int64_t clients,
                   int64_t repeat, int64_t telemetry_interval_ms) {
  ModeResult result;
  result.mode = mode;
  for (int64_t rep = 0; rep < repeat; ++rep) {
    ClusterConfig config;
    config.num_nodes = static_cast<int>(nodes);
    config.policy = Policy::kExtendedLard;
    config.mechanism = Mechanism::kBackEndForwarding;
    // Mostly-cached regime: the overhead under test is per-request CPU
    // (latency histogram observes, sampler reads), so keep the disk out.
    config.backend_cache_bytes = 64ull * 1024 * 1024;
    config.disk_time_scale = 0.02;
    config.telemetry_interval_ms = telemetry_interval_ms;
    Cluster cluster(config, &trace.catalog());
    Status status = cluster.Start();
    LARD_CHECK(status.ok()) << status.ToString();

    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = static_cast<int>(clients);
    const LoadResult run = RunLoad(load, trace);
    result.runs_rps.push_back(run.throughput_rps);
    result.best_rps = std::max(result.best_rps, run.throughput_rps);
    result.responses_ok += run.responses_ok;
    result.responses_bad += run.responses_bad;
    result.transport_errors += run.transport_errors;
    if (telemetry_interval_ms > 0) {
      cluster.InspectReplica(0, [&result](const FrontEnd& fe) {
        if (fe.telemetry() != nullptr) {
          result.fe_samples += fe.telemetry()->num_samples();
        }
      });
    }
    cluster.Stop();
  }
  return result;
}

// --- watchdog detection scenario ---

constexpr int kHotFiles = 32;           // 32 x 8 KB: fits the 2 MB cache
constexpr uint64_t kHotBytes = 8 * 1024;
constexpr int kColdFiles = 2000;        // 2000 x 64 KB: never fits, all misses
constexpr uint64_t kColdBytes = 64 * 1024;

// Both traces intern the same catalog (hot first, then cold) so either can be
// replayed against a cluster built from the other's catalog.
void InternHotCold(TargetCatalog* catalog) {
  for (int i = 0; i < kHotFiles; ++i) {
    catalog->Intern("/hot/" + std::to_string(i), kHotBytes);
  }
  for (int i = 0; i < kColdFiles; ++i) {
    catalog->Intern("/cold/" + std::to_string(i), kColdBytes);
  }
}

// Cache-friendly steady workload: persistent connections cycling the hot set.
Trace BuildHotTrace(int64_t sessions) {
  Trace trace;
  InternHotCold(&trace.catalog());
  for (int64_t s = 0; s < sessions; ++s) {
    TraceSession session;
    session.client_id = static_cast<uint32_t>(s);
    for (int b = 0; b < 4; ++b) {
      TraceBatch batch;
      batch.targets.push_back(static_cast<TargetId>((s * 4 + b) % kHotFiles));
      batch.targets.push_back(static_cast<TargetId>((s * 4 + b + 7) % kHotFiles));
      session.batches.push_back(std::move(batch));
    }
    trace.sessions().push_back(std::move(session));
  }
  return trace;
}

// Disk-bound saturation workload: every request a distinct cold file.
Trace BuildColdTrace(int64_t sessions) {
  Trace trace;
  InternHotCold(&trace.catalog());
  int64_t next = 0;
  for (int64_t s = 0; s < sessions; ++s) {
    TraceSession session;
    session.client_id = static_cast<uint32_t>(s);
    TraceBatch batch;
    for (int r = 0; r < 4; ++r) {
      batch.targets.push_back(static_cast<TargetId>(kHotFiles + (next++ % kColdFiles)));
    }
    session.batches.push_back(std::move(batch));
    trace.sessions().push_back(std::move(session));
  }
  return trace;
}

struct WatchdogResult {
  int64_t interval_ms = 0;
  uint64_t steady_transitions = 0;  // must be 0: no flapping on a clean load
  std::string steady_status;
  double detection_intervals = -1.0;  // intervals until status left "ok"
  std::string detected_status;
  bool be_mirrored = false;  // FE health view carried back-end telemetry
};

WatchdogResult RunWatchdogScenario(int64_t nodes, int64_t clients, int64_t interval_ms,
                                   bool smoke) {
  WatchdogResult result;
  result.interval_ms = interval_ms;
  const Trace hot = BuildHotTrace(smoke ? 2000 : 6000);
  const Trace cold = BuildColdTrace(smoke ? 600 : 2000);

  ClusterConfig config;
  config.num_nodes = static_cast<int>(nodes);
  config.policy = Policy::kExtendedLard;
  config.mechanism = Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = 2ull * 1024 * 1024;  // hot set fits, cold never
  config.disk_time_scale = 1.0;  // paper-faithful: one miss ~30ms + queueing
  config.telemetry_interval_ms = interval_ms;
  // One rule so the scenario is deterministic: back-end p99 over 150ms is a
  // violation; two violating ticks of the last five trip "degraded". The
  // ceiling sits far above any cache-hit latency (µs) and far below a
  // saturated disk queue (hundreds of ms), so steady state cannot flap and
  // saturation cannot hide.
  SloRule rule;
  rule.name = "be_p99_latency";
  rule.input = "be_p99_latency_us";
  rule.ceiling = 150000.0;
  rule.fast_window = 5;
  rule.fast_burn = 0.4;
  rule.slow_window = 40;
  rule.slow_burn = 0.5;
  config.slo_rules.push_back(rule);
  Cluster cluster(config, &hot.catalog());
  Status status = cluster.Start();
  LARD_CHECK(status.ok()) << status.ToString();

  const auto sleep_intervals = [interval_ms](int64_t n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms * n));
  };

  // Warm the hot set with a gentle load: compulsory misses go to disk, but
  // two clients bound the disk queue, keeping p99 well under the ceiling.
  LoadGeneratorConfig warm;
  warm.port = cluster.port();
  warm.num_clients = 2;
  warm.max_sessions = kHotFiles;
  (void)RunLoad(warm, hot);
  sleep_intervals(2);

  uint64_t transitions_before = 0;
  cluster.InspectReplica(0, [&transitions_before](const FrontEnd& fe) {
    transitions_before = fe.watchdog()->transitions();
  });

  // Steady phase: full client load on the (now cached) hot set for ~15
  // sampling intervals. The watchdog must not move.
  LoadGeneratorConfig steady_load;
  steady_load.port = cluster.port();
  steady_load.num_clients = static_cast<int>(clients);
  steady_load.time_limit_ms = interval_ms * 15;
  (void)RunLoad(steady_load, hot);
  sleep_intervals(2);
  cluster.InspectReplica(0, [&result, transitions_before](const FrontEnd& fe) {
    result.steady_transitions = fe.watchdog()->transitions() - transitions_before;
    result.steady_status = HealthStatusName(fe.health_status());
    result.be_mirrored = fe.DescribeHealthJson().find("\"be") != std::string::npos;
  });

  // Saturation: uncachable disk-bound load; measure intervals to detection.
  const int64_t t0 = SteadyNowMs();
  LoadGeneratorConfig cold_load;
  cold_load.port = cluster.port();
  cold_load.num_clients = static_cast<int>(clients);
  cold_load.time_limit_ms = interval_ms * 25;
  std::thread saturator([&cold_load, &cold]() { (void)RunLoad(cold_load, cold); });
  const int64_t deadline = t0 + interval_ms * 20;
  while (SteadyNowMs() < deadline) {
    HealthStatus health = HealthStatus::kOk;
    cluster.InspectReplica(0, [&health](const FrontEnd& fe) { health = fe.health_status(); });
    if (health != HealthStatus::kOk) {
      result.detection_intervals =
          static_cast<double>(SteadyNowMs() - t0) / static_cast<double>(interval_ms);
      result.detected_status = HealthStatusName(health);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms / 5));
  }
  saturator.join();
  cluster.Stop();
  return result;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) {
  using namespace lard;

  int64_t nodes = 3;
  int64_t sessions = 8000;
  int64_t clients = 32;
  int64_t repeat = 3;
  int64_t interval_ms = 200;     // overhead-phase sampling interval
  int64_t wd_interval_ms = 150;  // detection-phase sampling interval
  bool smoke = false;
  std::string json;
  FlagSet flags("telemetry_overhead");
  flags.AddInt("nodes", &nodes, "back-end nodes");
  flags.AddInt("sessions", &sessions, "trace sessions per overhead run");
  flags.AddInt("clients", &clients, "concurrent load-generator clients");
  flags.AddInt("repeat", &repeat, "runs per mode (best-of)");
  flags.AddInt("interval-ms", &interval_ms, "telemetry interval for the overhead phase");
  flags.AddInt("wd-interval-ms", &wd_interval_ms, "telemetry interval for the watchdog phase");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI");
  flags.AddString("json", &json, "write the overhead record as JSON here");
  flags.Parse(argc, argv);
  if (smoke) {
    sessions = std::min<int64_t>(sessions, 1500);
    clients = std::min<int64_t>(clients, 12);
    repeat = std::min<int64_t>(repeat, 2);
  }

  const Trace trace = GenerateSyntheticTrace(PaperScaleTraceConfig(sessions));

  // --- overhead phase ---
  const ModeResult off = RunMode("off", trace, nodes, clients, repeat, 0);
  const ModeResult on = RunMode("on", trace, nodes, clients, repeat, interval_ms);
  const double on_ratio = off.best_rps > 0.0 ? on.best_rps / off.best_rps : 0.0;
  std::printf("throughput (best of %lld): telemetry-off %.0f rps, telemetry-on %.0f rps "
              "(%.3fx), fe samples %llu\n",
              static_cast<long long>(repeat), off.best_rps, on.best_rps, on_ratio,
              static_cast<unsigned long long>(on.fe_samples));

  // --- watchdog detection phase ---
  const WatchdogResult watchdog =
      RunWatchdogScenario(nodes, std::min<int64_t>(clients, 12), wd_interval_ms, smoke);
  std::printf("watchdog: steady status %s (%llu transitions), detected %s after %.1f "
              "intervals of %lldms\n",
              watchdog.steady_status.c_str(),
              static_cast<unsigned long long>(watchdog.steady_transitions),
              watchdog.detected_status.empty() ? "nothing" : watchdog.detected_status.c_str(),
              watchdog.detection_intervals, static_cast<long long>(watchdog.interval_ms));

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"nodes\":" << nodes << ",\"sessions\":" << sessions
        << ",\"clients\":" << clients << ",\"repeat\":" << repeat
        << ",\"interval_ms\":" << interval_ms << ",\"wd_interval_ms\":" << wd_interval_ms
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},";
    out << "\"modes\":{";
    const ModeResult* modes[] = {&off, &on};
    for (size_t i = 0; i < 2; ++i) {
      const ModeResult& mode = *modes[i];
      out << (i == 0 ? "" : ",") << "\"" << mode.mode
          << "\":{\"throughput_rps\":" << mode.best_rps << ",\"runs_rps\":[";
      for (size_t r = 0; r < mode.runs_rps.size(); ++r) {
        out << (r == 0 ? "" : ",") << mode.runs_rps[r];
      }
      out << "],\"fe_samples\":" << mode.fe_samples << ",\"responses_ok\":" << mode.responses_ok
          << ",\"responses_bad\":" << mode.responses_bad
          << ",\"transport_errors\":" << mode.transport_errors << "}";
    }
    out << "},\"on_over_off\":" << on_ratio << ",";
    out << "\"watchdog\":{\"interval_ms\":" << watchdog.interval_ms
        << ",\"steady_transitions\":" << watchdog.steady_transitions << ",\"steady_status\":\""
        << watchdog.steady_status << "\",\"detection_intervals\":" << watchdog.detection_intervals
        << ",\"detected_status\":\"" << watchdog.detected_status << "\",\"be_mirrored\":"
        << (watchdog.be_mirrored ? "true" : "false") << "}}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // --- structural invariants (the throughput-ratio gate lives in
  // check_bench_json.py, which sees the best-of-N record) ---
  int failures = 0;
  if (on.fe_samples == 0) {
    std::fprintf(stderr, "FAIL: telemetry-on runs recorded no samples\n");
    ++failures;
  }
  for (const ModeResult* mode : {&off, &on}) {
    if (mode->responses_bad != 0 || mode->transport_errors != 0) {
      std::fprintf(stderr, "FAIL: %s mode had client-visible errors (bad=%llu transport=%llu)\n",
                   mode->mode.c_str(), static_cast<unsigned long long>(mode->responses_bad),
                   static_cast<unsigned long long>(mode->transport_errors));
      ++failures;
    }
  }
  if (watchdog.steady_transitions != 0 || watchdog.steady_status != "ok") {
    std::fprintf(stderr, "FAIL: watchdog moved during steady state (%llu transitions, %s)\n",
                 static_cast<unsigned long long>(watchdog.steady_transitions),
                 watchdog.steady_status.c_str());
    ++failures;
  }
  if (!watchdog.be_mirrored) {
    std::fprintf(stderr, "FAIL: front-end health view carries no back-end telemetry\n");
    ++failures;
  }
  if (watchdog.detection_intervals < 0.0) {
    std::fprintf(stderr, "FAIL: watchdog never detected the saturated back-ends\n");
    ++failures;
  } else if (watchdog.detection_intervals > 5.0) {
    std::fprintf(stderr, "FAIL: detection took %.1f sampling intervals (> 5)\n",
                 watchdog.detection_intervals);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
