#include "bench/analysis_figure_driver.h"

#include <cstdio>

#include "src/analysis/mechanism_analysis.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {

int RunAnalysisFigure(int argc, char** argv, const char* figure_name, bool flash) {
  FlagSet flags(figure_name);
  int64_t nodes = 4;
  double requests_per_conn = 8.0;
  double min_kb = 1.0;
  double max_kb = 100.0;
  int64_t steps = 25;
  std::string csv;
  flags.AddInt("nodes", &nodes, "cluster size");
  flags.AddDouble("requests-per-conn", &requests_per_conn, "requests per persistent connection");
  flags.AddDouble("min-kb", &min_kb, "smallest mean response size (KB)");
  flags.AddDouble("max-kb", &max_kb, "largest mean response size (KB)");
  flags.AddInt("steps", &steps, "points in the sweep");
  flags.AddString("csv", &csv, "also write CSV here");
  flags.Parse(argc, argv);

  AnalysisConfig config;
  config.costs = flash ? FlashCosts() : ApacheCosts();
  config.num_nodes = static_cast<int>(nodes);
  config.requests_per_connection = requests_per_conn;

  Table table({"file size (KB)", "multiHandoff (Mb/s)", "BEforward (Mb/s)", "winner"});
  for (const AnalysisPoint& point :
       SweepFileSizes(config, min_kb, max_kb, static_cast<int>(steps))) {
    table.Row()
        .Cell(point.file_size_bytes / 1024.0, 1)
        .Cell(point.bandwidth_multi_handoff_mbps, 1)
        .Cell(point.bandwidth_be_forwarding_mbps, 1)
        .Cell(point.bandwidth_be_forwarding_mbps >= point.bandwidth_multi_handoff_mbps
                  ? "BEforward"
                  : "multiHandoff");
  }
  table.Print(std::string(figure_name) + " analogue: bandwidth vs mean response size [" +
                  config.costs.name + "]",
              csv);

  const double crossover = CrossoverFileSizeBytes(config);
  std::printf("\ncrossover: %.1f KB — back-end forwarding wins below, multiple handoff above\n",
              crossover / 1024.0);
  std::printf("(mean response size in the paper's era web traffic: <~13 KB => BE forwarding is "
              "competitive)\n");
  return 0;
}

}  // namespace lard
