// Tracing-overhead bench: the observability tax, measured two ways.
//
// 1. Record-path microbench: cost of one RecordSpan call with tracing
//    disabled, with an unsampled trace id (the common hot-path case: one
//    hash, nothing else) and with a sampled id (snprintf + ring write).
// 2. End-to-end: the same load-generator workload against three fresh
//    clusters — tracing off, default sampling (every 16th connection), and
//    full tracing (every connection) — reporting best-of-N throughput per
//    mode. The CI gate (check_bench_json.py) enforces the PR's acceptance
//    bound: sampled throughput >= 0.98x untraced.
//
// --chrome-out additionally drains the full-tracing run's spans as a Chrome
// trace-event file (about:tracing / Perfetto), which CI uploads as an
// artifact — every CI run leaves an openable trace of a real cluster run.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/tracing.h"

namespace lard {
namespace {

struct ModeResult {
  std::string mode;
  double best_rps = 0.0;
  std::vector<double> runs_rps;
  uint64_t spans_recorded = 0;
  uint64_t responses_ok = 0;
  uint64_t responses_bad = 0;
  uint64_t transport_errors = 0;
};

// ns per RecordSpan call over `iters` iterations against a private tracer.
double RecordNsPerOp(bool enabled, uint32_t sample_every, uint64_t trace_id, int64_t iters) {
  TracerConfig config;
  config.enabled = enabled;
  config.sample_every = sample_every;
  config.ring_capacity = 4096;
  Tracer tracer(config);
  TraceRing* ring = tracer.Ring("bench");
  const int64_t start = TraceNowUs();
  for (int64_t i = 0; i < iters; ++i) {
    RecordSpan(&tracer, ring, trace_id, static_cast<uint32_t>(i), SpanKind::kServe, 1, start, 0,
               "status=%d cache=%c", 200, 'h');
  }
  const int64_t elapsed_us = TraceNowUs() - start;
  return static_cast<double>(elapsed_us) * 1000.0 / static_cast<double>(iters);
}

ModeResult RunMode(const std::string& mode, const Trace& trace, int64_t nodes, int64_t clients,
                   int64_t repeat, bool tracing_enabled, uint32_t sample_every,
                   const std::string& chrome_out) {
  ModeResult result;
  result.mode = mode;
  for (int64_t rep = 0; rep < repeat; ++rep) {
    ClusterConfig config;
    config.num_nodes = static_cast<int>(nodes);
    config.policy = Policy::kExtendedLard;
    config.mechanism = Mechanism::kBackEndForwarding;
    // Mostly-cached regime: the overhead under test is per-request CPU, so
    // keep the disk (and its noise) out of the critical path.
    config.backend_cache_bytes = 64ull * 1024 * 1024;
    config.disk_time_scale = 0.02;
    config.tracing_enabled = tracing_enabled;
    config.trace_sample_every = sample_every;
    Cluster cluster(config, &trace.catalog());
    Status status = cluster.Start();
    LARD_CHECK(status.ok()) << status.ToString();

    LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = static_cast<int>(clients);
    const LoadResult run = RunLoad(load, trace);
    result.runs_rps.push_back(run.throughput_rps);
    result.best_rps = std::max(result.best_rps, run.throughput_rps);
    result.responses_ok += run.responses_ok;
    result.responses_bad += run.responses_bad;
    result.transport_errors += run.transport_errors;
    if (tracing_enabled) {
      // Ring() is find-or-create, so probing by name is safe even if a
      // component never recorded (recorded() is just 0 then).
      for (int node = 0; node < static_cast<int>(nodes); ++node) {
        result.spans_recorded +=
            cluster.tracer()->Ring("be" + std::to_string(node))->recorded();
      }
      result.spans_recorded += cluster.tracer()->Ring("fe0")->recorded();
    }
    // The artifact trace comes from the last full-tracing run, drained
    // before teardown exactly as GET /trace?format=chrome would.
    if (!chrome_out.empty() && rep == repeat - 1) {
      std::ofstream file(chrome_out);
      file << cluster.tracer()->RenderChrome() << "\n";
      std::printf("wrote %s\n", chrome_out.c_str());
    }
    cluster.Stop();
  }
  return result;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) {
  using namespace lard;

  int64_t nodes = 3;
  int64_t sessions = 8000;
  int64_t clients = 32;
  int64_t repeat = 3;
  int64_t micro_iters = 2000000;
  bool smoke = false;
  std::string json;
  std::string chrome_out;
  FlagSet flags("tracing_overhead");
  flags.AddInt("nodes", &nodes, "back-end nodes");
  flags.AddInt("sessions", &sessions, "trace sessions per run");
  flags.AddInt("clients", &clients, "concurrent load-generator clients");
  flags.AddInt("repeat", &repeat, "runs per mode (best-of)");
  flags.AddInt("micro-iters", &micro_iters, "RecordSpan microbench iterations");
  flags.AddBool("smoke", &smoke, "small fast configuration for CI");
  flags.AddString("json", &json, "write the overhead record as JSON here");
  flags.AddString("chrome-out", &chrome_out,
                  "write the full-tracing run's spans as a Chrome trace file");
  flags.Parse(argc, argv);
  if (smoke) {
    sessions = std::min<int64_t>(sessions, 1500);
    clients = std::min<int64_t>(clients, 12);
    repeat = std::min<int64_t>(repeat, 2);
    micro_iters = std::min<int64_t>(micro_iters, 500000);
  }

  const Trace trace = GenerateSyntheticTrace(PaperScaleTraceConfig(sessions));

  // --- record-path microbench ---
  // trace id 3 is unsampled at sample_every=16 (hash-dependent but fixed:
  // verified by the sampled-hit mode using sample_every=1 instead).
  const double ns_disabled = RecordNsPerOp(false, 16, 3, micro_iters);
  const double ns_unsampled = RecordNsPerOp(true, 16, 3, micro_iters);
  const double ns_sampled = RecordNsPerOp(true, 1, 3, micro_iters);
  std::printf("RecordSpan: disabled %.1f ns/op, unsampled %.1f ns/op, sampled %.1f ns/op\n",
              ns_disabled, ns_unsampled, ns_sampled);

  // --- end-to-end modes ---
  const ModeResult untraced =
      RunMode("untraced", trace, nodes, clients, repeat, false, 16, "");
  const ModeResult sampled =
      RunMode("sampled", trace, nodes, clients, repeat, true, 16, "");
  const ModeResult full =
      RunMode("full", trace, nodes, clients, repeat, true, 1, chrome_out);

  const double sampled_ratio =
      untraced.best_rps > 0.0 ? sampled.best_rps / untraced.best_rps : 0.0;
  const double full_ratio = untraced.best_rps > 0.0 ? full.best_rps / untraced.best_rps : 0.0;
  std::printf("throughput (best of %lld): untraced %.0f rps, sampled %.0f rps (%.3fx), "
              "full %.0f rps (%.3fx)\n",
              static_cast<long long>(repeat), untraced.best_rps, sampled.best_rps, sampled_ratio,
              full.best_rps, full_ratio);
  std::printf("spans recorded: sampled %llu, full %llu\n",
              static_cast<unsigned long long>(sampled.spans_recorded),
              static_cast<unsigned long long>(full.spans_recorded));

  if (!json.empty()) {
    std::ostringstream out;
    out << "{\"config\":{\"nodes\":" << nodes << ",\"sessions\":" << sessions
        << ",\"clients\":" << clients << ",\"repeat\":" << repeat
        << ",\"micro_iters\":" << micro_iters << ",\"smoke\":" << (smoke ? "true" : "false")
        << "},";
    out << "\"record_ns\":{\"disabled\":" << ns_disabled << ",\"unsampled\":" << ns_unsampled
        << ",\"sampled\":" << ns_sampled << "},";
    out << "\"modes\":{";
    const ModeResult* modes[] = {&untraced, &sampled, &full};
    for (size_t i = 0; i < 3; ++i) {
      const ModeResult& mode = *modes[i];
      out << (i == 0 ? "" : ",") << "\"" << mode.mode
          << "\":{\"throughput_rps\":" << mode.best_rps << ",\"runs_rps\":[";
      for (size_t r = 0; r < mode.runs_rps.size(); ++r) {
        out << (r == 0 ? "" : ",") << mode.runs_rps[r];
      }
      out << "],\"spans_recorded\":" << mode.spans_recorded
          << ",\"responses_ok\":" << mode.responses_ok
          << ",\"responses_bad\":" << mode.responses_bad
          << ",\"transport_errors\":" << mode.transport_errors << "}";
    }
    out << "},\"sampled_over_untraced\":" << sampled_ratio
        << ",\"full_over_untraced\":" << full_ratio << "}";
    std::ofstream file(json);
    file << out.str() << "\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // --- structural invariants (the ratio gate lives in check_bench_json.py;
  // ratios are noisy enough that only the record checker, which sees
  // best-of-N, should enforce the 0.98 bound) ---
  int failures = 0;
  if (sampled.spans_recorded == 0 || full.spans_recorded == 0) {
    std::fprintf(stderr, "FAIL: tracing-enabled runs recorded no spans\n");
    ++failures;
  }
  if (full.spans_recorded < sampled.spans_recorded) {
    std::fprintf(stderr, "FAIL: full tracing recorded fewer spans than sampled tracing\n");
    ++failures;
  }
  for (const ModeResult* mode : {&untraced, &sampled, &full}) {
    if (mode->responses_bad != 0 || mode->transport_errors != 0) {
      std::fprintf(stderr, "FAIL: %s mode had client-visible errors (bad=%llu transport=%llu)\n",
                   mode->mode.c_str(), static_cast<unsigned long long>(mode->responses_bad),
                   static_cast<unsigned long long>(mode->transport_errors));
      ++failures;
    }
  }
  if (ns_disabled > ns_sampled * 4.0 + 50.0) {
    // Disabled tracing must stay within noise of free; compare against the
    // sampled cost rather than an absolute bound so slow CI hosts pass.
    std::fprintf(stderr, "FAIL: disabled RecordSpan costs %.1f ns/op (sampled: %.1f)\n",
                 ns_disabled, ns_sampled);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
