// The paper's in-text trace characterization (Section 6): number of targets,
// footprint, and the memory needed to cover 97/98/99/100% of all requests.
// Reports the same table for our Rice-like synthetic workload, plus the
// session/batch structure the P-HTTP heuristic produces.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace lard {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("trace_stats");
  int64_t sessions = 12000;
  int64_t seed = 42;
  std::string csv;
  flags.AddInt("sessions", &sessions, "trace sessions");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddString("csv", &csv, "also write coverage CSV here");
  flags.Parse(argc, argv);

  const Trace trace =
      GenerateSyntheticTrace(PaperScaleTraceConfig(sessions, static_cast<uint64_t>(seed)));
  const TraceStats stats = ComputeTraceStats(trace);

  std::printf("== Trace characterization (paper Section 6 analogue) ==\n");
  std::printf("targets               : %zu\n", stats.num_targets);
  std::printf("footprint             : %.2f GB\n", static_cast<double>(stats.footprint_bytes) / 1e9);
  std::printf("requests              : %zu\n", stats.num_requests);
  std::printf("sessions (P-HTTP conn): %zu\n", stats.num_sessions);
  std::printf("mean response size    : %.1f KB (paper: era traffic <~13 KB)\n",
              stats.mean_response_bytes / 1024.0);
  std::printf("mean requests/conn    : %.2f\n", stats.mean_requests_per_session);
  std::printf("mean batches/conn     : %.2f\n", stats.mean_batches_per_session);

  Table coverage({"request coverage", "memory needed (MB)", "targets"});
  for (const CoveragePoint& point : stats.coverage) {
    coverage.Row()
        .Cell(FormatDouble(100.0 * point.request_fraction, 0) + "%")
        .Cell(static_cast<double>(point.bytes_needed) / 1e6, 1)
        .Cell(static_cast<int64_t>(point.targets_needed));
  }
  coverage.Print("memory needed to cover a fraction of all requests", csv);

  // Distribution shape, for the record.
  LogHistogram sizes;
  for (const auto& session : trace.sessions()) {
    for (const auto& batch : session.batches) {
      for (const TargetId target : batch.targets) {
        sizes.Add(trace.catalog().Get(target).size_bytes);
      }
    }
  }
  std::printf("\nresponse size distribution (bytes, log2 buckets):\n%s", sizes.ToString().c_str());

  LogHistogram session_lengths;
  for (const auto& session : trace.sessions()) {
    session_lengths.Add(session.total_requests());
  }
  std::printf("\nrequests-per-connection distribution:\n%s", session_lengths.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
