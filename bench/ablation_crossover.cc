// Sensitivity of the Figure 5/6 crossover to the reconstructed constants:
// the per-migration handoff overhead and the receive-side forwarding cost
// factor. Shows how the "who wins at which response size" conclusion moves
// as those calibrations change.
#include <cstdio>

#include "src/analysis/mechanism_analysis.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace lard {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("ablation_crossover");
  std::string csv;
  flags.AddString("csv", &csv, "also write CSV here");
  flags.Parse(argc, argv);

  Table table({"personality", "handoff cost scale", "receive factor", "crossover (KB)"});
  for (const bool flash : {false, true}) {
    for (const double handoff_scale : {0.5, 1.0, 2.0, 4.0}) {
      for (const double receive_factor : {0.0, 0.5, 1.0, 2.0}) {
        AnalysisConfig config;
        config.costs = flash ? FlashCosts() : ApacheCosts();
        config.costs.handoff_us *= handoff_scale;
        config.forward_receive_factor = receive_factor;
        table.Row()
            .Cell(config.costs.name)
            .Cell(handoff_scale, 1)
            .Cell(receive_factor, 1)
            .Cell(CrossoverFileSizeBytes(config) / 1024.0, 1);
      }
    }
  }
  table.Print("Crossover sensitivity to reconstructed mechanism costs", csv);
  std::printf("\nThe qualitative Figure 5/6 conclusion (forwarding wins for small responses, "
              "handoff for large, crossover in the ~1-50 KB band) holds across the sweep.\n");
  return 0;
}

}  // namespace
}  // namespace lard

int main(int argc, char** argv) { return lard::Main(argc, argv); }
