#!/usr/bin/env python3
"""Concurrency-contract linter for the LARD prototype.

Enforces the parts of the repo's concurrency contract (docs/CONCURRENCY.md)
that Clang Thread Safety Analysis cannot see:

  raw-mutex       No raw std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable outside src/util/. Everything locks
                  through lard::Mutex / lard::MutexLock so the TSA
                  annotations (src/util/thread_annotations.h) stay load-
                  bearing.

  liveness-guard  Every posted or timer lambda that captures `this` in
                  src/proto/, src/net/, src/admin/ or src/mesh/ must go
                  through LivenessToken::Guard(...) — a raw [this] capture
                  outlives its owner the moment the owner is destroyed with
                  the task still queued.

  loop-affinity   Per-loop LoopShard state in src/proto/frontend.cc (the
                  `conns` map, `next_conn_id`, `relays`) may only be touched
                  by methods that first call EventLoop::AssertInLoopThread().

  blocking-call   No blocking syscalls (sleep variants, ::recv, ::connect)
                  in event-loop code under src/net/, src/proto/, src/admin/,
                  src/mesh/ — a blocked loop thread stalls every connection
                  pinned to that loop.

Escape hatch: a finding is suppressed by a comment

    // lard-lint: allow(<rule>) <rationale>

on the flagged line or in the contiguous comment block immediately above it.
The rationale is mandatory in spirit: an allow comment documents *why* the
exception is safe, it does not wave the rule away.

Usage:
    tools/lint/concurrency_lint.py [--root DIR] [--json OUT] [files...]

With no file arguments the whole src/ tree under --root (default: repo root
inferred from this script's location) is linted. Exit status is 1 when any
finding survives, 0 otherwise. --json writes machine-readable findings for
CI artifact upload.
"""

import argparse
import dataclasses
import json
import os
import re
import sys

RULES = ("raw-mutex", "liveness-guard", "loop-affinity", "blocking-call")

ALLOW_RE = re.compile(r"lard-lint:\s*allow\(([a-z-]+)\)")

# raw-mutex: the std primitives that must stay behind lard::Mutex.
RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b"
)

# liveness-guard: a Post(...) / ScheduleAfterMs(...) whose callback captures
# `this`. The capture may start a few tokens after the call opens (timer
# delay argument, line breaks), so the scan window is the flattened statement.
POST_CALL_RE = re.compile(r"\b(?:Post|ScheduleAfterMs)\s*\(")
THIS_CAPTURE_RE = re.compile(r"\[\s*(?:this\b|[^]\n]*[,\s]this\b)")
GUARD_RE = re.compile(r"\bGuard\s*\(")

# blocking-call: syscalls with no deadline that would wedge a loop thread.
BLOCKING_RE = re.compile(
    r"(?:::recv\s*\(|::connect\s*\(|\busleep\s*\(|\bnanosleep\s*\(|"
    r"\bsleep_for\b|\bsleep_until\b|(?<![\w_])::sleep\s*\()"
)

# loop-affinity: mutable LoopShard fields (frontend.h) — touching any of
# these pins the enclosing method to the shard's loop thread.
SHARD_STATE_RE = re.compile(
    r"(?:shard|shard_|loop_shard)\s*(?:->|\.)\s*(?:conns\b|next_conn_id\b|relays\b)"
)
ASSERT_RE = re.compile(r"\bAssertInLoopThread\s*\(")
FUNC_DEF_RE = re.compile(r"^[\w:<>,*&~\s]*\bFrontEnd::(\w+)\s*\(")


@dataclasses.dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str

    def as_dict(self):
        return dataclasses.asdict(self)


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving layout.

    Newlines survive so line numbers stay valid; the allow-comment scan runs
    on the *original* text before this pass.
    """
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (macro line etc.) — bail out
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed_rules_for_line(raw_lines, lineno):
    """Rules suppressed at 1-based `lineno`: allow() markers on the line
    itself or in the contiguous comment block directly above it."""
    allowed = set()
    allowed.update(ALLOW_RE.findall(raw_lines[lineno - 1]))
    i = lineno - 2
    while i >= 0 and raw_lines[i].lstrip().startswith("//"):
        allowed.update(ALLOW_RE.findall(raw_lines[i]))
        i -= 1
    return allowed


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def relpath(self, path):
        return os.path.relpath(path, self.root)

    def report(self, raw_lines, path, lineno, rule, message):
        if rule in allowed_rules_for_line(raw_lines, lineno):
            return
        self.findings.append(Finding(self.relpath(path), lineno, rule, message))

    def lint_file(self, path):
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        raw_lines = raw.split("\n")
        code = strip_comments_and_strings(raw)
        code_lines = code.split("\n")
        rel = self.relpath(path).replace(os.sep, "/")

        in_util = rel.startswith("src/util/")
        in_loop_domain = any(
            rel.startswith(p) for p in ("src/proto/", "src/net/", "src/admin/", "src/mesh/")
        ) or not rel.startswith("src/")
        # Files passed explicitly (fixtures, tests of the linter itself) get
        # every rule; tree scans scope rules by directory as documented.

        self._check_raw_mutex(path, raw_lines, code_lines, skip=in_util)
        if in_loop_domain:
            self._check_liveness_guard(path, raw_lines, code)
            self._check_blocking_call(path, raw_lines, code_lines)
        if rel.endswith("frontend.cc") or not rel.startswith("src/"):
            self._check_loop_affinity(path, raw_lines, code_lines)

    def _check_raw_mutex(self, path, raw_lines, code_lines, skip):
        if skip:
            return
        for i, line in enumerate(code_lines, start=1):
            m = RAW_MUTEX_RE.search(line)
            if m:
                self.report(
                    raw_lines, path, i, "raw-mutex",
                    f"{m.group(0)} outside src/util/ — use lard::Mutex / "
                    "lard::MutexLock (src/util/mutex.h) so thread-safety "
                    "annotations apply",
                )

    def _check_liveness_guard(self, path, raw_lines, code):
        for m in POST_CALL_RE.finditer(code):
            # Scan the statement from the call's opening paren to its
            # matching close (bounded window for pathological input).
            start = m.end() - 1
            depth = 0
            end = min(len(code), start + 2000)
            for j in range(start, end):
                if code[j] == "(":
                    depth += 1
                elif code[j] == ")":
                    depth -= 1
                    if depth == 0:
                        end = j
                        break
            stmt = code[start:end]
            cap = THIS_CAPTURE_RE.search(stmt)
            if not cap:
                continue
            guard = GUARD_RE.search(stmt)
            if guard and guard.start() < cap.start():
                continue
            lineno = code.count("\n", 0, m.start()) + 1
            self.report(
                raw_lines, path, lineno, "liveness-guard",
                "posted/timer lambda captures `this` without "
                "LivenessToken::Guard — the task can outlive its owner",
            )

    def _check_blocking_call(self, path, raw_lines, code_lines):
        for i, line in enumerate(code_lines, start=1):
            m = BLOCKING_RE.search(line)
            if m:
                self.report(
                    raw_lines, path, i, "blocking-call",
                    f"blocking call {m.group(0).strip()!r} in event-loop code "
                    "— a blocked loop thread stalls every connection pinned "
                    "to it",
                )

    def _check_loop_affinity(self, path, raw_lines, code_lines):
        """Each FrontEnd:: method touching LoopShard state must call
        AssertInLoopThread() before the first touch."""
        func_name = None
        func_line = 0
        asserted = False
        brace_depth = 0
        in_func = False
        for i, line in enumerate(code_lines, start=1):
            if not in_func:
                d = FUNC_DEF_RE.match(line)
                if d:
                    func_name = d.group(1)
                    func_line = i
                    asserted = False
                    in_func = True
                    brace_depth = 0
            if in_func:
                if ASSERT_RE.search(line):
                    asserted = True
                m = SHARD_STATE_RE.search(line)
                if m and not asserted:
                    self.report(
                        raw_lines, path, i, "loop-affinity",
                        f"FrontEnd::{func_name} (line {func_line}) touches "
                        f"LoopShard state ({m.group(0).strip()}) without "
                        "calling AssertInLoopThread() first",
                    )
                    asserted = True  # one finding per function
                brace_depth += line.count("{") - line.count("}")
                if brace_depth <= 0 and "{" in "".join(
                    code_lines[func_line - 1:i + 1]
                ) and i > func_line:
                    in_func = False

    def run(self, files):
        for path in files:
            self.lint_file(path)
        return self.findings


def collect_tree(root):
    files = []
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith((".cc", ".h")):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="files to lint (default: src/ tree)")
    parser.add_argument("--root", default=None, help="repo root (default: inferred)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write machine-readable findings JSON here")
    parser.add_argument("--list-rules", action="store_true", help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    root = os.path.abspath(
        args.root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )
    files = [os.path.abspath(f) for f in args.files] or collect_tree(root)

    linter = Linter(root)
    findings = linter.run(files)

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    print(f"concurrency_lint: {len(findings)} finding(s) in {len(files)} file(s)")

    if args.json_out:
        counts = {rule: 0 for rule in RULES}
        for f in findings:
            counts[f.rule] += 1
        payload = {
            "version": 1,
            "files_scanned": len(files),
            "counts": counts,
            "findings": [f.as_dict() for f in findings],
        }
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=2)
            out.write("\n")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
