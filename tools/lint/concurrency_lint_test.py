#!/usr/bin/env python3
"""Unit tests for tools/lint/concurrency_lint.py.

Runs the linter over the fixtures in testdata/ and checks the findings, the
allow-comment escape hatch, comment/string immunity, and the JSON schema.
Registered with ctest as `concurrency_lint_test`.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import concurrency_lint  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
TESTDATA = os.path.join(HERE, "testdata")
REPO_ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))


def lint(*names):
    linter = concurrency_lint.Linter(REPO_ROOT)
    linter.run([os.path.join(TESTDATA, n) for n in names])
    return linter.findings


class RawMutexRule(unittest.TestCase):
    def test_flags_raw_std_mutex(self):
        findings = lint("raw_mutex_bad.cc")
        rules = [f.rule for f in findings]
        self.assertIn("raw-mutex", rules)
        # Both the lock_guard use and the member declaration fire.
        self.assertEqual(rules.count("raw-mutex"), 2)

    def test_allow_comment_suppresses(self):
        self.assertEqual(lint("raw_mutex_allowed.cc"), [])

    def test_src_util_is_exempt(self):
        linter = concurrency_lint.Linter(REPO_ROOT)
        linter.run([os.path.join(REPO_ROOT, "src", "util", "mutex.h")])
        self.assertEqual([f for f in linter.findings if f.rule == "raw-mutex"], [])


class LivenessGuardRule(unittest.TestCase):
    def test_flags_unguarded_this_capture(self):
        findings = [f for f in lint("liveness_bad.cc") if f.rule == "liveness-guard"]
        self.assertEqual(len(findings), 2)  # Post and ScheduleAfterMs

    def test_guarded_and_this_free_posts_pass(self):
        self.assertEqual(lint("liveness_guarded.cc"), [])


class LoopAffinityRule(unittest.TestCase):
    def test_flags_shard_touch_without_assert(self):
        findings = [f for f in lint("loop_affinity_bad.cc") if f.rule == "loop-affinity"]
        self.assertEqual(len(findings), 1)
        self.assertIn("BreakAffinity", findings[0].message)

    def test_assert_before_touch_passes(self):
        self.assertEqual(lint("loop_affinity_good.cc"), [])


class BlockingCallRule(unittest.TestCase):
    def test_flags_blocking_recv(self):
        findings = [f for f in lint("blocking_bad.cc") if f.rule == "blocking-call"]
        self.assertEqual(len(findings), 1)


class CommentAndStringImmunity(unittest.TestCase):
    def test_patterns_in_comments_and_strings_do_not_fire(self):
        self.assertEqual(lint("comments_and_strings.cc"), [])


class AllowComments(unittest.TestCase):
    def test_wrong_rule_name_does_not_suppress(self):
        lines = [
            "// lard-lint: allow(blocking-call) wrong rule on purpose",
            "std::mutex mutex_;",
        ]
        self.assertEqual(
            concurrency_lint.allowed_rules_for_line(lines, 2), {"blocking-call"}
        )

    def test_same_line_and_block_above(self):
        lines = [
            "// lard-lint: allow(raw-mutex) reason one",
            "// continuation of the comment block",
            "std::mutex a;  // lard-lint: allow(blocking-call)",
        ]
        self.assertEqual(
            concurrency_lint.allowed_rules_for_line(lines, 3),
            {"raw-mutex", "blocking-call"},
        )

    def test_non_comment_line_breaks_the_block(self):
        lines = [
            "// lard-lint: allow(raw-mutex)",
            "int unrelated;",
            "std::mutex a;",
        ]
        self.assertEqual(concurrency_lint.allowed_rules_for_line(lines, 3), set())


class JsonOutput(unittest.TestCase):
    def test_schema_and_exit_status(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "findings.json")
            status = concurrency_lint.main(
                ["--root", REPO_ROOT, "--json", out,
                 os.path.join(TESTDATA, "raw_mutex_bad.cc")]
            )
            self.assertEqual(status, 1)
            with open(out, encoding="utf-8") as f:
                payload = json.load(f)
        self.assertEqual(payload["version"], 1)
        self.assertEqual(payload["files_scanned"], 1)
        self.assertEqual(sorted(payload["counts"]), sorted(concurrency_lint.RULES))
        self.assertEqual(payload["counts"]["raw-mutex"], 2)
        for finding in payload["findings"]:
            self.assertEqual(
                sorted(finding), ["file", "line", "message", "rule"]
            )

    def test_clean_file_exits_zero(self):
        status = concurrency_lint.main(
            ["--root", REPO_ROOT, os.path.join(TESTDATA, "liveness_guarded.cc")]
        )
        self.assertEqual(status, 0)


class TreeIsClean(unittest.TestCase):
    def test_src_tree_has_no_findings(self):
        linter = concurrency_lint.Linter(REPO_ROOT)
        files = concurrency_lint.collect_tree(REPO_ROOT)
        self.assertGreater(len(files), 50)
        findings = linter.run(files)
        self.assertEqual(
            findings, [], "\n".join(f"{f.file}:{f.line}: [{f.rule}]" for f in findings)
        )


if __name__ == "__main__":
    unittest.main()
