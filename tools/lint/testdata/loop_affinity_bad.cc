// Fixture: FrontEnd method touching LoopShard state without asserting loop
// affinity first.
void FrontEnd::BreakAffinity(LoopShard* shard) {
  shard->conns.clear();
}
