// Fixture: blocking syscalls in event-loop code.
#include <sys/socket.h>

void ReadAll(int fd, char* buf, unsigned long len) {
  (void)::recv(fd, buf, len, 0);
}
