// Fixture: raw std::mutex outside src/util/ must be flagged.
#include <mutex>

struct Counter {
  void Bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }
  std::mutex mutex_;
  int count_ = 0;
};
