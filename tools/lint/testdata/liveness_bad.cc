// Fixture: a posted lambda capturing `this` without LivenessToken::Guard.
struct Owner {
  void Kick() {
    loop_->Post([this]() { ++count_; });
  }
  void KickLater() {
    loop_->ScheduleAfterMs(10, [this]() { ++count_; });
  }
  EventLoop* loop_ = nullptr;
  int count_ = 0;
};
