// Fixture: asserting loop affinity before touching LoopShard state passes.
void FrontEnd::KeepAffinity(LoopShard* shard) {
  shard->loop->AssertInLoopThread();
  shard->conns.clear();
  shard->next_conn_id++;
}
