// Fixture: an allow comment suppresses the raw-mutex finding.
#include <mutex>

struct Counter {
  // lard-lint: allow(raw-mutex) fixture demonstrating the escape hatch.
  std::mutex mutex_;
};
