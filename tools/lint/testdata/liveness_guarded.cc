// Fixture: `this` captures wrapped in LivenessToken::Guard pass clean, as do
// posts that never capture `this`.
struct Owner {
  void Kick() {
    loop_->Post(alive_.Guard([this]() { ++count_; }));
  }
  void KickLater() {
    loop_->ScheduleAfterMs(10, alive_.Guard([this, step = 2]() { count_ += step; }));
  }
  void KickValue(int* counter) {
    loop_->Post([counter]() { ++*counter; });
  }
  EventLoop* loop_ = nullptr;
  LivenessToken alive_;
  int count_ = 0;
};
