// Fixture: rule patterns inside comments and string literals must NOT fire.
// A comment mentioning std::mutex and ::recv( and loop_->Post([this]() ...)
const char* kDoc =
    "std::mutex ::recv( ::connect( sleep_for loop_->Post([this]() {})";
/* block comment: std::lock_guard<std::mutex> lock(mutex_); */
int answer() { return 42; }
