// Trace tooling walkthrough: the full workload pipeline the paper describes.
//
// Default mode demonstrates the round trip on synthetic data:
//   synthetic trace -> Common Log Format lines -> CLF parser ->
//   P-HTTP session reconstruction (60 s / 1 s heuristics) -> statistics
//
// With --log you can feed a real access log (CLF) and get the same analysis
// the paper ran on the Rice traces:
//   ./build/examples/trace_inspect --log /var/log/apache2/access.log
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "src/trace/clf.h"
#include "src/trace/session_builder.h"
#include "src/trace/trace_io.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace {

void PrintStats(const lard::Trace& trace, const char* title) {
  const lard::TraceStats stats = lard::ComputeTraceStats(trace);
  std::printf("\n== %s ==\n", title);
  std::printf("targets            : %zu\n", stats.num_targets);
  std::printf("footprint          : %.1f MB\n", static_cast<double>(stats.footprint_bytes) / 1e6);
  std::printf("requests           : %zu\n", stats.num_requests);
  std::printf("P-HTTP connections : %zu\n", stats.num_sessions);
  std::printf("mean response size : %.1f KB\n", stats.mean_response_bytes / 1024.0);
  std::printf("mean requests/conn : %.2f\n", stats.mean_requests_per_session);
  std::printf("mean batches/conn  : %.2f\n", stats.mean_batches_per_session);
  lard::Table coverage({"request coverage", "memory needed (MB)", "targets"});
  for (const lard::CoveragePoint& point : stats.coverage) {
    coverage.Row()
        .Cell(lard::FormatDouble(100.0 * point.request_fraction, 0) + "%")
        .Cell(static_cast<double>(point.bytes_needed) / 1e6, 1)
        .Cell(static_cast<int64_t>(point.targets_needed));
  }
  coverage.Print("working-set coverage");
}

}  // namespace

int main(int argc, char** argv) {
  lard::FlagSet flags("trace_inspect");
  std::string log_path;
  std::string save_path;
  int64_t sessions = 5000;
  int64_t gap_s = 60;
  double batch_window_s = 1.0;
  flags.AddString("log", &log_path, "parse this CLF access log instead of synthesizing");
  flags.AddString("save", &save_path, "also archive the workload as a binary trace file");
  flags.AddInt("sessions", &sessions, "synthetic sessions (no --log)");
  flags.AddInt("gap-s", &gap_s, "connection idle gap for session reconstruction (s)");
  flags.AddDouble("batch-window-s", &batch_window_s, "pipelining batch window (s)");
  flags.Parse(argc, argv);

  lard::SessionBuilderConfig builder;
  builder.connection_idle_gap_us = gap_s * 1000000;
  builder.batch_window_us = static_cast<int64_t>(batch_window_s * 1e6);

  if (!log_path.empty()) {
    std::ifstream in(log_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", log_path.c_str());
      return 1;
    }
    size_t skipped = 0;
    const auto records = lard::ParseClfStream(in, &skipped);
    std::printf("parsed %zu CLF records (%zu malformed lines skipped)\n", records.size(),
                skipped);
    const lard::Trace trace = lard::BuildSessions(records, builder);
    PrintStats(trace, "reconstructed P-HTTP workload");
    if (!save_path.empty()) {
      const lard::Status status = lard::WriteTraceFile(trace, save_path);
      std::printf("\narchived to %s: %s\n", save_path.c_str(), status.ToString().c_str());
    }
    return 0;
  }

  // Synthetic round trip: generate -> serialize to CLF -> parse -> rebuild.
  lard::SyntheticTraceConfig workload;
  workload.seed = 11;
  workload.num_pages = 500;
  workload.num_sessions = sessions;
  const lard::Trace original = lard::GenerateSyntheticTrace(workload);
  PrintStats(original, "synthetic workload (ground truth sessions)");
  if (!save_path.empty()) {
    const lard::Status status = lard::WriteTraceFile(original, save_path);
    std::printf("\narchived to %s: %s\n", save_path.c_str(), status.ToString().c_str());
  }

  // Flatten to an access log, as a web server would have recorded it.
  std::stringstream log;
  for (const auto& session : original.sessions()) {
    for (const auto& batch : session.batches) {
      for (const lard::TargetId id : batch.targets) {
        lard::ClfRecord record;
        record.client_host = "client" + std::to_string(session.client_id);
        record.timestamp_us = session.start_us + batch.offset_us;
        record.method = "GET";
        record.path = original.catalog().Get(id).path;
        record.status = 200;
        record.response_bytes = original.catalog().Get(id).size_bytes;
        log << lard::FormatClfLine(record) << "\n";
      }
    }
  }

  size_t skipped = 0;
  const auto records = lard::ParseClfStream(log, &skipped);
  std::printf("\nserialized to CLF and re-parsed: %zu records (%zu skipped)\n", records.size(),
              skipped);
  const lard::Trace rebuilt = lard::BuildSessions(records, builder);
  PrintStats(rebuilt, "workload reconstructed by the 60s/1s heuristic");
  std::printf("\nnote: reconstruction merges a client's back-to-back sessions (gaps < %llds), so "
              "connection counts differ from ground truth exactly as the paper's heuristic "
              "would.\n",
              static_cast<long long>(gap_s));
  return 0;
}
