// Policy laboratory: sweep any registered routing policy against any
// mechanism over a configurable synthetic workload in the simulator and
// print a comparison table (optionally CSV). Useful for exploring where
// LARD's advantage appears, how the working-set : cache ratio shifts the
// curves, what P-HTTP does to each policy, and — with --skew — what
// heterogeneous node speeds do to weighted vs unweighted placement.
//
//   ./build/examples/policy_lab --nodes 8 --pages 2000 --cache-mb 16
//   ./build/examples/policy_lab --alpha 0.7 --csv /tmp/lab.csv
//   ./build/examples/policy_lab --skew 2   # fast half runs 2x; wextLARD knows
#include <cstdio>
#include <vector>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace {

struct Combo {
  const char* label;
  const char* policy;  // PolicyRegistry name
  lard::Mechanism mechanism;
  bool http10;
  bool weighted;  // node weights track the true speeds (--skew)
};

}  // namespace

int main(int argc, char** argv) {
  lard::FlagSet flags("policy_lab");
  int64_t nodes = 6;
  int64_t pages = 1500;
  int64_t sessions = 20000;
  int64_t cache_mb = 16;
  int64_t seed = 42;
  double alpha = 1.0;
  double pages_per_session = 1.5;
  double skew = 1.0;
  bool flash = false;
  std::string csv;
  flags.AddInt("nodes", &nodes, "cluster size");
  flags.AddInt("pages", &pages, "distinct pages in the corpus");
  flags.AddInt("sessions", &sessions, "sessions to replay");
  flags.AddInt("cache-mb", &cache_mb, "per-node cache (MB)");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddDouble("alpha", &alpha, "Zipf popularity exponent");
  flags.AddDouble("pages-per-session", &pages_per_session, "mean page visits per connection");
  flags.AddDouble("skew", &skew, "speed multiplier of the fast half (1 = homogeneous cluster)");
  flags.AddBool("flash", &flash, "use the Flash cost model instead of Apache");
  flags.AddString("csv", &csv, "write results as CSV here");
  flags.Parse(argc, argv);

  lard::SyntheticTraceConfig workload;
  workload.seed = static_cast<uint64_t>(seed);
  workload.num_pages = pages;
  workload.num_sessions = sessions;
  workload.zipf_alpha = alpha;
  workload.pages_per_session_mean = pages_per_session;
  const lard::Trace trace = lard::GenerateSyntheticTrace(workload);

  const lard::TraceStats stats = lard::ComputeTraceStats(trace);
  std::printf("workload: %zu targets, %.0f MB footprint, %zu requests, %.1f req/conn, "
              "mean size %.1f KB\n",
              stats.num_targets, static_cast<double>(stats.footprint_bytes) / 1e6,
              stats.num_requests, stats.mean_requests_per_session,
              stats.mean_response_bytes / 1024.0);
  std::printf("cluster: %lld nodes x %lld MB cache (aggregate %.0f%% of footprint), %s costs\n",
              static_cast<long long>(nodes), static_cast<long long>(cache_mb),
              100.0 * static_cast<double>(nodes * cache_mb) * 1024 * 1024 /
                  static_cast<double>(stats.footprint_bytes),
              flash ? "flash" : "apache");

  std::vector<double> speeds(static_cast<size_t>(nodes), 1.0);
  if (skew != 1.0) {
    for (size_t i = 0; i < speeds.size() / 2; ++i) {
      speeds[i] = skew;
    }
    std::printf("speed skew: fast half at %.1fx (wextLARD rows carry weights=speeds)\n", skew);
  }

  const Combo combos[] = {
      {"WRR", "wrr", lard::Mechanism::kSingleHandoff, true, false},
      {"WRR-PHTTP", "wrr", lard::Mechanism::kSingleHandoff, false, false},
      {"simple-LARD", "lard", lard::Mechanism::kSingleHandoff, true, false},
      {"simple-LARD-PHTTP", "lard", lard::Mechanism::kSingleHandoff, false, false},
      {"BEforward-extLARD-PHTTP", "extlard", lard::Mechanism::kBackEndForwarding, false, false},
      {"BEforward-wextLARD-PHTTP", "wextlard", lard::Mechanism::kBackEndForwarding, false, true},
      {"BEforward-LARD/R-PHTTP", "lardr", lard::Mechanism::kBackEndForwarding, false, false},
      {"multiHandoff-extLARD-PHTTP", "extlard", lard::Mechanism::kMultipleHandoff, false, false},
      {"relay-extLARD-PHTTP", "extlard", lard::Mechanism::kRelayingFrontEnd, false, false},
      {"zeroCost-extLARD-PHTTP", "extlard", lard::Mechanism::kIdealHandoff, false, false},
  };

  lard::Table table({"policy/mechanism", "req/s", "Mb/s", "hit rate", "batch ms", "forwards",
                     "migrations", "FE util"});
  for (const Combo& combo : combos) {
    lard::ClusterSimConfig config;
    config.num_nodes = static_cast<int>(nodes);
    config.policy_name = combo.policy;
    config.mechanism = combo.mechanism;
    config.http10 = combo.http10;
    config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
    config.server_costs = flash ? lard::FlashCosts() : lard::ApacheCosts();
    config.node_speeds = speeds;
    if (combo.weighted) {
      config.node_weights = speeds;
    }
    const lard::ClusterSimMetrics metrics = lard::ClusterSim(config, &trace).Run();
    table.Row()
        .Cell(combo.label)
        .Cell(metrics.throughput_rps, 0)
        .Cell(metrics.throughput_mbps, 1)
        .Cell(metrics.cache_hit_rate, 3)
        .Cell(metrics.mean_batch_latency_ms, 1)
        .Cell(static_cast<int64_t>(metrics.dispatcher.forwards))
        .Cell(static_cast<int64_t>(metrics.dispatcher.migrations))
        .Cell(metrics.fe_utilization, 3);
  }
  table.Print("policy comparison", csv);
  return 0;
}
