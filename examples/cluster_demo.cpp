// Runs the real prototype cluster on localhost: a front-end, N back-ends,
// fd-passing TCP handoff, tagged requests and lateral fetches — then drives
// it with the built-in load generator and prints per-node statistics.
//
//   ./build/examples/cluster_demo                       # run a measurement
//   ./build/examples/cluster_demo --policy wrr          # compare policies
//   ./build/examples/cluster_demo --serve true          # stay up for curl:
//       curl -v http://127.0.0.1:<port>/page0/index.html
#include <csignal>
#include <cstdio>
#include <thread>

#include "src/core/policy.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  lard::FlagSet flags("cluster_demo");
  int64_t nodes = 3;
  int64_t frontends = 1;
  int64_t sessions = 400;
  int64_t clients = 12;
  int64_t cache_mb = 4;
  int64_t listen_port = 0;
  int64_t admin_port = 0;
  double disk_scale = 0.05;
  std::string policy = "extlard";  // any PolicyRegistry name
  std::string mechanism = "beforward";  // beforward | single | multi | relay
  bool http10 = false;
  bool serve = false;
  flags.AddInt("nodes", &nodes, "number of back-end nodes");
  flags.AddInt("frontends", &frontends, "front-end replicas (mesh; clients spray across ports)");
  flags.AddInt("sessions", &sessions, "sessions the load generator replays");
  flags.AddInt("clients", &clients, "concurrent clients");
  flags.AddInt("cache-mb", &cache_mb, "per-node content cache (MB)");
  flags.AddInt("port", &listen_port, "front-end client port (0 = ephemeral)");
  flags.AddInt("admin-port", &admin_port, "admin API port (0 = ephemeral)");
  flags.AddDouble("disk-scale", &disk_scale, "simulated-disk time scale (1.0 = 28.5 ms seeks)");
  flags.AddString("policy", &policy,
                  "routing policy (" + lard::PolicyRegistry::Global().NamesCsv() + ")");
  flags.AddString("mechanism", &mechanism, "beforward | single | multi | relay");
  flags.AddBool("http10", &http10, "drive with one connection per request");
  flags.AddBool("serve", &serve, "keep the cluster running for manual curl");
  flags.Parse(argc, argv);

  // Document tree + workload.
  lard::SyntheticTraceConfig workload;
  workload.seed = 7;
  workload.num_pages = 200;
  workload.num_sessions = sessions;
  workload.max_size_bytes = 128 * 1024;
  const lard::Trace trace = lard::GenerateSyntheticTrace(workload);

  lard::ClusterConfig config;
  config.num_nodes = static_cast<int>(nodes);
  config.num_frontends = static_cast<int>(frontends);
  if (!lard::PolicyRegistry::Global().Contains(policy)) {
    std::fprintf(stderr, "unknown policy '%s' (registered: %s)\n", policy.c_str(),
                 lard::PolicyRegistry::Global().NamesCsv().c_str());
    return 1;
  }
  config.policy_name = policy;
  config.mechanism = mechanism == "single"  ? lard::Mechanism::kSingleHandoff
                     : mechanism == "relay" ? lard::Mechanism::kRelayingFrontEnd
                     : mechanism == "multi" ? lard::Mechanism::kMultipleHandoff
                                            : lard::Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
  config.disk_time_scale = disk_scale;
  config.listen_port = static_cast<uint16_t>(listen_port);
  config.admin_port = static_cast<uint16_t>(admin_port);

  lard::Cluster cluster(config, &trace.catalog());
  const lard::Status status = cluster.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cluster failed to start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("cluster up: %lld back-ends, %s over %s, http://127.0.0.1:%u/\n",
              static_cast<long long>(nodes), policy.c_str(),
              lard::MechanismName(config.mechanism), cluster.port());
  if (frontends > 1) {
    std::printf("front-end tier:");
    for (const uint16_t port : cluster.ports()) {
      std::printf(" http://127.0.0.1:%u/", port);
    }
    std::printf("  (mesh state: GET /mesh on the admin port)\n");
  }
  std::printf("document tree: %zu files, %.1f MB (e.g. /page0/index.html)\n",
              trace.catalog().size(), static_cast<double>(trace.catalog().TotalBytes()) / 1e6);

  if (serve) {
    std::printf("admin API: http://127.0.0.1:%u/ (try /metrics, /nodes)\n",
                cluster.admin_port());
    std::printf("serving until Ctrl-C...\n");
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    cluster.Stop();
    return 0;
  }

  lard::LoadGeneratorConfig load;
  load.port = cluster.port();
  load.ports = cluster.ports();  // spray across the FE tier (one entry = classic)
  load.num_clients = static_cast<int>(clients);
  load.http10 = http10;
  const lard::LoadResult result = lard::RunLoad(load, trace);
  const lard::ClusterSnapshot snapshot = cluster.Snapshot();
  cluster.Stop();

  std::printf("\n%llu requests in %.2f s -> %.0f req/s, %.1f Mb/s (batch latency: mean %.1f ms)\n",
              static_cast<unsigned long long>(result.requests), result.wall_seconds,
              result.throughput_rps, result.throughput_mbps, result.mean_batch_latency_ms);
  std::printf("responses ok/bad: %llu/%llu, transport errors: %llu\n",
              static_cast<unsigned long long>(result.responses_ok),
              static_cast<unsigned long long>(result.responses_bad),
              static_cast<unsigned long long>(result.transport_errors));
  std::printf("cluster: hit rate %.1f%%, lateral fetches %llu, consults %llu, handoffs %llu\n",
              100.0 * snapshot.cache_hit_rate,
              static_cast<unsigned long long>(snapshot.lateral_out),
              static_cast<unsigned long long>(snapshot.consults),
              static_cast<unsigned long long>(snapshot.handoffs));

  lard::Table table({"node", "requests served"});
  for (size_t i = 0; i < snapshot.requests_per_node.size(); ++i) {
    table.Row().Cell(static_cast<int64_t>(i)).Cell(
        static_cast<int64_t>(snapshot.requests_per_node[i]));
  }
  table.Print("per-node distribution");
  return 0;
}
