// Control-plane walkthrough on the real prototype cluster: starts a (default
// 4-node) cluster with the admin server enabled, serves traffic with the
// built-in load generator, and mid-run drives the membership through the
// admin HTTP API alone:
//
//   1. GET  /metrics            — per-node load/cache-hit/handoff counters
//   2. POST /nodes/1/drain      — node 1 finishes its persistent connections
//   3. POST /nodes/2/kill       — node 2 goes silent (simulated crash);
//                                 the front-end auto-removes it when its
//                                 heartbeats stop
//   4. POST /nodes/add          — a fresh node joins and takes load
//   5. GET  /nodes, /metrics    — final membership + metrics
//
//   ./build/examples/admin_demo
//   ./build/examples/admin_demo --nodes 6 --sessions 3000
#include <sys/socket.h>

#include <cstdio>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/proto/cluster.h"
#include "src/proto/load_generator.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace {

// Minimal blocking HTTP/1.0 client for the admin API (the demo's "curl").
std::string AdminHttp(uint16_t port, const std::string& method, const std::string& path,
                      const std::string& body = "") {
  auto fd = lard::ConnectTcp(port);
  if (!fd.ok()) {
    return "<connect failed>";
  }
  std::string request = method + " " + path + " HTTP/1.0\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  if (::send(fd.value().get(), request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return "<send failed>";
  }
  std::string reply;
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd.value().get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  const size_t header_end = reply.find("\r\n\r\n");
  return header_end == std::string::npos ? reply : reply.substr(header_end + 4);
}

void PrintSection(const char* title, const std::string& body) {
  std::printf("\n=== %s ===\n%s\n", title, body.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  lard::FlagSet flags("admin_demo");
  int64_t nodes = 4;
  int64_t sessions = 2000;
  int64_t clients = 16;
  int64_t cache_mb = 2;
  int64_t admin_port = 0;
  int64_t listen_port = 0;
  double disk_scale = 0.02;
  std::string policy = "extlard";
  flags.AddInt("nodes", &nodes, "initial number of back-end nodes");
  flags.AddInt("sessions", &sessions, "sessions the load generator replays");
  flags.AddInt("clients", &clients, "concurrent clients");
  flags.AddInt("cache-mb", &cache_mb, "per-node content cache (MB)");
  flags.AddInt("admin-port", &admin_port, "admin API port (0 = ephemeral)");
  flags.AddInt("port", &listen_port, "front-end client port (0 = ephemeral)");
  flags.AddDouble("disk-scale", &disk_scale, "simulated-disk time scale");
  flags.AddString("policy", &policy, "extlard | lard | wrr");
  flags.Parse(argc, argv);

  lard::SyntheticTraceConfig workload;
  workload.seed = 11;
  workload.num_pages = 300;
  workload.num_sessions = sessions;
  workload.max_size_bytes = 64 * 1024;
  const lard::Trace trace = lard::GenerateSyntheticTrace(workload);

  lard::ClusterConfig config;
  config.num_nodes = static_cast<int>(nodes);
  if (!lard::ParsePolicyName(policy, &config.policy)) {
    std::fprintf(stderr, "bad --policy %s\n", policy.c_str());
    return 2;
  }
  config.mechanism = lard::Mechanism::kBackEndForwarding;
  config.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;
  config.disk_time_scale = disk_scale;
  config.listen_port = static_cast<uint16_t>(listen_port);
  config.admin_port = static_cast<uint16_t>(admin_port);
  config.heartbeat_interval_ms = 100;
  config.heartbeat_timeout_ms = 600;

  lard::Cluster cluster(config, &trace.catalog());
  const lard::Status status = cluster.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cluster failed to start: %s\n", status.ToString().c_str());
    return 1;
  }
  const uint16_t admin = cluster.admin_port();
  std::printf("cluster up: %lld back-ends, clients on 127.0.0.1:%u, admin on 127.0.0.1:%u\n",
              static_cast<long long>(nodes), cluster.port(), admin);

  // Traffic in the background while we drive the control plane.
  lard::LoadResult result;
  std::thread load_thread([&]() {
    lard::LoadGeneratorConfig load;
    load.port = cluster.port();
    load.num_clients = static_cast<int>(clients);
    // Connections stranded on the killed node must time out, not hang.
    load.recv_timeout_ms = 2000;
    result = lard::RunLoad(load, trace);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  PrintSection("GET /metrics (mid-run excerpt)",
               AdminHttp(admin, "GET", "/metrics").substr(0, 1200));

  PrintSection("POST /nodes/1/drain", AdminHttp(admin, "POST", "/nodes/1/drain"));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  PrintSection("POST /nodes/2/kill (crash; heartbeats stop)",
               AdminHttp(admin, "POST", "/nodes/2/kill"));
  // Wait past the heartbeat timeout so the front-end detects + auto-removes.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  PrintSection("GET /nodes (after auto-removal)", AdminHttp(admin, "GET", "/nodes"));

  PrintSection("POST /nodes/add", AdminHttp(admin, "POST", "/nodes/add"));
  load_thread.join();

  PrintSection("GET /nodes (final)", AdminHttp(admin, "GET", "/nodes"));
  PrintSection("GET /metrics?format=json (final excerpt)",
               AdminHttp(admin, "GET", "/metrics?format=json").substr(0, 1200));

  const lard::ClusterSnapshot snapshot = cluster.Snapshot();
  std::printf("\nload: %llu requests, ok %llu, bad %llu, transport errors %llu "
              "(errors expected: node 2 was crashed mid-run)\n",
              static_cast<unsigned long long>(result.requests),
              static_cast<unsigned long long>(result.responses_ok),
              static_cast<unsigned long long>(result.responses_bad),
              static_cast<unsigned long long>(result.transport_errors));
  std::printf("cluster: hit rate %.1f%%, handoffs %llu, heartbeats %llu, auto-removals %llu\n",
              100.0 * snapshot.cache_hit_rate,
              static_cast<unsigned long long>(snapshot.handoffs),
              static_cast<unsigned long long>(snapshot.heartbeats),
              static_cast<unsigned long long>(snapshot.auto_removals));

  lard::Table table({"node", "requests served"});
  for (size_t i = 0; i < snapshot.requests_per_node.size(); ++i) {
    table.Row().Cell(static_cast<int64_t>(i)).Cell(
        static_cast<int64_t>(snapshot.requests_per_node[i]));
  }
  table.Print("per-node distribution");
  cluster.Stop();
  return 0;
}
