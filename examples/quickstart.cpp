// Quickstart: the library in ~60 lines.
//
// Generates a small Rice-like P-HTTP workload, runs the trace-driven cluster
// simulator for the paper's headline configuration (extended LARD + back-end
// request forwarding) against plain weighted round-robin, and prints the
// comparison. See examples/cluster_demo.cpp for the real-socket prototype.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--nodes 6] [--sessions 20000] [--cache-mb 16]
#include <cstdio>

#include "src/sim/cluster_sim.h"
#include "src/trace/synthetic.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  lard::FlagSet flags("quickstart");
  int64_t nodes = 6;
  int64_t sessions = 20000;
  int64_t cache_mb = 16;
  flags.AddInt("nodes", &nodes, "number of back-end nodes");
  flags.AddInt("sessions", &sessions, "P-HTTP sessions in the workload");
  flags.AddInt("cache-mb", &cache_mb, "per-node file cache (MB)");
  flags.Parse(argc, argv);

  // 1. A workload: pages with embedded objects, fetched over persistent
  //    connections with pipelining (HTTP/1.1 P-HTTP structure).
  lard::SyntheticTraceConfig workload;
  workload.seed = 1;
  workload.num_pages = 1000;
  workload.num_sessions = sessions;
  workload.pages_per_session_mean = 1.2;
  const lard::Trace trace = lard::GenerateSyntheticTrace(workload);
  std::printf("workload: %zu documents, %.0f MB, %zu requests on %zu persistent connections\n",
              trace.catalog().size(), static_cast<double>(trace.catalog().TotalBytes()) / 1e6,
              trace.total_requests(), trace.sessions().size());

  // 2. A cluster: --nodes back-ends, Apache-like cost model, --cache-mb caches.
  lard::ClusterSimConfig cluster;
  cluster.num_nodes = static_cast<int>(nodes);
  cluster.backend_cache_bytes = static_cast<uint64_t>(cache_mb) * 1024 * 1024;

  // 3. The paper's policy: extended LARD over back-end request forwarding.
  cluster.policy = lard::Policy::kExtendedLard;
  cluster.mechanism = lard::Mechanism::kBackEndForwarding;
  const lard::ClusterSimMetrics extlard = lard::ClusterSim(cluster, &trace).Run();

  // 4. The baseline: weighted round-robin (content-blind load balancing).
  cluster.policy = lard::Policy::kWrr;
  cluster.mechanism = lard::Mechanism::kSingleHandoff;
  const lard::ClusterSimMetrics wrr = lard::ClusterSim(cluster, &trace).Run();

  std::printf("\n%-28s %12s %12s %10s\n", "policy/mechanism", "req/s", "hit rate", "forwards");
  std::printf("%-28s %12.0f %11.1f%% %10llu\n", "extLARD + BE forwarding", extlard.throughput_rps,
              100.0 * extlard.cache_hit_rate,
              static_cast<unsigned long long>(extlard.dispatcher.forwards));
  std::printf("%-28s %12.0f %11.1f%% %10llu\n", "WRR", wrr.throughput_rps,
              100.0 * wrr.cache_hit_rate,
              static_cast<unsigned long long>(wrr.dispatcher.forwards));
  std::printf("\ncontent-based distribution speedup: %.2fx\n",
              extlard.throughput_rps / wrr.throughput_rps);
  return 0;
}
