// Closed-form performance analysis of Section 5 (Figures 5 and 6): cluster
// bandwidth as a function of mean response size for the TCP-multiple-handoff
// and back-end-forwarding mechanisms, under the paper's pessimal policy
// assumption that every request after the first on a persistent connection is
// served by a node other than the connection-handling node.
//
// Accounting (all CPU time, network assumed infinitely fast, content cached):
//   local request            : P + X(S)                       on serving node
//   BE-forwarded request     : P + X(S) on remote node, plus
//                              rho*X(S) receive + X(S) relay + P_tag
//                              on the handling node
//   migrated request         : H (effective per-migration back-end overhead,
//                              incl. pipeline-stall equivalent) + P + X(S)
//   connection (once)        : C_setup + C_teardown on the handling node
// where X(S) = per-512-byte transmit cost * ceil(S/512).
//
// Bandwidth = k nodes * (aggregate bytes / aggregate CPU time), i.e. the
// cluster is CPU-limited and perfectly utilized — matching the analysis'
// "all other factors equal" framing.
#ifndef SRC_ANALYSIS_MECHANISM_ANALYSIS_H_
#define SRC_ANALYSIS_MECHANISM_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "src/sim/cost_model.h"

namespace lard {

struct AnalysisConfig {
  ServerCostModel costs;       // Apache or Flash personality
  int num_nodes = 4;           // the paper uses a 4-node cluster
  double requests_per_connection = 8.0;
  // Receive-side per-byte cost on the handling node, as a fraction of the
  // transmit cost.
  double forward_receive_factor = 1.0;
};

// One point of the Fig. 5/6 curves.
struct AnalysisPoint {
  double file_size_bytes = 0.0;
  double bandwidth_multi_handoff_mbps = 0.0;
  double bandwidth_be_forwarding_mbps = 0.0;
};

// Bandwidth (Mb/s) for a single mean response size.
double MultiHandoffBandwidthMbps(const AnalysisConfig& config, double file_size_bytes);
double BackEndForwardingBandwidthMbps(const AnalysisConfig& config, double file_size_bytes);

// Sweeps file sizes [min_kb, max_kb] in `steps` points (linear).
std::vector<AnalysisPoint> SweepFileSizes(const AnalysisConfig& config, double min_kb,
                                          double max_kb, int steps);

// Response size at which the two mechanisms tie (bisection over [64B, 1MB]).
// Below the crossover back-end forwarding wins; above it multiple handoff
// wins. Returns 0 when forwarding wins everywhere in range, and 1 MB when it
// never wins.
double CrossoverFileSizeBytes(const AnalysisConfig& config);

}  // namespace lard

#endif  // SRC_ANALYSIS_MECHANISM_ANALYSIS_H_
