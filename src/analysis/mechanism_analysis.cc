#include "src/analysis/mechanism_analysis.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lard {
namespace {

// Total cluster CPU microseconds to serve one persistent connection of R
// requests with mean response size S, under the pessimal assumption that
// every request after the first is served remotely.
double MultiHandoffCpuUs(const AnalysisConfig& config, double size_bytes) {
  const ServerCostModel& costs = config.costs;
  const double requests = config.requests_per_connection;
  const double xmit = TransmitCostUs(costs, static_cast<uint64_t>(size_bytes));
  // Effective per-migration overhead: CPU plus the pipeline-stall equivalent.
  const double migration = costs.handoff_us + costs.migration_stall_us;
  return costs.conn_setup_us + costs.conn_teardown_us +
         requests * (costs.per_request_us + xmit) + (requests - 1.0) * migration;
}

double BackEndForwardingCpuUs(const AnalysisConfig& config, double size_bytes) {
  const ServerCostModel& costs = config.costs;
  const double requests = config.requests_per_connection;
  const double xmit = TransmitCostUs(costs, static_cast<uint64_t>(size_bytes));
  // Remote request: P + X on the caching node (serves to the handling node),
  // plus rho*X receive + X client relay + tag on the handling node.
  const double remote = costs.per_request_us + xmit +
                        config.forward_receive_factor * xmit + xmit + costs.tag_us;
  return costs.conn_setup_us + costs.conn_teardown_us + (costs.per_request_us + xmit) +
         (requests - 1.0) * remote;
}

double BandwidthMbps(const AnalysisConfig& config, double size_bytes, double cpu_us) {
  // k CPUs working in parallel; Mb/s = bits / microsecond.
  const double bits = 8.0 * config.requests_per_connection * size_bytes;
  return static_cast<double>(config.num_nodes) * bits / cpu_us;
}

}  // namespace

double MultiHandoffBandwidthMbps(const AnalysisConfig& config, double file_size_bytes) {
  LARD_CHECK(config.requests_per_connection >= 1.0);
  return BandwidthMbps(config, file_size_bytes, MultiHandoffCpuUs(config, file_size_bytes));
}

double BackEndForwardingBandwidthMbps(const AnalysisConfig& config, double file_size_bytes) {
  LARD_CHECK(config.requests_per_connection >= 1.0);
  return BandwidthMbps(config, file_size_bytes, BackEndForwardingCpuUs(config, file_size_bytes));
}

std::vector<AnalysisPoint> SweepFileSizes(const AnalysisConfig& config, double min_kb,
                                          double max_kb, int steps) {
  LARD_CHECK(steps >= 2);
  std::vector<AnalysisPoint> points;
  points.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double kb =
        min_kb + (max_kb - min_kb) * static_cast<double>(i) / static_cast<double>(steps - 1);
    AnalysisPoint point;
    point.file_size_bytes = kb * 1024.0;
    point.bandwidth_multi_handoff_mbps = MultiHandoffBandwidthMbps(config, point.file_size_bytes);
    point.bandwidth_be_forwarding_mbps =
        BackEndForwardingBandwidthMbps(config, point.file_size_bytes);
    points.push_back(point);
  }
  return points;
}

double CrossoverFileSizeBytes(const AnalysisConfig& config) {
  // Forwarding wins (less CPU per connection) exactly while
  //   (1 + rho) * X(S) + tag < handoff.
  // X(S) is nondecreasing in S, so bisection applies.
  auto forwarding_wins = [&](double size_bytes) {
    return BackEndForwardingCpuUs(config, size_bytes) < MultiHandoffCpuUs(config, size_bytes);
  };
  double lo = 64.0;
  double hi = 1024.0 * 1024.0;
  if (!forwarding_wins(lo)) {
    return 0.0;
  }
  if (forwarding_wins(hi)) {
    return hi;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (forwarding_wins(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace lard
