// Tunables of the LARD cost model (Fig. 3 / Fig. 4) and of the extended
// policy (Section 4.2). Defaults follow the paper where legible and the
// ASPLOS'98 lineage where our copy of the text is garbled (see DESIGN.md §3):
// the footnote equivalence "L_idle = T_low, MissCost = 2*(T_high - T_low)"
// with the ASPLOS values T_low = 25, T_high = 65 gives L_idle = 25,
// MissCost = 80, and L_overload ~ 2*T_high = 130.
#ifndef SRC_CORE_LARD_PARAMS_H_
#define SRC_CORE_LARD_PARAMS_H_

namespace lard {

struct LardParams {
  // Load (in connection units) below which a node counts as underutilized.
  double l_idle = 25.0;
  // Load at which the delay difference vs an idle node becomes unacceptable;
  // cost_balancing is infinite from here on.
  double l_overload = 130.0;
  // Cost (in load/delay units: "the delay experienced by a request for a
  // cached target at an otherwise unloaded server") charged for a likely
  // cache miss and for a likely future replacement.
  double miss_cost = 80.0;
  // Extended LARD: a connection-handling node's disk is "low utilization"
  // when fewer than this many disk events are queued; then subsequent
  // requests are served locally from disk and the fetched content is cached
  // locally. [reconstructed; swept in bench/ablation_extlard]
  int low_disk_queue_threshold = 4;
  // LARD/R ("lardr"): after this many placements of a target without its
  // replica set growing, the most loaded replica is retired — the classic
  // policy's time-based decay, counted in picks because the dispatcher has
  // no clock.
  int replica_decay_picks = 50;

  // --- Ablation switches (paper behaviour = defaults) ---

  // Section 4.2's 1/N batch accounting: a remote node serving requests of an
  // N-request pipelined batch carries 1/N load units for the batch service
  // time. When false, each forwarded request charges a full unit instead.
  bool fractional_batch_load = true;

  // The replication-avoidance heuristic: when a busy-disk handling node
  // serves a target that another node already caches, do not cache the copy.
  // When false, every miss populates the cache (LARD-classic behaviour).
  bool no_cache_when_busy = true;
};

}  // namespace lard

#endif  // SRC_CORE_LARD_PARAMS_H_
