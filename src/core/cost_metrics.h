// The three LARD cost metrics of Figure 4, as pure functions so they are
// independently testable. Aggregate cost = balancing + locality + replacement;
// the dispatcher assigns a request to the candidate with minimum aggregate.
#ifndef SRC_CORE_COST_METRICS_H_
#define SRC_CORE_COST_METRICS_H_

#include <limits>

#include "src/core/lard_params.h"

namespace lard {

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

// Delay due to already-queued work:
//   0                      if load < L_idle
//   infinity               if load >= L_overload
//   load - L_idle          otherwise
double CostBalancing(double load, const LardParams& params);

// Delay due to a likely cache miss: 0 when the target is considered cached at
// the node, MissCost otherwise.
double CostLocality(bool target_cached_at_node, const LardParams& params);

// Future overhead of evicting cached content to make room: free when the node
// is underloaded (cache presumed not thrashing) or the target is already
// cached; MissCost otherwise.
double CostReplacement(double load, bool target_cached_at_node, const LardParams& params);

// Sum of the three.
double AggregateCost(double load, bool target_cached_at_node, const LardParams& params);

}  // namespace lard

#endif  // SRC_CORE_COST_METRICS_H_
