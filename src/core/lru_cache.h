// Byte-budgeted LRU cache over TargetIds. Used in three places:
//   * the dispatcher's per-node *virtual* caches — the front-end's model of
//     what each back-end currently caches (the paper's target->node mappings,
//     generalized to sets with eviction),
//   * the simulator's per-back-end main-memory file cache,
//   * the prototype back-end's content cache (there with real bytes besides).
// Keeping one implementation ensures the front-end's model and the back-ends'
// reality evolve identically under the same update stream.
#ifndef SRC_CORE_LRU_CACHE_H_
#define SRC_CORE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"

namespace lard {

class LruCache {
 public:
  explicit LruCache(uint64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

  bool Contains(TargetId id) const { return index_.find(id) != index_.end(); }

  // Moves `id` to most-recently-used. Returns false (and does nothing) when
  // the entry is absent.
  bool Touch(TargetId id);

  // Inserts (or refreshes) `id` with `size_bytes`, evicting least-recently
  // used entries as needed. Evicted ids are appended to *evicted when
  // non-null. An object larger than the whole capacity is not cached.
  // Returns true when the object is resident afterwards.
  bool Insert(TargetId id, uint64_t size_bytes, std::vector<TargetId>* evicted = nullptr);

  // Removes `id` if present.
  void Erase(TargetId id);

  // Drops every entry (node removal evicts the whole virtual cache).
  void Clear();

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t entry_count() const { return entries_.size(); }

 private:
  struct Entry {
    TargetId id = 0;
    uint64_t size_bytes = 0;
  };

  void EvictOne(std::vector<TargetId>* evicted);

  uint64_t capacity_bytes_ = 0;
  uint64_t used_bytes_ = 0;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<TargetId, std::list<Entry>::iterator> index_;
};

}  // namespace lard

#endif  // SRC_CORE_LRU_CACHE_H_
