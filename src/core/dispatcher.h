// The front-end dispatcher: the mechanism-side decision engine shared
// verbatim by the discrete-event simulator (src/sim) and the socket
// prototype (src/proto) so that simulated and measured policy behaviour is
// the same code. *Which node* serves a request is delegated to a pluggable
// RoutingPolicy (src/core/policy.h — WRR, LARD, extended LARD, weighted
// extended LARD, LARD/R, or any registered plugin); the dispatcher owns all
// state the policies decide over and applies their decisions' side effects.
//
// The dispatcher never touches sockets or simulated hardware; it consumes
// connection-lifecycle events and emits Assignments. It maintains:
//   * per-node load in the paper's load units: 1 per active handed-off
//     connection on its handling node, plus 1/N per remote node serving
//     requests of an N-request pipelined batch, held for the batch service
//     time (Section 4.2's accounting),
//   * per-node *virtual caches* (LRU over target ids, same sizes as the
//     back-end caches): the front-end's model of what each back-end caches —
//     the paper's target->node mappings, "updated each time a target is
//     fetched from a backend node",
//   * per-connection state: handling node, activity, outstanding fractional
//     loads,
//   * per-node capacity weights (heterogeneous node speeds; weighted
//     policies compare load/weight),
//   * per-node membership state (active / draining / dead): the control
//     plane's dynamic view of the cluster. `config.num_nodes` is only the
//     *initial* membership; nodes join via AddNode and leave via
//     DrainNode/RemoveNode at runtime. Node ids are stable and never reused.
//
// Not thread-safe: the simulator is single-threaded and the prototype drives
// it from its single dispatcher thread (mirroring the kernel dispatcher
// module, which serializes on the control session).
//
// Concurrency contract (docs/CONCURRENCY.md): the dispatcher carries no lock
// of its own. The prototype serializes every call through
// FrontEnd::state_mutex_ (the FrontEnd is the capability); the simulator is
// single-threaded. That external guard is not expressible as a GUARDED_BY on
// members here, so this class stays annotation-free by design.
#ifndef SRC_CORE_DISPATCHER_H_
#define SRC_CORE_DISPATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/lard_params.h"
#include "src/core/lru_cache.h"
#include "src/core/policy.h"
#include "src/trace/trace.h"
#include "src/util/metrics.h"

namespace lard {

struct DispatcherConfig {
  Policy policy = Policy::kExtendedLard;
  // When non-empty, resolved through the PolicyRegistry and overriding
  // `policy` — the way to select a registered plugin policy that has no enum
  // value. Unknown names abort at construction (configs are code).
  std::string policy_name;
  Mechanism mechanism = Mechanism::kBackEndForwarding;
  LardParams params;
  int num_nodes = 1;  // initial membership: nodes [0, num_nodes) start active
  // Capacity weight of initial node i (1.0 = baseline; 2.0 = twice the
  // speed). Shorter than num_nodes is padded with 1.0; weights must be > 0.
  // Weighted policies ("wextlard") compare load/weight instead of raw load.
  std::vector<double> node_weights;
  // Capacity of the dispatcher's per-node virtual cache; should match the
  // back-ends' file-cache size.
  uint64_t virtual_cache_bytes = 85ull * 1024 * 1024;
  // Optional: decision counters and per-node load gauges are published here
  // (lard_dispatcher_* and lard_node_load{node="k"}).
  MetricsRegistry* metrics = nullptr;
  // Optional replicated-front-end overlay: per-node load gossiped by the
  // *other* dispatchers of a front-end mesh, added on top of this
  // dispatcher's own accounting in every policy's view (must outlive the
  // dispatcher). Null = single front-end, overlay is zero.
  const RemoteLoadProvider* remote_loads = nullptr;
};

// Aggregate decision counters, for tests, metrics and EXPERIMENTS.md tables.
struct DispatcherCounters {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t handoffs = 0;
  uint64_t local_serves = 0;
  uint64_t forwards = 0;
  uint64_t migrations = 0;
  uint64_t relays = 0;
  uint64_t served_without_caching = 0;  // extLARD "disk busy, don't cache"
  // Control plane.
  uint64_t nodes_added = 0;
  uint64_t nodes_drained = 0;
  uint64_t nodes_removed = 0;
  uint64_t orphaned_connections = 0;  // open conns whose handling node died
  uint64_t reassignments = 0;  // connections moved off a draining/retiring node
  // Subset of `reassignments` made because the previous handling node
  // *crashed* (failure replay), as opposed to cooperative drain givebacks.
  uint64_t failure_reassignments = 0;
};

class Dispatcher {
 public:
  // `catalog` supplies target sizes for the virtual caches; `stats` supplies
  // back-end disk-queue lengths (extended LARD's only back-end feedback).
  // Both must outlive the dispatcher.
  Dispatcher(const DispatcherConfig& config, const TargetCatalog* catalog,
             const BackendStatsProvider* stats);

  // A client connection was accepted (no request content seen yet).
  void OnConnectionOpen(ConnId conn);

  // The next batch of pipelined requests arrived on `conn`. Returns one
  // assignment per target, in order. The first assignment ever returned for
  // a connection is the handoff decision (kHandoff / kRelay). Arrival of a
  // batch also tells the dispatcher that the previous batch on this
  // connection has been fully served (the paper's batch-service estimate),
  // so the previous batch's fractional remote loads are released.
  std::vector<Assignment> OnBatch(ConnId conn, const std::vector<TargetId>& targets);

  // The connection went idle (client ACK silence): the current batch is
  // done; release its load. The connection stays open and may receive more
  // batches.
  void OnConnectionIdle(ConnId conn);

  // The connection closed. Releases all load and state.
  void OnConnectionClose(ConnId conn);

  // --- membership (the control plane) ---

  // Adds a node with an empty virtual cache, zero load and the given
  // capacity weight; returns its (freshly allocated, never-recycled) id. The
  // node is immediately assignable.
  NodeId AddNode(double weight = 1.0);

  // Stops new assignments (handoffs, forwards, migrations, relays) to
  // `node`; its active persistent connections keep being served. Returns
  // false when `node` is not an active node or is the last active node
  // (draining it would leave nothing to assign to).
  bool DrainNode(NodeId node);

  // Removes `node` (admin action or detected failure): evicts its virtual
  // cache, zeroes its load and forgets every connection it was handling.
  // The orphaned connection ids are appended to *orphans (when non-null) so
  // the caller can fail them over or tear them down; their dispatcher state
  // is gone either way. Returns false when `node` is already dead or
  // invalid. Removing the last active node is allowed — failures don't ask
  // permission — after which OnBatch must not be called for new work until a
  // node is added (see active_node_count()).
  bool RemoveNode(NodeId node, std::vector<ConnId>* orphans = nullptr);

  // Moves `conn` onto a fresh assignable node — the reverse-handoff path: a
  // draining or retiring back-end gave the connection back to the front-end,
  // which asks for a new placement instead of orphaning the state. Preserves
  // the connection's accounting: an active 1-unit load moves from the old
  // handling node to the new one, remote batch fractions stay where they are,
  // and the new node's virtual cache is seeded with `pending_targets` (the
  // connection's unserved requests, so LARD affinity guides the pick).
  // Returns the new handling node, or kInvalidNode when the connection is
  // unknown or no node is assignable (caller falls back to 503/close).
  // `reason` only affects counter attribution: kFailure marks a crash-replay
  // reassignment (the old node died uncooperatively) on top of the shared
  // reassignment count.
  enum class ReassignReason { kDrain, kFailure };
  NodeId ReassignConnection(ConnId conn, const std::vector<TargetId>& pending_targets = {},
                            ReassignReason reason = ReassignReason::kDrain);

  // Merges a gossip hint from a peer front-end: `target` was (or is about to
  // be) fetched into `node`'s real cache by a connection some other
  // dispatcher placed there. Keeps this dispatcher's virtual-cache model of
  // the shared back-ends converging on reality so LARD affinity survives
  // replication. No load or counter side effects; dead nodes are ignored.
  void NoteRemoteFetch(NodeId node, TargetId target);

  // Runtime policy switch (admin POST /policy). Existing connections keep
  // their handling nodes and the round-robin cursor persists; only future
  // decisions use the new policy. The enum overload is shorthand for the
  // built-ins; SetPolicyByName accepts any registered name and returns false
  // (policy unchanged) on an unknown one.
  void SetPolicy(Policy policy);
  bool SetPolicyByName(const std::string& name);

  // --- introspection (tests, metrics, admin API) ---
  // The active routing policy (its name() is the canonical registry key).
  const RoutingPolicy& policy() const { return *policy_; }
  // Total node slots ever allocated (including drained/dead ids).
  int num_node_slots() const { return static_cast<int>(states_.size()); }
  // Monotone counter of membership mutations (AddNode/DrainNode/RemoveNode).
  // The front-end mesh gossips it so replicas can order membership news:
  // a delta carrying a lower epoch than previously seen from the same peer
  // is stale and must be dropped.
  uint64_t membership_epoch() const { return membership_epoch_; }
  // The gossip overlay's answer for `node` (0 when no mesh is configured).
  double RemoteNodeLoad(NodeId node) const {
    return config_.remote_loads == nullptr ? 0.0 : config_.remote_loads->RemoteLoad(node);
  }
  int active_node_count() const;
  NodeState node_state(NodeId node) const;
  double NodeLoad(NodeId node) const;
  double NodeWeight(NodeId node) const;
  // Load per unit of capacity (load/weight) — the admin API's heterogeneity
  // signal.
  double NormalizedNodeLoad(NodeId node) const;
  NodeId HandlingNode(ConnId conn) const;
  // Compact "id:normalized_load" summary of the assignable membership — the
  // candidate set the policy weighed for its last decision. Bounded to
  // `max_nodes` entries ("+" marks truncation) so it fits a trace span's
  // fixed detail buffer.
  std::string DescribeLoads(int max_nodes = 6) const;
  // Open connections currently handled by `node` (retire bookkeeping).
  size_t ConnectionCountOn(NodeId node) const;
  bool TargetCachedAt(NodeId node, TargetId target) const;
  uint64_t VirtualCacheBytes(NodeId node) const;
  const DispatcherCounters& counters() const { return counters_; }
  const DispatcherConfig& config() const { return config_; }
  size_t open_connections() const { return conns_.size(); }

 private:
  struct ConnState {
    NodeId handling = kInvalidNode;
    bool active = false;               // contributes 1 load unit to handling
    std::vector<NodeId> remote_nodes;  // fractional loads of the current batch
    double remote_fraction = 0.0;      // the 1/N each of them carries
  };

  // The read-only window the active RoutingPolicy decides over.
  DispatcherView View() const;
  // Applies a policy's SubsequentDecision: maps it to a serve-local /
  // forward / migrate assignment per the mechanism and performs the load
  // accounting and counter updates.
  Assignment ApplySubsequent(ConnState& conn_state, TargetId target,
                             const SubsequentDecision& decision);

  // Applies the cache-model side effects of serving `target` per `assignment`.
  void ApplyCacheEffects(TargetId target, const Assignment& assignment);

  void ReleaseBatchLoads(ConnState& conn_state);

  // True when new work may be assigned to `node`.
  bool Assignable(NodeId node) const {
    return states_[static_cast<size_t>(node)] == NodeState::kActive;
  }
  bool Dead(NodeId node) const {
    return states_[static_cast<size_t>(node)] == NodeState::kDead;
  }
  // All load_ mutations go through here so the published gauges track.
  void AddLoad(NodeId node, double delta);
  // All handling-node changes go through here so handled_counts_ stays exact
  // (ConnectionCountOn is O(1) and queried per control message during
  // retires).
  void SetHandling(ConnState& conn_state, NodeId node);

  bool Cached(NodeId node, TargetId target) const { return vcaches_[node].Contains(target); }
  uint64_t SizeOf(TargetId target) const { return catalog_->Get(target).size_bytes; }

  DispatcherConfig config_;
  const TargetCatalog* catalog_;
  const BackendStatsProvider* stats_;
  std::unique_ptr<RoutingPolicy> policy_;
  PolicyState policy_state_;  // shared rr cursor; survives policy switches

  std::vector<double> load_;
  std::vector<double> weights_;  // capacity weight per node slot
  std::vector<LruCache> vcaches_;
  std::vector<NodeState> states_;
  std::vector<uint64_t> handled_counts_;  // open connections per handling node
  std::vector<MetricGauge*> load_gauges_;  // nullptrs when metrics disabled
  std::unordered_map<ConnId, ConnState> conns_;
  DispatcherCounters counters_;
  uint64_t membership_epoch_ = 0;
};

}  // namespace lard

#endif  // SRC_CORE_DISPATCHER_H_
