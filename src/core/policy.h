// The pluggable routing-policy API. The paper's policies (WRR, LARD,
// extended LARD) used to be welded into the Dispatcher as an enum plus
// private pick methods; they are now RoutingPolicy implementations behind a
// string-keyed PolicyRegistry, so new strategies — weighted placement for
// heterogeneous node speeds, replicated hot-target sets — are ~100-line
// plugins instead of dispatcher rewrites.
//
// Division of labour:
//   * The Dispatcher owns all *state mutation*: load accounting, virtual
//     caches, connection bookkeeping, membership, counters.
//   * A RoutingPolicy is a pure decision function over a read-only
//     DispatcherView (per-node load, capacity weight, membership state,
//     virtual-cache contents, back-end disk feedback). Policies may keep
//     their own private state (e.g. LARD/R's replica sets); the shared
//     round-robin cursor lives in PolicyState, owned by the dispatcher, so
//     rotation continuity survives runtime policy switches exactly as it did
//     when the cursor was a dispatcher member.
//
// Built-in registry names: "wrr", "lard", "extlard", "wextlard", "lardr".
// To add a policy: subclass RoutingPolicy, register a factory under a new
// name (PolicyRegistry::Global().Register(...)), and it is immediately
// selectable via DispatcherConfig::policy_name, Dispatcher::SetPolicyByName
// and the admin API's POST /policy. See docs/ADMIN_API.md for a walkthrough.
#ifndef SRC_CORE_POLICY_H_
#define SRC_CORE_POLICY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/lard_params.h"
#include "src/core/lru_cache.h"
#include "src/trace/trace.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace lard {

// Read-only window onto the dispatcher's state, handed to every policy call.
// Node ids index [0, num_node_slots()); dead/draining slots persist (ids are
// never reused) and are excluded from new work via Assignable().
//
// With a replicated front-end tier, `remote` overlays the load other
// dispatchers have gossiped for each node; Load() then answers local +
// remote so every policy transparently decides over the (approximate)
// *global* load without knowing the mesh exists. `remote` may be null
// (single front-end: the overlay is zero).
class DispatcherView {
 public:
  DispatcherView(const std::vector<double>* loads, const std::vector<double>* weights,
                 const std::vector<NodeState>* states, const std::vector<LruCache>* vcaches,
                 const BackendStatsProvider* stats, const LardParams* params,
                 Mechanism mechanism, const RemoteLoadProvider* remote = nullptr)
      : loads_(loads),
        weights_(weights),
        states_(states),
        vcaches_(vcaches),
        stats_(stats),
        params_(params),
        mechanism_(mechanism),
        remote_(remote) {}

  int num_node_slots() const { return static_cast<int>(states_->size()); }
  NodeState state(NodeId node) const { return (*states_)[static_cast<size_t>(node)]; }
  // True when new work (handoffs, forwards, migrations, relays) may go to
  // `node`.
  bool Assignable(NodeId node) const { return state(node) == NodeState::kActive; }
  // The paper's load units: active handed-off connections plus fractional
  // batch loads — this dispatcher's own accounting plus (in a replicated
  // front-end tier) the gossip-learned load other dispatchers placed.
  double Load(NodeId node) const { return LocalLoad(node) + RemoteLoad(node); }
  // The load this dispatcher placed itself (exact, not gossip).
  double LocalLoad(NodeId node) const { return (*loads_)[static_cast<size_t>(node)]; }
  // The overlay other front-ends gossiped for `node` (0 without a mesh).
  double RemoteLoad(NodeId node) const {
    return remote_ == nullptr ? 0.0 : remote_->RemoteLoad(node);
  }
  // Capacity weight (1.0 = baseline machine; 2.0 = twice as fast).
  double Weight(NodeId node) const { return (*weights_)[static_cast<size_t>(node)]; }
  // Load per unit of capacity — what weighted policies compare and what the
  // admin API reports for heterogeneous clusters.
  double NormalizedLoad(NodeId node) const { return Load(node) / Weight(node); }
  // The dispatcher's model of the node's main-memory file cache.
  bool Cached(NodeId node, TargetId target) const {
    return (*vcaches_)[static_cast<size_t>(node)].Contains(target);
  }
  // Back-end disk-queue feedback (extended LARD's only back-end signal).
  int DiskQueueLength(NodeId node) const { return stats_->DiskQueueLength(node); }
  const LardParams& params() const { return *params_; }
  Mechanism mechanism() const { return mechanism_; }

 private:
  const std::vector<double>* loads_;
  const std::vector<double>* weights_;
  const std::vector<NodeState>* states_;
  const std::vector<LruCache>* vcaches_;
  const BackendStatsProvider* stats_;
  const LardParams* params_;
  Mechanism mechanism_;
  const RemoteLoadProvider* remote_;
};

// Mutable scratch state shared by all policies of one dispatcher. Keeping the
// round-robin cursor here (not inside a policy instance) preserves rotation
// continuity across runtime policy switches and lets the dispatcher's own
// catalog-miss fallback rotate the same cursor the policies do.
struct PolicyState {
  size_t rr_cursor = 0;
};

// A policy's verdict for a subsequent pipelined request on an established
// connection. node == the handling node means "serve locally";
// cache_after_miss=false is extended LARD's "disk busy and a copy exists
// elsewhere — serve without caching" heuristic.
struct SubsequentDecision {
  NodeId node = kInvalidNode;
  bool cache_after_miss = true;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  // Canonical registry key ("wrr", "extlard", ...). The admin API echoes
  // this; SetPolicyByName round-trips it.
  virtual const char* name() const = 0;
  // Human-facing spelling for tables and /nodes ("WRR", "extLARD", ...).
  virtual const char* display_name() const { return name(); }
  // Whether the policy wants to place individual requests of a persistent
  // connection (subject to the mechanism also allowing it). Connection-
  // granularity policies return false and every subsequent request is pinned
  // to the handling node.
  virtual bool per_request_distribution() const { return false; }

  // Placement of the first request of a connection: the handoff decision.
  // `target` is always valid (catalog misses go through PickLoadBalanced).
  virtual NodeId PickFirstNode(const DispatcherView& view, PolicyState& state,
                               TargetId target) = 0;

  // Pure load-balance pick for requests outside the catalog (soon-to-404
  // paths carry no locality signal). Default: unweighted WRR.
  virtual NodeId PickLoadBalanced(const DispatcherView& view, PolicyState& state);

  // Per-request placement under the relaying front-end (no handoff exists, so
  // every request is placed independently). Default: same as a first pick.
  virtual NodeId PickPerRequest(const DispatcherView& view, PolicyState& state, TargetId target) {
    return PickFirstNode(view, state, target);
  }

  // Subsequent request on a connection handled by `handling`; called only
  // when per_request_distribution() and the mechanism both allow it.
  // Default: stay on the handling node.
  virtual SubsequentDecision DecideSubsequent(const DispatcherView& view, PolicyState& state,
                                              NodeId handling, TargetId target);
};

// --- Reusable pick primitives (building blocks for plugins) ---
// `weighted` selects which load the comparisons use: raw load units, or load
// normalized by the node's capacity weight. With all weights at 1.0 the two
// are bit-identical.

// Least-loaded assignable node, ties broken in round-robin order from the
// shared cursor (an idle cluster still rotates). Aborts when no node is
// assignable — callers gate on active membership.
NodeId WrrPick(const DispatcherView& view, PolicyState& state, bool weighted);

// Basic LARD in its Fig. 4 cost form: minimum aggregate cost over assignable
// nodes; ties prefer a caching node, then lower load, then round-robin.
NodeId LardPick(const DispatcherView& view, PolicyState& state, TargetId target, bool weighted);

// Extended LARD's Section 4.2 per-request logic: serve locally when cached or
// the local disk is idle; otherwise weigh the handling node against every
// assignable node caching the target by aggregate cost.
SubsequentDecision ExtLardDecide(const DispatcherView& view, NodeId handling, TargetId target,
                                 bool weighted);

// --- Registry ---

// String-keyed factory table. Built-ins self-register on first access;
// plugins may Register() additional names at startup. Thread-safe.
class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<RoutingPolicy>()>;

  static PolicyRegistry& Global();

  // Registers `factory` under `name`; aborts on a duplicate name (policies
  // are identities, silently replacing one is a bug).
  void Register(const std::string& name, Factory factory);
  // nullptr when `name` is not registered.
  std::unique_ptr<RoutingPolicy> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;
  // Sorted registry keys.
  std::vector<std::string> Names() const;
  // "extlard, lard, lardr, wextlard, wrr" — for error messages.
  std::string NamesCsv() const;

 private:
  PolicyRegistry();
  mutable Mutex mutex_;
  std::map<std::string, Factory> factories_ LARD_GUARDED_BY(mutex_);
};

}  // namespace lard

#endif  // SRC_CORE_POLICY_H_
