// Shared vocabulary for the cluster: node ids, the request-distribution
// mechanisms of Section 3, the policies of Section 4, and the per-request
// assignment a dispatcher produces.
#ifndef SRC_CORE_CLUSTER_TYPES_H_
#define SRC_CORE_CLUSTER_TYPES_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace lard {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

using ConnId = uint64_t;

// Section 3's mechanisms for serving requests of one persistent connection on
// multiple back-ends. The mechanism constrains which assignments are legal
// after a connection has been handed off, and (in the simulator) which costs
// are charged.
enum class Mechanism {
  // FE proxies all request and response bytes; no handoff at all. Allows
  // per-request distribution but makes the FE a per-byte bottleneck.
  kRelayingFrontEnd,
  // TCP connection handed to one back-end once; every later request on the
  // connection must be served there (the ASPLOS'98 mechanism).
  kSingleHandoff,
  // Connection may be migrated between back-ends per request, paying a
  // handoff cost each time.
  kMultipleHandoff,
  // Single handoff + the connection-handling node laterally fetches content
  // from the node that caches it and relays the response (Section 3.3).
  kBackEndForwarding,
  // Benchmark ceiling: migration with zero overhead ("ideal handoff").
  kIdealHandoff,
};

// Section 2.2 / 4's distribution policies, plus this repo's extensions for
// heterogeneous and replicated clusters. The enum is convenient shorthand for
// the built-ins; the authoritative, extensible surface is the string-keyed
// PolicyRegistry in src/core/policy.h — configs carry an optional
// `policy_name` that overrides the enum, and POST /policy accepts any
// registered name.
enum class Policy {
  kWrr,           // weighted round-robin: pure load balancing, content-blind
  kLard,          // basic LARD (Fig. 4 cost metrics) at connection granularity
  kExtendedLard,  // Section 4.2: LARD extended for P-HTTP
  kWeightedExtendedLard,  // extLARD with per-node capacity weights: load
                          // comparisons normalize by weight (heterogeneous
                          // node speeds)
  kLardReplication,       // LARD/R: hot targets map to a replica *set*,
                          // splitting their load across nodes
};

const char* MechanismName(Mechanism mechanism);
const char* PolicyName(Policy policy);

// The PolicyRegistry key for a built-in ("wrr" | "lard" | "extlard" |
// "wextlard" | "lardr").
const char* PolicyKey(Policy policy);

// Parses the registry keys used on command lines and the admin API; returns
// false on anything else (including registered plugin policies that have no
// enum value — resolve those through the PolicyRegistry directly).
bool ParsePolicyName(const std::string& name, Policy* policy);

// Lifecycle of a back-end node in the control plane. Node ids are stable:
// a removed node's id is never reused, so a NodeId seen in logs, metrics or
// admin responses always denotes the same machine.
//   kActive:   takes new connections and forwards.
//   kDraining: finishes its active persistent connections but receives no new
//              assignments of any kind.
//   kDead:     removed (admin action or missed heartbeats); its virtual cache
//              is evicted and its connections are failed over or dropped.
enum class NodeState { kActive, kDraining, kDead };

const char* NodeStateName(NodeState state);

// True when the mechanism lets the policy place each request independently
// (relaying, multiple handoff, ideal). Single handoff cannot; back-end
// forwarding can, but only via lateral fetches.
bool MechanismAllowsPerRequestDistribution(Mechanism mechanism);

// What the connection-handling path must do with one request.
enum class AssignmentAction {
  // Serve on the node currently handling the connection (cache or local disk).
  kServeLocal,
  // First request only: hand the connection off to `node`.
  kHandoff,
  // Back-end forwarding: handling node fetches from `node`, relays response.
  kForward,
  // Multiple handoff: migrate the connection to `node`, serve there.
  kMigrate,
  // Relaying FE: FE forwards the request to `node` over a back-end connection
  // and relays the response bytes itself.
  kRelay,
};

const char* AssignmentActionName(AssignmentAction action);

struct Assignment {
  AssignmentAction action = AssignmentAction::kServeLocal;
  // The node that produces the response bytes. For kServeLocal this is the
  // handling node; for kForward/kMigrate/kHandoff/kRelay the chosen node.
  NodeId node = kInvalidNode;
  // Whether the serving node should insert the target into its cache after a
  // cache miss (extended LARD's disk-utilization caching heuristic). Always
  // true for cache hits (no-op).
  bool cache_after_miss = true;
  // The dispatcher's model's verdict: will the serving node find the target
  // in its cache? The simulator uses this as *the* cache outcome (the paper's
  // simulator has a single cache model shared by policy and service); the
  // prototype ignores it and consults the back-end's real cache.
  bool served_from_cache = false;

  std::string ToString() const;
};

// Narrow view of back-end state the dispatcher is allowed to see. In the
// paper the only back-end -> front-end feedback is the disk queue length,
// conveyed over the handoff-protocol control sessions; load is accounted at
// the front-end itself.
class BackendStatsProvider {
 public:
  virtual ~BackendStatsProvider() = default;
  // Number of queued disk events at `node` (the paper's "disk utilization").
  virtual int DiskQueueLength(NodeId node) const = 0;
};

// A provider for substrates with no disk feedback (always reports 0).
class NullBackendStats final : public BackendStatsProvider {
 public:
  int DiskQueueLength(NodeId) const override { return 0; }
};

// The one check every capacity weight passes through — the dispatcher's
// AddNode CHECK, the admin API's 400, and the simulator's membership-event
// validation all call this, so "positive and finite" is decided in exactly
// one place.
bool IsValidCapacityWeight(double weight);

// Per-node load contributed by *other* dispatchers — the replicated
// front-end tier's gossip overlay. A dispatcher accounts only the
// connections it placed itself; with N front-ends the policies must compare
// local + remote load, so DispatcherView::Load adds this provider's answer
// (when configured) on top of the local accounting. Implementations are
// staleness-bounded approximations (src/mesh's MeshStateTable), never exact.
class RemoteLoadProvider {
 public:
  virtual ~RemoteLoadProvider() = default;
  // Load units other front-ends currently believe they have placed on
  // `node`. Must tolerate any node id (return 0.0 for unknown slots).
  virtual double RemoteLoad(NodeId node) const = 0;
};

}  // namespace lard

#endif  // SRC_CORE_CLUSTER_TYPES_H_
