#include "src/core/cluster_types.h"

#include <cmath>

namespace lard {

bool IsValidCapacityWeight(double weight) { return std::isfinite(weight) && weight > 0.0; }

const char* MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kRelayingFrontEnd:
      return "relay";
    case Mechanism::kSingleHandoff:
      return "singleHandoff";
    case Mechanism::kMultipleHandoff:
      return "multiHandoff";
    case Mechanism::kBackEndForwarding:
      return "BEforward";
    case Mechanism::kIdealHandoff:
      return "zeroCost";
  }
  return "?";
}

namespace {

// The one authoritative enum <-> key <-> display mapping for the built-ins
// (the registry in src/core/policy.cc instantiates the same keys).
struct PolicyNameEntry {
  Policy policy;
  const char* key;
  const char* display;
};

constexpr PolicyNameEntry kPolicyNames[] = {
    {Policy::kWrr, "wrr", "WRR"},
    {Policy::kLard, "lard", "LARD"},
    {Policy::kExtendedLard, "extlard", "extLARD"},
    {Policy::kWeightedExtendedLard, "wextlard", "wextLARD"},
    {Policy::kLardReplication, "lardr", "LARD/R"},
};

}  // namespace

const char* PolicyName(Policy policy) {
  for (const PolicyNameEntry& entry : kPolicyNames) {
    if (entry.policy == policy) {
      return entry.display;
    }
  }
  return "?";
}

const char* PolicyKey(Policy policy) {
  for (const PolicyNameEntry& entry : kPolicyNames) {
    if (entry.policy == policy) {
      return entry.key;
    }
  }
  return "?";
}

bool ParsePolicyName(const std::string& name, Policy* policy) {
  for (const PolicyNameEntry& entry : kPolicyNames) {
    if (name == entry.key) {
      *policy = entry.policy;
      return true;
    }
  }
  return false;
}

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kActive:
      return "active";
    case NodeState::kDraining:
      return "draining";
    case NodeState::kDead:
      return "dead";
  }
  return "?";
}

bool MechanismAllowsPerRequestDistribution(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kRelayingFrontEnd:
    case Mechanism::kMultipleHandoff:
    case Mechanism::kBackEndForwarding:
    case Mechanism::kIdealHandoff:
      return true;
    case Mechanism::kSingleHandoff:
      return false;
  }
  return false;
}

const char* AssignmentActionName(AssignmentAction action) {
  switch (action) {
    case AssignmentAction::kServeLocal:
      return "serve-local";
    case AssignmentAction::kHandoff:
      return "handoff";
    case AssignmentAction::kForward:
      return "forward";
    case AssignmentAction::kMigrate:
      return "migrate";
    case AssignmentAction::kRelay:
      return "relay";
  }
  return "?";
}

std::string Assignment::ToString() const {
  std::string out = AssignmentActionName(action);
  out += "->node";
  out += std::to_string(node);
  if (!cache_after_miss) {
    out += " (no-cache)";
  }
  return out;
}

}  // namespace lard
