#include "src/core/cluster_types.h"

namespace lard {

const char* MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kRelayingFrontEnd:
      return "relay";
    case Mechanism::kSingleHandoff:
      return "singleHandoff";
    case Mechanism::kMultipleHandoff:
      return "multiHandoff";
    case Mechanism::kBackEndForwarding:
      return "BEforward";
    case Mechanism::kIdealHandoff:
      return "zeroCost";
  }
  return "?";
}

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kWrr:
      return "WRR";
    case Policy::kLard:
      return "LARD";
    case Policy::kExtendedLard:
      return "extLARD";
  }
  return "?";
}

bool ParsePolicyName(const std::string& name, Policy* policy) {
  if (name == "wrr") {
    *policy = Policy::kWrr;
  } else if (name == "lard") {
    *policy = Policy::kLard;
  } else if (name == "extlard") {
    *policy = Policy::kExtendedLard;
  } else {
    return false;
  }
  return true;
}

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kActive:
      return "active";
    case NodeState::kDraining:
      return "draining";
    case NodeState::kDead:
      return "dead";
  }
  return "?";
}

bool MechanismAllowsPerRequestDistribution(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kRelayingFrontEnd:
    case Mechanism::kMultipleHandoff:
    case Mechanism::kBackEndForwarding:
    case Mechanism::kIdealHandoff:
      return true;
    case Mechanism::kSingleHandoff:
      return false;
  }
  return false;
}

const char* AssignmentActionName(AssignmentAction action) {
  switch (action) {
    case AssignmentAction::kServeLocal:
      return "serve-local";
    case AssignmentAction::kHandoff:
      return "handoff";
    case AssignmentAction::kForward:
      return "forward";
    case AssignmentAction::kMigrate:
      return "migrate";
    case AssignmentAction::kRelay:
      return "relay";
  }
  return "?";
}

std::string Assignment::ToString() const {
  std::string out = AssignmentActionName(action);
  out += "->node";
  out += std::to_string(node);
  if (!cache_after_miss) {
    out += " (no-cache)";
  }
  return out;
}

}  // namespace lard
