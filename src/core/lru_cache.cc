#include "src/core/lru_cache.h"

namespace lard {

bool LruCache::Touch(TargetId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  return true;
}

bool LruCache::Insert(TargetId id, uint64_t size_bytes, std::vector<TargetId>* evicted) {
  if (Touch(id)) {
    return true;
  }
  if (size_bytes > capacity_bytes_) {
    return false;
  }
  while (used_bytes_ + size_bytes > capacity_bytes_ && !entries_.empty()) {
    EvictOne(evicted);
  }
  entries_.push_front(Entry{id, size_bytes});
  index_.emplace(id, entries_.begin());
  used_bytes_ += size_bytes;
  return true;
}

void LruCache::Erase(TargetId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return;
  }
  used_bytes_ -= it->second->size_bytes;
  entries_.erase(it->second);
  index_.erase(it);
}

void LruCache::Clear() {
  entries_.clear();
  index_.clear();
  used_bytes_ = 0;
}

void LruCache::EvictOne(std::vector<TargetId>* evicted) {
  const Entry& victim = entries_.back();
  if (evicted != nullptr) {
    evicted->push_back(victim.id);
  }
  used_bytes_ -= victim.size_bytes;
  index_.erase(victim.id);
  entries_.pop_back();
}

}  // namespace lard
