#include "src/core/cost_metrics.h"

namespace lard {

double CostBalancing(double load, const LardParams& params) {
  if (load < params.l_idle) {
    return 0.0;
  }
  if (load >= params.l_overload) {
    return kInfiniteCost;
  }
  return load - params.l_idle;
}

double CostLocality(bool target_cached_at_node, const LardParams& params) {
  return target_cached_at_node ? 0.0 : params.miss_cost;
}

double CostReplacement(double load, bool target_cached_at_node, const LardParams& params) {
  if (load < params.l_idle || target_cached_at_node) {
    return 0.0;
  }
  return params.miss_cost;
}

double AggregateCost(double load, bool target_cached_at_node, const LardParams& params) {
  return CostBalancing(load, params) + CostLocality(target_cached_at_node, params) +
         CostReplacement(load, target_cached_at_node, params);
}

}  // namespace lard
