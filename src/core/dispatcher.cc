#include "src/core/dispatcher.h"

#include <algorithm>

#include "src/core/cost_metrics.h"
#include "src/util/logging.h"

namespace lard {

Dispatcher::Dispatcher(const DispatcherConfig& config, const TargetCatalog* catalog,
                       const BackendStatsProvider* stats)
    : config_(config), catalog_(catalog), stats_(stats) {
  LARD_CHECK(config_.num_nodes > 0);
  LARD_CHECK(catalog_ != nullptr);
  LARD_CHECK(stats_ != nullptr);
  for (int i = 0; i < config_.num_nodes; ++i) {
    AddNode();
  }
  // The initial membership is a given, not a control-plane event.
  counters_.nodes_added = 0;
}

NodeId Dispatcher::AddNode() {
  const NodeId node = static_cast<NodeId>(states_.size());
  load_.push_back(0.0);
  vcaches_.emplace_back(config_.virtual_cache_bytes);
  states_.push_back(NodeState::kActive);
  handled_counts_.push_back(0);
  load_gauges_.push_back(
      config_.metrics == nullptr
          ? nullptr
          : config_.metrics->Gauge(MetricsRegistry::WithNode("lard_node_load", node)));
  ++counters_.nodes_added;
  return node;
}

bool Dispatcher::DrainNode(NodeId node) {
  if (node < 0 || node >= num_node_slots() || !Assignable(node)) {
    return false;
  }
  if (active_node_count() <= 1) {
    return false;  // refuse to drain the last assignable node
  }
  states_[static_cast<size_t>(node)] = NodeState::kDraining;
  ++counters_.nodes_drained;
  return true;
}

bool Dispatcher::RemoveNode(NodeId node, std::vector<ConnId>* orphans) {
  if (node < 0 || node >= num_node_slots() || Dead(node)) {
    return false;
  }
  states_[static_cast<size_t>(node)] = NodeState::kDead;
  vcaches_[static_cast<size_t>(node)].Clear();
  ++counters_.nodes_removed;

  // Forget every connection the node was handling. Their remote fractions on
  // *other* nodes are released; the dead node's own load is simply zeroed
  // (fractions other connections parked on it die with it — ReleaseBatchLoads
  // skips dead nodes).
  std::vector<ConnId> victims;
  for (auto& [conn, state] : conns_) {
    if (state.handling == node) {
      victims.push_back(conn);
    }
  }
  for (const ConnId conn : victims) {
    ConnState& state = conns_[conn];
    state.active = false;  // the 1-unit load dies with the node's counter
    ReleaseBatchLoads(state);
    SetHandling(state, kInvalidNode);
    conns_.erase(conn);
    ++counters_.orphaned_connections;
    if (orphans != nullptr) {
      orphans->push_back(conn);
    }
  }
  load_[static_cast<size_t>(node)] = 0.0;
  if (load_gauges_[static_cast<size_t>(node)] != nullptr) {
    load_gauges_[static_cast<size_t>(node)]->Set(0.0);
  }
  return true;
}

NodeId Dispatcher::ReassignConnection(ConnId conn, const std::vector<TargetId>& pending_targets) {
  auto it = conns_.find(conn);
  if (it == conns_.end() || active_node_count() == 0) {
    return kInvalidNode;
  }
  ConnState& conn_state = it->second;
  const NodeId old_node = conn_state.handling;

  // Place like a fresh connection: cache affinity on the first pending target
  // when there is one, least-loaded WRR otherwise.
  TargetId affinity = kInvalidTarget;
  for (const TargetId target : pending_targets) {
    if (target != kInvalidTarget) {
      affinity = target;
      break;
    }
  }
  const NodeId new_node = affinity != kInvalidTarget ? PickFirstNode(affinity) : PickWrr();
  if (new_node == kInvalidNode) {
    return kInvalidNode;
  }

  if (new_node != old_node && conn_state.active) {
    if (old_node != kInvalidNode && !Dead(old_node)) {
      AddLoad(old_node, -1.0);
    }
    AddLoad(new_node, 1.0);
  }
  SetHandling(conn_state, new_node);

  // Seed the new node's model: the targets this connection is about to fetch
  // there will be resident once served.
  for (const TargetId target : pending_targets) {
    if (target == kInvalidTarget) {
      continue;
    }
    LruCache& cache = vcaches_[static_cast<size_t>(new_node)];
    if (!cache.Touch(target)) {
      cache.Insert(target, SizeOf(target));
    }
  }
  ++counters_.reassignments;
  return new_node;
}

void Dispatcher::SetPolicy(Policy policy) { config_.policy = policy; }

int Dispatcher::active_node_count() const {
  int count = 0;
  for (const NodeState state : states_) {
    if (state == NodeState::kActive) {
      ++count;
    }
  }
  return count;
}

NodeState Dispatcher::node_state(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return states_[static_cast<size_t>(node)];
}

void Dispatcher::SetHandling(ConnState& conn_state, NodeId node) {
  if (conn_state.handling != kInvalidNode) {
    uint64_t& count = handled_counts_[static_cast<size_t>(conn_state.handling)];
    LARD_CHECK(count > 0) << "handled-connection count underflow";
    --count;
  }
  if (node != kInvalidNode) {
    ++handled_counts_[static_cast<size_t>(node)];
  }
  conn_state.handling = node;
}

void Dispatcher::AddLoad(NodeId node, double delta) {
  double& load = load_[static_cast<size_t>(node)];
  load += delta;
  if (load > -1e-9 && load < 1e-9) {
    load = 0.0;  // scrub float dust (fractional releases don't cancel exactly)
  }
  if (load_gauges_[static_cast<size_t>(node)] != nullptr) {
    load_gauges_[static_cast<size_t>(node)]->Set(load);
  }
}

void Dispatcher::OnConnectionOpen(ConnId conn) {
  auto [it, inserted] = conns_.emplace(conn, ConnState{});
  LARD_CHECK(inserted) << "duplicate connection id " << conn;
  ++counters_.connections;
  (void)it;
}

std::vector<Assignment> Dispatcher::OnBatch(ConnId conn, const std::vector<TargetId>& targets) {
  auto it = conns_.find(conn);
  LARD_CHECK(it != conns_.end()) << "OnBatch for unknown connection " << conn;
  ConnState& conn_state = it->second;

  // A new batch implies the previous batch has been served ("the front-end
  // assumes that all previous requests have finished once a new batch of
  // requests arrives on the same connection").
  ReleaseBatchLoads(conn_state);

  std::vector<Assignment> assignments;
  assignments.reserve(targets.size());
  const double fraction = targets.empty() ? 0.0
                          : config_.params.fractional_batch_load
                              ? 1.0 / static_cast<double>(targets.size())
                              : 1.0;
  conn_state.remote_fraction = fraction;

  for (const TargetId target : targets) {
    ++counters_.requests;
    Assignment assignment;

    if (target == kInvalidTarget) {
      // Path outside the catalog (will 404): load-balance it, skip all cache
      // modeling.
      if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
        assignment.action = AssignmentAction::kRelay;
        assignment.node = PickWrr();
        ++counters_.relays;
        AddLoad(assignment.node, fraction);
        conn_state.remote_nodes.push_back(assignment.node);
      } else if (conn_state.handling == kInvalidNode) {
        assignment.action = AssignmentAction::kHandoff;
        assignment.node = PickWrr();
        SetHandling(conn_state, assignment.node);
        ++counters_.handoffs;
      } else {
        assignment.node = conn_state.handling;
        ++counters_.local_serves;
      }
      assignments.push_back(assignment);
      continue;
    }

    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      // No handoff ever: the FE relays each request to a per-request choice.
      assignment.action = AssignmentAction::kRelay;
      assignment.node =
          config_.policy == Policy::kWrr ? PickWrr() : PickBasicLard(target);
      assignment.served_from_cache = Cached(assignment.node, target);
      ++counters_.relays;
      AddLoad(assignment.node, fraction);
      conn_state.remote_nodes.push_back(assignment.node);
    } else if (conn_state.handling == kInvalidNode) {
      // First request of the connection: the handoff decision.
      assignment.action = AssignmentAction::kHandoff;
      assignment.node = PickFirstNode(target);
      assignment.served_from_cache = Cached(assignment.node, target);
      SetHandling(conn_state, assignment.node);
      ++counters_.handoffs;
    } else {
      assignment = DecideSubsequent(conn_state, target);
    }

    ApplyCacheEffects(target, assignment);
    assignments.push_back(assignment);
  }

  // The connection-handling node carries one load unit while the batch is in
  // service.
  if (conn_state.handling != kInvalidNode && !conn_state.active && !targets.empty()) {
    conn_state.active = true;
    AddLoad(conn_state.handling, 1.0);
  }
  return assignments;
}

Assignment Dispatcher::DecideSubsequent(ConnState& conn_state, TargetId target) {
  const NodeId handling = conn_state.handling;
  Assignment assignment;
  assignment.node = handling;
  assignment.action = AssignmentAction::kServeLocal;

  const bool per_request_allowed = config_.policy == Policy::kExtendedLard &&
                                   MechanismAllowsPerRequestDistribution(config_.mechanism);
  if (!per_request_allowed) {
    // WRR, basic LARD, or a single-handoff mechanism: stuck on the handling
    // node no matter what.
    assignment.served_from_cache = Cached(handling, target);
    ++counters_.local_serves;
    return assignment;
  }

  // Extended LARD, Section 4.2.
  if (Cached(handling, target)) {
    assignment.served_from_cache = true;
    ++counters_.local_serves;
    return assignment;
  }
  if (stats_->DiskQueueLength(handling) < config_.params.low_disk_queue_threshold) {
    // Local disk is idle enough: read locally, avoid forwarding overhead, and
    // cache the result (disk not thrashing => there is room to cache).
    ++counters_.local_serves;
    return assignment;
  }

  // Local disk is busy: consider the handling node and every *assignable*
  // node that currently caches the target (forwards are new work — draining
  // and dead nodes take none); pick the minimum aggregate cost.
  NodeId best = handling;
  double best_cost = AggregateCost(load_[handling], /*target_cached_at_node=*/false,
                                   config_.params);
  bool any_remote_candidate = false;
  for (NodeId node = 0; node < num_node_slots(); ++node) {
    if (node == handling || !Assignable(node) || !Cached(node, target)) {
      continue;
    }
    any_remote_candidate = true;
    const double cost = AggregateCost(load_[node], /*target_cached_at_node=*/true,
                                      config_.params);
    if (cost < best_cost || (cost == best_cost && load_[node] < load_[best])) {
      best = node;
      best_cost = cost;
    }
  }
  if (!any_remote_candidate) {
    // Cached nowhere: this is a first placement, not replication — cache it
    // (the no-cache heuristic exists to bound *replication*; never caching a
    // cold target would freeze the cluster in its cold state).
    ++counters_.local_serves;
    return assignment;
  }
  if (best_cost == kInfiniteCost) {
    // Everything (including the handling node) is past L_overload; fall back
    // to the least-loaded candidate to stay work-conserving.
    for (NodeId node = 0; node < num_node_slots(); ++node) {
      const bool candidate =
          node == handling || (Assignable(node) && Cached(node, target));
      if (candidate && load_[node] < load_[best]) {
        best = node;
      }
    }
  }

  if (best == handling) {
    // Serve locally from a busy disk; do NOT cache (the heuristic: a busy
    // disk means the main-memory cache is already thrashing, and another
    // node holds a copy already).
    if (config_.params.no_cache_when_busy) {
      assignment.cache_after_miss = false;
      ++counters_.served_without_caching;
    }
    ++counters_.local_serves;
    return assignment;
  }

  assignment.node = best;
  assignment.served_from_cache = true;  // `best` was a candidate because it caches the target
  if (config_.mechanism == Mechanism::kBackEndForwarding) {
    assignment.action = AssignmentAction::kForward;
    ++counters_.forwards;
    // Remote node carries 1/N for the batch service time.
    AddLoad(best, conn_state.remote_fraction);
    conn_state.remote_nodes.push_back(best);
  } else {
    // Multiple handoff (or the zero-cost ideal): the connection itself moves.
    assignment.action = AssignmentAction::kMigrate;
    ++counters_.migrations;
    if (conn_state.active) {
      AddLoad(conn_state.handling, -1.0);
      AddLoad(best, 1.0);
    }
    SetHandling(conn_state, best);
  }
  return assignment;
}

NodeId Dispatcher::PickFirstNode(TargetId target) {
  return config_.policy == Policy::kWrr ? PickWrr() : PickBasicLard(target);
}

NodeId Dispatcher::PickWrr() {
  // Weighted round-robin with equal-speed nodes and load feedback: choose the
  // least-loaded assignable node, breaking ties in round-robin order so an
  // idle cluster still rotates.
  NodeId best = kInvalidNode;
  double best_load = kInfiniteCost;
  const size_t n = static_cast<size_t>(num_node_slots());
  for (size_t k = 0; k < n; ++k) {
    const NodeId node = static_cast<NodeId>((rr_cursor_ + k) % n);
    if (Assignable(node) && load_[node] < best_load) {
      best = node;
      best_load = load_[node];
    }
  }
  LARD_CHECK(best != kInvalidNode) << "no assignable node (all drained or dead)";
  rr_cursor_ = (static_cast<size_t>(best) + 1) % n;
  return best;
}

NodeId Dispatcher::PickBasicLard(TargetId target) {
  // Basic LARD in its Fig. 4 cost form: evaluate every assignable node,
  // assign to the minimum aggregate cost. Ties prefer a node that caches the
  // target, then the lower load. Remaining full ties (e.g. a cold target on
  // an idle cluster) rotate round-robin so initial placements spread — the
  // cost form is otherwise indifferent and piling cold targets onto node 0
  // would defeat the partitioning.
  NodeId best = kInvalidNode;
  double best_cost = kInfiniteCost;
  bool best_cached = false;
  const size_t n = static_cast<size_t>(num_node_slots());
  for (size_t k = 0; k < n; ++k) {
    const NodeId node = static_cast<NodeId>((rr_cursor_ + k) % n);
    if (!Assignable(node)) {
      continue;
    }
    const bool cached = Cached(node, target);
    const double cost = AggregateCost(load_[node], cached, config_.params);
    const bool better =
        best == kInvalidNode || cost < best_cost ||
        (cost == best_cost && (cached && !best_cached)) ||
        (cost == best_cost && cached == best_cached && load_[node] < load_[best]);
    if (better) {
      best = node;
      best_cost = cost;
      best_cached = cached;
    }
  }
  LARD_CHECK(best != kInvalidNode) << "no assignable node (all drained or dead)";
  if (best_cost == kInfiniteCost) {
    for (NodeId node = 0; node < num_node_slots(); ++node) {
      if (Assignable(node) && load_[node] < load_[best]) {
        best = node;
      }
    }
  }
  if (!best_cached) {
    rr_cursor_ = (static_cast<size_t>(best) + 1) % n;
  }
  return best;
}

void Dispatcher::ApplyCacheEffects(TargetId target, const Assignment& assignment) {
  // The dispatcher updates its model of back-end cache contents "each time a
  // target is fetched from a backend node". The serving node ends up with the
  // target resident (MRU) — except when extended LARD decided not to cache on
  // a thrashing node.
  LruCache& cache = vcaches_[assignment.node];
  if (cache.Touch(target)) {
    return;
  }
  if (assignment.cache_after_miss) {
    cache.Insert(target, SizeOf(target));
  }
}

void Dispatcher::ReleaseBatchLoads(ConnState& conn_state) {
  for (const NodeId node : conn_state.remote_nodes) {
    if (Dead(node)) {
      continue;  // its load was zeroed wholesale at removal
    }
    AddLoad(node, -conn_state.remote_fraction);
  }
  conn_state.remote_nodes.clear();
}

void Dispatcher::OnConnectionIdle(ConnId conn) {
  auto it = conns_.find(conn);
  LARD_CHECK(it != conns_.end()) << "OnConnectionIdle for unknown connection " << conn;
  ConnState& conn_state = it->second;
  ReleaseBatchLoads(conn_state);
  if (conn_state.active) {
    conn_state.active = false;
    if (!Dead(conn_state.handling)) {
      AddLoad(conn_state.handling, -1.0);
    }
  }
}

void Dispatcher::OnConnectionClose(ConnId conn) {
  auto it = conns_.find(conn);
  LARD_CHECK(it != conns_.end()) << "OnConnectionClose for unknown connection " << conn;
  OnConnectionIdle(conn);
  SetHandling(it->second, kInvalidNode);
  conns_.erase(conn);
}

double Dispatcher::NodeLoad(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return load_[node];
}

NodeId Dispatcher::HandlingNode(ConnId conn) const {
  auto it = conns_.find(conn);
  return it == conns_.end() ? kInvalidNode : it->second.handling;
}

size_t Dispatcher::ConnectionCountOn(NodeId node) const {
  if (node < 0 || node >= num_node_slots()) {
    return 0;
  }
  return static_cast<size_t>(handled_counts_[static_cast<size_t>(node)]);
}

bool Dispatcher::TargetCachedAt(NodeId node, TargetId target) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return vcaches_[node].Contains(target);
}

uint64_t Dispatcher::VirtualCacheBytes(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return vcaches_[node].used_bytes();
}

}  // namespace lard
