#include "src/core/dispatcher.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace lard {

Dispatcher::Dispatcher(const DispatcherConfig& config, const TargetCatalog* catalog,
                       const BackendStatsProvider* stats)
    : config_(config), catalog_(catalog), stats_(stats) {
  // 0 initial nodes is legal: a front-end joining an established tier at
  // runtime starts empty and registers every slot via AddNode/BurnNodeSlot.
  LARD_CHECK(config_.num_nodes >= 0);
  LARD_CHECK(catalog_ != nullptr);
  LARD_CHECK(stats_ != nullptr);
  const std::string initial_policy =
      config_.policy_name.empty() ? PolicyKey(config_.policy) : config_.policy_name;
  policy_ = PolicyRegistry::Global().Create(initial_policy);
  LARD_CHECK(policy_ != nullptr) << "unknown routing policy '" << initial_policy
                                 << "' (registered: "
                                 << PolicyRegistry::Global().NamesCsv() << ")";
  (void)ParsePolicyName(initial_policy, &config_.policy);  // keep the enum in sync for built-ins
  for (int i = 0; i < config_.num_nodes; ++i) {
    const double weight = static_cast<size_t>(i) < config_.node_weights.size()
                              ? config_.node_weights[static_cast<size_t>(i)]
                              : 1.0;
    AddNode(weight);
  }
  // The initial membership is a given, not a control-plane event.
  counters_.nodes_added = 0;
  membership_epoch_ = 0;
}

DispatcherView Dispatcher::View() const {
  return DispatcherView(&load_, &weights_, &states_, &vcaches_, stats_, &config_.params,
                        config_.mechanism, config_.remote_loads);
}

NodeId Dispatcher::AddNode(double weight) {
  LARD_CHECK(IsValidCapacityWeight(weight))
      << "node weight must be positive and finite, got " << weight;
  const NodeId node = static_cast<NodeId>(states_.size());
  load_.push_back(0.0);
  weights_.push_back(weight);
  vcaches_.emplace_back(config_.virtual_cache_bytes);
  states_.push_back(NodeState::kActive);
  handled_counts_.push_back(0);
  load_gauges_.push_back(
      config_.metrics == nullptr
          ? nullptr
          : config_.metrics->Gauge(MetricsRegistry::WithNode("lard_node_load", node)));
  ++counters_.nodes_added;
  ++membership_epoch_;
  return node;
}

bool Dispatcher::DrainNode(NodeId node) {
  if (node < 0 || node >= num_node_slots() || !Assignable(node)) {
    return false;
  }
  if (active_node_count() <= 1) {
    return false;  // refuse to drain the last assignable node
  }
  states_[static_cast<size_t>(node)] = NodeState::kDraining;
  ++counters_.nodes_drained;
  ++membership_epoch_;
  return true;
}

bool Dispatcher::RemoveNode(NodeId node, std::vector<ConnId>* orphans) {
  if (node < 0 || node >= num_node_slots() || Dead(node)) {
    return false;
  }
  states_[static_cast<size_t>(node)] = NodeState::kDead;
  vcaches_[static_cast<size_t>(node)].Clear();
  ++counters_.nodes_removed;
  ++membership_epoch_;

  // Forget every connection the node was handling. Their remote fractions on
  // *other* nodes are released; the dead node's own load is simply zeroed
  // (fractions other connections parked on it die with it — ReleaseBatchLoads
  // skips dead nodes).
  std::vector<ConnId> victims;
  for (auto& [conn, state] : conns_) {
    if (state.handling == node) {
      victims.push_back(conn);
    }
  }
  for (const ConnId conn : victims) {
    ConnState& state = conns_[conn];
    state.active = false;  // the 1-unit load dies with the node's counter
    ReleaseBatchLoads(state);
    SetHandling(state, kInvalidNode);
    conns_.erase(conn);
    ++counters_.orphaned_connections;
    if (orphans != nullptr) {
      orphans->push_back(conn);
    }
  }
  load_[static_cast<size_t>(node)] = 0.0;
  if (load_gauges_[static_cast<size_t>(node)] != nullptr) {
    load_gauges_[static_cast<size_t>(node)]->Set(0.0);
  }
  return true;
}

NodeId Dispatcher::ReassignConnection(ConnId conn, const std::vector<TargetId>& pending_targets,
                                      ReassignReason reason) {
  auto it = conns_.find(conn);
  if (it == conns_.end() || active_node_count() == 0) {
    return kInvalidNode;
  }
  ConnState& conn_state = it->second;
  const NodeId old_node = conn_state.handling;

  // Place like a fresh connection: cache affinity on the first pending target
  // when there is one, a pure load-balance pick otherwise.
  TargetId affinity = kInvalidTarget;
  for (const TargetId target : pending_targets) {
    if (target != kInvalidTarget) {
      affinity = target;
      break;
    }
  }
  const DispatcherView view = View();
  const NodeId new_node = affinity != kInvalidTarget
                              ? policy_->PickFirstNode(view, policy_state_, affinity)
                              : policy_->PickLoadBalanced(view, policy_state_);
  if (new_node == kInvalidNode) {
    return kInvalidNode;
  }

  if (new_node != old_node && conn_state.active) {
    if (old_node != kInvalidNode && !Dead(old_node)) {
      AddLoad(old_node, -1.0);
    }
    AddLoad(new_node, 1.0);
  }
  SetHandling(conn_state, new_node);

  // Seed the new node's model: the targets this connection is about to fetch
  // there will be resident once served.
  for (const TargetId target : pending_targets) {
    if (target == kInvalidTarget) {
      continue;
    }
    LruCache& cache = vcaches_[static_cast<size_t>(new_node)];
    if (!cache.Touch(target)) {
      cache.Insert(target, SizeOf(target));
    }
  }
  ++counters_.reassignments;
  if (reason == ReassignReason::kFailure) {
    ++counters_.failure_reassignments;
  }
  return new_node;
}

void Dispatcher::NoteRemoteFetch(NodeId node, TargetId target) {
  if (node < 0 || node >= num_node_slots() || Dead(node) || target == kInvalidTarget) {
    return;
  }
  LruCache& cache = vcaches_[static_cast<size_t>(node)];
  if (!cache.Touch(target)) {
    cache.Insert(target, SizeOf(target));
  }
}

void Dispatcher::SetPolicy(Policy policy) {
  LARD_CHECK(SetPolicyByName(PolicyKey(policy)));
}

bool Dispatcher::SetPolicyByName(const std::string& name) {
  if (name == policy_->name()) {
    return true;  // idempotent: keep stateful policies' accumulated state
                  // (e.g. LARD/R replica sets) on a re-post of the same name
  }
  std::unique_ptr<RoutingPolicy> fresh = PolicyRegistry::Global().Create(name);
  if (fresh == nullptr) {
    return false;
  }
  policy_ = std::move(fresh);
  // Keep the enum shorthand coherent for built-ins; plugin policies leave it
  // at its last value (policy() is the authoritative answer either way).
  (void)ParsePolicyName(name, &config_.policy);
  config_.policy_name = name;
  return true;
}

int Dispatcher::active_node_count() const {
  int count = 0;
  for (const NodeState state : states_) {
    if (state == NodeState::kActive) {
      ++count;
    }
  }
  return count;
}

NodeState Dispatcher::node_state(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return states_[static_cast<size_t>(node)];
}

void Dispatcher::SetHandling(ConnState& conn_state, NodeId node) {
  if (conn_state.handling != kInvalidNode) {
    uint64_t& count = handled_counts_[static_cast<size_t>(conn_state.handling)];
    LARD_CHECK(count > 0) << "handled-connection count underflow";
    --count;
  }
  if (node != kInvalidNode) {
    ++handled_counts_[static_cast<size_t>(node)];
  }
  conn_state.handling = node;
}

void Dispatcher::AddLoad(NodeId node, double delta) {
  double& load = load_[static_cast<size_t>(node)];
  load += delta;
  if (load > -1e-9 && load < 1e-9) {
    load = 0.0;  // scrub float dust (fractional releases don't cancel exactly)
  }
  if (load_gauges_[static_cast<size_t>(node)] != nullptr) {
    load_gauges_[static_cast<size_t>(node)]->Set(load);
  }
}

void Dispatcher::OnConnectionOpen(ConnId conn) {
  auto [it, inserted] = conns_.emplace(conn, ConnState{});
  LARD_CHECK(inserted) << "duplicate connection id " << conn;
  ++counters_.connections;
  (void)it;
}

std::vector<Assignment> Dispatcher::OnBatch(ConnId conn, const std::vector<TargetId>& targets) {
  auto it = conns_.find(conn);
  LARD_CHECK(it != conns_.end()) << "OnBatch for unknown connection " << conn;
  ConnState& conn_state = it->second;

  // A new batch implies the previous batch has been served ("the front-end
  // assumes that all previous requests have finished once a new batch of
  // requests arrives on the same connection").
  ReleaseBatchLoads(conn_state);

  std::vector<Assignment> assignments;
  assignments.reserve(targets.size());
  const double fraction = targets.empty() ? 0.0
                          : config_.params.fractional_batch_load
                              ? 1.0 / static_cast<double>(targets.size())
                              : 1.0;
  conn_state.remote_fraction = fraction;

  for (const TargetId target : targets) {
    ++counters_.requests;
    Assignment assignment;

    if (target == kInvalidTarget) {
      // Path outside the catalog (will 404): load-balance it, skip all cache
      // modeling.
      if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
        assignment.action = AssignmentAction::kRelay;
        assignment.node = policy_->PickLoadBalanced(View(), policy_state_);
        ++counters_.relays;
        AddLoad(assignment.node, fraction);
        conn_state.remote_nodes.push_back(assignment.node);
      } else if (conn_state.handling == kInvalidNode) {
        assignment.action = AssignmentAction::kHandoff;
        assignment.node = policy_->PickLoadBalanced(View(), policy_state_);
        SetHandling(conn_state, assignment.node);
        ++counters_.handoffs;
      } else {
        assignment.node = conn_state.handling;
        ++counters_.local_serves;
      }
      assignments.push_back(assignment);
      continue;
    }

    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      // No handoff ever: the FE relays each request to a per-request choice.
      assignment.action = AssignmentAction::kRelay;
      assignment.node = policy_->PickPerRequest(View(), policy_state_, target);
      assignment.served_from_cache = Cached(assignment.node, target);
      ++counters_.relays;
      AddLoad(assignment.node, fraction);
      conn_state.remote_nodes.push_back(assignment.node);
    } else if (conn_state.handling == kInvalidNode) {
      // First request of the connection: the handoff decision.
      assignment.action = AssignmentAction::kHandoff;
      assignment.node = policy_->PickFirstNode(View(), policy_state_, target);
      assignment.served_from_cache = Cached(assignment.node, target);
      SetHandling(conn_state, assignment.node);
      ++counters_.handoffs;
    } else {
      // Subsequent pipelined request: per-request distribution only when the
      // policy wants it AND the mechanism supports it; otherwise the
      // connection is pinned to its handling node.
      SubsequentDecision decision;
      decision.node = conn_state.handling;
      if (policy_->per_request_distribution() &&
          MechanismAllowsPerRequestDistribution(config_.mechanism)) {
        decision = policy_->DecideSubsequent(View(), policy_state_, conn_state.handling, target);
      }
      assignment = ApplySubsequent(conn_state, target, decision);
    }

    ApplyCacheEffects(target, assignment);
    assignments.push_back(assignment);
  }

  // The connection-handling node carries one load unit while the batch is in
  // service.
  if (conn_state.handling != kInvalidNode && !conn_state.active && !targets.empty()) {
    conn_state.active = true;
    AddLoad(conn_state.handling, 1.0);
  }
  return assignments;
}

Assignment Dispatcher::ApplySubsequent(ConnState& conn_state, TargetId target,
                                       const SubsequentDecision& decision) {
  const NodeId handling = conn_state.handling;
  Assignment assignment;
  assignment.node = decision.node;
  assignment.cache_after_miss = decision.cache_after_miss;
  // The model's cache verdict falls out of the chosen node: a remote pick was
  // chosen *because* it caches the target; a local serve hits iff the
  // handling node's virtual cache holds it.
  assignment.served_from_cache = Cached(decision.node, target);

  if (decision.node == handling) {
    assignment.action = AssignmentAction::kServeLocal;
    ++counters_.local_serves;
    if (!decision.cache_after_miss) {
      ++counters_.served_without_caching;
    }
    return assignment;
  }

  if (config_.mechanism == Mechanism::kBackEndForwarding) {
    assignment.action = AssignmentAction::kForward;
    ++counters_.forwards;
    // Remote node carries 1/N for the batch service time.
    AddLoad(decision.node, conn_state.remote_fraction);
    conn_state.remote_nodes.push_back(decision.node);
  } else {
    // Multiple handoff (or the zero-cost ideal): the connection itself moves.
    assignment.action = AssignmentAction::kMigrate;
    ++counters_.migrations;
    if (conn_state.active) {
      AddLoad(conn_state.handling, -1.0);
      AddLoad(decision.node, 1.0);
    }
    SetHandling(conn_state, decision.node);
  }
  return assignment;
}

void Dispatcher::ApplyCacheEffects(TargetId target, const Assignment& assignment) {
  // The dispatcher updates its model of back-end cache contents "each time a
  // target is fetched from a backend node". The serving node ends up with the
  // target resident (MRU) — except when extended LARD decided not to cache on
  // a thrashing node.
  LruCache& cache = vcaches_[assignment.node];
  if (cache.Touch(target)) {
    return;
  }
  if (assignment.cache_after_miss) {
    cache.Insert(target, SizeOf(target));
  }
}

void Dispatcher::ReleaseBatchLoads(ConnState& conn_state) {
  for (const NodeId node : conn_state.remote_nodes) {
    if (Dead(node)) {
      continue;  // its load was zeroed wholesale at removal
    }
    AddLoad(node, -conn_state.remote_fraction);
  }
  conn_state.remote_nodes.clear();
}

void Dispatcher::OnConnectionIdle(ConnId conn) {
  auto it = conns_.find(conn);
  LARD_CHECK(it != conns_.end()) << "OnConnectionIdle for unknown connection " << conn;
  ConnState& conn_state = it->second;
  ReleaseBatchLoads(conn_state);
  if (conn_state.active) {
    conn_state.active = false;
    if (!Dead(conn_state.handling)) {
      AddLoad(conn_state.handling, -1.0);
    }
  }
}

void Dispatcher::OnConnectionClose(ConnId conn) {
  auto it = conns_.find(conn);
  LARD_CHECK(it != conns_.end()) << "OnConnectionClose for unknown connection " << conn;
  OnConnectionIdle(conn);
  SetHandling(it->second, kInvalidNode);
  conns_.erase(conn);
}

double Dispatcher::NodeLoad(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return load_[node];
}

double Dispatcher::NodeWeight(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return weights_[static_cast<size_t>(node)];
}

double Dispatcher::NormalizedNodeLoad(NodeId node) const {
  return NodeLoad(node) / NodeWeight(node);
}

NodeId Dispatcher::HandlingNode(ConnId conn) const {
  auto it = conns_.find(conn);
  return it == conns_.end() ? kInvalidNode : it->second.handling;
}

std::string Dispatcher::DescribeLoads(int max_nodes) const {
  std::string out;
  int listed = 0;
  for (NodeId node = 0; node < num_node_slots(); ++node) {
    if (!Assignable(node)) {
      continue;
    }
    if (listed == max_nodes) {
      out += "+";
      break;
    }
    char entry[32];
    std::snprintf(entry, sizeof(entry), "%s%d:%.2f", listed == 0 ? "" : ",", node,
                  NormalizedNodeLoad(node) + RemoteNodeLoad(node) / NodeWeight(node));
    out += entry;
    ++listed;
  }
  return out;
}

size_t Dispatcher::ConnectionCountOn(NodeId node) const {
  if (node < 0 || node >= num_node_slots()) {
    return 0;
  }
  return static_cast<size_t>(handled_counts_[static_cast<size_t>(node)]);
}

bool Dispatcher::TargetCachedAt(NodeId node, TargetId target) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return vcaches_[node].Contains(target);
}

uint64_t Dispatcher::VirtualCacheBytes(NodeId node) const {
  LARD_CHECK(node >= 0 && node < num_node_slots());
  return vcaches_[node].used_bytes();
}

}  // namespace lard
