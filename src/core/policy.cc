#include "src/core/policy.h"

#include <algorithm>
#include <unordered_map>

#include "src/core/cost_metrics.h"
#include "src/util/logging.h"

namespace lard {
namespace {

// The load a pick compares: raw connection units, or units per capacity
// weight. With every weight at 1.0 the division is exact and the two modes
// produce bit-identical decisions.
inline double PickLoad(const DispatcherView& view, NodeId node, bool weighted) {
  return weighted ? view.NormalizedLoad(node) : view.Load(node);
}

}  // namespace

NodeId WrrPick(const DispatcherView& view, PolicyState& state, bool weighted) {
  // Weighted round-robin with load feedback: choose the least-loaded
  // assignable node, breaking ties in round-robin order so an idle cluster
  // still rotates. (With capacity weights, "least loaded" means least load
  // per unit of capacity, so a 2x node absorbs 2x the connections before
  // looking equally busy.)
  NodeId best = kInvalidNode;
  double best_load = kInfiniteCost;
  const size_t n = static_cast<size_t>(view.num_node_slots());
  for (size_t k = 0; k < n; ++k) {
    const NodeId node = static_cast<NodeId>((state.rr_cursor + k) % n);
    if (view.Assignable(node) && PickLoad(view, node, weighted) < best_load) {
      best = node;
      best_load = PickLoad(view, node, weighted);
    }
  }
  LARD_CHECK(best != kInvalidNode) << "no assignable node (all drained or dead)";
  state.rr_cursor = (static_cast<size_t>(best) + 1) % n;
  return best;
}

NodeId LardPick(const DispatcherView& view, PolicyState& state, TargetId target, bool weighted) {
  // Basic LARD in its Fig. 4 cost form: evaluate every assignable node,
  // assign to the minimum aggregate cost. Ties prefer a node that caches the
  // target, then the lower load. Remaining full ties (e.g. a cold target on
  // an idle cluster) rotate round-robin so initial placements spread — the
  // cost form is otherwise indifferent and piling cold targets onto node 0
  // would defeat the partitioning.
  NodeId best = kInvalidNode;
  double best_cost = kInfiniteCost;
  bool best_cached = false;
  const size_t n = static_cast<size_t>(view.num_node_slots());
  for (size_t k = 0; k < n; ++k) {
    const NodeId node = static_cast<NodeId>((state.rr_cursor + k) % n);
    if (!view.Assignable(node)) {
      continue;
    }
    const bool cached = view.Cached(node, target);
    const double cost = AggregateCost(PickLoad(view, node, weighted), cached, view.params());
    const bool better =
        best == kInvalidNode || cost < best_cost ||
        (cost == best_cost && (cached && !best_cached)) ||
        (cost == best_cost && cached == best_cached &&
         PickLoad(view, node, weighted) < PickLoad(view, best, weighted));
    if (better) {
      best = node;
      best_cost = cost;
      best_cached = cached;
    }
  }
  LARD_CHECK(best != kInvalidNode) << "no assignable node (all drained or dead)";
  if (best_cost == kInfiniteCost) {
    for (NodeId node = 0; node < view.num_node_slots(); ++node) {
      if (view.Assignable(node) &&
          PickLoad(view, node, weighted) < PickLoad(view, best, weighted)) {
        best = node;
      }
    }
  }
  if (!best_cached) {
    state.rr_cursor = (static_cast<size_t>(best) + 1) % n;
  }
  return best;
}

SubsequentDecision ExtLardDecide(const DispatcherView& view, NodeId handling, TargetId target,
                                 bool weighted) {
  // Extended LARD, Section 4.2.
  SubsequentDecision decision;
  decision.node = handling;

  if (view.Cached(handling, target)) {
    return decision;
  }
  if (view.DiskQueueLength(handling) < view.params().low_disk_queue_threshold) {
    // Local disk is idle enough: read locally, avoid forwarding overhead, and
    // cache the result (disk not thrashing => there is room to cache).
    return decision;
  }

  // Local disk is busy: consider the handling node and every *assignable*
  // node that currently caches the target (forwards are new work — draining
  // and dead nodes take none); pick the minimum aggregate cost.
  NodeId best = handling;
  double best_cost = AggregateCost(PickLoad(view, handling, weighted),
                                   /*target_cached_at_node=*/false, view.params());
  bool any_remote_candidate = false;
  for (NodeId node = 0; node < view.num_node_slots(); ++node) {
    if (node == handling || !view.Assignable(node) || !view.Cached(node, target)) {
      continue;
    }
    any_remote_candidate = true;
    const double cost = AggregateCost(PickLoad(view, node, weighted),
                                      /*target_cached_at_node=*/true, view.params());
    if (cost < best_cost ||
        (cost == best_cost && PickLoad(view, node, weighted) < PickLoad(view, best, weighted))) {
      best = node;
      best_cost = cost;
    }
  }
  if (!any_remote_candidate) {
    // Cached nowhere: this is a first placement, not replication — cache it
    // (the no-cache heuristic exists to bound *replication*; never caching a
    // cold target would freeze the cluster in its cold state).
    return decision;
  }
  if (best_cost == kInfiniteCost) {
    // Everything (including the handling node) is past L_overload; fall back
    // to the least-loaded candidate to stay work-conserving.
    for (NodeId node = 0; node < view.num_node_slots(); ++node) {
      const bool candidate =
          node == handling || (view.Assignable(node) && view.Cached(node, target));
      if (candidate &&
          PickLoad(view, node, weighted) < PickLoad(view, best, weighted)) {
        best = node;
      }
    }
  }

  if (best == handling) {
    // Serve locally from a busy disk; do NOT cache (the heuristic: a busy
    // disk means the main-memory cache is already thrashing, and another
    // node holds a copy already).
    if (view.params().no_cache_when_busy) {
      decision.cache_after_miss = false;
    }
    return decision;
  }
  decision.node = best;
  return decision;
}

NodeId RoutingPolicy::PickLoadBalanced(const DispatcherView& view, PolicyState& state) {
  return WrrPick(view, state, /*weighted=*/false);
}

SubsequentDecision RoutingPolicy::DecideSubsequent(const DispatcherView&, PolicyState&,
                                                   NodeId handling, TargetId) {
  SubsequentDecision decision;
  decision.node = handling;
  return decision;
}

namespace {

// --- Built-in policies ---

class WrrPolicy final : public RoutingPolicy {
 public:
  const char* name() const override { return "wrr"; }
  const char* display_name() const override { return "WRR"; }
  NodeId PickFirstNode(const DispatcherView& view, PolicyState& state, TargetId) override {
    return WrrPick(view, state, /*weighted=*/false);
  }
};

class LardPolicy final : public RoutingPolicy {
 public:
  const char* name() const override { return "lard"; }
  const char* display_name() const override { return "LARD"; }
  NodeId PickFirstNode(const DispatcherView& view, PolicyState& state, TargetId target) override {
    return LardPick(view, state, target, /*weighted=*/false);
  }
};

class ExtendedLardPolicy final : public RoutingPolicy {
 public:
  const char* name() const override { return "extlard"; }
  const char* display_name() const override { return "extLARD"; }
  bool per_request_distribution() const override { return true; }
  NodeId PickFirstNode(const DispatcherView& view, PolicyState& state, TargetId target) override {
    return LardPick(view, state, target, /*weighted=*/false);
  }
  SubsequentDecision DecideSubsequent(const DispatcherView& view, PolicyState&, NodeId handling,
                                      TargetId target) override {
    return ExtLardDecide(view, handling, target, /*weighted=*/false);
  }
};

// Extended LARD for heterogeneous clusters: every load comparison — the WRR
// fallback, the Fig. 4 cost metrics, the busy-disk forwarding choice — uses
// load normalized by the node's capacity weight, so a 2x-speed node absorbs
// 2x the connections before the balancing cost treats it as equally busy.
// With all weights at 1.0 this is decision-for-decision identical to
// "extlard" (regression-checked in tests/policy_test.cc).
class WeightedExtendedLardPolicy final : public RoutingPolicy {
 public:
  const char* name() const override { return "wextlard"; }
  const char* display_name() const override { return "wextLARD"; }
  bool per_request_distribution() const override { return true; }
  NodeId PickFirstNode(const DispatcherView& view, PolicyState& state, TargetId target) override {
    return LardPick(view, state, target, /*weighted=*/true);
  }
  NodeId PickLoadBalanced(const DispatcherView& view, PolicyState& state) override {
    return WrrPick(view, state, /*weighted=*/true);
  }
  SubsequentDecision DecideSubsequent(const DispatcherView& view, PolicyState&, NodeId handling,
                                      TargetId target) override {
    return ExtLardDecide(view, handling, target, /*weighted=*/true);
  }
};

// LARD with replication (the ASPLOS'98 LARD/R strategy adapted to this
// dispatcher): a target maps to a *set* of servers instead of exactly one.
// Connections for a target go to the set's least-loaded member; when that
// member is overloaded and spare capacity exists elsewhere, the set grows by
// the globally least-loaded node — a hot target's load splits across its
// replicas instead of melting one node. Sets decay: after
// LardParams::replica_decay_picks placements without growth, the most loaded
// member is retired (the classic policy's time-based decay, counted in picks
// because the dispatcher has no clock). Subsequent pipelined requests reuse
// extended LARD's forwarding logic, whose candidate set naturally includes
// every replica (they all cache the target).
class LardReplicationPolicy final : public RoutingPolicy {
 public:
  const char* name() const override { return "lardr"; }
  const char* display_name() const override { return "LARD/R"; }
  bool per_request_distribution() const override { return true; }

  NodeId PickFirstNode(const DispatcherView& view, PolicyState& state, TargetId target) override {
    ReplicaSet& set = sets_[target];
    // Members that drained or died take no new work; forget them.
    set.nodes.erase(std::remove_if(set.nodes.begin(), set.nodes.end(),
                                   [&view](NodeId node) {
                                     return node >= view.num_node_slots() ||
                                            !view.Assignable(node);
                                   }),
                    set.nodes.end());
    if (set.nodes.empty()) {
      // First placement: the plain LARD cost pick seeds the set.
      const NodeId node = LardPick(view, state, target, /*weighted=*/false);
      set.nodes.push_back(node);
      set.picks_since_change = 0;
      return node;
    }

    NodeId least = set.nodes.front();
    for (const NodeId node : set.nodes) {
      if (view.Load(node) < view.Load(least)) {
        least = node;
      }
    }
    // Grow when the best replica is past T_high and real spare capacity
    // exists (or the replica is at twice T_high — then grow unconditionally
    // to stay work-conserving). T_high derives from the cost model the same
    // way the ASPLOS values do: l_overload ~ 2*T_high.
    const double t_high = view.params().l_overload / 2.0;
    if (view.Load(least) > t_high) {
      NodeId candidate = kInvalidNode;
      for (NodeId node = 0; node < view.num_node_slots(); ++node) {
        if (!view.Assignable(node) ||
            std::find(set.nodes.begin(), set.nodes.end(), node) != set.nodes.end()) {
          continue;
        }
        if (candidate == kInvalidNode || view.Load(node) < view.Load(candidate)) {
          candidate = node;
        }
      }
      if (candidate != kInvalidNode &&
          (view.Load(candidate) < view.params().l_idle ||
           view.Load(least) >= 2.0 * t_high)) {
        set.nodes.push_back(candidate);
        set.picks_since_change = 0;
        return candidate;
      }
    }

    // Decay: a set that stopped growing sheds its most loaded member, so
    // replication degree tracks current (not historical) popularity.
    ++set.picks_since_change;
    if (set.nodes.size() > 1 &&
        set.picks_since_change > static_cast<uint64_t>(view.params().replica_decay_picks)) {
      NodeId most = set.nodes.front();
      for (const NodeId node : set.nodes) {
        if (view.Load(node) > view.Load(most)) {
          most = node;
        }
      }
      set.nodes.erase(std::find(set.nodes.begin(), set.nodes.end(), most));
      set.picks_since_change = 0;
      if (most == least) {
        least = set.nodes.front();
        for (const NodeId node : set.nodes) {
          if (view.Load(node) < view.Load(least)) {
            least = node;
          }
        }
      }
    }
    return least;
  }

  SubsequentDecision DecideSubsequent(const DispatcherView& view, PolicyState&, NodeId handling,
                                      TargetId target) override {
    return ExtLardDecide(view, handling, target, /*weighted=*/false);
  }

 private:
  struct ReplicaSet {
    std::vector<NodeId> nodes;
    uint64_t picks_since_change = 0;
  };
  std::unordered_map<TargetId, ReplicaSet> sets_;
};

}  // namespace

PolicyRegistry::PolicyRegistry() {
  factories_["wrr"] = []() { return std::make_unique<WrrPolicy>(); };
  factories_["lard"] = []() { return std::make_unique<LardPolicy>(); };
  factories_["extlard"] = []() { return std::make_unique<ExtendedLardPolicy>(); };
  factories_["wextlard"] = []() { return std::make_unique<WeightedExtendedLardPolicy>(); };
  factories_["lardr"] = []() { return std::make_unique<LardReplicationPolicy>(); };
}

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

void PolicyRegistry::Register(const std::string& name, Factory factory) {
  LARD_CHECK(!name.empty());
  MutexLock lock(&mutex_);
  LARD_CHECK(factories_.find(name) == factories_.end())
      << "routing policy '" << name << "' is already registered";
  factories_[name] = std::move(factory);
}

std::unique_ptr<RoutingPolicy> PolicyRegistry::Create(const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

bool PolicyRegistry::Contains(const std::string& name) const {
  MutexLock lock(&mutex_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> PolicyRegistry::Names() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::string PolicyRegistry::NamesCsv() const {
  std::string csv;
  for (const std::string& name : Names()) {
    if (!csv.empty()) {
      csv += ", ";
    }
    csv += name;
  }
  return csv;
}

}  // namespace lard
