#include "src/http/tagging.h"

#include <cctype>

#include "src/util/logging.h"

namespace lard {
namespace {
constexpr char kPrefix[] = "/__be";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
}  // namespace

std::string TagPathForNode(const std::string& path, NodeId node) {
  LARD_CHECK(node >= 0);
  LARD_CHECK(!path.empty() && path[0] == '/') << "path must be absolute: " << path;
  return kPrefix + std::to_string(node) + path;
}

bool ParseTaggedPath(const std::string& path, NodeId* node, std::string* untagged_path) {
  if (path.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  size_t pos = kPrefixLen;
  if (pos >= path.size() || !std::isdigit(static_cast<unsigned char>(path[pos]))) {
    return false;
  }
  NodeId value = 0;
  while (pos < path.size() && std::isdigit(static_cast<unsigned char>(path[pos]))) {
    value = value * 10 + (path[pos] - '0');
    if (value > 1 << 20) {
      return false;  // absurd node number; treat as a plain path
    }
    ++pos;
  }
  if (pos >= path.size() || path[pos] != '/') {
    return false;
  }
  *node = value;
  *untagged_path = path.substr(pos);
  return true;
}

}  // namespace lard
