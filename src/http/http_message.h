// HTTP/1.0 and HTTP/1.1 message types for the prototype cluster. The scope is
// what the paper's cluster needs: GET requests, static responses, keep-alive
// semantics, and pipelining — implemented for real, over real sockets.
#ifndef SRC_HTTP_HTTP_MESSAGE_H_
#define SRC_HTTP_HTTP_MESSAGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lard {

enum class HttpVersion { kHttp10, kHttp11 };

const char* HttpVersionString(HttpVersion version);

// Ordered header list with case-insensitive lookup (headers can repeat and
// order is visible on the wire, so a map is the wrong type).
class HttpHeaders {
 public:
  void Add(std::string name, std::string value);
  // Returns the first value of `name` (case-insensitive) or nullptr.
  const std::string* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  const std::vector<std::pair<std::string, std::string>>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  // Case-insensitive ASCII comparison, exposed for reuse.
  static bool NameEquals(const std::string& a, const std::string& b);

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method;
  std::string path;
  HttpVersion version = HttpVersion::kHttp11;
  HttpHeaders headers;
  std::string body;

  // Whether the connection stays open after this request under the paper's
  // rules: HTTP/1.1 persists unless "Connection: close"; HTTP/1.0 does not
  // persist (the paper disregards HTTP/1.0 keep-alive extensions).
  bool KeepAlive() const;

  // Serializes back to wire form (request line + headers + body). Used by the
  // multiple-handoff hand-back path, which replays still-unserved requests to
  // the next back-end; Serialize-then-parse is identity for parsed requests.
  std::string Serialize() const;
};

struct HttpResponse {
  HttpVersion version = HttpVersion::kHttp11;
  int status = 200;
  std::string reason = "OK";
  HttpHeaders headers;
  std::string body;

  // Serializes status line + headers + body. Adds Content-Length when absent.
  std::string Serialize() const;
};

// Canonical reason phrase for a status code ("OK", "Not Found", ...).
const char* ReasonPhrase(int status);

}  // namespace lard

#endif  // SRC_HTTP_HTTP_MESSAGE_H_
