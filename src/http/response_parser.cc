#include "src/http/response_parser.h"

#include <cstdlib>

namespace lard {
namespace {

constexpr size_t kParseError = static_cast<size_t>(-1);

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

size_t ResponseParser::ParseOne(HttpResponse* response) {
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return buffer_.size() > kMaxHeaderBytes ? kParseError : 0;
  }
  const std::string_view head(buffer_.data(), header_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "HTTP/1.1 200 OK"
  *response = HttpResponse{};
  if (status_line.rfind("HTTP/1.1 ", 0) == 0) {
    response->version = HttpVersion::kHttp11;
  } else if (status_line.rfind("HTTP/1.0 ", 0) == 0) {
    response->version = HttpVersion::kHttp10;
  } else {
    return kParseError;
  }
  if (status_line.size() < 12) {
    return kParseError;
  }
  // The digits must outlive strtol's end pointer (a temporary here would be
  // dead by the time *end is checked).
  const std::string status_digits(status_line.substr(9, 3));
  char* end = nullptr;
  const long status = std::strtol(status_digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || status < 100 || status > 599) {
    return kParseError;
  }
  response->status = static_cast<int>(status);
  if (status_line.size() > 13) {
    response->reason = std::string(status_line.substr(13));
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      eol = head.size();
    }
    const std::string_view line = head.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return kParseError;
    }
    response->headers.Add(std::string(Trim(line.substr(0, colon))),
                          std::string(Trim(line.substr(colon + 1))));
    pos = eol + 2;
  }

  size_t body_bytes = 0;
  if (const std::string* length = response->headers.Find("Content-Length")) {
    const long long v = std::strtoll(length->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
      return kParseError;
    }
    body_bytes = static_cast<size_t>(v);
  }
  const size_t total = header_end + 4 + body_bytes;
  if (buffer_.size() < total) {
    return 0;
  }
  response->body = buffer_.substr(header_end + 4, body_bytes);
  return total;
}

ResponseParser::State ResponseParser::Feed(std::string_view data, std::vector<HttpResponse>* out) {
  if (error_) {
    return State::kError;
  }
  buffer_.append(data.data(), data.size());
  while (true) {
    HttpResponse response;
    const size_t consumed = ParseOne(&response);
    if (consumed == kParseError) {
      error_ = true;
      return State::kError;
    }
    if (consumed == 0) {
      return State::kNeedMore;
    }
    buffer_.erase(0, consumed);
    out->push_back(std::move(response));
  }
}

}  // namespace lard
