// Request tagging (Section 7.3/7.4): the front-end dispatcher instructs the
// connection-handling node to fetch a target from another back-end by
// rewriting the URL with a per-node prefix — the paper prepends the remote
// node's NFS-mount directory ("GET /back_end2/foo"). We use the same idea
// with a reserved "/__be<k>" prefix; a path that starts with the prefix is a
// lateral-fetch instruction, anything else is served locally.
#ifndef SRC_HTTP_TAGGING_H_
#define SRC_HTTP_TAGGING_H_

#include <string>

#include "src/core/cluster_types.h"

namespace lard {

// "/foo/bar.html" tagged for node 2 -> "/__be2/foo/bar.html".
std::string TagPathForNode(const std::string& path, NodeId node);

// Decomposes a possibly tagged path. Returns true and fills *node and
// *untagged_path when `path` carries a tag; returns false (leaving outputs
// untouched) for ordinary paths. Malformed tags ("/__bex/...") are treated as
// ordinary paths — they simply miss in the content store.
bool ParseTaggedPath(const std::string& path, NodeId* node, std::string* untagged_path);

}  // namespace lard

#endif  // SRC_HTTP_TAGGING_H_
