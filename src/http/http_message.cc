#include "src/http/http_message.h"

#include <cctype>

namespace lard {

const char* HttpVersionString(HttpVersion version) {
  return version == HttpVersion::kHttp10 ? "HTTP/1.0" : "HTTP/1.1";
}

bool HttpHeaders::NameEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void HttpHeaders::Add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

const std::string* HttpHeaders::Find(const std::string& name) const {
  for (const auto& [key, value] : entries_) {
    if (NameEquals(key, name)) {
      return &value;
    }
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = headers.Find("Connection");
  if (version == HttpVersion::kHttp11) {
    return connection == nullptr || !HttpHeaders::NameEquals(*connection, "close");
  }
  // HTTP/1.0: non-persistent (explicit keep-alive is out of scope, matching
  // the paper's "HTTP/1.0 connections are assumed not to support
  // persistence").
  return false;
}

std::string HttpRequest::Serialize() const {
  std::string out = method + " " + path + " " + HttpVersionString(version) + "\r\n";
  bool have_length = false;
  for (const auto& [name, value] : headers.entries()) {
    out += name + ": " + value + "\r\n";
    if (HttpHeaders::NameEquals(name, "Content-Length")) {
      have_length = true;
    }
  }
  if (!body.empty() && !have_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = HttpVersionString(version);
  out += " " + std::to_string(status) + " " + reason + "\r\n";
  bool have_length = false;
  for (const auto& [name, value] : headers.entries()) {
    out += name + ": " + value + "\r\n";
    if (HttpHeaders::NameEquals(name, "Content-Length")) {
      have_length = true;
    }
  }
  if (!have_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace lard
