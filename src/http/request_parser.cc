#include "src/http/request_parser.h"

#include <cstdint>
#include <cstdlib>

namespace lard {
namespace {

constexpr size_t kParseError = static_cast<size_t>(-1);

// Splits "GET /path HTTP/1.1" -> method/path/version. Returns false on any
// deviation.
bool ParseRequestLine(std::string_view line, HttpRequest* request) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return false;
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return false;
  }
  if (line.find(' ', sp2 + 1) != std::string_view::npos) {
    return false;
  }
  request->method = std::string(line.substr(0, sp1));
  request->path = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request->version = HttpVersion::kHttp11;
  } else if (version == "HTTP/1.0") {
    request->version = HttpVersion::kHttp10;
  } else {
    return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

size_t RequestParser::ParseOne(HttpRequest* request) {
  // Find the end of the header section.
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return buffer_.size() > kMaxHeaderBytes ? kParseError : 0;
  }
  if (header_end > kMaxHeaderBytes) {
    return kParseError;
  }

  const std::string_view head(buffer_.data(), header_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  *request = HttpRequest{};
  if (!ParseRequestLine(request_line, request)) {
    return kParseError;
  }

  // Header lines.
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      eol = head.size();
    }
    const std::string_view line = head.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return kParseError;
    }
    request->headers.Add(std::string(Trim(line.substr(0, colon))),
                         std::string(Trim(line.substr(colon + 1))));
    pos = eol + 2;
  }

  // Body (GETs normally have none; honor Content-Length when present).
  size_t body_bytes = 0;
  if (const std::string* length = request->headers.Find("Content-Length")) {
    char* end = nullptr;
    const long long v = std::strtoll(length->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0 || v > (1ll << 30)) {
      return kParseError;
    }
    body_bytes = static_cast<size_t>(v);
  }
  const size_t total = header_end + 4 + body_bytes;
  if (buffer_.size() < total) {
    return 0;
  }
  request->body = buffer_.substr(header_end + 4, body_bytes);
  return total;
}

RequestParser::State RequestParser::Feed(std::string_view data, std::vector<HttpRequest>* out) {
  if (error_) {
    return State::kError;
  }
  buffer_.append(data.data(), data.size());
  while (true) {
    HttpRequest request;
    const size_t consumed = ParseOne(&request);
    if (consumed == kParseError) {
      error_ = true;
      return State::kError;
    }
    if (consumed == 0) {
      return State::kNeedMore;
    }
    buffer_.erase(0, consumed);
    out->push_back(std::move(request));
  }
}

}  // namespace lard
