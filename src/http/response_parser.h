// Incremental HTTP response parser, used by the prototype's client load
// generator and by the lateral-fetch client on back-end nodes. Supports
// pipelined responses and Content-Length framing (the only framing our
// static-content servers emit).
#ifndef SRC_HTTP_RESPONSE_PARSER_H_
#define SRC_HTTP_RESPONSE_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/http_message.h"

namespace lard {

class ResponseParser {
 public:
  enum class State { kNeedMore, kError };

  // Appends socket bytes; extracts complete responses into *out.
  State Feed(std::string_view data, std::vector<HttpResponse>* out);

  size_t buffered_bytes() const { return buffer_.size(); }

  static constexpr size_t kMaxHeaderBytes = 64 * 1024;

 private:
  size_t ParseOne(HttpResponse* response);

  std::string buffer_;
  bool error_ = false;
};

}  // namespace lard

#endif  // SRC_HTTP_RESPONSE_PARSER_H_
