// Incremental, pipelining-safe HTTP request parser.
//
// Bytes are fed as they arrive from the socket; complete requests are emitted
// in order. Multiple pipelined requests in one read() are handled, as are
// requests split across arbitrarily many reads — both happen constantly on a
// P-HTTP connection and in the handoff path (the first request may arrive
// glued to the next batch).
#ifndef SRC_HTTP_REQUEST_PARSER_H_
#define SRC_HTTP_REQUEST_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/http_message.h"

namespace lard {

class RequestParser {
 public:
  enum class State {
    kNeedMore,  // consumed everything so far, request incomplete
    kError,     // malformed input; connection should be failed with 400
  };

  // Appends `data` to the internal buffer and extracts as many complete
  // requests as possible into *out (appended). Returns kError on malformed
  // input (parsing stops at the offending request).
  State Feed(std::string_view data, std::vector<HttpRequest>* out);

  // Bytes buffered but not yet parsed into a complete request.
  size_t buffered_bytes() const { return buffer_.size(); }
  // The buffered bytes themselves (the partial tail of the stream). The
  // hand-back path ships these to the next back-end so no byte is lost.
  const std::string& buffered() const { return buffer_; }

  // Guard against absurd header sections (connection should be failed).
  static constexpr size_t kMaxHeaderBytes = 64 * 1024;

 private:
  // Tries to parse one complete request from buffer_[0..]; on success fills
  // *request and returns the number of bytes consumed; returns 0 when more
  // data is needed; returns SIZE_MAX on malformed input.
  size_t ParseOne(HttpRequest* request);

  std::string buffer_;
  bool error_ = false;
};

}  // namespace lard

#endif  // SRC_HTTP_REQUEST_PARSER_H_
