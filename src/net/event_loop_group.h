// A reactor-per-core bundle of EventLoops: N epoll loops, one thread each.
// The group is the execution substrate for a multi-loop front-end process —
// loop 0 is the control-plane loop (admin, back-end control sessions, mesh
// gossip), loops 1..N-1 carry sharded client connections. With size() == 1
// the group degenerates to exactly the old one-loop-per-process shape.
//
// Threading contract: construction, Start() and Stop() happen on the owner's
// thread; loop(i) pointers are stable for the group's lifetime and may be
// shared across threads (EventLoop::Post is thread-safe). RunOn() may be
// called from any thread, including a loop thread targeting itself (runs
// inline) or a sibling loop (posts).
#ifndef SRC_NET_EVENT_LOOP_GROUP_H_
#define SRC_NET_EVENT_LOOP_GROUP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"

namespace lard {

class MetricsRegistry;

class EventLoopGroup {
 public:
  // `num_loops` >= 1. The loops exist (and accept Post()) from construction;
  // their threads spin up in Start().
  explicit EventLoopGroup(int num_loops);
  ~EventLoopGroup();

  EventLoopGroup(const EventLoopGroup&) = delete;
  EventLoopGroup& operator=(const EventLoopGroup&) = delete;

  int size() const { return static_cast<int>(loops_.size()); }
  EventLoop* loop(int idx) { return loops_[static_cast<size_t>(idx)].get(); }

  // Round-robin pick for spreading new work (thread-safe). Prefer per-loop
  // SO_REUSEPORT accept when available; this backs the portable fallback.
  int NextLoopIndex() {
    return static_cast<int>(next_.fetch_add(1, std::memory_order_relaxed) % loops_.size());
  }

  // Runs `fn` on loop `loop_idx`: inline when already on that loop's thread,
  // otherwise via EventLoop::Post (fire-and-forget).
  void RunOn(int loop_idx, std::function<void()> fn);

  // Publishes per-loop health metrics as {loop="<prefix>"} for loop 0 and
  // {loop="<prefix>.<n>"} for loops >= 1 — so a single-loop group keeps the
  // exact label the one-loop front-end always had. Must precede Start().
  void EnableProfiling(MetricsRegistry* metrics, const std::string& label_prefix);

  // Spawns one thread per loop and runs them. Idempotent-hostile: call once.
  void Start();
  // Stops every loop and joins the threads. Safe to call more than once.
  void Stop();

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace lard

#endif  // SRC_NET_EVENT_LOOP_GROUP_H_
