// Hashed timer wheel: O(1) arm/cancel/rearm for the short-deadline timers the
// event loop churns through — per-connection idle deadlines rearmed on every
// request, heartbeats, housekeeping ticks. The EventLoop's priority_queue
// keeps long one-shot timers correct, but a cancelled entry there lingers as
// a tombstone until its original deadline; at 100k+ connections rearming an
// idle timer per request would accumulate O(requests) dead heap entries. The
// wheel instead hashes each timer into deadline/tick slot lists: arm links,
// cancel unlinks, rearm relinks — all constant time.
//
// Deadlines are quantized up to the tick (`tick_ms`), so a callback fires at
// most one tick late and never early. An entry whose deadline lies beyond one
// wheel rotation simply stays in its slot across rotations (the classic
// hashed-wheel trade: each slot visit re-checks residents from later turns).
//
// Threading: loop-confined like the rest of the EventLoop timer state — no
// mutex by design; the owner calls everything from one thread.
#ifndef SRC_NET_TIMER_WHEEL_H_
#define SRC_NET_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace lard {

class TimerWheel {
 public:
  using TimerId = uint64_t;

  // `num_slots` must be a power of two; the wheel covers one rotation of
  // tick_ms * num_slots before entries start sharing slots across turns.
  explicit TimerWheel(int64_t tick_ms = 8, size_t num_slots = 512);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms `id` to fire `fn` once `deadline_ms` is reached (absolute time on
  // the caller's clock). Ids are caller-allocated and must be unique among
  // live entries.
  void Arm(TimerId id, int64_t deadline_ms, std::function<void()> fn);

  // Unlinks and drops the entry. Returns false when `id` is not live (never
  // armed, already fired, or already cancelled).
  bool Cancel(TimerId id);

  // Moves a live entry to a new deadline, keeping its callback: the idle
  // timer fast path (one hash lookup + two list splices, no allocation).
  // Also valid from inside the entry's own expiry batch — a sibling callback
  // rearming a due timer keeps it from firing. Returns false when `id` is
  // not live.
  bool Rearm(TimerId id, int64_t deadline_ms);

  // Fires every entry whose (quantized) deadline has been reached at
  // `now_ms`, advancing the wheel cursor. Forward clock jumps of any size
  // cost at most one full slot sweep; a backward jump is a no-op. When
  // `runner` is set, each callback is invoked through it (the EventLoop
  // passes its profiling wrapper). Returns the number of callbacks fired.
  int Advance(int64_t now_ms,
              const std::function<void(std::function<void()>&)>& runner = nullptr);

  // Milliseconds until the next slot that could fire an entry, a lower bound
  // on the next real deadline (an entry from a later rotation can wake the
  // caller early, at most once per rotation). -1 when the wheel is empty.
  int64_t MsUntilNext(int64_t now_ms) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  int64_t tick_ms() const { return tick_ms_; }
  // Delays at or beyond this never belong on the wheel (they would lap it);
  // the EventLoop routes them to its priority queue instead.
  int64_t horizon_ms() const { return tick_ms_ * static_cast<int64_t>(slots_.size()); }

  // Lifetime counters for benches and tests.
  uint64_t total_fired() const { return total_fired_; }
  uint64_t total_ticks() const { return total_ticks_; }

 private:
  struct Entry {
    TimerId id = 0;
    int64_t deadline_tick = 0;  // quantized: fires once cursor_ reaches it
    std::function<void()> fn;
    // Intrusive slot list; null prev/next + linked=false while queued for
    // fire (unlinked but still live, so Cancel/Rearm from a sibling callback
    // in the same batch still find it).
    Entry* prev = nullptr;
    Entry* next = nullptr;
    bool linked = false;
  };

  int64_t TickFor(int64_t deadline_ms) const {
    // Round up: never fire early. A deadline at/before "now" still lands one
    // tick ahead of the cursor the caller last advanced to, so a 0ms delay
    // fires on the next Advance that crosses a tick boundary.
    return (deadline_ms + tick_ms_ - 1) / tick_ms_;
  }
  size_t SlotFor(int64_t tick) const {
    return static_cast<size_t>(tick) & (slots_.size() - 1);
  }
  void Link(Entry* entry);
  void Unlink(Entry* entry);
  // Unlinks every due resident of `slot` at `tick` onto the fire queue.
  void CollectSlot(size_t slot, int64_t tick);

  const int64_t tick_ms_;
  std::vector<Entry*> slots_;  // heads of doubly-linked resident lists
  std::unordered_map<TimerId, std::unique_ptr<Entry>> entries_;
  // Last tick fully processed by Advance. Starts at 0, far behind the
  // caller's monotonic clock, so the first Advance takes the bounded
  // full-sweep path once and lands the cursor on real time.
  int64_t cursor_ = 0;
  std::vector<TimerId> fire_queue_;  // scratch, reused across Advance calls
  uint64_t total_fired_ = 0;
  uint64_t total_ticks_ = 0;
};

}  // namespace lard

#endif  // SRC_NET_TIMER_WHEEL_H_
