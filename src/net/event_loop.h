// Single-threaded epoll event loop: the execution substrate for the
// prototype's front-end and back-end components (one loop thread each, like
// the paper's kernel-resident protocol contexts).
//
// Threading contract: Register/Modify/Unregister and timer APIs must be
// called on the loop thread; Post() and Stop() may be called from any thread.
#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/fd.h"
#include "src/net/timer_wheel.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace lard {

class MetricsRegistry;
class MetricHistogram;
class MetricGauge;

class EventLoop {
 public:
  using IoCallback = std::function<void(uint32_t epoll_events)>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Watches `fd` for `events` (EPOLLIN/EPOLLOUT/...). The loop does not own
  // the fd. One registration per fd.
  void Register(int fd, uint32_t events, IoCallback callback);
  void Modify(int fd, uint32_t events);
  void Unregister(int fd);

  // Runs `fn` once, `delay_ms` from now, on the loop thread. Short delays
  // (under the timer wheel's horizon, ~4s) live on a hashed timer wheel with
  // O(1) arm/cancel/rearm; longer one-shots go to the priority queue.
  TimerId ScheduleAfterMs(int64_t delay_ms, std::function<void()> fn);
  void CancelTimer(TimerId id);
  // Pushes a live wheel timer's deadline out to `delay_ms` from now, keeping
  // its callback: the per-connection idle-deadline fast path (no allocation,
  // no new id). Returns false when `id` is not a live wheel timer — already
  // fired, cancelled, or heap-resident — and the caller should schedule anew.
  bool RearmTimerMs(TimerId id, int64_t delay_ms);
  // Live timers across both backends (wheel + queue, tombstones excluded).
  size_t pending_timers() const { return wheel_.size() + timer_fns_.size(); }
  // Heap entries including cancelled tombstones — tests assert the purge
  // keeps this O(live) under cancel churn.
  size_t timer_heap_size() const { return timers_.size(); }

  // Enqueues `task` for execution on the loop thread (thread-safe).
  void Post(std::function<void()> task);

  // Publishes loop health into `metrics` under a {loop="<label>"} label:
  // lard_loop_tick_us (work per iteration, excluding the epoll wait),
  // lard_loop_callback_us (per I/O handler / task / timer run time),
  // lard_loop_pending_tasks (posted-queue depth at each drain) and
  // lard_loop_wakeup_delay_us (Post() enqueue to execution latency — the
  // reactor's scheduling lag). Must be called before Run() starts; the
  // instruments then cost two clock reads per callback and nothing when
  // profiling was never enabled.
  void EnableProfiling(MetricsRegistry* metrics, const std::string& label);

  // Runs until Stop(). Must be called from exactly one thread, which becomes
  // the loop thread.
  void Run();
  // Signals the loop to exit (thread-safe).
  void Stop();

  // Thread-safe: RunOnLoop-style helpers call this from arbitrary threads
  // while the loop thread publishes its id at Run() entry.
  bool IsInLoopThread() const {
    return std::this_thread::get_id() == loop_thread_.load(std::memory_order_acquire);
  }

  // Pinning contract enforcement: fatal in debug builds when called off the
  // loop thread while the loop is running; release builds count the
  // violation (see pinning_violations()) and keep serving. Passes before
  // Run() / after Stop(), when setup and teardown legally happen on the
  // owner thread. Loop-confined mutation paths (LoopShard state, Connection
  // maps, the loop's own fd/timer tables) call this at the top.
  void AssertInLoopThread() const;
  // Off-thread touches observed by AssertInLoopThread in release builds.
  // Stays 0 in a correct run; scraped into tests and health checks.
  uint64_t pinning_violations() const {
    return pinning_violations_.load(std::memory_order_relaxed);
  }

 private:
  struct Timer {
    int64_t deadline_ms = 0;
    TimerId id = 0;
    bool operator>(const Timer& other) const {
      return deadline_ms != other.deadline_ms ? deadline_ms > other.deadline_ms : id > other.id;
    }
  };

  static int64_t NowMs();
  static int64_t NowUs();
  void Wakeup();
  void DrainTasks();
  int NextTimeoutMs();
  void FireDueTimers();
  // Rebuilds timers_ without its cancelled tombstones (CancelTimer calls
  // this once the dead fraction crosses a threshold, so a cancel-heavy
  // workload on long timers stays O(live), not O(ever-scheduled)).
  void PurgeCancelledTimers();
  // Runs `fn`, observing its duration into the callback histogram when
  // profiling is on.
  template <typename Fn>
  void RunTimed(Fn&& fn);

  UniqueFd epoll_fd_;
  UniqueFd wakeup_fd_;  // eventfd
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_thread_{};

  // fd -> callback; shared_ptr so a handler staying alive through dispatch is
  // safe even if Unregister runs from inside another handler.
  std::unordered_map<int, std::shared_ptr<IoCallback>> handlers_;

  // Posted tasks carry their enqueue time so wakeup-to-run latency is
  // measurable; the timestamp is only taken while profiling is enabled.
  struct PostedTask {
    std::function<void()> fn;
    int64_t enqueue_us = 0;
  };
  Mutex tasks_mutex_;
  std::deque<PostedTask> tasks_ LARD_GUARDED_BY(tasks_mutex_);
  // Lock-free mirror of tasks_.size(): DrainTasks() skips the mutex entirely
  // when nothing is pending (the steady-state case — the drain runs every
  // loop iteration), and NextTimeoutMs() returns 0 while tasks wait so a
  // self-post during a drain is picked up next iteration without an eventfd
  // round trip.
  std::atomic<size_t> pending_count_{0};

  // Profiling instruments (EnableProfiling). The flag is atomic so Post()
  // may consult it from any thread; the pointers are written before the loop
  // thread starts and never change.
  std::atomic<bool> profiling_{false};
  MetricHistogram* tick_us_ = nullptr;
  MetricHistogram* callback_us_ = nullptr;
  MetricHistogram* wakeup_delay_us_ = nullptr;
  MetricGauge* pending_tasks_ = nullptr;

  // Loop-confined (no mutex by design): handlers_, wheel_, timers_,
  // timer_fns_ and next_timer_id_ are only touched from the loop thread —
  // AssertInLoopThread() guards the mutating entry points at runtime and
  // tools/lint/concurrency_lint.py checks the callers statically.
  //
  // Two timer backends share the TimerId space: the hashed wheel owns every
  // short-deadline timer (id + callback live inside it); timers_/timer_fns_
  // is a min-heap (std::*_heap over a vector) for deadlines past the wheel's
  // horizon. A cancelled heap timer leaves a tombstone in timers_ until
  // PurgeCancelledTimers sweeps it; heap_cancelled_ counts the live
  // tombstones so the sweep triggers on the dead fraction.
  TimerWheel wheel_;
  std::vector<Timer> timers_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;
  size_t heap_cancelled_ = 0;
  TimerId next_timer_id_ = 1;
  mutable std::atomic<uint64_t> pinning_violations_{0};
};

}  // namespace lard

#endif  // SRC_NET_EVENT_LOOP_H_
