#include "src/net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "src/util/logging.h"

namespace lard {

Connection::Connection(EventLoop* loop, UniqueFd fd) : loop_(loop), fd_(std::move(fd)) {
  LARD_CHECK(fd_.valid());
}

Connection::~Connection() {
  if (open_) {
    Close();
  }
}

void Connection::Start() {
  LARD_CHECK(!open_);
  open_ = true;
  interest_ = EPOLLIN;
  loop_->Register(fd_.get(), interest_, [this](uint32_t events) { HandleEvents(events); });
}

void Connection::HandleEvents(uint32_t events) {
  if (!open_) {
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    FailAndClose();
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    HandleWritable();
  }
  if (open_ && (events & EPOLLIN) != 0) {
    HandleReadable();
  }
}

void Connection::HandleReadable() {
  char buf[64 * 1024];
  while (open_) {
    // lard-lint: allow(blocking-call) fd is O_NONBLOCK (Connection requires it);
    // this recv returns EAGAIN instead of blocking the loop.
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (on_data_) {
        on_data_(std::string_view(buf, static_cast<size_t>(n)));
      }
      if (static_cast<size_t>(n) < sizeof(buf)) {
        return;  // drained
      }
      continue;
    }
    if (n == 0) {
      FailAndClose();  // peer EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    FailAndClose();
    return;
  }
}

void Connection::Write(std::string_view data) {
  LARD_CHECK(open_);
  // Fast path: nothing buffered, try a direct send.
  size_t sent = 0;
  if (write_buffer_.size() == write_offset_) {
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        bytes_flushed_ += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      FailAndClose();
      return;
    }
  }
  if (sent < data.size()) {
    write_buffer_.append(data.data() + sent, data.size() - sent);
    UpdateInterest();
  }
}

void Connection::HandleWritable() {
  const uint64_t flushed_before = bytes_flushed_;
  while (write_offset_ < write_buffer_.size()) {
    const ssize_t n = ::send(fd_.get(), write_buffer_.data() + write_offset_,
                             write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      bytes_flushed_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    FailAndClose();
    return;
  }
  if (write_offset_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_offset_ = 0;
    if (close_after_flush_) {
      Close();
      return;
    }
    UpdateInterest();
    if (on_write_drained_) {
      auto drained = std::move(on_write_drained_);
      on_write_drained_ = nullptr;
      drained();
    }
  }
  if (bytes_flushed_ != flushed_before && on_write_progress_) {
    on_write_progress_();
  }
}

void Connection::UpdateInterest() {
  if (!open_) {
    return;
  }
  const uint32_t want =
      EPOLLIN | (write_buffer_.size() > write_offset_ ? EPOLLOUT : 0u);
  if (want != interest_) {
    interest_ = want;
    loop_->Modify(fd_.get(), interest_);
  }
}

void Connection::CloseAfterFlush() {
  if (!open_) {
    return;
  }
  if (write_buffer_.size() == write_offset_) {
    Close();
    return;
  }
  close_after_flush_ = true;
}

void Connection::Close() {
  if (!open_) {
    return;
  }
  open_ = false;
  loop_->Unregister(fd_.get());
  fd_.Reset();
}

void Connection::FailAndClose() {
  if (!open_) {
    return;
  }
  open_ = false;
  loop_->Unregister(fd_.get());
  fd_.Reset();
  if (on_close_) {
    on_close_();
  }
}

Connection::Detached Connection::Detach() {
  LARD_CHECK(open_);
  LARD_CHECK(pending_write_bytes() == 0) << "cannot hand off with unsent response bytes";
  open_ = false;
  loop_->Unregister(fd_.get());
  Detached detached;
  detached.fd = std::move(fd_);
  detached.unconsumed_input = std::move(pushback_);
  pushback_.clear();
  return detached;
}

}  // namespace lard
