#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace lard {

EventLoop::EventLoop() {
  epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  LARD_CHECK(epoll_fd_.valid()) << "epoll_create1 failed";
  wakeup_fd_.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  LARD_CHECK(wakeup_fd_.valid()) << "eventfd failed";

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wakeup_fd_.get();
  LARD_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wakeup_fd_.get(), &event) == 0);
}

EventLoop::~EventLoop() = default;

int64_t EventLoop::NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

int64_t EventLoop::NowUs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void EventLoop::EnableProfiling(MetricsRegistry* metrics, const std::string& label) {
  LARD_CHECK(metrics != nullptr);
  LARD_CHECK(!running_.load()) << "EnableProfiling must precede Run()";
  const std::string suffix = "{loop=\"" + label + "\"}";
  tick_us_ = metrics->Histogram("lard_loop_tick_us" + suffix);
  callback_us_ = metrics->Histogram("lard_loop_callback_us" + suffix);
  wakeup_delay_us_ = metrics->Histogram("lard_loop_wakeup_delay_us" + suffix);
  pending_tasks_ = metrics->Gauge("lard_loop_pending_tasks" + suffix);
  profiling_.store(true, std::memory_order_release);
}

template <typename Fn>
void EventLoop::RunTimed(Fn&& fn) {
  if (!profiling_.load(std::memory_order_relaxed)) {
    fn();
    return;
  }
  const int64_t start = NowUs();
  fn();
  callback_us_->Observe(static_cast<double>(NowUs() - start));
}

void EventLoop::AssertInLoopThread() const {
  if (IsInLoopThread() || !running_.load(std::memory_order_acquire)) {
    return;  // on the loop thread, or single-threaded setup/teardown
  }
#ifndef NDEBUG
  LARD_CHECK(false) << "loop-confined state touched off its loop thread";
#else
  pinning_violations_.fetch_add(1, std::memory_order_relaxed);
#endif
}

void EventLoop::Register(int fd, uint32_t events, IoCallback callback) {
  AssertInLoopThread();
  LARD_CHECK(handlers_.find(fd) == handlers_.end()) << "fd " << fd << " already registered";
  handlers_[fd] = std::make_shared<IoCallback>(std::move(callback));
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  LARD_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &event) == 0)
      << "epoll_ctl(ADD) fd=" << fd;
}

void EventLoop::Modify(int fd, uint32_t events) {
  AssertInLoopThread();
  LARD_CHECK(handlers_.find(fd) != handlers_.end()) << "fd " << fd << " not registered";
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  LARD_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &event) == 0)
      << "epoll_ctl(MOD) fd=" << fd;
}

void EventLoop::Unregister(int fd) {
  AssertInLoopThread();
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return;
  }
  handlers_.erase(it);
  // The fd may already be closed by the owner; ignore ENOENT/EBADF.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::ScheduleAfterMs(int64_t delay_ms, std::function<void()> fn) {
  AssertInLoopThread();
  const TimerId id = next_timer_id_++;
  if (delay_ms < wheel_.horizon_ms()) {
    // Short-deadline timers (idle deadlines, heartbeats, housekeeping) live
    // on the hashed wheel: O(1) arm/cancel/rearm, no tombstones.
    wheel_.Arm(id, NowMs() + delay_ms, std::move(fn));
    return id;
  }
  timer_fns_[id] = std::move(fn);
  timers_.push_back(Timer{NowMs() + delay_ms, id});
  std::push_heap(timers_.begin(), timers_.end(), std::greater<Timer>());
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  AssertInLoopThread();
  if (wheel_.Cancel(id)) {
    return;
  }
  if (timer_fns_.erase(id) == 0) {
    return;  // unknown or already fired
  }
  // The heap entry is now a tombstone; sweep once the dead outweigh the live
  // so cancel-heavy workloads on long timers stay O(live).
  ++heap_cancelled_;
  if (heap_cancelled_ >= 16 && heap_cancelled_ * 2 > timers_.size()) {
    PurgeCancelledTimers();
  }
}

bool EventLoop::RearmTimerMs(TimerId id, int64_t delay_ms) {
  AssertInLoopThread();
  return delay_ms < wheel_.horizon_ms() && wheel_.Rearm(id, NowMs() + delay_ms);
}

void EventLoop::PurgeCancelledTimers() {
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [this](const Timer& timer) {
                                 return timer_fns_.find(timer.id) == timer_fns_.end();
                               }),
                timers_.end());
  std::make_heap(timers_.begin(), timers_.end(), std::greater<Timer>());
  heap_cancelled_ = 0;
}

void EventLoop::Post(std::function<void()> task) {
  PostedTask entry;
  entry.fn = std::move(task);
  if (profiling_.load(std::memory_order_acquire)) {
    entry.enqueue_us = NowUs();
  }
  {
    MutexLock lock(&tasks_mutex_);
    tasks_.push_back(std::move(entry));
  }
  pending_count_.fetch_add(1, std::memory_order_release);
  // A post from the loop thread itself needs no eventfd write: the loop is
  // between callbacks right now, and NextTimeoutMs() sees pending_count_ > 0
  // so the next epoll_wait returns immediately and drains the queue.
  if (!IsInLoopThread()) {
    Wakeup();
  }
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeup_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainTasks() {
  // Fast path: the queue is empty in the common iteration; skip the mutex. A
  // concurrent Post() that this load misses also wrote the eventfd, so the
  // next epoll_wait wakes immediately and the following drain sees it.
  if (pending_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  std::deque<PostedTask> tasks;
  {
    MutexLock lock(&tasks_mutex_);
    tasks.swap(tasks_);
  }
  pending_count_.fetch_sub(tasks.size(), std::memory_order_release);
  const bool profiling = profiling_.load(std::memory_order_relaxed);
  if (profiling) {
    pending_tasks_->Set(static_cast<double>(tasks.size()));
  }
  for (auto& task : tasks) {
    if (profiling && task.enqueue_us > 0) {
      wakeup_delay_us_->Observe(static_cast<double>(NowUs() - task.enqueue_us));
    }
    RunTimed(task.fn);
  }
}

int EventLoop::NextTimeoutMs() {
  // Tasks posted after the last drain (e.g. by the loop thread itself, which
  // skips the eventfd) must run now, not after a 100ms nap.
  if (pending_count_.load(std::memory_order_acquire) > 0) {
    return 0;
  }
  // Skip cancelled timers sitting at the heap top.
  while (!timers_.empty() && timer_fns_.find(timers_.front().id) == timer_fns_.end()) {
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<Timer>());
    timers_.pop_back();
    if (heap_cancelled_ > 0) {
      --heap_cancelled_;
    }
  }
  const int64_t now = NowMs();
  int64_t delta = 100;  // wake periodically so Stop() is prompt even without timers
  if (!timers_.empty()) {
    delta = std::min<int64_t>(delta, timers_.front().deadline_ms - now);
  }
  const int64_t wheel_next = wheel_.MsUntilNext(now);
  if (wheel_next >= 0) {
    delta = std::min(delta, wheel_next);
  }
  return static_cast<int>(std::max<int64_t>(delta, 0));
}

void EventLoop::FireDueTimers() {
  const int64_t now = NowMs();
  wheel_.Advance(now, [this](std::function<void()>& fn) { RunTimed(fn); });
  while (!timers_.empty() && timers_.front().deadline_ms <= now) {
    const Timer timer = timers_.front();
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<Timer>());
    timers_.pop_back();
    auto it = timer_fns_.find(timer.id);
    if (it == timer_fns_.end()) {
      if (heap_cancelled_ > 0) {
        --heap_cancelled_;
      }
      continue;  // cancelled tombstone reaching its original deadline
    }
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    RunTimed(fn);
  }
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  running_.store(true);
  epoll_event events[64];
  while (running_.load()) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, NextTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      LARD_LOG(FATAL) << "epoll_wait: " << std::strerror(errno);
    }
    const bool profiling = profiling_.load(std::memory_order_relaxed);
    const int64_t tick_start = profiling ? NowUs() : 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_.get()) {
        uint64_t drain = 0;
        while (::read(wakeup_fd_.get(), &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      // Look the handler up fresh: an earlier callback in this batch may have
      // unregistered this fd.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) {
        continue;
      }
      auto handler = it->second;  // keep alive across the call
      RunTimed([&]() { (*handler)(events[i].events); });
    }
    DrainTasks();
    FireDueTimers();
    if (profiling) {
      // Work done this iteration, excluding the epoll wait itself.
      tick_us_->Observe(static_cast<double>(NowUs() - tick_start));
    }
  }
  // Final drain so no posted task is silently dropped at shutdown.
  DrainTasks();
}

void EventLoop::Stop() {
  running_.store(false);
  Wakeup();
}

}  // namespace lard
