#include "src/net/event_loop_group.h"

#include "src/util/logging.h"

namespace lard {

EventLoopGroup::EventLoopGroup(int num_loops) {
  LARD_CHECK(num_loops >= 1) << "EventLoopGroup needs at least one loop";
  loops_.reserve(static_cast<size_t>(num_loops));
  for (int i = 0; i < num_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
}

EventLoopGroup::~EventLoopGroup() { Stop(); }

void EventLoopGroup::RunOn(int loop_idx, std::function<void()> fn) {
  EventLoop* target = loop(loop_idx);
  if (target->IsInLoopThread()) {
    fn();
    return;
  }
  target->Post(std::move(fn));
}

void EventLoopGroup::EnableProfiling(MetricsRegistry* metrics, const std::string& label_prefix) {
  LARD_CHECK(threads_.empty()) << "EnableProfiling must precede Start()";
  for (size_t i = 0; i < loops_.size(); ++i) {
    const std::string label =
        i == 0 ? label_prefix : label_prefix + "." + std::to_string(i);
    loops_[i]->EnableProfiling(metrics, label);
  }
}

void EventLoopGroup::Start() {
  LARD_CHECK(threads_.empty()) << "EventLoopGroup already started";
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    EventLoop* raw = loop.get();
    threads_.emplace_back([raw]() { raw->Run(); });
  }
}

void EventLoopGroup::Stop() {
  for (auto& loop : loops_) {
    loop->Stop();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  threads_.clear();
}

}  // namespace lard
