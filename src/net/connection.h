// Buffered non-blocking stream connection on an EventLoop.
//
// Detach() is the key facility for the prototype's TCP handoff: it atomically
// pulls the socket out of the loop and returns the fd together with any bytes
// already read but not yet consumed — exactly the state the paper's in-kernel
// handoff transfers (connection endpoint + buffered client data, e.g. further
// pipelined requests that arrived glued to the first one).
//
// All methods must be called on the loop thread.
#ifndef SRC_NET_CONNECTION_H_
#define SRC_NET_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/net/event_loop.h"
#include "src/net/fd.h"

namespace lard {

class Connection {
 public:
  // `fd` must already be non-blocking.
  Connection(EventLoop* loop, UniqueFd fd);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // `on_data` receives freshly read bytes; the callee consumes all of them
  // (re-buffering into its parser as needed). `on_close` fires once on EOF or
  // error; the Connection is dead afterwards (but destruction stays the
  // owner's job).
  //
  // LIFETIME: callbacks run from inside this Connection's event handler, so
  // they must not destroy the Connection synchronously — defer destruction to
  // the next loop tick (e.g. move the owner's unique_ptr into a posted task).
  void set_on_data(std::function<void(std::string_view)> on_data) {
    on_data_ = std::move(on_data);
  }
  void set_on_close(std::function<void()> on_close) { on_close_ = std::move(on_close); }

  // One-shot: fires (from the write path) when the buffered write data has
  // fully reached the kernel. Callers that need to detach a connection with
  // in-flight responses (multiple-handoff hand-back) register this after
  // checking pending_write_bytes() > 0.
  void set_on_write_drained(std::function<void()> on_drained) {
    on_write_drained_ = std::move(on_drained);
  }

  // Persistent: fires whenever the EPOLLOUT path hands buffered bytes to the
  // kernel (bytes_flushed() advanced). The crash-replay journal acks flush
  // progress from here so a kill between event-loop iterations can never
  // separate "kernel accepted the bytes" from "the front-end heard about
  // it" — an unacked-but-delivered response would be replayed as a
  // duplicate.
  void set_on_write_progress(std::function<void()> on_progress) {
    on_write_progress_ = std::move(on_progress);
  }

  // Registers with the loop. Call after the callbacks are set.
  void Start();

  // Queues bytes for transmission (immediate write attempt, remainder
  // buffered until EPOLLOUT).
  void Write(std::string_view data);

  // Closes once the write buffer drains (used for HTTP/1.0-style responses).
  void CloseAfterFlush();

  // Immediate teardown; on_close is NOT invoked (caller-initiated).
  void Close();

  struct Detached {
    UniqueFd fd;
    std::string unconsumed_input;
  };
  // Unregisters and surrenders the socket. Only legal while open and with an
  // empty write buffer. `unconsumed_input` is whatever the *caller's* parser
  // returned to us via PushBack plus anything unread — see PushBack().
  Detached Detach();

  // Returns bytes the caller read via on_data but did not consume, so a later
  // Detach() ships them along with the fd. (The front-end pushes back the
  // pipelined tail after parsing the first request.)
  void PushBack(std::string_view data) { pushback_.append(data.data(), data.size()); }

  bool open() const { return open_; }
  int fd() const { return fd_.get(); }
  size_t pending_write_bytes() const { return write_buffer_.size() - write_offset_; }
  // Cumulative bytes actually handed to the kernel socket (not merely
  // buffered). The crash-replay journal acks response progress against this:
  // bytes the kernel accepted survive this process's death, buffered bytes
  // do not.
  uint64_t bytes_flushed() const { return bytes_flushed_; }

 private:
  void HandleEvents(uint32_t events);
  void HandleReadable();
  void HandleWritable();
  void UpdateInterest();
  void FailAndClose();

  EventLoop* loop_;
  UniqueFd fd_;
  bool open_ = false;
  bool close_after_flush_ = false;

  std::function<void(std::string_view)> on_data_;
  std::function<void()> on_close_;
  std::function<void()> on_write_drained_;
  std::function<void()> on_write_progress_;

  std::string write_buffer_;
  size_t write_offset_ = 0;
  uint64_t bytes_flushed_ = 0;
  std::string pushback_;
  uint32_t interest_ = 0;
};

}  // namespace lard

#endif  // SRC_NET_CONNECTION_H_
