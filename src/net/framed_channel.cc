#include "src/net/framed_channel.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/logging.h"

namespace lard {
namespace {

constexpr size_t kHeaderBytes = 8;
constexpr uint8_t kFlagHasFd = 0x1;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint8_t>(p[0]) | (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

}  // namespace

FramedChannel::FramedChannel(EventLoop* loop, UniqueFd fd) : loop_(loop), fd_(std::move(fd)) {
  LARD_CHECK(fd_.valid());
}

FramedChannel::~FramedChannel() {
  if (open_) {
    Close();
  }
}

void FramedChannel::Start() {
  LARD_CHECK(!open_);
  open_ = true;
  interest_ = EPOLLIN;
  loop_->Register(fd_.get(), interest_, [this](uint32_t events) { HandleEvents(events); });
}

void FramedChannel::Send(uint8_t type, std::string_view payload) {
  SendWithFd(type, payload, UniqueFd());
}

void FramedChannel::SendWithFd(uint8_t type, std::string_view payload, UniqueFd fd) {
  LARD_CHECK(open_);
  LARD_CHECK(payload.size() <= kMaxPayload);
  OutFrame frame;
  frame.bytes.reserve(kHeaderBytes + payload.size());
  PutU32(&frame.bytes, static_cast<uint32_t>(payload.size()));
  frame.bytes.push_back(static_cast<char>(type));
  frame.bytes.push_back(static_cast<char>(fd.valid() ? kFlagHasFd : 0));
  frame.bytes.push_back(0);
  frame.bytes.push_back(0);
  frame.bytes.append(payload.data(), payload.size());
  frame.fd = std::move(fd);
  out_.push_back(std::move(frame));
  Flush();
  UpdateInterest();
}

void FramedChannel::Flush() {
  while (open_ && !out_.empty()) {
    OutFrame& frame = out_.front();
    ssize_t n = 0;
    if (frame.offset == 0 && frame.fd.valid()) {
      // First byte of an fd-carrying frame: attach SCM_RIGHTS.
      msghdr msg{};
      iovec iov{};
      iov.iov_base = frame.bytes.data();
      iov.iov_len = frame.bytes.size();
      msg.msg_iov = &iov;
      msg.msg_iovlen = 1;
      char control[CMSG_SPACE(sizeof(int))] = {0};
      msg.msg_control = control;
      msg.msg_controllen = sizeof(control);
      cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
      cmsg->cmsg_level = SOL_SOCKET;
      cmsg->cmsg_type = SCM_RIGHTS;
      cmsg->cmsg_len = CMSG_LEN(sizeof(int));
      const int raw = frame.fd.get();
      std::memcpy(CMSG_DATA(cmsg), &raw, sizeof(int));
      n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
      if (n > 0) {
        frame.fd.Reset();  // delivered; our duplicate is no longer needed
      }
    } else {
      n = ::send(fd_.get(), frame.bytes.data() + frame.offset, frame.bytes.size() - frame.offset,
                 MSG_NOSIGNAL);
    }
    if (n > 0) {
      frame.offset += static_cast<size_t>(n);
      if (frame.offset == frame.bytes.size()) {
        out_.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    FailAndClose();
    return;
  }
}

void FramedChannel::HandleEvents(uint32_t events) {
  if (!open_) {
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    FailAndClose();
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    Flush();
    if (open_) {
      UpdateInterest();
    }
  }
  if (open_ && (events & EPOLLIN) != 0) {
    HandleReadable();
  }
}

void FramedChannel::HandleReadable() {
  char buf[64 * 1024];
  while (open_) {
    msghdr msg{};
    iovec iov{};
    iov.iov_base = buf;
    iov.iov_len = sizeof(buf);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    char control[CMSG_SPACE(4 * sizeof(int))] = {0};
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    const ssize_t n = ::recvmsg(fd_.get(), &msg, 0);
    if (n > 0) {
      for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
        if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
          const size_t count = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
          int fds[4];
          std::memcpy(fds, CMSG_DATA(cmsg), count * sizeof(int));
          for (size_t i = 0; i < count; ++i) {
            received_fds_.emplace_back(fds[i]);
          }
        }
      }
      in_buffer_.append(buf, static_cast<size_t>(n));
      ParseFrames();
      if (!open_ || static_cast<size_t>(n) < sizeof(buf)) {
        return;
      }
      continue;
    }
    if (n == 0) {
      FailAndClose();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    FailAndClose();
    return;
  }
}

void FramedChannel::ParseFrames() {
  size_t pos = 0;
  while (open_ && in_buffer_.size() - pos >= kHeaderBytes) {
    const uint32_t payload_len = GetU32(in_buffer_.data() + pos);
    if (payload_len > kMaxPayload) {
      LARD_LOG(ERROR) << "oversized frame (" << payload_len << " bytes); closing channel";
      in_buffer_.erase(0, pos);
      FailAndClose();
      return;
    }
    if (in_buffer_.size() - pos < kHeaderBytes + payload_len) {
      break;
    }
    const uint8_t type = static_cast<uint8_t>(in_buffer_[pos + 4]);
    const uint8_t flags = static_cast<uint8_t>(in_buffer_[pos + 5]);
    std::string payload = in_buffer_.substr(pos + kHeaderBytes, payload_len);
    pos += kHeaderBytes + payload_len;

    UniqueFd fd;
    if ((flags & kFlagHasFd) != 0) {
      if (received_fds_.empty()) {
        LARD_LOG(ERROR) << "frame declared an fd but none arrived; closing channel";
        in_buffer_.erase(0, pos);
        FailAndClose();
        return;
      }
      fd = std::move(received_fds_.front());
      received_fds_.pop_front();
    }
    if (on_message_) {
      on_message_(type, std::move(payload), std::move(fd));
    }
  }
  in_buffer_.erase(0, pos);
}

void FramedChannel::UpdateInterest() {
  if (!open_) {
    return;
  }
  const uint32_t want = EPOLLIN | (out_.empty() ? 0u : EPOLLOUT);
  if (want != interest_) {
    interest_ = want;
    loop_->Modify(fd_.get(), interest_);
  }
}

void FramedChannel::Close() {
  if (!open_) {
    return;
  }
  open_ = false;
  loop_->Unregister(fd_.get());
  fd_.Reset();
}

void FramedChannel::FailAndClose() {
  if (!open_) {
    return;
  }
  open_ = false;
  loop_->Unregister(fd_.get());
  fd_.Reset();
  if (on_close_) {
    on_close_();
  }
}

}  // namespace lard
