#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace lard {
namespace {

std::string Errno(const char* what) { return std::string(what) + ": " + std::strerror(errno); }

}  // namespace

namespace {

StatusOr<UniqueFd> ListenTcpInternal(uint16_t port, uint16_t* bound_port, bool reuse_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return IoError(Errno("socket"));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    return IoError(Errno("setsockopt(SO_REUSEPORT)"));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return IoError(Errno("bind"));
  }
  if (::listen(fd.get(), 512) != 0) {
    return IoError(Errno("listen"));
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return IoError(Errno("getsockname"));
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

}  // namespace

StatusOr<UniqueFd> ListenTcp(uint16_t port, uint16_t* bound_port) {
  return ListenTcpInternal(port, bound_port, /*reuse_port=*/false);
}

StatusOr<UniqueFd> ListenTcpReusePort(uint16_t port, uint16_t* bound_port) {
  return ListenTcpInternal(port, bound_port, /*reuse_port=*/true);
}

StatusOr<UniqueFd> ConnectTcp(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return IoError(Errno("socket"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // lard-lint: allow(blocking-call) loopback connect for clients/tests; never
  // called from an event-loop callback (loops only accept, they don't dial).
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return IoError(Errno("connect"));
  }
  return fd;
}

StatusOr<std::pair<UniqueFd, UniqueFd>> UnixPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return IoError(Errno("socketpair"));
  }
  return std::make_pair(UniqueFd(fds[0]), UniqueFd(fds[1]));
}

Status SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return IoError(Errno("fcntl(F_GETFL)"));
  }
  const int want = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) != 0) {
    return IoError(Errno("fcntl(F_SETFL)"));
  }
  return Status::Ok();
}

Status SetTcpNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return IoError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::Ok();
}

}  // namespace lard
