// RAII file descriptor.
#ifndef SRC_NET_FD_H_
#define SRC_NET_FD_H_

#include <unistd.h>

#include <utility>

namespace lard {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() { return std::exchange(fd_, -1); }

  void Reset(int fd = -1) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace lard

#endif  // SRC_NET_FD_H_
