// Length-prefixed message channel over a stream socket, with optional file
// descriptor attachment per message (SCM_RIGHTS on unix-domain sockets).
//
// This is the prototype's control-session transport (Section 7.1): the
// dispatcher's tagged requests, the back-ends' disk-queue reports, and —
// carrying an fd — the TCP connection handoff itself.
//
// Wire format (little-endian):
//   u32 payload_length | u8 type | u8 flags (bit0: fd attached) | u16 zero |
//   payload bytes
// The fd's SCM_RIGHTS control message rides on the sendmsg() that transmits
// the first byte of its frame, so by the time a receiver has the complete
// frame the fd has necessarily arrived (kernel delivers cmsgs no later than
// the byte span they were attached to).
//
// All methods on the loop thread.
#ifndef SRC_NET_FRAMED_CHANNEL_H_
#define SRC_NET_FRAMED_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "src/net/event_loop.h"
#include "src/net/fd.h"

namespace lard {

class FramedChannel {
 public:
  // type, payload, fd (invalid unless the frame carried one).
  using MessageCallback = std::function<void(uint8_t type, std::string payload, UniqueFd fd)>;

  // `fd` must be non-blocking. fd attachment requires a unix-domain socket.
  FramedChannel(EventLoop* loop, UniqueFd fd);
  ~FramedChannel();

  FramedChannel(const FramedChannel&) = delete;
  FramedChannel& operator=(const FramedChannel&) = delete;

  void set_on_message(MessageCallback on_message) { on_message_ = std::move(on_message); }
  void set_on_close(std::function<void()> on_close) { on_close_ = std::move(on_close); }

  void Start();

  void Send(uint8_t type, std::string_view payload);
  // Takes ownership of `fd`; it is closed once transmitted.
  void SendWithFd(uint8_t type, std::string_view payload, UniqueFd fd);

  void Close();
  bool open() const { return open_; }
  int fd() const { return fd_.get(); }

  static constexpr size_t kMaxPayload = 16 * 1024 * 1024;

 private:
  struct OutFrame {
    std::string bytes;   // header + payload
    size_t offset = 0;
    UniqueFd fd;         // sent with the frame's first byte
  };

  void HandleEvents(uint32_t events);
  void HandleReadable();
  void Flush();
  void ParseFrames();
  void UpdateInterest();
  void FailAndClose();

  EventLoop* loop_;
  UniqueFd fd_;
  bool open_ = false;

  MessageCallback on_message_;
  std::function<void()> on_close_;

  std::deque<OutFrame> out_;
  std::string in_buffer_;
  std::deque<UniqueFd> received_fds_;
  uint32_t interest_ = 0;
};

}  // namespace lard

#endif  // SRC_NET_FRAMED_CHANNEL_H_
