#include "src/net/timer_wheel.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace lard {

TimerWheel::TimerWheel(int64_t tick_ms, size_t num_slots) : tick_ms_(tick_ms) {
  LARD_CHECK(tick_ms_ > 0);
  LARD_CHECK(num_slots > 0 && (num_slots & (num_slots - 1)) == 0)
      << "slot count must be a power of two";
  slots_.assign(num_slots, nullptr);
}

TimerWheel::~TimerWheel() = default;

void TimerWheel::Link(Entry* entry) {
  Entry*& head = slots_[SlotFor(entry->deadline_tick)];
  entry->prev = nullptr;
  entry->next = head;
  if (head != nullptr) {
    head->prev = entry;
  }
  head = entry;
  entry->linked = true;
}

void TimerWheel::Unlink(Entry* entry) {
  if (!entry->linked) {
    return;  // already queued for fire
  }
  if (entry->prev != nullptr) {
    entry->prev->next = entry->next;
  } else {
    slots_[SlotFor(entry->deadline_tick)] = entry->next;
  }
  if (entry->next != nullptr) {
    entry->next->prev = entry->prev;
  }
  entry->prev = nullptr;
  entry->next = nullptr;
  entry->linked = false;
}

void TimerWheel::Arm(TimerId id, int64_t deadline_ms, std::function<void()> fn) {
  auto entry = std::make_unique<Entry>();
  entry->id = id;
  // An already-due deadline clamps to the tick ahead of the cursor: it fires
  // on the next Advance instead of hiding behind the cursor for a rotation.
  entry->deadline_tick = std::max(TickFor(deadline_ms), cursor_ + 1);
  entry->fn = std::move(fn);
  Entry* raw = entry.get();
  const bool inserted = entries_.emplace(id, std::move(entry)).second;
  LARD_CHECK(inserted) << "timer id " << id << " armed twice";
  Link(raw);
}

bool TimerWheel::Cancel(TimerId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  Unlink(it->second.get());
  entries_.erase(it);
  return true;
}

bool TimerWheel::Rearm(TimerId id, int64_t deadline_ms) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  Entry* entry = it->second.get();
  Unlink(entry);
  entry->deadline_tick = std::max(TickFor(deadline_ms), cursor_ + 1);
  Link(entry);
  return true;
}

void TimerWheel::CollectSlot(size_t slot, int64_t tick) {
  const size_t batch_start = fire_queue_.size();
  Entry* entry = slots_[slot];
  while (entry != nullptr) {
    Entry* next = entry->next;
    if (entry->deadline_tick <= tick) {
      Unlink(entry);
      fire_queue_.push_back(entry->id);
    }
    entry = next;
  }
  // Link() pushes at the list head, so a walk yields newest-first; reverse the
  // slot's batch so timers quantized into the same tick fire in arming order
  // (FIFO — same-deadline callbacks keep their scheduling order).
  std::reverse(fire_queue_.begin() + static_cast<ptrdiff_t>(batch_start), fire_queue_.end());
}

int TimerWheel::Advance(int64_t now_ms,
                        const std::function<void(std::function<void()>&)>& runner) {
  const int64_t now_tick = now_ms / tick_ms_;
  if (now_tick <= cursor_) {
    return 0;  // same tick as last time, or a backward clock jump
  }
  fire_queue_.clear();
  if (now_tick - cursor_ >= static_cast<int64_t>(slots_.size())) {
    // The clock jumped at least one full rotation (or this is the first
    // Advance): every slot gets exactly one visit instead of a tick-by-tick
    // walk, so a suspend/resume costs O(slots + fired), not O(elapsed).
    for (size_t slot = 0; slot < slots_.size(); ++slot) {
      CollectSlot(slot, now_tick);
    }
    total_ticks_ += static_cast<uint64_t>(slots_.size());
  } else {
    for (int64_t tick = cursor_ + 1; tick <= now_tick; ++tick) {
      CollectSlot(SlotFor(tick), tick);
      ++total_ticks_;
    }
  }
  cursor_ = now_tick;

  int fired = 0;
  // Two-phase fire: entries stay in the id table until their own turn, so a
  // callback cancelling (or rearming) a sibling collected in the same batch
  // still takes effect.
  for (size_t i = 0; i < fire_queue_.size(); ++i) {
    auto it = entries_.find(fire_queue_[i]);
    if (it == entries_.end() || it->second->linked) {
      continue;  // cancelled, or rearmed back onto the wheel, mid-batch
    }
    std::function<void()> fn = std::move(it->second->fn);
    entries_.erase(it);
    if (runner != nullptr) {
      runner(fn);
    } else {
      fn();
    }
    ++fired;
  }
  fire_queue_.clear();
  total_fired_ += static_cast<uint64_t>(fired);
  return fired;
}

int64_t TimerWheel::MsUntilNext(int64_t now_ms) const {
  if (entries_.empty()) {
    return -1;
  }
  // Distance (in ticks past the cursor) to the first occupied slot: a lower
  // bound on the next deadline — a resident from a later rotation can wake
  // the caller one rotation early, which Advance then treats as a no-op.
  for (size_t d = 1; d <= slots_.size(); ++d) {
    if (slots_[SlotFor(cursor_ + static_cast<int64_t>(d))] != nullptr) {
      const int64_t at_ms = (cursor_ + static_cast<int64_t>(d)) * tick_ms_;
      return at_ms > now_ms ? at_ms - now_ms : 0;
    }
  }
  // Every live entry is sitting unlinked in a fire queue mid-Advance; the
  // caller cannot observe this state between loop iterations.
  return 0;
}

}  // namespace lard
