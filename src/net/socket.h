// Socket construction helpers for the prototype cluster. Everything runs on
// localhost: client traffic over TCP (so the data path is a real kernel TCP
// path) and intra-cluster control sessions over unix-domain sockets (so
// connection handoff can pass file descriptors, our stand-in for the paper's
// in-kernel TCP handoff).
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/net/fd.h"
#include "src/util/status.h"

namespace lard {

// Creates a listening TCP socket on 127.0.0.1. Port 0 picks a free port; the
// actual port is returned in *bound_port.
StatusOr<UniqueFd> ListenTcp(uint16_t port, uint16_t* bound_port);

// Like ListenTcp but with SO_REUSEPORT set before bind, so N reactor loops
// can each own a listening socket on the same port and let the kernel spread
// incoming connections across them (the reactor-per-core accept path).
// Fails with a status if the kernel refuses SO_REUSEPORT — callers fall back
// to one ListenTcp socket plus round-robin fd handoff.
StatusOr<UniqueFd> ListenTcpReusePort(uint16_t port, uint16_t* bound_port);

// Blocking connect to 127.0.0.1:port.
StatusOr<UniqueFd> ConnectTcp(uint16_t port);

// A connected unix-domain stream socket pair (for control sessions and fd
// passing between front-end and back-end components).
StatusOr<std::pair<UniqueFd, UniqueFd>> UnixPair();

Status SetNonBlocking(int fd, bool non_blocking);
Status SetTcpNoDelay(int fd);

}  // namespace lard

#endif  // SRC_NET_SOCKET_H_
