#include "src/obs/slo_watchdog.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/logging.h"

namespace lard {
namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kCritical:
      return "critical";
  }
  return "ok";
}

SloWatchdog::SloWatchdog(std::string component, std::vector<SloRule> rules)
    : component_(std::move(component)) {
  MutexLock lock(&mutex_);
  rules_.reserve(rules.size());
  for (SloRule& rule : rules) {
    rule.fast_window = std::max(rule.fast_window, 1);
    rule.slow_window = std::max(rule.slow_window, rule.fast_window);
    rule.clear_hold = std::max(rule.clear_hold, 1);
    RuleState state;
    state.rule = std::move(rule);
    state.ring.assign(static_cast<size_t>(state.rule.slow_window), false);
    rules_.push_back(std::move(state));
  }
}

HealthStatus SloWatchdog::RawStatus(const RuleState& state) {
  // Warm-up ticks count as clean (full windows as denominators): a store
  // with two samples must not trip a five-sample burn rule.
  const double fast_frac =
      static_cast<double>(state.fast_hot) / static_cast<double>(state.rule.fast_window);
  const double slow_frac =
      static_cast<double>(state.slow_hot) / static_cast<double>(state.rule.slow_window);
  if (fast_frac >= state.rule.fast_burn) {
    return slow_frac >= state.rule.slow_burn ? HealthStatus::kCritical : HealthStatus::kDegraded;
  }
  return HealthStatus::kOk;
}

HealthStatus SloWatchdog::Evaluate(const std::map<std::string, double>& inputs) {
  HealthStatus merged = HealthStatus::kOk;
  double pressure = 0.0;
  std::ostringstream hot_rules;
  {
    MutexLock lock(&mutex_);
    for (RuleState& state : rules_) {
      const auto it = inputs.find(state.rule.input);
      state.has_value = it != inputs.end();
      state.last_value = state.has_value ? it->second : 0.0;
      const bool violating = state.has_value && state.last_value > state.rule.ceiling;

      state.ring[state.head] = violating;
      state.head = (state.head + 1) % state.ring.size();
      state.count = std::min(state.count + 1, state.ring.size());
      state.fast_hot = 0;
      state.slow_hot = 0;
      for (size_t i = 0; i < state.count; ++i) {
        // i samples back from the newest (which sits just behind head).
        const size_t slot = (state.head + state.ring.size() - 1 - i) % state.ring.size();
        if (!state.ring[slot]) {
          continue;
        }
        ++state.slow_hot;
        if (i < static_cast<size_t>(state.rule.fast_window)) {
          ++state.fast_hot;
        }
      }

      const HealthStatus raw = RawStatus(state);
      if (raw >= state.status) {
        // Escalation is immediate; only recovery is damped.
        state.status = raw;
        state.clean_streak = 0;
      } else if (++state.clean_streak >= state.rule.clear_hold) {
        state.status = raw;
        state.clean_streak = 0;
      }

      pressure = std::max(pressure, static_cast<double>(state.fast_hot) /
                                        static_cast<double>(state.rule.fast_window));
      if (state.status > merged) {
        merged = state.status;
      }
      if (state.status != HealthStatus::kOk) {
        hot_rules << (hot_rules.tellp() > 0 ? ", " : "") << state.rule.name << "="
                  << HealthStatusName(state.status);
      }
    }
  }

  const auto previous =
      static_cast<HealthStatus>(overload_.status.load(std::memory_order_relaxed));
  overload_.pressure.store(pressure, std::memory_order_relaxed);
  overload_.status.store(static_cast<int>(merged), std::memory_order_relaxed);
  if (merged != previous) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
    LARD_LOG(WARNING) << "slo-watchdog[" << component_ << "]: " << HealthStatusName(previous)
                      << " -> " << HealthStatusName(merged)
                      << (hot_rules.tellp() > 0 ? " (" + hot_rules.str() + ")" : "");
  }
  return merged;
}

std::string SloWatchdog::ReasonsJson() const {
  MutexLock lock(&mutex_);
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const RuleState& state : rules_) {
    const double fast_frac =
        static_cast<double>(state.fast_hot) / static_cast<double>(state.rule.fast_window);
    const double slow_frac =
        static_cast<double>(state.slow_hot) / static_cast<double>(state.rule.slow_window);
    out << (first ? "" : ",") << "{\"rule\":" << JsonQuote(state.rule.name)
        << ",\"input\":" << JsonQuote(state.rule.input)
        << ",\"status\":\"" << HealthStatusName(state.status) << "\""
        << ",\"value\":" << (state.has_value ? FormatDouble(state.last_value) : "null")
        << ",\"ceiling\":" << FormatDouble(state.rule.ceiling)
        << ",\"fast_burn\":" << FormatDouble(fast_frac)
        << ",\"slow_burn\":" << FormatDouble(slow_frac) << "}";
    first = false;
  }
  out << "]";
  return out.str();
}

}  // namespace lard
