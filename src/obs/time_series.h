// Fixed-size time-series ring: the retention layer of the telemetry pipeline
// (docs/OBSERVABILITY.md, "Telemetry & health"). One store per front-end and
// per back-end holds ~5 minutes of periodic samples — counter rates,
// histogram window-quantiles and gauges — appended from that component's
// loop-posted sampling timer and read by the admin plane.
//
// Steady state is zero-allocation: AddSeries preallocates each series' value
// ring at setup time (a late AddSeries backfills NaN), and Append only writes
// into the preallocated slots. Callers inject timestamps, so the simulator
// twin records virtual time and produces deterministic series.
#ifndef SRC_OBS_TIME_SERIES_H_
#define SRC_OBS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace lard {

struct TimeSeriesConfig {
  // Nominal sampling period; informational (rendered in JSON so consumers
  // can interpret gaps) — the store records whatever timestamps it is given.
  int interval_ms = 1000;
  // Ring capacity in samples; 300 x 1s = 5 minutes of retention.
  int capacity = 300;
};

class TimeSeriesStore {
 public:
  struct Point {
    int64_t t_ms = 0;
    double value = 0.0;
  };

  explicit TimeSeriesStore(const TimeSeriesConfig& config);

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  // Find-or-create; returns the series index used with Append. Allocates the
  // value ring (setup-time work); a series added after samples were recorded
  // reads NaN ("no data") for the older slots.
  int AddSeries(const std::string& name) LARD_EXCLUDES(mutex_);
  // Index of an existing series, -1 when absent. Never allocates.
  int FindSeries(const std::string& name) const LARD_EXCLUDES(mutex_);

  // Records one sampling tick: every series gets NaN for this slot, then the
  // (index, value) pairs overwrite their series. Out-of-range indices are
  // ignored. Zero-allocation.
  void Append(int64_t t_ms, const std::vector<std::pair<int, double>>& values)
      LARD_EXCLUDES(mutex_);

  // Points for `name` no older than `window_ms` before the newest sample
  // (window_ms <= 0: full retention), oldest first. NaN slots are skipped.
  std::vector<Point> Points(const std::string& name, int64_t window_ms) const
      LARD_EXCLUDES(mutex_);
  // Newest non-NaN value of `name`; NaN when the series is absent or empty.
  double Latest(const std::string& name) const LARD_EXCLUDES(mutex_);

  std::vector<std::string> SeriesNames() const LARD_EXCLUDES(mutex_);
  int64_t last_t_ms() const LARD_EXCLUDES(mutex_);  // 0 when empty
  size_t num_samples() const LARD_EXCLUDES(mutex_);
  int interval_ms() const { return config_.interval_ms; }
  int capacity() const { return config_.capacity; }

  // {"interval_ms":N,"series":{"name":[[t,v],...]}} — series whose name
  // contains `metric_filter` (empty: all), samples within `window_ms` of the
  // newest (<= 0: all). NaN samples render as null. Deterministic: series
  // sorted by name, samples oldest first.
  std::string RenderJson(const std::string& metric_filter, int64_t window_ms) const
      LARD_EXCLUDES(mutex_);

 private:
  struct Series {
    std::string name;
    std::vector<double> ring;  // capacity slots, NaN = no sample
  };

  // Slot of the i-th oldest stored sample. Requires count_ > 0, i < count_.
  size_t SlotForAge(size_t i) const LARD_REQUIRES(mutex_);

  const TimeSeriesConfig config_;
  mutable Mutex mutex_;
  std::vector<Series> series_ LARD_GUARDED_BY(mutex_);
  std::map<std::string, int> index_ LARD_GUARDED_BY(mutex_);
  std::vector<int64_t> t_ring_ LARD_GUARDED_BY(mutex_);
  size_t head_ LARD_GUARDED_BY(mutex_) = 0;   // next slot to write
  size_t count_ LARD_GUARDED_BY(mutex_) = 0;  // stored samples, <= capacity
};

}  // namespace lard

#endif  // SRC_OBS_TIME_SERIES_H_
