#include "src/obs/process_stats.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>

#if defined(__linux__)
#include <dirent.h>
#endif

#ifndef LARD_VERSION
#define LARD_VERSION "dev"
#endif

namespace lard {
namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  // Anchored at the first telemetry touch, not true exec time — close enough
  // for an uptime gauge and portable without parsing /proc/self/stat.
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return start;
}

double ReadRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0.0;
  }
  long total_pages = 0;
  long rss_pages = 0;
  const int matched = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) {
    return 0.0;
  }
  return static_cast<double>(rss_pages) * static_cast<double>(::sysconf(_SC_PAGESIZE));
#else
  return 0.0;
#endif
}

double CountOpenFds() {
#if defined(__linux__)
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return 0.0;
  }
  double count = 0.0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') {
      count += 1.0;  // includes the opendir fd itself; off-by-one is fine
    }
  }
  ::closedir(dir);
  return count;
#else
  return 0.0;
#endif
}

}  // namespace

const char* BuildCompiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* BuildSanitizer() {
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return "thread";
#elif __has_feature(address_sanitizer)
  return "address";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__SANITIZE_ADDRESS__)
  return "address";
#else
  return "none";
#endif
}

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  stats.rss_bytes = ReadRssBytes();
  stats.open_fds = CountOpenFds();
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - ProcessStart()).count();
  return stats;
}

void UpdateProcessMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  const std::string build_info = std::string("lard_build_info{version=\"") + LARD_VERSION +
                                 "\",compiler=\"" + BuildCompiler() + "\",sanitizer=\"" +
                                 BuildSanitizer() + "\"}";
  registry->Gauge(build_info)->Set(1.0);
  const ProcessStats stats = ReadProcessStats();
  registry->Gauge("lard_process_uptime_seconds")->Set(stats.uptime_seconds);
  registry->Gauge("lard_process_rss_bytes")->Set(stats.rss_bytes);
  registry->Gauge("lard_process_open_fds")->Set(stats.open_fds);
}

}  // namespace lard
