#include "src/obs/samplers.h"

namespace lard {

HistogramWindowSampler::Window HistogramWindowSampler::Sample(const MetricHistogram& histogram) {
  uint64_t current[MetricHistogram::kBuckets];
  histogram.SnapshotBuckets(current);

  uint64_t delta[MetricHistogram::kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < MetricHistogram::kBuckets; ++i) {
    // A bucket that shrank means the histogram was reset; count what's there.
    const uint64_t prev = (has_prev_ && prev_buckets_[i] <= current[i]) ? prev_buckets_[i] : 0;
    delta[i] = current[i] - prev;
    total += delta[i];
    prev_buckets_[i] = current[i];
  }
  has_prev_ = true;

  Window window;
  window.count = total;
  if (total == 0) {
    return window;
  }
  const double targets[3] = {0.50 * static_cast<double>(total),
                             0.95 * static_cast<double>(total),
                             0.99 * static_cast<double>(total)};
  double* outputs[3] = {&window.p50, &window.p95, &window.p99};
  uint64_t seen = 0;
  int next = 0;
  for (int i = 0; i < MetricHistogram::kBuckets && next < 3; ++i) {
    seen += delta[i];
    while (next < 3 && static_cast<double>(seen) >= targets[next]) {
      *outputs[next] = MetricHistogram::BucketUpperBound(i);
      ++next;
    }
  }
  return window;
}

}  // namespace lard
