#include "src/obs/time_series.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace lard {
namespace {

constexpr double kNoSample = std::numeric_limits<double>::quiet_NaN();

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatValue(double value) {
  if (std::isnan(value)) {
    return "null";  // NaN is not valid JSON
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(const TimeSeriesConfig& config)
    : config_{config.interval_ms, std::max(config.capacity, 1)} {
  MutexLock lock(&mutex_);
  t_ring_.assign(static_cast<size_t>(config_.capacity), 0);
}

int TimeSeriesStore::AddSeries(const std::string& name) {
  MutexLock lock(&mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const int idx = static_cast<int>(series_.size());
  series_.push_back(Series{name, std::vector<double>(static_cast<size_t>(config_.capacity),
                                                     kNoSample)});
  index_[name] = idx;
  return idx;
}

int TimeSeriesStore::FindSeries(const std::string& name) const {
  MutexLock lock(&mutex_);
  const auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

void TimeSeriesStore::Append(int64_t t_ms, const std::vector<std::pair<int, double>>& values) {
  MutexLock lock(&mutex_);
  const size_t slot = head_;
  t_ring_[slot] = t_ms;
  for (Series& series : series_) {
    series.ring[slot] = kNoSample;
  }
  for (const auto& [idx, value] : values) {
    if (idx >= 0 && static_cast<size_t>(idx) < series_.size()) {
      series_[static_cast<size_t>(idx)].ring[slot] = value;
    }
  }
  head_ = (head_ + 1) % static_cast<size_t>(config_.capacity);
  count_ = std::min(count_ + 1, static_cast<size_t>(config_.capacity));
}

size_t TimeSeriesStore::SlotForAge(size_t i) const {
  const size_t cap = static_cast<size_t>(config_.capacity);
  // head_ is one past the newest sample; the oldest lives count_ slots back.
  return (head_ + cap - count_ + i) % cap;
}

std::vector<TimeSeriesStore::Point> TimeSeriesStore::Points(const std::string& name,
                                                            int64_t window_ms) const {
  MutexLock lock(&mutex_);
  std::vector<Point> out;
  const auto it = index_.find(name);
  if (it == index_.end() || count_ == 0) {
    return out;
  }
  const Series& series = series_[static_cast<size_t>(it->second)];
  const int64_t newest = t_ring_[SlotForAge(count_ - 1)];
  for (size_t i = 0; i < count_; ++i) {
    const size_t slot = SlotForAge(i);
    if (window_ms > 0 && newest - t_ring_[slot] > window_ms) {
      continue;
    }
    if (std::isnan(series.ring[slot])) {
      continue;
    }
    out.push_back(Point{t_ring_[slot], series.ring[slot]});
  }
  return out;
}

double TimeSeriesStore::Latest(const std::string& name) const {
  MutexLock lock(&mutex_);
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return kNoSample;
  }
  const Series& series = series_[static_cast<size_t>(it->second)];
  for (size_t i = count_; i > 0; --i) {
    const double value = series.ring[SlotForAge(i - 1)];
    if (!std::isnan(value)) {
      return value;
    }
  }
  return kNoSample;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, idx] : index_) {
    (void)idx;
    names.push_back(name);
  }
  return names;
}

int64_t TimeSeriesStore::last_t_ms() const {
  MutexLock lock(&mutex_);
  return count_ == 0 ? 0 : t_ring_[SlotForAge(count_ - 1)];
}

size_t TimeSeriesStore::num_samples() const {
  MutexLock lock(&mutex_);
  return count_;
}

std::string TimeSeriesStore::RenderJson(const std::string& metric_filter,
                                        int64_t window_ms) const {
  MutexLock lock(&mutex_);
  std::ostringstream out;
  out << "{\"interval_ms\":" << config_.interval_ms << ",\"series\":{";
  const int64_t newest = count_ == 0 ? 0 : t_ring_[SlotForAge(count_ - 1)];
  bool first_series = true;
  for (const auto& [name, idx] : index_) {  // map order: sorted, deterministic
    if (!metric_filter.empty() && name.find(metric_filter) == std::string::npos) {
      continue;
    }
    out << (first_series ? "" : ",") << JsonQuote(name) << ":[";
    first_series = false;
    const Series& series = series_[static_cast<size_t>(idx)];
    bool first_point = true;
    for (size_t i = 0; i < count_; ++i) {
      const size_t slot = SlotForAge(i);
      if (window_ms > 0 && newest - t_ring_[slot] > window_ms) {
        continue;
      }
      out << (first_point ? "" : ",") << "[" << t_ring_[slot] << ","
          << FormatValue(series.ring[slot]) << "]";
      first_point = false;
    }
    out << "]";
  }
  out << "}}";
  return out.str();
}

}  // namespace lard
