// Process-level observability: build info, uptime, RSS and open-fd gauges.
// Reads /proc/self (Linux); on platforms without procfs the gauges stay 0.
#ifndef SRC_OBS_PROCESS_STATS_H_
#define SRC_OBS_PROCESS_STATS_H_

#include "src/util/metrics.h"

namespace lard {

struct ProcessStats {
  double rss_bytes = 0.0;
  double open_fds = 0.0;
  double uptime_seconds = 0.0;
};

// Snapshot of the current process (uptime is measured from the first call).
ProcessStats ReadProcessStats();

// Registers lard_build_info{version=..,compiler=..,sanitizer=..} = 1 (static)
// plus lard_process_uptime_seconds / lard_process_rss_bytes /
// lard_process_open_fds, and refreshes the latter three from ReadProcessStats.
// Idempotent; call again (e.g. from a /metrics pre-render hook or a telemetry
// tick) to refresh.
void UpdateProcessMetrics(MetricsRegistry* registry);

// "clang 17.0.6" / "gcc 13.2.0" — the toolchain that built this binary.
const char* BuildCompiler();
// "address" / "thread" / "none".
const char* BuildSanitizer();

}  // namespace lard

#endif  // SRC_OBS_PROCESS_STATS_H_
