// Window samplers: turn the cumulative instruments in MetricsRegistry into
// the per-interval values a TimeSeriesStore records. Each sampler keeps the
// previous cumulative state and emits the delta, so a 1s tick yields rates
// ("requests/s") and window quantiles ("p99 over the last second") rather
// than since-process-start aggregates.
//
// Samplers are plain value types owned by whichever component runs the
// sampling timer; they are not thread-safe (one owner, one loop).
#ifndef SRC_OBS_SAMPLERS_H_
#define SRC_OBS_SAMPLERS_H_

#include <cstdint>

#include "src/util/metrics.h"

namespace lard {

// Per-second rate of a monotonic counter. A cumulative value that goes
// backwards (process restart, counter reset) restarts the baseline at zero
// instead of emitting a huge negative rate.
class CounterRateSampler {
 public:
  double Sample(uint64_t current, double dt_seconds) {
    uint64_t prev = prev_;
    if (!has_prev_ || current < prev) {
      prev = 0;  // reset: everything seen this window counts
    }
    prev_ = current;
    has_prev_ = true;
    if (dt_seconds <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(current - prev) / dt_seconds;
  }

 private:
  uint64_t prev_ = 0;
  bool has_prev_ = false;
};

// Window quantiles of a MetricHistogram: snapshots the cumulative buckets
// each tick and computes p50/p95/p99 over the bucket *deltas*, i.e. only the
// samples observed since the previous tick.
class HistogramWindowSampler {
 public:
  struct Window {
    uint64_t count = 0;  // samples in the window
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  Window Sample(const MetricHistogram& histogram);

 private:
  uint64_t prev_buckets_[MetricHistogram::kBuckets] = {};
  bool has_prev_ = false;
};

}  // namespace lard

#endif  // SRC_OBS_SAMPLERS_H_
