// SLO watchdog: declarative burn-rate rules over sampled telemetry.
//
// Each rule watches one named input (a value the telemetry tick extracts from
// its TimeSeriesStore — p99 latency, giveup rate, load skew, ...) against a
// ceiling, over two windows of recent ticks:
//   * fast window hot  (>= fast_burn of the last fast_window ticks violate)
//       -> degraded: something is wrong right now;
//   * fast AND slow windows hot
//       -> critical: it has been wrong long enough to burn real error budget.
// Recovery is damped: a rule must stay clean for clear_hold consecutive
// ticks before its status steps back down, so a boundary-riding signal
// cannot flap the cluster between ok and degraded every sample.
//
// Evaluate() runs on one thread (the owner's telemetry tick); status reads
// (admin plane, admission control) are cross-thread and go through the
// internal mutex or the lock-free OverloadState mirror.
#ifndef SRC_OBS_SLO_WATCHDOG_H_
#define SRC_OBS_SLO_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace lard {

enum class HealthStatus { kOk = 0, kDegraded = 1, kCritical = 2 };

const char* HealthStatusName(HealthStatus status);

struct SloRule {
  std::string name;    // "fe_p99_latency_us"
  std::string input;   // key into the Evaluate() input map
  double ceiling = 0;  // violation when input > ceiling
  int fast_window = 5;     // ticks
  int slow_window = 60;    // ticks, >= fast_window
  double fast_burn = 0.6;  // violating fraction of the fast window
  double slow_burn = 0.5;  // violating fraction of the slow window
  int clear_hold = 3;      // clean ticks required before stepping down
};

// Lock-free mirror of the merged verdict, exported for admission control: a
// request path can read it without touching the watchdog mutex.
struct OverloadState {
  std::atomic<int> status{0};        // HealthStatus
  std::atomic<double> pressure{0.0};  // max fast-window burn fraction, 0..1
};

class SloWatchdog {
 public:
  // `component` labels the WARNING transition logs ("fe0").
  SloWatchdog(std::string component, std::vector<SloRule> rules);

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  // One telemetry tick. Inputs missing from the map count as clean (no data
  // is not a violation). Returns the merged status after damping.
  HealthStatus Evaluate(const std::map<std::string, double>& inputs) LARD_EXCLUDES(mutex_);

  HealthStatus status() const {
    return static_cast<HealthStatus>(overload_.status.load(std::memory_order_relaxed));
  }
  const OverloadState& overload() const { return overload_; }
  // Transitions of the merged status since construction (bench + tests).
  uint64_t transitions() const { return transitions_.load(std::memory_order_relaxed); }

  // [{"rule":"..","input":"..","status":"..","value":..,"ceiling":..,
  //   "fast_burn":..,"slow_burn":..}] — machine-readable reasons, every rule.
  std::string ReasonsJson() const LARD_EXCLUDES(mutex_);

 private:
  struct RuleState {
    SloRule rule;
    std::vector<bool> ring;  // slow_window violation bits
    size_t head = 0;
    size_t count = 0;
    int fast_hot = 0;  // violations within the fast window
    int slow_hot = 0;  // violations within the slow window
    int clean_streak = 0;
    double last_value = 0.0;
    bool has_value = false;
    HealthStatus status = HealthStatus::kOk;
  };

  static HealthStatus RawStatus(const RuleState& state);

  const std::string component_;
  mutable Mutex mutex_;
  std::vector<RuleState> rules_ LARD_GUARDED_BY(mutex_);
  OverloadState overload_;
  std::atomic<uint64_t> transitions_{0};
};

}  // namespace lard

#endif  // SRC_OBS_SLO_WATCHDOG_H_
