// Trace-driven cluster simulator (Section 6): a front-end plus N back-ends,
// each back-end a CPU + disk + LRU main-memory file cache, driven closed-loop
// by a Trace and distributing requests through the shared src/core Dispatcher.
//
// Like the paper's simulator, the network is infinitely fast and data
// transmission is continuous (no TCP slow-start); throughput is limited by
// back-end CPU and disk. Front-end CPU is *accounted* (for the scalability
// experiment) but only throttles when `model_front_end_limit` is set — except
// under the relaying mechanism, where the FE data path always limits.
#ifndef SRC_SIM_CLUSTER_SIM_H_
#define SRC_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/dispatcher.h"
#include "src/core/lard_params.h"
#include "src/core/lru_cache.h"
#include "src/mesh/mesh_state.h"
#include "src/obs/time_series.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/resources.h"
#include "src/trace/trace.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/tracing.h"

namespace lard {

// A scripted control-plane event, replayed at a fixed simulated time — the
// simulator's deterministic twin of the prototype's admin API and heartbeat
// detector. kFail removes the node instantly (crash + detection, with the
// detection latency abstracted away); its in-flight requests complete but its
// connections are failed over: each affected session finishes the current
// batch, then re-opens as a fresh connection that the dispatcher re-assigns.
// kNodeDrain mirrors the prototype's reverse handoff: each connection on the
// draining node finishes its in-flight batch, then *migrates* — the
// dispatcher reassigns it to a surviving node (ReassignConnection) instead of
// pinning it until the client closes.
enum class MembershipAction { kNodeJoin, kNodeDrain, kNodeFailure };

struct MembershipEvent {
  SimTimeUs at_us = 0;
  MembershipAction action = MembershipAction::kNodeFailure;
  NodeId node = kInvalidNode;  // ignored for kNodeJoin (ids are allocated)
  // kNodeJoin only: the joining node's capacity weight (dispatcher view) and
  // true hardware speed (CPU + disk service times divide by it).
  double weight = 1.0;
  double speed = 1.0;
};

struct ClusterSimConfig {
  int num_nodes = 4;
  Policy policy = Policy::kExtendedLard;
  // Non-empty: PolicyRegistry name overriding `policy` (plugin policies).
  std::string policy_name;
  // Heterogeneous clusters. `node_speeds[i]` scales node i's real hardware:
  // CPU and disk service times divide by it (2.0 = twice as fast).
  // `node_weights[i]` is what the *dispatcher believes* about node i's
  // capacity — weighted policies normalize load by it. Keeping the two
  // separate lets benches measure what happens when belief and hardware
  // disagree (e.g. unweighted extLARD on a skewed cluster: weights all 1.0,
  // speeds skewed). Both are padded with 1.0 to num_nodes.
  std::vector<double> node_weights;
  std::vector<double> node_speeds;
  Mechanism mechanism = Mechanism::kBackEndForwarding;
  LardParams lard_params;
  ServerCostModel server_costs = ApacheCosts();
  DiskCostModel disk_costs;
  FrontEndCostModel fe_costs;

  // Back-end main-memory file cache (and the dispatcher's model of it).
  uint64_t backend_cache_bytes = 85ull * 1024 * 1024;

  // Closed-loop client population: this many sessions are kept in flight per
  // back-end node ("the request arrival rate was matched to the aggregate
  // throughput of the server").
  int concurrent_sessions_per_node = 64;

  // When false (default) the P-HTTP session structure of the trace is used;
  // when true the trace is flattened to one connection per request.
  bool http10 = false;

  // Replay the trace's inter-batch think times instead of sending the next
  // batch as soon as the previous one completes.
  bool use_think_times = false;

  // Serialize front-end work through a real CPU (otherwise only accounted).
  bool model_front_end_limit = false;

  // Reactor-per-core front ends: event loops (cores) per front-end, the
  // simulator's twin of ClusterConfig::fe_loops. Each session is pinned to
  // one loop of its front-end for life (as in the prototype) and, when
  // model_front_end_limit is set, each loop is its own serialized CPU — so
  // an FE saturates at ~fe_loops times the single-loop knee. 1 = the
  // classic single-loop front-end, bit-identical to before.
  int fe_loops = 1;

  // Replicated front-end tier (the mesh). Sessions are dealt round-robin
  // across this many front-ends, each with its own Dispatcher — its own load
  // accounting, virtual caches and (when model_front_end_limit is set) its
  // own CPU — kept approximately consistent by gossip. 1 = the classic
  // single-dispatcher simulator, bit-identical to before the mesh existed.
  int num_frontends = 1;
  // Mesh sync period: every interval each front-end's delta (per-node local
  // load, weights, membership epoch, vcache hints) is encoded through the
  // real gossip wire codec and applied by every peer. Larger intervals mean
  // staler remote state — the multi_frontend bench sweeps this.
  SimTimeUs gossip_interval_us = 5000;

  // Control-plane scenario to replay (sorted or not; scheduled by at_us).
  std::vector<MembershipEvent> membership_events;

  // Failure replay — the deterministic twin of the prototype's
  // crash-transparent request replay. When set, a NodeFailure no longer lets
  // the dead node's in-flight work complete: each orphaned connection is
  // reassigned to a survivor at the crash instant (same ReassignConnection
  // path as the prototype), its in-flight *idempotent* requests re-issue
  // there (counted in `replayed_requests`), and its non-idempotent ones are
  // lost (client-visible failure; `lost_requests`). The shared invariant
  // with the prototype: lost_requests == non_idempotent_in_flight.
  bool failure_replay = false;
  // Fraction of requests carrying a non-idempotent method (POST-like);
  // decided per request with a deterministic RNG.
  double non_idempotent_fraction = 0.0;
  uint64_t replay_seed = 1234;

  // Telemetry sampling period, the simulator's deterministic twin of
  // ClusterConfig::telemetry_interval_ms: a self-rescheduling sim event
  // samples rates / ratios / gauges into a TimeSeriesStore stamped with
  // *virtual* time, so two runs of the same scenario produce byte-identical
  // series (see ClusterSim::TelemetryJson). <= 0 (default) disables it.
  SimTimeUs telemetry_interval_us = 0;

  // Keep-alive idle deadline, the deterministic twin of
  // ClusterConfig::idle_timeout_ms: with use_think_times on, a session whose
  // think gap exceeds this is closed at exactly think-start + idle_timeout_us
  // (virtual time) and reopens a fresh connection when the client returns —
  // counted in `idle_closes`/`idle_reopens`, never in `failovers`. <= 0
  // (default) disables reaping, leaving every output byte-identical to
  // before the knob existed.
  SimTimeUs idle_timeout_us = 0;

  // Optional shared registry (lard_sim_* instruments + dispatcher gauges).
  MetricsRegistry* metrics = nullptr;
  // Optional span recorder (ring "sim"): the simulator emits the same span
  // model as the prototype — policy decisions, batch service, failure
  // replays, gossip rounds — but stamped with *virtual* time, so a sim trace
  // and a prototype trace of the same scenario line up side by side in the
  // chrome viewer. Connection ids are deterministic, so sampling picks the
  // same connections on every run.
  Tracer* tracer = nullptr;
};

struct BackendSimMetrics {
  uint64_t requests = 0;       // requests whose response this node produced
  uint64_t cache_hits = 0;
  uint64_t disk_reads = 0;
  uint64_t bytes_sent = 0;
  double cpu_busy_us = 0.0;
  double disk_busy_us = 0.0;
  double cpu_utilization = 0.0;
  double disk_utilization = 0.0;
};

struct ClusterSimMetrics {
  double sim_seconds = 0.0;
  uint64_t total_requests = 0;
  uint64_t total_connections = 0;
  double throughput_rps = 0.0;
  double throughput_mbps = 0.0;
  double cache_hit_rate = 0.0;
  double mean_batch_latency_ms = 0.0;
  // Utilization of the *bottleneck* front-end (== the only one when
  // num_frontends is 1); per_fe_utilization has every front-end's figure.
  double fe_utilization = 0.0;
  std::vector<double> per_fe_utilization;
  double mean_cpu_idle = 0.0;   // across back-ends (final membership)
  double mean_disk_idle = 0.0;  // across back-ends (final membership)
  std::vector<BackendSimMetrics> per_node;
  DispatcherCounters dispatcher;
  // Control plane.
  uint64_t nodes_joined = 0;
  uint64_t nodes_failed = 0;
  uint64_t nodes_drained = 0;
  uint64_t failovers = 0;    // connections re-opened after their node died
  uint64_t rehandoffs = 0;   // connections migrated off a draining node
  // Keep-alive reaping (config.idle_timeout_us > 0 only; zero otherwise).
  uint64_t idle_closes = 0;   // connections closed at the idle deadline
  uint64_t idle_reopens = 0;  // sessions that continued on a fresh connection
  // Failure replay (config.failure_replay only; all zero otherwise).
  uint64_t replayed_connections = 0;  // orphans continued on a survivor
  uint64_t replayed_requests = 0;     // idempotent in-flight requests re-issued
  uint64_t lost_requests = 0;         // non-idempotent in-flight requests dropped
  uint64_t non_idempotent_in_flight = 0;  // at crash instants; == lost_requests
  uint64_t replay_unplaceable = 0;    // orphans with no assignable survivor
  // Scripted events dropped by validation (non-positive/non-finite weight
  // or speed on a NodeJoin).
  uint64_t rejected_membership_events = 0;
  // Telemetry rows sampled (config.telemetry_interval_us > 0 only).
  uint64_t telemetry_samples = 0;

  // Front-end mesh (num_frontends > 1; zero/true otherwise).
  int frontends = 1;
  uint64_t gossip_rounds = 0;
  uint64_t gossip_deltas_applied = 0;
  uint64_t gossip_bytes = 0;         // encoded delta bytes shipped peer-to-peer
  uint64_t gossip_stale_drops = 0;
  // Applied deltas whose membership/weight beliefs disagreed with the
  // receiver's. The sim applies membership events to every replica at the
  // same instant, so this must stay 0 there; in the prototype transient
  // divergence is normal (the lard_mesh_divergence gauge tracks it).
  uint64_t gossip_divergent_deltas = 0;
  double max_gossip_lag_us = 0.0;    // oldest peer state observed at any round
  // Invariants the multi_frontend bench (and tests) assert on:
  uint64_t mesh_epoch_regressions = 0;   // monotone membership epochs: must be 0
  uint64_t ownership_violations = 0;     // a conn claimed by >1 dispatcher: must be 0
  bool mesh_epochs_converged = true;     // all dispatchers ended on one epoch
  bool mesh_load_conserved = true;       // every dispatcher's load drained to 0
};

class ClusterSim {
 public:
  // `trace` must outlive the simulator. When config.http10 is set, a
  // flattened copy is made internally.
  ClusterSim(const ClusterSimConfig& config, const Trace* trace);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  // Replays the whole trace to completion and returns the metrics.
  // Call at most once.
  ClusterSimMetrics Run();

  // The virtual-time telemetry series (null unless telemetry_interval_us > 0).
  const TimeSeriesStore* telemetry() const { return telemetry_.get(); }
  // The whole series as JSON — deterministic: byte-identical across runs of
  // the same config + trace. "{}" when telemetry is disabled.
  std::string TelemetryJson() const;

 private:
  struct Backend;
  struct SessionRun;
  class DiskQueueStats;

  void StartNextSession();
  void ApplyMembershipEvent(const MembershipEvent& event);
  // Failure-replay mode: continue one orphaned run on a survivor at the
  // crash instant — reassign the connection, re-issue its idempotent
  // in-flight requests there, drop (and count) the non-idempotent ones.
  void ReplayOrphanedRun(SessionRun* run, NodeId dead_node);
  // Completion trampoline for failure-replay mode: drops stale completions
  // from a crashed node (the replacement was already issued or the request
  // was declared lost) and survives the run finishing early.
  void OnGuardedResponseDone(uint64_t run_id, size_t index, uint32_t generation);
  SessionRun* FindRun(uint64_t run_id);
  // Re-opens a fresh dispatcher connection for a run whose node died.
  void ReopenIfLost(SessionRun* run);
  // Migrates a run off a draining node (reverse handoff) before its next
  // batch; `targets` seed the new node's virtual cache.
  void RehandoffIfDraining(SessionRun* run, const std::vector<TargetId>& targets);
  void ProcessBatch(SessionRun* run);
  void IssueRequest(SessionRun* run, size_t index, TargetId target, const Assignment& assignment);
  // Serves one request at `node`: per-request CPU, then (for a model-declared
  // miss) the disk, then transmit CPU. `cached` is the dispatcher model's
  // verdict carried by the assignment.
  void ServeAtNode(NodeId node, TargetId target, bool cached, double extra_cpu_us,
                   std::function<void()> done);
  void OnResponseDone(SessionRun* run);
  void FinishSession(SessionRun* run);
  // Runs `done` after charging `cost_us` of CPU at front-end `fe`'s event
  // loop `loop` (serialized or merely accounted, per config).
  void FrontEndWork(int fe, int loop, double cost_us, std::function<void()> done);

  // The dispatcher owning `run`'s connection (its front-end's replica).
  Dispatcher& DispatcherFor(const SessionRun* run);
  // Mesh mode only: the authoritative verdict — is `target` resident in
  // `node`'s real cache? Updates the real cache per `cache_after_miss` and
  // queues a vcache gossip hint for `fe`'s next delta.
  bool TrueCacheServe(int fe, NodeId node, TargetId target, bool cache_after_miss);
  // One mesh round: every front-end's delta travels the wire codec to every
  // peer; also runs the unique-ownership audit. Reschedules itself while
  // sessions remain.
  void GossipRound();
  // Samples one telemetry row at virtual now and reschedules itself while
  // sessions remain (the GossipRound pattern).
  void TelemetryTick();
  bool MeshMode() const { return config_.num_frontends > 1; }

  ClusterSimConfig config_;
  Trace http10_trace_;          // used only when config.http10
  const Trace* trace_;          // points at the caller's trace or http10_trace_
  EventQueue queue_;
  std::unique_ptr<DiskQueueStats> disk_stats_;
  // One dispatcher per front-end; [0] is the only one without a mesh.
  std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<MeshStateTable>> mesh_;  // empty when 1 FE
  std::vector<std::unique_ptr<Backend>> backends_;
  // Mesh mode: the back-ends' *authoritative* caches. With one front-end the
  // dispatcher's virtual caches are exact, so the simulator uses its verdicts
  // directly; with N replicas each dispatcher's view is approximate and
  // service outcomes must come from this single source of truth.
  std::vector<LruCache> true_caches_;
  // Per-front-end vcache hints accumulated since the last gossip round,
  // deduplicated ((node << 32) | target keys).
  std::vector<std::unordered_set<uint64_t>> pending_hints_;
  std::vector<uint64_t> gossip_seq_;
  // One serialized CPU per (front-end, loop) when FE limiting is on; slot
  // fe * fe_loops + loop.
  std::vector<std::unique_ptr<FifoServer>> fe_cpus_;
  std::vector<double> fe_accounted_us_;  // one slot per front-end
  std::vector<int> next_fe_loop_;        // per-FE round-robin loop dealing

  size_t next_session_ = 0;
  size_t sessions_done_ = 0;
  ConnId next_conn_id_ = 1;
  uint64_t next_run_id_ = 1;
  std::vector<std::unique_ptr<SessionRun>> active_runs_;
  // Failure-replay mode: run-id lookup for the guarded completion
  // trampoline, which fires once per response (O(1) beats scanning
  // active_runs_ on the hot path).
  std::unordered_map<uint64_t, SessionRun*> runs_by_id_;

  uint64_t total_requests_ = 0;
  uint64_t total_bytes_ = 0;
  StreamingStats batch_latency_us_;
  bool ran_ = false;

  // Virtual-time telemetry (config.telemetry_interval_us > 0 only). The
  // prev_* snapshots turn cumulative totals into per-tick rates/ratios.
  std::unique_ptr<TimeSeriesStore> telemetry_;
  uint64_t telemetry_prev_requests_ = 0;
  uint64_t telemetry_prev_bytes_ = 0;
  uint64_t telemetry_prev_hits_ = 0;
  uint64_t telemetry_prev_served_ = 0;
  double telemetry_prev_latency_sum_ = 0.0;
  int64_t telemetry_prev_latency_n_ = 0;
  uint64_t telemetry_prev_idle_closes_ = 0;

  // Control plane.
  uint64_t nodes_joined_ = 0;
  uint64_t nodes_failed_ = 0;
  uint64_t nodes_drained_ = 0;
  uint64_t failovers_ = 0;
  uint64_t rehandoffs_ = 0;
  // Keep-alive reaping (config.idle_timeout_us > 0 only).
  uint64_t idle_closes_ = 0;
  uint64_t idle_reopens_ = 0;
  uint64_t rejected_membership_events_ = 0;
  // Failure replay.
  std::unique_ptr<Rng> replay_rng_;  // per-request idempotency draws
  uint64_t replayed_connections_ = 0;
  uint64_t replayed_requests_ = 0;
  uint64_t lost_requests_ = 0;
  uint64_t non_idempotent_in_flight_ = 0;
  uint64_t replay_unplaceable_ = 0;

  // Mesh bookkeeping.
  uint64_t gossip_rounds_ = 0;
  uint64_t gossip_deltas_applied_ = 0;
  uint64_t gossip_bytes_ = 0;
  uint64_t gossip_divergent_deltas_ = 0;
  uint64_t ownership_violations_ = 0;
  double max_gossip_lag_us_ = 0.0;
  Tracer* tracer_ = nullptr;
  TraceRing* trace_ring_ = nullptr;
  MetricHistogram* metric_batch_latency_ = nullptr;
  MetricCounter* metric_requests_ = nullptr;
  MetricCounter* metric_failovers_ = nullptr;
  MetricCounter* metric_rehandoffs_ = nullptr;
};

}  // namespace lard

#endif  // SRC_SIM_CLUSTER_SIM_H_
