#include "src/sim/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "src/mesh/gossip.h"
#include "src/util/logging.h"

namespace lard {

namespace {

// A node's true hardware speed scales every service time it performs: the
// disk cost model's latencies divide by `speed` at construction, CPU work at
// submission (SubmitCpu below).
DiskCostModel ScaleDiskCosts(DiskCostModel costs, double speed) {
  costs.initial_latency_us /= speed;
  costs.transfer_us_per_4kb /= speed;
  costs.extra_seek_us /= speed;
  return costs;
}

void AccumulateCounters(DispatcherCounters* total, const DispatcherCounters& part) {
  total->connections += part.connections;
  total->requests += part.requests;
  total->handoffs += part.handoffs;
  total->local_serves += part.local_serves;
  total->forwards += part.forwards;
  total->migrations += part.migrations;
  total->relays += part.relays;
  total->served_without_caching += part.served_without_caching;
  total->nodes_added += part.nodes_added;
  total->nodes_drained += part.nodes_drained;
  total->nodes_removed += part.nodes_removed;
  total->orphaned_connections += part.orphaned_connections;
  total->reassignments += part.reassignments;
  total->failure_reassignments += part.failure_reassignments;
}

}  // namespace

// One back-end node: CPU and disk, optionally speed-skewed (heterogeneous
// clusters). With a single front-end there is exactly one cache model in the
// simulator — the dispatcher's — shared by policy and service, as in the
// paper's simulator; each assignment carries the model's hit/miss verdict.
// With a replicated front-end tier the dispatchers' views are approximate and
// the authoritative caches live in ClusterSim::true_caches_.
struct ClusterSim::Backend {
  Backend(EventQueue* queue, const DiskCostModel& disk_costs, double speed_factor)
      : cpu(queue), disk(queue, ScaleDiskCosts(disk_costs, speed_factor)), speed(speed_factor) {}

  // All CPU service times funnel through here so the speed skew applies
  // uniformly.
  void SubmitCpu(double service_us, std::function<void()> done) {
    cpu.Submit(service_us / speed, std::move(done));
  }

  FifoServer cpu;
  DiskServer disk;
  double speed = 1.0;
  BackendSimMetrics metrics;
};

// Adapts the back-ends' disk queues to the dispatcher's feedback interface
// (the paper conveys exactly this signal over the handoff control sessions;
// with N front-ends each one has its own control sessions, so every replica
// reads the same fresh value).
class ClusterSim::DiskQueueStats final : public BackendStatsProvider {
 public:
  explicit DiskQueueStats(const std::vector<std::unique_ptr<Backend>>* backends)
      : backends_(backends) {}
  int DiskQueueLength(NodeId node) const override {
    return (*backends_)[static_cast<size_t>(node)]->disk.queue_length();
  }

 private:
  const std::vector<std::unique_ptr<Backend>>* backends_;
};

// Replay state of one in-flight session (= one persistent connection).
struct ClusterSim::SessionRun {
  const TraceSession* session = nullptr;
  ConnId conn = 0;
  uint64_t id = 0;  // stable handle for guarded completion callbacks
  int fe = 0;       // owning front-end (index into dispatchers_)
  int fe_loop = 0;  // owning event loop within that front-end (pinned for life)
  size_t next_batch = 0;
  size_t outstanding = 0;       // responses pending in the current batch
  SimTimeUs batch_start_us = 0;
  bool first_batch = true;
  // Failure-replay bookkeeping (config.failure_replay only): one record per
  // request of the current batch. A crash of the serving node re-issues the
  // idempotent undone ones elsewhere (bumping `generation` so the dead
  // node's still-scheduled completion is recognized as stale) and declares
  // the non-idempotent ones lost.
  struct InflightRequest {
    TargetId target = kInvalidTarget;
    NodeId node = kInvalidNode;
    bool idempotent = true;
    bool done = false;
    uint32_t generation = 0;
  };
  std::vector<InflightRequest> inflight;
  uint32_t next_generation = 0;
  // The handling node died (NodeFailure): the dispatcher state for `conn` is
  // gone. Once the current batch's in-flight responses drain, the client
  // reconnects — the run continues on a fresh ConnId the dispatcher re-assigns.
  bool conn_lost = false;
  // The handling node is draining (NodeDrain): before the next batch the
  // connection migrates — the dispatcher reassigns it to a surviving node,
  // mirroring the prototype's giveback/re-handoff.
  bool drain_pending = false;
  // The connection was reaped at the keep-alive deadline mid-think
  // (config.idle_timeout_us). Distinguishes the reopen from a failover:
  // the client reconnecting after an idle close is routine P-HTTP churn,
  // not a recovery event.
  bool idle_closed = false;
};

ClusterSim::ClusterSim(const ClusterSimConfig& config, const Trace* trace) : config_(config) {
  LARD_CHECK(trace != nullptr);
  LARD_CHECK(config_.num_nodes > 0);
  LARD_CHECK(config_.num_frontends > 0);
  LARD_CHECK(config_.num_frontends == 1 || config_.gossip_interval_us > 0)
      << "a replicated front-end tier needs a positive gossip interval";
  if (config_.http10) {
    http10_trace_ = trace->ToHttp10();
    trace_ = &http10_trace_;
  } else {
    trace_ = trace;
  }

  backends_.reserve(static_cast<size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    const double speed = static_cast<size_t>(i) < config_.node_speeds.size()
                             ? config_.node_speeds[static_cast<size_t>(i)]
                             : 1.0;
    LARD_CHECK(speed > 0.0) << "node speed must be positive";
    backends_.push_back(std::make_unique<Backend>(&queue_, config_.disk_costs, speed));
    if (config_.num_frontends > 1) {
      true_caches_.emplace_back(config_.backend_cache_bytes);
    }
  }
  disk_stats_ = std::make_unique<DiskQueueStats>(&backends_);

  if (config_.fe_loops < 1) {
    config_.fe_loops = 1;
  }
  const int frontends = config_.num_frontends;
  pending_hints_.resize(static_cast<size_t>(frontends));
  gossip_seq_.assign(static_cast<size_t>(frontends), 0);
  fe_accounted_us_.assign(static_cast<size_t>(frontends), 0.0);
  next_fe_loop_.assign(static_cast<size_t>(frontends), 0);
  if (frontends > 1) {
    for (int fe = 0; fe < frontends; ++fe) {
      mesh_.push_back(std::make_unique<MeshStateTable>(static_cast<uint32_t>(fe)));
    }
  }
  for (int fe = 0; fe < frontends; ++fe) {
    DispatcherConfig dispatch_config;
    dispatch_config.policy = config_.policy;
    dispatch_config.policy_name = config_.policy_name;
    dispatch_config.mechanism = config_.mechanism;
    dispatch_config.params = config_.lard_params;
    dispatch_config.num_nodes = config_.num_nodes;
    dispatch_config.node_weights = config_.node_weights;
    dispatch_config.virtual_cache_bytes = config_.backend_cache_bytes;
    // Instrument gauges describe the whole cluster; publish replica 0 only
    // so N front-ends don't fight over one gauge family.
    dispatch_config.metrics = fe == 0 ? config_.metrics : nullptr;
    dispatch_config.remote_loads = frontends > 1 ? mesh_[static_cast<size_t>(fe)].get() : nullptr;
    dispatchers_.push_back(
        std::make_unique<Dispatcher>(dispatch_config, &trace_->catalog(), disk_stats_.get()));
  }

  if (config_.model_front_end_limit || config_.mechanism == Mechanism::kRelayingFrontEnd) {
    // One serialized CPU per (front-end, loop): the reactor-per-core FE's
    // capacity model. Sessions pin to a loop, so per-loop queues form just
    // like the prototype's per-reactor epoll loops.
    for (int fe = 0; fe < frontends * config_.fe_loops; ++fe) {
      fe_cpus_.push_back(std::make_unique<FifoServer>(&queue_));
    }
  }
  if (config_.failure_replay) {
    replay_rng_ = std::make_unique<Rng>(config_.replay_seed);
  }
  tracer_ = config_.tracer;
  if (tracer_ != nullptr) {
    trace_ring_ = tracer_->Ring("sim");
  }
  if (config_.metrics != nullptr) {
    metric_batch_latency_ = config_.metrics->Histogram("lard_sim_batch_latency_us");
    metric_requests_ = config_.metrics->Counter("lard_sim_requests_total");
    metric_failovers_ = config_.metrics->Counter("lard_sim_failovers_total");
    metric_rehandoffs_ = config_.metrics->Counter("lard_sim_rehandoffs_total");
  }
  if (config_.telemetry_interval_us > 0) {
    TimeSeriesConfig series_config;
    series_config.interval_ms = std::max<int64_t>(1, config_.telemetry_interval_us / 1000);
    telemetry_ = std::make_unique<TimeSeriesStore>(series_config);
    // Fixed registration order == fixed RenderJson order (map by name, but
    // the set is static): the byte-identical contract depends only on the
    // sampled values, which virtual time makes deterministic.
    telemetry_->AddSeries("request_rate");
    telemetry_->AddSeries("byte_rate_mbps");
    telemetry_->AddSeries("cache_hit_ratio");
    telemetry_->AddSeries("batch_latency_mean_us");
    telemetry_->AddSeries("active_sessions");
    if (config_.idle_timeout_us > 0) {
      // Registered only when the knob is on so runs with it off stay
      // byte-identical to pre-knob outputs.
      telemetry_->AddSeries("idle_close_rate");
    }
  }
}

Dispatcher& ClusterSim::DispatcherFor(const SessionRun* run) {
  return *dispatchers_[static_cast<size_t>(run->fe)];
}

void ClusterSim::ApplyMembershipEvent(const MembershipEvent& event) {
  switch (event.action) {
    case MembershipAction::kNodeJoin: {
      // The shared validator gates scripted joins exactly like the admin
      // API gates POST /nodes/add: a bad weight (or speed) rejects the
      // event instead of CHECK-aborting deep inside the dispatcher.
      if (!IsValidCapacityWeight(event.weight) || !IsValidCapacityWeight(event.speed)) {
        ++rejected_membership_events_;
        LARD_LOG(ERROR) << "sim t=" << queue_.now_us()
                        << "us: NodeJoin rejected (weight=" << event.weight
                        << ", speed=" << event.speed << " — must be positive and finite)";
        break;
      }
      NodeId node = kInvalidNode;
      for (auto& dispatcher : dispatchers_) {
        const NodeId assigned = dispatcher->AddNode(event.weight);
        LARD_CHECK(node == kInvalidNode || node == assigned)
            << "front-end replicas diverged on a join";
        node = assigned;
      }
      LARD_CHECK(static_cast<size_t>(node) == backends_.size());
      backends_.push_back(std::make_unique<Backend>(&queue_, config_.disk_costs, event.speed));
      if (MeshMode()) {
        true_caches_.emplace_back(config_.backend_cache_bytes);
      }
      ++nodes_joined_;
      LARD_LOG(INFO) << "sim t=" << queue_.now_us() << "us: node " << node << " joined";
      break;
    }
    case MembershipAction::kNodeDrain: {
      bool drained = false;
      for (auto& dispatcher : dispatchers_) {
        drained = dispatcher->DrainNode(event.node) || drained;
      }
      if (drained) {
        ++nodes_drained_;
        // Reverse handoff: every connection the node is handling migrates at
        // its next between-batches point instead of pinning here — matching
        // the prototype's kDrain giveback so the two report the same
        // migration counters.
        size_t marked = 0;
        for (const auto& run : active_runs_) {
          if (!run->conn_lost && DispatcherFor(run.get()).HandlingNode(run->conn) == event.node) {
            run->drain_pending = true;
            ++marked;
          }
        }
        LARD_LOG(INFO) << "sim t=" << queue_.now_us() << "us: node " << event.node
                       << " draining, " << marked << " connections to migrate";
      }
      break;
    }
    case MembershipAction::kNodeFailure: {
      std::vector<ConnId> orphans;
      bool removed = false;
      for (auto& dispatcher : dispatchers_) {
        removed = dispatcher->RemoveNode(event.node, &orphans) || removed;
      }
      if (!removed) {
        break;
      }
      ++nodes_failed_;
      // Legacy mode: in-flight service at the dead node completes (those
      // events are already scheduled — the paper's simulator has no
      // mid-service preemption); what fails over is the *connections*: each
      // orphaned session reconnects after its current batch drains.
      // Failure-replay mode: the crash interrupts the dead node's in-flight
      // work — orphans continue on a survivor at this very instant, exactly
      // like the prototype's journal replay.
      for (const ConnId conn : orphans) {
        // Two-step lookup: ReplayOrphanedRun can complete the run's batch
        // (lost responses) and erase it from active_runs_, so the iteration
        // must be over before any mutation.
        SessionRun* victim = nullptr;
        for (const auto& run : active_runs_) {
          if (run->conn == conn) {
            victim = run.get();
            break;
          }
        }
        if (victim == nullptr) {
          continue;
        }
        if (config_.failure_replay) {
          ReplayOrphanedRun(victim, event.node);
        } else {
          victim->conn_lost = true;
        }
      }
      LARD_LOG(INFO) << "sim t=" << queue_.now_us() << "us: node " << event.node << " failed, "
                     << orphans.size() << " connections orphaned";
      break;
    }
  }
}

ClusterSim::~ClusterSim() = default;

void ClusterSim::FrontEndWork(int fe, int loop, double cost_us, std::function<void()> done) {
  fe_accounted_us_[static_cast<size_t>(fe)] += cost_us;
  if (!fe_cpus_.empty()) {
    const size_t slot = static_cast<size_t>(fe) * static_cast<size_t>(config_.fe_loops) +
                        static_cast<size_t>(loop);
    fe_cpus_[slot]->Submit(cost_us, std::move(done));
  } else {
    done();
  }
}

bool ClusterSim::TrueCacheServe(int fe, NodeId node, TargetId target, bool cache_after_miss) {
  if (target == kInvalidTarget) {
    return false;
  }
  LruCache& cache = true_caches_[static_cast<size_t>(node)];
  const bool hit = cache.Touch(target);
  if (!hit && cache_after_miss) {
    cache.Insert(target, trace_->catalog().Get(target).size_bytes);
  }
  // A fetch that leaves the target resident is news for the peers'
  // virtual-cache models (dedup'd until the next gossip round); a
  // no-cache-under-disk-pressure serve is not.
  if (hit || cache_after_miss) {
    pending_hints_[static_cast<size_t>(fe)].insert(MakeHintKey(node, target));
  }
  return hit;
}

void ClusterSim::GossipRound() {
  ++gossip_rounds_;
  const int64_t now = static_cast<int64_t>(queue_.now_us());

  // Unique-ownership audit: a connection must be known to exactly the
  // dispatcher that placed it — a second claimant would double-count load
  // and double-serve batches.
  for (const auto& run : active_runs_) {
    int owners = 0;
    for (const auto& dispatcher : dispatchers_) {
      if (dispatcher->HandlingNode(run->conn) != kInvalidNode) {
        ++owners;
      }
    }
    if (owners > 1) {
      ++ownership_violations_;
    }
  }

  for (const auto& table : mesh_) {
    max_gossip_lag_us_ =
        std::max(max_gossip_lag_us_, static_cast<double>(table->OldestPeerAgeUs(now)));
  }

  const int frontends = config_.num_frontends;
  for (int fe = 0; fe < frontends; ++fe) {
    auto& hint_keys = pending_hints_[static_cast<size_t>(fe)];
    std::vector<GossipVcacheHint> hints;
    hints.reserve(hint_keys.size());
    for (const uint64_t key : hint_keys) {
      hints.push_back(HintFromKey(key));
    }
    hint_keys.clear();
    const GossipDelta delta =
        BuildGossipDelta(static_cast<uint32_t>(fe), ++gossip_seq_[static_cast<size_t>(fe)],
                         *dispatchers_[static_cast<size_t>(fe)], std::move(hints));
    const std::string encoded = EncodeGossipDelta(delta);
    for (int peer = 0; peer < frontends; ++peer) {
      if (peer == fe) {
        continue;
      }
      gossip_bytes_ += encoded.size();
      GossipDelta received;
      LARD_CHECK(DecodeGossipDelta(encoded, &received)) << "gossip codec round-trip failed";
      if (mesh_[static_cast<size_t>(peer)]->Apply(received, now)) {
        ++gossip_deltas_applied_;
        if (CountBeliefDivergence(received, *dispatchers_[static_cast<size_t>(peer)]) != 0) {
          // Membership events apply to every replica at the same simulated
          // instant, so the replicas' beliefs must never disagree here.
          ++gossip_divergent_deltas_;
        }
        for (const GossipVcacheHint& hint : received.hints) {
          dispatchers_[static_cast<size_t>(peer)]->NoteRemoteFetch(hint.node, hint.target);
        }
      }
    }
  }

  // Gossip is cluster health, not per-request flow: always recorded when
  // tracing is on, under a synthetic per-round trace id.
  RecordSpanUnsampled(tracer_, trace_ring_, uint64_t{1} << 60, 0, SpanKind::kGossip, -1,
                      now, static_cast<int64_t>(queue_.now_us()) - now,
                      "round=%llu deltas=%llu bytes=%llu",
                      static_cast<unsigned long long>(gossip_rounds_),
                      static_cast<unsigned long long>(gossip_deltas_applied_),
                      static_cast<unsigned long long>(gossip_bytes_));

  if (sessions_done_ < trace_->sessions().size()) {
    queue_.ScheduleAfter(static_cast<double>(config_.gossip_interval_us),
                         [this]() { GossipRound(); });
  }
}

void ClusterSim::TelemetryTick() {
  const double dt_seconds = static_cast<double>(config_.telemetry_interval_us) / 1e6;
  uint64_t hits = 0;
  uint64_t served = 0;
  for (const auto& backend : backends_) {
    hits += backend->metrics.cache_hits;
    served += backend->metrics.cache_hits + backend->metrics.disk_reads;
  }
  const uint64_t tick_served = served - telemetry_prev_served_;
  const uint64_t tick_hits = hits - telemetry_prev_hits_;
  const int64_t tick_batches = batch_latency_us_.count() - telemetry_prev_latency_n_;
  const double tick_latency_sum = batch_latency_us_.sum() - telemetry_prev_latency_sum_;

  std::vector<std::pair<int, double>> values;
  values.emplace_back(0, static_cast<double>(total_requests_ - telemetry_prev_requests_) /
                             dt_seconds);
  values.emplace_back(1, 8.0 * static_cast<double>(total_bytes_ - telemetry_prev_bytes_) / 1e6 /
                             dt_seconds);
  if (tick_served > 0) {
    values.emplace_back(2, static_cast<double>(tick_hits) / static_cast<double>(tick_served));
  }
  if (tick_batches > 0) {
    values.emplace_back(3, tick_latency_sum / static_cast<double>(tick_batches));
  }
  values.emplace_back(4, static_cast<double>(active_runs_.size()));
  if (config_.idle_timeout_us > 0) {
    values.emplace_back(5, static_cast<double>(idle_closes_ - telemetry_prev_idle_closes_) /
                               dt_seconds);
  }
  telemetry_->Append(queue_.now_us() / 1000, values);

  telemetry_prev_requests_ = total_requests_;
  telemetry_prev_bytes_ = total_bytes_;
  telemetry_prev_hits_ = hits;
  telemetry_prev_served_ = served;
  telemetry_prev_latency_n_ = batch_latency_us_.count();
  telemetry_prev_latency_sum_ = batch_latency_us_.sum();
  telemetry_prev_idle_closes_ = idle_closes_;

  if (sessions_done_ < trace_->sessions().size()) {
    queue_.ScheduleAfter(static_cast<double>(config_.telemetry_interval_us),
                         [this]() { TelemetryTick(); });
  }
}

std::string ClusterSim::TelemetryJson() const {
  return telemetry_ == nullptr ? "{}" : telemetry_->RenderJson("", 0);
}

void ClusterSim::StartNextSession() {
  if (next_session_ >= trace_->sessions().size()) {
    return;
  }
  const TraceSession& session = trace_->sessions()[next_session_++];
  auto run = std::make_unique<SessionRun>();
  run->session = &session;
  run->conn = next_conn_id_++;
  run->id = next_run_id_++;
  // Sessions are dealt round-robin across the front-end tier (the client
  // side of a replicated tier is DNS/VIP spraying, which this approximates).
  run->fe = static_cast<int>((next_session_ - 1) % static_cast<size_t>(config_.num_frontends));
  // Within the front-end, connections are dealt round-robin across its event
  // loops (the prototype's SO_REUSEPORT accept spreading) and pinned there.
  int& next_loop = next_fe_loop_[static_cast<size_t>(run->fe)];
  run->fe_loop = next_loop;
  next_loop = (next_loop + 1) % config_.fe_loops;
  SessionRun* raw = run.get();
  active_runs_.push_back(std::move(run));
  runs_by_id_[raw->id] = raw;

  DispatcherFor(raw).OnConnectionOpen(raw->conn);
  FrontEndWork(raw->fe, raw->fe_loop, config_.fe_costs.accept_us,
               [this, raw]() { ProcessBatch(raw); });
}

ClusterSim::SessionRun* ClusterSim::FindRun(uint64_t run_id) {
  auto it = runs_by_id_.find(run_id);
  return it == runs_by_id_.end() ? nullptr : it->second;
}

void ClusterSim::OnGuardedResponseDone(uint64_t run_id, size_t index, uint32_t generation) {
  SessionRun* run = FindRun(run_id);
  if (run == nullptr || index >= run->inflight.size()) {
    return;  // the session finished (or the batch moved on) without this event
  }
  SessionRun::InflightRequest& entry = run->inflight[index];
  if (entry.done || entry.generation != generation) {
    return;  // stale completion from a crashed node; superseded by the replay
  }
  entry.done = true;
  OnResponseDone(run);
}

void ClusterSim::ReplayOrphanedRun(SessionRun* run, NodeId dead_node) {
  Dispatcher& dispatcher = DispatcherFor(run);
  // Resurrect the connection and place it on a survivor, seeding the pick
  // with the requests about to be re-served there (the prototype's journal
  // tail).
  // Every undone request of the orphaned connection is interrupted: its
  // response either originates at the dead node or relays through it (the
  // forwarded case — the remote peer serves, the dead handler relays), so
  // the serving peer's identity does not matter here.
  std::vector<TargetId> pending;
  std::vector<size_t> replay_indices;
  std::vector<size_t> lost_indices;
  for (size_t i = 0; i < run->inflight.size(); ++i) {
    const SessionRun::InflightRequest& entry = run->inflight[i];
    if (entry.done) {
      continue;
    }
    if (entry.idempotent) {
      replay_indices.push_back(i);
      pending.push_back(entry.target);
    } else {
      lost_indices.push_back(i);
    }
  }
  dispatcher.OnConnectionOpen(run->conn);
  const NodeId target =
      dispatcher.ReassignConnection(run->conn, pending, Dispatcher::ReassignReason::kFailure);
  if (target == kInvalidNode) {
    // No survivor to continue on: fall back to the legacy reconnect path
    // (the in-flight events still complete; the client re-opens after the
    // batch drains). The prototype 503s here.
    dispatcher.OnConnectionClose(run->conn);
    run->conn_lost = true;
    ++replay_unplaceable_;
    return;
  }
  ++replayed_connections_;
  RecordSpan(tracer_, trace_ring_, run->conn, 3, SpanKind::kReplay, target,
             static_cast<int64_t>(queue_.now_us()), 0, "from=%d reqs=%zu", dead_node,
             replay_indices.size());
  run->drain_pending = false;
  // The front-end pays the re-handoff work, as in the drain path.
  fe_accounted_us_[static_cast<size_t>(run->fe)] += config_.fe_costs.migrate_us;

  // Idempotent in-flight requests re-issue on the survivor; the crashed
  // node's still-scheduled completions become stale via the generation bump.
  for (const size_t index : replay_indices) {
    SessionRun::InflightRequest& entry = run->inflight[index];
    entry.node = target;
    entry.generation = ++run->next_generation;
    ++replayed_requests_;
    const bool cached = MeshMode()
                            ? TrueCacheServe(run->fe, target, entry.target, true)
                            : dispatcher.TargetCachedAt(target, entry.target);
    ServeAtNode(target, entry.target, cached, config_.server_costs.handoff_us,
                [this, run_id = run->id, index, generation = entry.generation]() {
                  OnGuardedResponseDone(run_id, index, generation);
                });
  }
  // Non-idempotent in-flight requests die with the node (client-visible
  // failure) — the shared invariant: lost == non_idempotent_in_flight,
  // counted here at classification granularity, separately from the loss
  // bookkeeping below, so the invariant checks the two paths against each
  // other. Mark everything first; the final OnResponseDone may finish the
  // batch and erase `run`.
  non_idempotent_in_flight_ += lost_indices.size();
  const size_t losses = lost_indices.size();
  for (const size_t index : lost_indices) {
    run->inflight[index].done = true;
    ++lost_requests_;
  }
  for (size_t i = 0; i < losses; ++i) {
    OnResponseDone(run);
  }
}

void ClusterSim::ReopenIfLost(SessionRun* run) {
  if (!run->conn_lost) {
    return;
  }
  // Failover: the client reconnects; the dispatcher re-assigns the fresh
  // connection (and the remaining batches) under the surviving membership.
  run->conn_lost = false;
  run->drain_pending = false;  // the fresh connection is placed anew anyway
  run->conn = next_conn_id_++;
  DispatcherFor(run).OnConnectionOpen(run->conn);
  if (run->idle_closed) {
    // The client coming back after an idle reap is routine P-HTTP churn,
    // not a recovery event — it must never inflate the failover count.
    run->idle_closed = false;
    ++idle_reopens_;
    return;
  }
  ++failovers_;
  if (metric_failovers_ != nullptr) {
    metric_failovers_->Increment();
  }
}

void ClusterSim::RehandoffIfDraining(SessionRun* run, const std::vector<TargetId>& targets) {
  if (!run->drain_pending) {
    return;
  }
  run->drain_pending = false;
  const NodeId moved_to = DispatcherFor(run).ReassignConnection(run->conn, targets);
  if (moved_to == kInvalidNode) {
    return;  // nowhere to go; the connection stays pinned (prototype 503s)
  }
  ++rehandoffs_;
  RecordSpan(tracer_, trace_ring_, run->conn, 3, SpanKind::kReassign, moved_to,
             static_cast<int64_t>(queue_.now_us()), 0, "reason=drain");
  if (metric_rehandoffs_ != nullptr) {
    metric_rehandoffs_->Increment();
  }
  // The front-end pays the re-handoff work (accounted; the giveback happens
  // between batches so it does not stall the response pipeline).
  fe_accounted_us_[static_cast<size_t>(run->fe)] += config_.fe_costs.migrate_us;
}

void ClusterSim::ProcessBatch(SessionRun* run) {
  LARD_CHECK(run->next_batch < run->session->batches.size());
  // The handling node can die during a think-time wait; reconnect before
  // consulting the dispatcher about the next batch.
  ReopenIfLost(run);
  const TraceBatch& batch = run->session->batches[run->next_batch++];
  // Draining-node migration happens between batches, seeding the new node's
  // cache model with the batch about to be served there.
  RehandoffIfDraining(run, batch.targets);
  run->batch_start_us = queue_.now_us();
  run->outstanding = batch.targets.size();
  if (batch.targets.empty()) {
    OnResponseDone(run);  // degenerate; treat as instantly complete
    return;
  }

  std::vector<Assignment> assignments =
      DispatcherFor(run).OnBatch(run->conn, batch.targets);
  LARD_CHECK(assignments.size() == batch.targets.size());
  // OnBatch is synchronous in virtual time, so the decision span has zero
  // duration — what matters is the chosen node and the decision's inputs.
  RecordSpan(tracer_, trace_ring_, run->conn, 1, SpanKind::kPolicy, assignments[0].node,
             static_cast<int64_t>(run->batch_start_us), 0, "fe=%d batch=%zu reqs=%zu loads=%s",
             run->fe, run->next_batch - 1, batch.targets.size(),
             tracer_ != nullptr && tracer_->Sampled(run->conn)
                 ? DispatcherFor(run).DescribeLoads().c_str()
                 : "");
  if (config_.failure_replay) {
    // Fresh in-flight records for this batch: serving node + idempotency
    // verdict per request (the crash handler consults them).
    run->inflight.clear();
    run->inflight.reserve(batch.targets.size());
    for (size_t i = 0; i < assignments.size(); ++i) {
      SessionRun::InflightRequest entry;
      entry.target = batch.targets[i];
      entry.node = assignments[i].node;
      entry.idempotent = !(config_.non_idempotent_fraction > 0.0 &&
                           replay_rng_->NextDouble() < config_.non_idempotent_fraction);
      entry.generation = ++run->next_generation;
      run->inflight.push_back(entry);
    }
  }
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (MeshMode()) {
      // The deciding replica's virtual caches are approximate; service
      // outcomes come from the back-ends' authoritative caches.
      assignments[i].served_from_cache = TrueCacheServe(
          run->fe, assignments[i].node, batch.targets[i], assignments[i].cache_after_miss);
    }
    IssueRequest(run, i, batch.targets[i], assignments[i]);
  }
}

void ClusterSim::IssueRequest(SessionRun* run, size_t index, TargetId target,
                              const Assignment& assignment) {
  ++total_requests_;
  if (metric_requests_ != nullptr) {
    metric_requests_->Increment();
  }
  const uint64_t bytes = trace_->catalog().Get(target).size_bytes;
  total_bytes_ += bytes;
  const ServerCostModel& costs = config_.server_costs;
  const bool zero_cost = config_.mechanism == Mechanism::kIdealHandoff;
  const int fe = run->fe;
  const int fe_loop = run->fe_loop;
  // Failure-replay mode routes completions through the guarded trampoline so
  // a crash can supersede (replay) or drop (lose) an in-flight request.
  std::function<void()> done;
  if (config_.failure_replay) {
    done = [this, run_id = run->id, index,
            generation = run->inflight[index].generation]() {
      OnGuardedResponseDone(run_id, index, generation);
    };
  } else {
    done = [this, run]() { OnResponseDone(run); };
  }

  switch (assignment.action) {
    case AssignmentAction::kHandoff: {
      // First request: FE pays handoff, handling node pays connection setup
      // before regular request processing.
      const NodeId node = assignment.node;
      const double setup = zero_cost ? 0.0 : costs.conn_setup_us;
      const double fe_cost = zero_cost ? 0.0 : config_.fe_costs.handoff_us;
      FrontEndWork(fe, fe_loop, fe_cost, [this, node, target, hit = assignment.served_from_cache,
                                          setup, done]() {
        ServeAtNode(node, target, hit, setup, done);
      });
      break;
    }
    case AssignmentAction::kServeLocal: {
      FrontEndWork(fe, fe_loop, config_.fe_costs.per_request_us,
                   [this, node = assignment.node, target, hit = assignment.served_from_cache,
                    done]() { ServeAtNode(node, target, hit, 0.0, done); });
      break;
    }
    case AssignmentAction::kForward: {
      // Handling node A tags + issues the lateral request; remote node B
      // serves it (possibly from disk) transmitting to A; A receives and
      // relays the response to the client.
      const NodeId handling = DispatcherFor(run).HandlingNode(run->conn);
      LARD_CHECK(handling != kInvalidNode);
      const NodeId remote = assignment.node;
      const double xmit = TransmitCostUs(costs, bytes);
      const double relay_cost = costs.tag_us + costs.forward_receive_factor * xmit + xmit;
      FrontEndWork(fe, fe_loop, config_.fe_costs.per_request_us,
                   [this, handling, remote, target, bytes, relay_cost,
                    hit = assignment.served_from_cache, done]() {
                     // Remote serve: per-request + cache/disk + transmit (to
                     // the handling node), then the handling node receives and
                     // relays to the client.
                     ServeAtNode(remote, target, hit, 0.0,
                                 [this, handling, relay_cost, bytes, done]() {
                                   Backend& handler =
                                       *backends_[static_cast<size_t>(handling)];
                                   handler.SubmitCpu(
                                       relay_cost, [this, handling, bytes, done]() {
                                         Backend& h =
                                             *backends_[static_cast<size_t>(handling)];
                                         h.metrics.bytes_sent += bytes;
                                         done();
                                       });
                                 });
                   });
      break;
    }
    case AssignmentAction::kMigrate: {
      // Connection moves to assignment.node: the new node pays the migration
      // CPU, and the connection additionally stalls for the pipeline-drain
      // time (latency, not CPU).
      const double overhead = zero_cost ? 0.0 : costs.handoff_us;
      const double stall = zero_cost ? 0.0 : costs.migration_stall_us;
      const double fe_cost = zero_cost ? 0.0 : config_.fe_costs.migrate_us;
      FrontEndWork(fe, fe_loop, fe_cost, [this, node = assignment.node, target,
                                          hit = assignment.served_from_cache, overhead, stall,
                                          done]() {
        queue_.ScheduleAfter(stall, [this, node, target, hit, overhead, done]() {
          ServeAtNode(node, target, hit, overhead, done);
        });
      });
      break;
    }
    case AssignmentAction::kRelay: {
      // FE relays request and response bytes through its own CPU.
      const double fe_cost = config_.fe_costs.per_request_us +
                             config_.fe_costs.relay_us_per_512b *
                                 static_cast<double>((bytes + 511) / 512);
      const NodeId node = assignment.node;
      const bool hit = assignment.served_from_cache;
      // Charge the FE after the back-end produced the data (response path
      // dominates); ordering does not affect totals.
      ServeAtNode(node, target, hit, 0.0, [this, fe, fe_loop, fe_cost, done]() {
        FrontEndWork(fe, fe_loop, fe_cost, done);
      });
      break;
    }
  }
}

void ClusterSim::ServeAtNode(NodeId node, TargetId target, bool cached, double extra_cpu_us,
                             std::function<void()> done) {
  Backend& backend = *backends_[static_cast<size_t>(node)];
  const uint64_t bytes = trace_->catalog().Get(target).size_bytes;
  const ServerCostModel& costs = config_.server_costs;
  backend.metrics.requests++;

  backend.SubmitCpu(extra_cpu_us + costs.per_request_us,
                    [this, node, bytes, cached, done = std::move(done)]() {
                      Backend& backend = *backends_[static_cast<size_t>(node)];
                      const double xmit = TransmitCostUs(config_.server_costs, bytes);
                      if (cached) {
                        backend.metrics.cache_hits++;
                        backend.metrics.bytes_sent += bytes;
                        backend.SubmitCpu(xmit, std::move(done));
                        return;
                      }
                      backend.metrics.disk_reads++;
                      backend.disk.Read(bytes, [this, node, bytes, xmit,
                                                done = std::move(done)]() {
                        Backend& backend = *backends_[static_cast<size_t>(node)];
                        backend.metrics.bytes_sent += bytes;
                        backend.SubmitCpu(xmit, std::move(done));
                      });
                    });
  (void)costs;
}

void ClusterSim::OnResponseDone(SessionRun* run) {
  if (run->outstanding > 0) {
    --run->outstanding;
  }
  if (run->outstanding > 0) {
    return;
  }
  batch_latency_us_.Add(static_cast<double>(queue_.now_us() - run->batch_start_us));
  if (metric_batch_latency_ != nullptr) {
    metric_batch_latency_->Observe(static_cast<double>(queue_.now_us() - run->batch_start_us));
  }
  RecordSpan(tracer_, trace_ring_, run->conn, 2, SpanKind::kServe,
             DispatcherFor(run).HandlingNode(run->conn),
             static_cast<int64_t>(run->batch_start_us),
             static_cast<int64_t>(queue_.now_us() - run->batch_start_us), "batch=%zu",
             run->next_batch - 1);

  if (run->next_batch >= run->session->batches.size()) {
    FinishSession(run);
    return;
  }
  ReopenIfLost(run);
  if (config_.use_think_times) {
    const int64_t prev_offset = run->session->batches[run->next_batch - 1].offset_us;
    const int64_t next_offset = run->session->batches[run->next_batch].offset_us;
    const double think_us = static_cast<double>(std::max<int64_t>(next_offset - prev_offset, 0));
    if (think_us > 0.0) {
      DispatcherFor(run).OnConnectionIdle(run->conn);
      if (config_.idle_timeout_us > 0 &&
          think_us > static_cast<double>(config_.idle_timeout_us)) {
        // The think gap outlives the keep-alive deadline: the server reaps
        // the connection at exactly think-start + idle_timeout_us. The
        // guards make the event a no-op if the run finished, reconnected,
        // or lost the connection to a node failure first.
        queue_.ScheduleAfter(static_cast<double>(config_.idle_timeout_us),
                             [this, run_id = run->id, conn = run->conn]() {
                               SessionRun* idle_run = FindRun(run_id);
                               if (idle_run == nullptr || idle_run->conn != conn ||
                                   idle_run->conn_lost) {
                                 return;
                               }
                               RecordSpan(tracer_, trace_ring_, conn, 4, SpanKind::kClose,
                                          DispatcherFor(idle_run).HandlingNode(conn),
                                          static_cast<int64_t>(queue_.now_us()), 0,
                                          "reason=idle");
                               DispatcherFor(idle_run).OnConnectionClose(conn);
                               fe_accounted_us_[static_cast<size_t>(idle_run->fe)] +=
                                   config_.fe_costs.conn_close_us;
                               ++idle_closes_;
                               idle_run->conn_lost = true;
                               idle_run->idle_closed = true;
                             });
      }
      queue_.ScheduleAfter(think_us, [this, run]() { ProcessBatch(run); });
      return;
    }
  }
  ProcessBatch(run);
}

void ClusterSim::FinishSession(SessionRun* run) {
  if (run->conn_lost) {
    // The session's last batch completed on a connection whose node died:
    // the dispatcher already forgot it, so there is nothing to tear down.
    fe_accounted_us_[static_cast<size_t>(run->fe)] += config_.fe_costs.conn_close_us;
  } else {
    // Connection teardown: handling node pays teardown CPU; FE cleans up.
    const NodeId handling = DispatcherFor(run).HandlingNode(run->conn);
    const bool zero_cost = config_.mechanism == Mechanism::kIdealHandoff;
    if (handling != kInvalidNode && !zero_cost) {
      backends_[static_cast<size_t>(handling)]->SubmitCpu(config_.server_costs.conn_teardown_us,
                                                          []() {});
    }
    fe_accounted_us_[static_cast<size_t>(run->fe)] += config_.fe_costs.conn_close_us;
    DispatcherFor(run).OnConnectionClose(run->conn);
  }

  ++sessions_done_;
  // Recycle the slot: start the next session from the trace.
  auto it = std::find_if(active_runs_.begin(), active_runs_.end(),
                         [run](const std::unique_ptr<SessionRun>& p) { return p.get() == run; });
  LARD_CHECK(it != active_runs_.end());
  runs_by_id_.erase(run->id);
  active_runs_.erase(it);
  StartNextSession();
}

ClusterSimMetrics ClusterSim::Run() {
  LARD_CHECK(!ran_) << "ClusterSim::Run may be called once";
  ran_ = true;

  // The control-plane scenario replays at fixed simulated times, giving
  // deterministic join/drain/failure runs the prototype can only approximate.
  for (const MembershipEvent& event : config_.membership_events) {
    queue_.ScheduleAt(event.at_us, [this, event]() { ApplyMembershipEvent(event); });
  }
  if (MeshMode()) {
    queue_.ScheduleAfter(static_cast<double>(config_.gossip_interval_us),
                         [this]() { GossipRound(); });
  }
  if (telemetry_ != nullptr) {
    queue_.ScheduleAfter(static_cast<double>(config_.telemetry_interval_us),
                         [this]() { TelemetryTick(); });
  }

  const size_t initial =
      std::min(trace_->sessions().size(),
               static_cast<size_t>(config_.concurrent_sessions_per_node) *
                   static_cast<size_t>(config_.num_nodes));
  for (size_t i = 0; i < initial; ++i) {
    StartNextSession();
  }
  queue_.RunUntilEmpty();
  LARD_CHECK(sessions_done_ == trace_->sessions().size()) << "sessions stranded";

  ClusterSimMetrics metrics;
  metrics.sim_seconds = static_cast<double>(queue_.now_us()) / 1e6;
  metrics.total_requests = total_requests_;
  metrics.total_connections = sessions_done_;
  metrics.throughput_rps =
      metrics.sim_seconds > 0.0 ? static_cast<double>(total_requests_) / metrics.sim_seconds : 0.0;
  metrics.throughput_mbps = metrics.sim_seconds > 0.0
                                ? 8.0 * static_cast<double>(total_bytes_) / 1e6 /
                                      metrics.sim_seconds
                                : 0.0;
  metrics.mean_batch_latency_ms = batch_latency_us_.mean() / 1000.0;
  for (const auto& dispatcher : dispatchers_) {
    AccumulateCounters(&metrics.dispatcher, dispatcher->counters());
  }

  uint64_t hits = 0;
  uint64_t served = 0;
  double cpu_util_sum = 0.0;
  double disk_util_sum = 0.0;
  for (const auto& backend : backends_) {
    BackendSimMetrics node = backend->metrics;
    node.cpu_busy_us = backend->cpu.total_busy_us();
    node.disk_busy_us = backend->disk.total_busy_us();
    node.cpu_utilization = backend->cpu.Utilization();
    node.disk_utilization = backend->disk.Utilization();
    cpu_util_sum += node.cpu_utilization;
    disk_util_sum += node.disk_utilization;
    hits += node.cache_hits;
    served += node.cache_hits + node.disk_reads;
    metrics.per_node.push_back(node);
  }
  metrics.cache_hit_rate =
      served > 0 ? static_cast<double>(hits) / static_cast<double>(served) : 0.0;
  const double node_count = static_cast<double>(backends_.size());
  metrics.mean_cpu_idle = 1.0 - cpu_util_sum / node_count;
  metrics.mean_disk_idle = 1.0 - disk_util_sum / node_count;
  for (const double accounted : fe_accounted_us_) {
    // An FE's capacity is fe_loops loop-CPUs; 1.0 = all its loops busy the
    // whole run (the single-loop formula when fe_loops is 1).
    const double utilization =
        queue_.now_us() > 0 ? accounted / (static_cast<double>(queue_.now_us()) *
                                           static_cast<double>(config_.fe_loops))
                            : 0.0;
    metrics.per_fe_utilization.push_back(utilization);
    metrics.fe_utilization = std::max(metrics.fe_utilization, utilization);
  }
  metrics.nodes_joined = nodes_joined_;
  metrics.nodes_failed = nodes_failed_;
  metrics.nodes_drained = nodes_drained_;
  metrics.failovers = failovers_;
  metrics.rehandoffs = rehandoffs_;
  metrics.idle_closes = idle_closes_;
  metrics.idle_reopens = idle_reopens_;
  metrics.rejected_membership_events = rejected_membership_events_;
  metrics.telemetry_samples = telemetry_ != nullptr ? telemetry_->num_samples() : 0;
  metrics.replayed_connections = replayed_connections_;
  metrics.replayed_requests = replayed_requests_;
  metrics.lost_requests = lost_requests_;
  metrics.non_idempotent_in_flight = non_idempotent_in_flight_;
  metrics.replay_unplaceable = replay_unplaceable_;

  // Mesh metrics + end-of-run invariants. With every session finished, each
  // replica must have drained its own accounting to zero — remaining load or
  // open connections mean the tier double-counted or leaked.
  metrics.frontends = config_.num_frontends;
  metrics.gossip_rounds = gossip_rounds_;
  metrics.gossip_deltas_applied = gossip_deltas_applied_;
  metrics.gossip_bytes = gossip_bytes_;
  metrics.gossip_divergent_deltas = gossip_divergent_deltas_;
  metrics.max_gossip_lag_us = max_gossip_lag_us_;
  metrics.ownership_violations = ownership_violations_;
  for (const auto& table : mesh_) {
    metrics.gossip_stale_drops += table->stale_drops();
    metrics.mesh_epoch_regressions += table->epoch_regressions();
  }
  for (const auto& dispatcher : dispatchers_) {
    if (dispatcher->open_connections() != 0) {
      metrics.mesh_load_conserved = false;
    }
    for (NodeId node = 0; node < dispatcher->num_node_slots(); ++node) {
      if (std::fabs(dispatcher->NodeLoad(node)) > 1e-6) {
        metrics.mesh_load_conserved = false;
      }
    }
    if (dispatcher->membership_epoch() != dispatchers_[0]->membership_epoch()) {
      metrics.mesh_epochs_converged = false;
    }
  }
  return metrics;
}

}  // namespace lard
