#include "src/sim/event_queue.h"

#include <cmath>

namespace lard {

void EventQueue::ScheduleAt(SimTimeUs when_us, std::function<void()> fn) {
  LARD_CHECK(when_us >= now_us_) << "scheduling into the past: " << when_us << " < " << now_us_;
  heap_.push(Event{when_us, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(double delay_us, std::function<void()> fn) {
  LARD_CHECK(delay_us >= 0.0);
  ScheduleAt(now_us_ + static_cast<SimTimeUs>(std::llround(delay_us)), std::move(fn));
}

uint64_t EventQueue::RunUntilEmpty() {
  uint64_t count = 0;
  while (!heap_.empty()) {
    // Move out before pop so the callback may schedule more events.
    Event event = heap_.top();
    heap_.pop();
    now_us_ = event.when_us;
    event.fn();
    ++count;
  }
  return count;
}

uint64_t EventQueue::RunUntil(SimTimeUs deadline_us, bool advance_clock) {
  uint64_t count = 0;
  while (!heap_.empty() && heap_.top().when_us <= deadline_us) {
    Event event = heap_.top();
    heap_.pop();
    now_us_ = event.when_us;
    event.fn();
    ++count;
  }
  if (advance_clock && now_us_ < deadline_us) {
    now_us_ = deadline_us;
  }
  return count;
}

}  // namespace lard
