#include "src/sim/cost_model.h"

#include <cmath>

namespace lard {

ServerCostModel ApacheCosts() {
  ServerCostModel costs;
  costs.name = "apache";
  costs.conn_setup_us = 145.0;
  costs.conn_teardown_us = 145.0;
  costs.per_request_us = 40.0;
  costs.transmit_us_per_512b = 40.0;
  costs.handoff_us = 300.0;
  costs.migration_stall_us = 1660.0;
  costs.tag_us = 40.0;
  return costs;
}

ServerCostModel FlashCosts() {
  ServerCostModel costs;
  costs.name = "flash";
  costs.conn_setup_us = 78.0;
  costs.conn_teardown_us = 78.0;
  costs.per_request_us = 16.0;
  costs.transmit_us_per_512b = 11.0;
  costs.handoff_us = 150.0;
  costs.migration_stall_us = 130.0;
  costs.tag_us = 16.0;
  return costs;
}

double TransmitCostUs(const ServerCostModel& costs, uint64_t bytes) {
  const uint64_t units = (bytes + 511) / 512;
  return costs.transmit_us_per_512b * static_cast<double>(units);
}

double DiskServiceTimeUs(const DiskCostModel& costs, uint64_t bytes) {
  double time = costs.initial_latency_us;
  time += costs.transfer_us_per_4kb * std::ceil(static_cast<double>(bytes) / 4096.0);
  if (costs.extra_seek_every_bytes > 0 && bytes > costs.extra_seek_every_bytes) {
    const uint64_t extra_seeks = (bytes - 1) / costs.extra_seek_every_bytes;
    time += costs.extra_seek_us * static_cast<double>(extra_seeks);
  }
  return time;
}

}  // namespace lard
