// Discrete-event simulation core: a clock and a time-ordered queue of
// callbacks. Deterministic: ties in time are broken by insertion order.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/logging.h"

namespace lard {

using SimTimeUs = int64_t;

class EventQueue {
 public:
  // Schedules `fn` to run at absolute simulated time `when_us` (>= now).
  void ScheduleAt(SimTimeUs when_us, std::function<void()> fn);
  // Schedules `fn` to run `delay_us` from now.
  void ScheduleAfter(double delay_us, std::function<void()> fn);

  // Runs events until the queue drains. Returns the number of events run.
  uint64_t RunUntilEmpty();
  // Runs events with time <= `deadline_us`. The clock ends at the last event
  // run (or is advanced to the deadline when `advance_clock` is true).
  uint64_t RunUntil(SimTimeUs deadline_us, bool advance_clock = false);

  SimTimeUs now_us() const { return now_us_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTimeUs when_us = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when_us != b.when_us) {
        return a.when_us > b.when_us;
      }
      return a.seq > b.seq;
    }
  };

  SimTimeUs now_us_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace lard

#endif  // SRC_SIM_EVENT_QUEUE_H_
