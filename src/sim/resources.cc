#include "src/sim/resources.h"

#include <algorithm>
#include <cmath>

namespace lard {

void FifoServer::Submit(double service_us, std::function<void()> done) {
  LARD_CHECK(service_us >= 0.0);
  const SimTimeUs start = std::max(queue_->now_us(), busy_until_us_);
  const SimTimeUs completion = start + static_cast<SimTimeUs>(std::llround(service_us));
  busy_until_us_ = completion;
  total_busy_us_ += service_us;
  ++outstanding_;
  queue_->ScheduleAt(completion, [this, done = std::move(done)]() {
    --outstanding_;
    done();
  });
}

double FifoServer::Utilization() const {
  const SimTimeUs now = queue_->now_us();
  if (now <= 0) {
    return 0.0;
  }
  // Busy time that lies in the future (already-committed backlog) must not
  // count against elapsed time.
  const double busy_so_far =
      total_busy_us_ - static_cast<double>(std::max<SimTimeUs>(busy_until_us_ - now, 0));
  return std::max(0.0, busy_so_far) / static_cast<double>(now);
}

}  // namespace lard
