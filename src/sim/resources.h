// Queued resources of the cluster model: a back-end CPU and a back-end disk,
// both single-server FIFO queues over the event engine. Because submissions
// happen "now" and service is non-preemptive FIFO, a busy-until watermark is
// sufficient — no explicit queue structure is needed, which keeps the
// simulator at O(1) per work item.
#ifndef SRC_SIM_RESOURCES_H_
#define SRC_SIM_RESOURCES_H_

#include <cstdint>
#include <functional>

#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"

namespace lard {

class FifoServer {
 public:
  explicit FifoServer(EventQueue* queue) : queue_(queue) {}

  // Enqueues a work item of `service_us`; `done` runs when it completes.
  void Submit(double service_us, std::function<void()> done);

  // Work items submitted but not yet completed (waiting + in service).
  // This is the paper's "queued disk events" feedback signal when the server
  // models a disk.
  int queue_length() const { return outstanding_; }

  double total_busy_us() const { return total_busy_us_; }
  // Fraction of [0, now] the server spent busy.
  double Utilization() const;

 private:
  EventQueue* queue_;
  SimTimeUs busy_until_us_ = 0;
  double total_busy_us_ = 0.0;
  int outstanding_ = 0;
};

// A back-end disk: service time from the seek/rotation/transfer model.
class DiskServer {
 public:
  DiskServer(EventQueue* queue, const DiskCostModel& costs) : server_(queue), costs_(costs) {}

  void Read(uint64_t bytes, std::function<void()> done) {
    server_.Submit(DiskServiceTimeUs(costs_, bytes), std::move(done));
  }

  int queue_length() const { return server_.queue_length(); }
  double total_busy_us() const { return server_.total_busy_us(); }
  double Utilization() const { return server_.Utilization(); }

 private:
  FifoServer server_;
  DiskCostModel costs_;
};

}  // namespace lard

#endif  // SRC_SIM_RESOURCES_H_
