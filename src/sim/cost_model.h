// CPU and disk cost calibration for the trace-driven simulator (Section 6).
//
// The paper derives per-operation CPU costs from measurements of Apache 1.3.3
// and Flash on a 300 MHz Pentium II running FreeBSD 2.2.6 — the same
// calibration its predecessor (Pai et al., ASPLOS'98) used. Our copy of the
// text lost the numerals; values below follow the ASPLOS'98 lineage and the
// Flash/Apache ratio implied by Figures 7 vs 8 (see DESIGN.md §3).
// `handoff_us` and `tag_us` are calibrated so the Section 5 analysis
// reproduces crossover points of ~12 KB (Apache) and ~6 KB (Flash); both are
// swept in bench/ablation_crossover.
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace lard {

// Per-back-end server-software personality.
struct ServerCostModel {
  std::string name;
  // TCP connection establishment / teardown CPU time, charged to the
  // connection-handling back-end (the handoff protocol replays the handshake
  // state there).
  double conn_setup_us = 145.0;
  double conn_teardown_us = 145.0;
  // Per-HTTP-request processing overhead (parse, log, locate content).
  double per_request_us = 40.0;
  // Transmit processing per 512 bytes of response data.
  double transmit_us_per_512b = 40.0;
  // CPU cost of migrating a connection under the TCP multiple-handoff
  // mechanism (connection-state transfer at the back-ends).
  double handoff_us = 300.0;
  // Time the connection's TCP pipeline stalls during a migration (latency,
  // not CPU: the paper's "the TCP pipeline must be kept from draining" — a
  // drained pipeline idles the connection for roughly this long). The
  // Section 5 analysis charges handoff_us + migration_stall_us as the
  // effective per-migration overhead; the simulator charges the CPU part to
  // the new node and the stall as per-connection latency.
  double migration_stall_us = 1660.0;
  // Handling-node per-request overhead for a laterally forwarded request
  // (tag processing, lateral request issue).
  double tag_us = 40.0;
  // Receive-side per-byte cost of lateral forwarding, as a fraction of
  // transmit cost.
  double forward_receive_factor = 1.0;
};

ServerCostModel ApacheCosts();
ServerCostModel FlashCosts();

// Seek/rotation/transfer model of the back-end disk (ASPLOS'98 values).
struct DiskCostModel {
  double initial_latency_us = 28500.0;      // avg seeks + rotational latency
  double transfer_us_per_4kb = 410.0;       // ~10 MB/s media rate
  double extra_seek_us = 14000.0;           // additional seek + rotation ...
  uint64_t extra_seek_every_bytes = 44 * 1024;  // ... per additional 44 KB
};

// Front-end CPU costs. The paper's simulator treats the front-end as
// infinitely fast ("throughput is limited only by the disk and CPU overheads"
// of the back-ends); ours accounts front-end CPU so the front-end
// scalability estimate (Section 8.2: ~60% utilization with 6 Apache
// back-ends => one FE CPU supports ~10 back-ends) can be reproduced, but by
// default the FE does not throttle the cluster. The relaying mechanism is the
// exception: there the FE data path is the whole point, so it always limits.
struct FrontEndCostModel {
  double accept_us = 30.0;        // accept + first-request dispatch decision
  double handoff_us = 300.0;      // TCP handoff protocol processing
  double per_request_us = 235.0;  // forwarding module: packet-copy to the
                                  // dispatcher + client ACK forwarding, per request
  double conn_close_us = 20.0;
  double migrate_us = 300.0;      // FE share of a multiple-handoff migration
  double relay_us_per_512b = 10.0;  // relaying-FE per-byte data path
};

// CPU time to transmit `bytes` of response data.
double TransmitCostUs(const ServerCostModel& costs, uint64_t bytes);

// Service time of one disk read of `bytes` (queueing excluded).
double DiskServiceTimeUs(const DiskCostModel& costs, uint64_t bytes);

}  // namespace lard

#endif  // SRC_SIM_COST_MODEL_H_
