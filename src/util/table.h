// Aligned-table and CSV emission for benchmark harnesses. Every figure bench
// prints the same rows the paper's figure plots, in both a human-readable
// table and (optionally) machine-readable CSV.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace lard {

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  // Adds a row; the number of cells must match the number of columns.
  void AddRow(std::vector<std::string> cells);

  // Convenience for rows that are mostly numbers.
  class RowBuilder {
   public:
    explicit RowBuilder(Table* table) : table_(table) {}
    ~RowBuilder() { table_->AddRow(std::move(cells_)); }
    RowBuilder& Cell(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    RowBuilder& Cell(double v, int precision = 2);
    RowBuilder& Cell(int64_t v);

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  // Renders an aligned ASCII table.
  std::string ToString() const;
  // Renders RFC-4180-ish CSV (no quoting of embedded commas — our cells never
  // contain them).
  std::string ToCsv() const;

  // Prints the table to stdout; when `csv_path` is non-empty also writes CSV.
  void Print(const std::string& title, const std::string& csv_path = "") const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (drop-in for std::format which we
// avoid for toolchain portability).
std::string FormatDouble(double v, int precision = 2);

}  // namespace lard

#endif  // SRC_UTIL_TABLE_H_
