#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lard {

void StreamingStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(count_) + other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(n);
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PercentileTracker::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void LogHistogram::Add(uint64_t value) {
  int bucket = 0;
  while (value >= 2 && bucket < 63) {
    value >>= 1;
    ++bucket;
  }
  ++buckets_[static_cast<size_t>(bucket)];
  ++total_;
}

std::string LogHistogram::ToString() const {
  std::string out;
  if (total_ == 0) {
    return "(empty)\n";
  }
  uint64_t max_count = 0;
  size_t hi = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    max_count = std::max(max_count, buckets_[i]);
    if (buckets_[i] > 0) {
      hi = i;
    }
  }
  for (size_t i = 0; i <= hi; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t lo_edge = i == 0 ? 0 : (1ULL << i);
    const uint64_t hi_edge = 1ULL << (i + 1);
    const int bar = static_cast<int>(40.0 * static_cast<double>(buckets_[i]) /
                                     static_cast<double>(max_count));
    char line[128];
    std::snprintf(line, sizeof(line), "  [%10llu,%10llu): %-40.*s %llu\n",
                  static_cast<unsigned long long>(lo_edge),
                  static_cast<unsigned long long>(hi_edge), bar,
                  "########################################",
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

uint64_t LogHistogram::ApproxQuantile(double q) const {
  if (total_ == 0) {
    return 0;
  }
  const uint64_t want = static_cast<uint64_t>(q * static_cast<double>(total_));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= want) {
      return 1ULL << (i + 1);
    }
  }
  return 1ULL << 63;
}

}  // namespace lard
