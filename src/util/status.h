// Lightweight error propagation used across module boundaries instead of
// exceptions. Modeled on absl::Status / absl::StatusOr but self-contained.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lard {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kInternal,
  kIoError,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT"...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

// Value-type result of an operation: a code plus an optional message.
class Status {
 public:
  // Default status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status InternalError(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }

// Either a value of T or a non-OK Status. Accessing value() on an error aborts
// (see CHECK in logging.h for the assertion idiom used by callers).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit by design
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lard

// Propagates a non-OK Status to the caller.
#define LARD_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::lard::Status lard_status_ = (expr);   \
    if (!lard_status_.ok()) {               \
      return lard_status_;                  \
    }                                       \
  } while (0)

#endif  // SRC_UTIL_STATUS_H_
