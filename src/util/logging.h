// Minimal leveled logging + CHECK macros. Thread-safe (one lock per line).
//
//   LARD_LOG(INFO) << "served " << n << " requests";
//   LARD_CHECK(fd >= 0) << "accept failed";
//
// Severity FATAL aborts the process after flushing the message.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace lard {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Messages below this severity are discarded. Default: kInfo, overridable at
// process startup with the LARD_LOG_LEVEL environment variable
// ("debug"/"info"/"warning"/"error") and at runtime on a live cluster via the
// admin API (POST /loglevel).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Parses a severity name ("debug", "info", "warning"/"warn", "error",
// "fatal"; case-insensitive, surrounding whitespace ignored). Returns false
// on unknown names, leaving `severity` untouched.
bool ParseLogSeverity(const std::string& name, LogSeverity* severity);
// Canonical lowercase name ("info") for rendering the current level.
const char* LogSeverityName(LogSeverity severity);

// One in-flight log statement; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_ = nullptr;
  int line_ = 0;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out or
// below the minimum severity.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Lets CHECK macros appear in a ternary yet still accept streamed operands:
// operator& binds looser than << and converts the whole expression to void.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace lard

#define LARD_LOG_DEBUG ::lard::LogMessage(::lard::LogSeverity::kDebug, __FILE__, __LINE__).stream()
#define LARD_LOG_INFO ::lard::LogMessage(::lard::LogSeverity::kInfo, __FILE__, __LINE__).stream()
#define LARD_LOG_WARNING \
  ::lard::LogMessage(::lard::LogSeverity::kWarning, __FILE__, __LINE__).stream()
#define LARD_LOG_ERROR ::lard::LogMessage(::lard::LogSeverity::kError, __FILE__, __LINE__).stream()
#define LARD_LOG_FATAL ::lard::LogMessage(::lard::LogSeverity::kFatal, __FILE__, __LINE__).stream()

#define LARD_LOG(severity) LARD_LOG_##severity

// Aborts with a message when `cond` is false. Active in all build types:
// invariant violations in a systems library should never be silent. Streams:
//   LARD_CHECK(fd >= 0) << "accept failed on " << path;
#define LARD_CHECK(cond)              \
  (cond) ? static_cast<void>(0)       \
         : ::lard::LogMessageVoidify() & LARD_LOG(FATAL) << "CHECK failed: " #cond " "

#define LARD_CHECK_OK(expr)                                                            \
  do {                                                                                 \
    ::lard::Status lard_check_status_ = (expr);                                        \
    if (!lard_check_status_.ok()) {                                                    \
      LARD_LOG(FATAL) << "CHECK_OK failed: " << lard_check_status_.ToString() << " "; \
    }                                                                                  \
  } while (0)

#endif  // SRC_UTIL_LOGGING_H_
