// Cluster-wide metrics registry: named counters, gauges and latency
// histograms that the dispatcher, front-end, back-ends and simulator publish
// into, and that the admin server renders over HTTP (GET /metrics).
//
// Publishing is lock-free after the first lookup: instruments are atomics
// with stable addresses (callers cache the pointer), so the prototype's hot
// paths (event-loop threads) pay one relaxed atomic op per update. Lookup and
// rendering take the registry mutex; rendering sees a consistent-enough
// snapshot for monitoring (per-instrument atomicity, no cross-instrument
// barrier — the usual monitoring contract).
#ifndef SRC_UTIL_METRICS_H_
#define SRC_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace lard {

// Monotonic event count.
class MetricCounter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (load, queue length, node count).
class MetricGauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-linear latency/size histogram with atomic buckets: each power-of-two
// octave [2^o, 2^(o+1)) is split into kSubBuckets equal-width sub-buckets, so
// percentile upper bounds are within +25% of the true value (vs the
// factor-of-2 error of pure log2 buckets). Bucket 0 additionally holds
// samples < 1. Storage stays a fixed array of atomics; Observe is still one
// relaxed fetch_add per sample.
class MetricHistogram {
 public:
  static constexpr int kSubBuckets = 4;   // per octave
  static constexpr int kOctaves = 64;
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  // Exclusive upper bound of bucket `index`: 2^o * (1 + (s+1)/kSubBuckets).
  static double BucketUpperBound(int index);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  // p in [0, 100]; returns the upper bound of the smallest bucket prefix
  // covering p% of the samples. 0 when empty.
  double Percentile(double p) const;
  // Copies the cumulative bucket counts into `out[kBuckets]` (relaxed loads,
  // the usual monitoring consistency). Telemetry samplers diff consecutive
  // snapshots to get window quantiles.
  void SnapshotBuckets(uint64_t out[kBuckets]) const {
    for (int i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The returned pointer is stable for the registry's
  // lifetime; callers on hot paths should look up once and cache it.
  // Metric names use prometheus conventions ("lard_requests_total");
  // per-node instruments append a label ("...{node=\"3\"}" via WithNode).
  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  MetricHistogram* Histogram(const std::string& name);

  // "name{node=\"7\"}" — the per-back-end label family.
  static std::string WithNode(const std::string& name, int32_t node);
  // "name{fe=\"1\"}" — the per-front-end label family (replicated FE tier).
  static std::string WithFe(const std::string& name, int32_t fe);

  // Prometheus text exposition: "# TYPE" lines per metric family, one
  // "name value" line per counter/gauge, histograms rendered as summaries —
  // quantile lines under the canonical name plus _count/_sum. Sorted by name.
  std::string RenderText() const;
  // The same data as a JSON object {"counters":{...},"gauges":{...},
  // "histograms":{"name":{"count":..,"sum":..,"p50":..,"p90":..,"p99":..}}}.
  std::string RenderJson() const;

 private:
  mutable Mutex mutex_;
  // node-stable containers: instruments never move once created, so the
  // returned instrument pointers are used lock-free (they are atomics); only
  // the maps themselves are guarded.
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_ LARD_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_ LARD_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_ LARD_GUARDED_BY(mutex_);
};

}  // namespace lard

#endif  // SRC_UTIL_METRICS_H_
