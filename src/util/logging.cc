#include "src/util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace lard {
namespace {

LogSeverity InitialSeverity() {
  const char* env = std::getenv("LARD_LOG_LEVEL");
  LogSeverity severity = LogSeverity::kInfo;
  if (env != nullptr && !ParseLogSeverity(env, &severity)) {
    // Too early to log through ourselves reliably; say it plainly.
    std::fprintf(stderr, "[W logging.cc] LARD_LOG_LEVEL=\"%s\" not recognized; using info\n", env);
  }
  return severity;
}

std::atomic<LogSeverity> g_min_severity{InitialSeverity()};

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Strips the directory part so log lines show "lard_policy.cc:42".
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity.store(severity); }
LogSeverity MinLogSeverity() { return g_min_severity.load(); }

bool ParseLogSeverity(const std::string& name, LogSeverity* severity) {
  std::string lower;
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      continue;
    }
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *severity = LogSeverity::kDebug;
  } else if (lower == "info") {
    *severity = LogSeverity::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *severity = LogSeverity::kWarning;
  } else if (lower == "error") {
    *severity = LogSeverity::kError;
  } else if (lower == "fatal") {
    *severity = LogSeverity::kFatal;
  } else {
    return false;
  }
  return true;
}

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "debug";
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarning:
      return "warning";
    case LogSeverity::kError:
      return "error";
    case LogSeverity::kFatal:
      return "fatal";
  }
  return "unknown";
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_), Basename(file_), line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace lard
