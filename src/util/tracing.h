// Per-request distributed tracing for the cluster: a lock-cheap, sampled
// span recorder that follows one client request from front-end accept through
// policy decision, handoff/consult, back-end serve (cache/disk/lateral) to
// response flush — and across the failure path (journal, replay,
// reassignment) and mesh gossip rounds.
//
// Design:
//  - The trace id is the FE-namespaced connection id (fe_id << 48 | counter),
//    which already travels in every control message — tracing adds no wire
//    format changes. The request sequence number distinguishes requests on
//    one persistent connection.
//  - Sampling is deterministic on the trace id (hash % sample_every), so the
//    front-end, the back-ends and the simulator all sample the *same*
//    connections without coordination.
//  - Spans are fixed-size PODs written into preallocated per-component ring
//    buffers (overwrite-oldest). Recording takes one short per-ring mutex
//    (uncontended in steady state: each ring has a single writer thread) and
//    performs no allocation; detail strings are snprintf'd into a fixed
//    buffer after the sampling check.
//  - The admin server drains the rings: GET /trace renders recent traces as
//    JSON, GET /trace?format=chrome emits Chrome trace-event format loadable
//    in about:tracing / Perfetto.
//  - A slow-request log catches tail outliers even when sampling misses
//    them: when a request exceeds the threshold, its full span tree (if
//    sampled) or a one-line summary (if not) goes to LARD_LOG.
#ifndef SRC_UTIL_TRACING_H_
#define SRC_UTIL_TRACING_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace lard {

// Stages of a request's life, across components. One enum for FE, BE, mesh
// and simulator spans so traces from all of them merge into one tree.
enum class SpanKind : uint8_t {
  kAccept = 0,    // FE accepted the client connection
  kParse,         // request bytes parsed into targets
  kPolicy,        // routing decision (detail: policy key, node, loads)
  kHandoff,       // FE shipped the connection to a back-end
  kConsult,       // back-end asked the FE mid-stream / FE answered
  kAdopt,         // BE adopted a handed-off (or replayed) connection
  kServe,         // BE produced one response (detail: cache hit/miss)
  kDiskWait,      // time gated behind the BE disk queue
  kLateral,       // lateral fetch from a peer BE (detail: peer id)
  kFlush,         // response bytes written toward the client
  kJournal,       // replay-journal append
  kReplay,        // orphaned connection replayed after a crash
  kReassign,      // connection reassigned (detail: reason)
  kGossip,        // one mesh gossip round
  kClose,         // connection reaped (detail: reason, e.g. idle deadline)
};

const char* SpanKindName(SpanKind kind);

// One recorded span. Fixed size, trivially copyable: the ring buffers are
// flat arrays of these and the hot path never allocates.
struct TraceSpan {
  uint64_t trace_id = 0;   // FE-namespaced conn id (0 = component-scoped)
  uint32_t seq = 0;        // request ordinal within the connection
  SpanKind kind = SpanKind::kAccept;
  int32_t node = -1;       // serving/chosen node, or FE id for FE spans
  int64_t start_us = 0;    // CLOCK_MONOTONIC µs (prototype) or sim time
  int64_t duration_us = 0;
  char detail[64] = {};    // NUL-terminated free-form annotation
};

// Fixed-capacity overwrite-oldest span store. One ring per component (per FE
// replica, per back-end, one for the simulator); a short mutex per record
// keeps cross-thread drains (the admin server) race-free.
class TraceRing {
 public:
  TraceRing(std::string name, size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(const TraceSpan& span);
  // Oldest-first copy of the current contents.
  std::vector<TraceSpan> Snapshot() const;

  const std::string& name() const { return name_; }
  size_t capacity() const { return capacity_; }
  // Total spans ever recorded (≥ Snapshot().size(); the excess overwrote).
  uint64_t recorded() const;

 private:
  // Tracer::SnapshotAll() holds every ring's mutex at once to capture one
  // coherent cross-ring epoch for the admin renders.
  friend class Tracer;

  const std::string name_;
  const size_t capacity_;  // slots_.size(), fixed at construction
  mutable Mutex mutex_;
  std::vector<TraceSpan> slots_ LARD_GUARDED_BY(mutex_);
  size_t next_ LARD_GUARDED_BY(mutex_) = 0;      // next write position
  size_t size_ LARD_GUARDED_BY(mutex_) = 0;      // live spans (≤ capacity)
  uint64_t recorded_ LARD_GUARDED_BY(mutex_) = 0;
};

// One ring's contents captured at a snapshot epoch (see Tracer::SnapshotAll).
struct TraceRingSnapshot {
  std::string name;
  size_t capacity = 0;
  uint64_t recorded = 0;
  std::vector<TraceSpan> spans;  // oldest-first
};

struct TracerConfig {
  bool enabled = true;
  // Record every Nth connection (deterministic on the trace id); 1 = all.
  uint32_t sample_every = 16;
  size_t ring_capacity = 2048;
  // Requests slower than this are logged (full span tree when sampled,
  // one-line summary otherwise). 0 disables the slow log.
  int64_t slow_threshold_us = 0;
};

// Owns the rings and the sampling decision; one per cluster (and one per
// simulator). All methods are thread-safe.
class Tracer {
 public:
  explicit Tracer(const TracerConfig& config)
      : config_(config), slow_threshold_us_(config.slow_threshold_us) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Find-or-create; the returned pointer is stable for the tracer's
  // lifetime — components look their ring up once and cache it.
  TraceRing* Ring(const std::string& name);

  bool enabled() const { return config_.enabled; }
  // The slow-log threshold is runtime-tunable (POST /slowlog) the same way
  // the log level is: a relaxed atomic read per request, no locks.
  int64_t slow_threshold_us() const { return slow_threshold_us_.load(std::memory_order_relaxed); }
  void set_slow_threshold_us(int64_t threshold_us) {
    slow_threshold_us_.store(threshold_us, std::memory_order_relaxed);
  }
  uint32_t sample_every() const { return config_.sample_every; }

  // Deterministic per-connection sampling verdict; identical on every
  // component because it depends only on the trace id.
  bool Sampled(uint64_t trace_id) const;

  // Captures every ring (contents + recorded counter) under one snapshot
  // epoch: all ring locks are held simultaneously while copying, so a
  // concurrent writer on another loop thread can never make the rendered
  // rings mutually inconsistent (a trace half in one ring's snapshot and
  // half missing from another's). Both renders below consume this.
  std::vector<TraceRingSnapshot> SnapshotAll() const;

  // True when a ring with this exact name exists (admin-plane 404s).
  bool HasRing(const std::string& name) const;

  // Recent traces grouped by trace id:
  // {"traces":[{"trace_id":..,"spans":[...]}],"rings":[...]}. A non-empty
  // `component` restricts the render to the ring with that name
  // (GET /trace?component=...), e.g. one FE loop or one back-end.
  std::string RenderJson(const std::string& component = "") const;
  // Chrome trace-event format ("traceEvents") for about:tracing / Perfetto;
  // each ring becomes one named pseudo-thread. Same `component` filter.
  std::string RenderChrome(const std::string& component = "") const;

  // Slow-request log: called by a component when a request's total time
  // exceeded slow_threshold_us. Logs the summary line always, plus the
  // request's full span tree when the trace was sampled.
  void LogSlow(const TraceSpan& final_span);

 private:
  std::vector<TraceSpan> SpansForTrace(uint64_t trace_id) const;

  const TracerConfig config_;
  std::atomic<int64_t> slow_threshold_us_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_ LARD_GUARDED_BY(mutex_);
};

// Monotonic microsecond clock for span timestamps (prototype side; the
// simulator stamps spans with virtual time instead).
int64_t TraceNowUs();

// Records a span iff `tracer`/`ring` are live and the trace is sampled. The
// printf-style detail is formatted into the span's fixed buffer only after
// the sampling check, so unsampled requests pay one hash and nothing else.
void RecordSpan(Tracer* tracer, TraceRing* ring, uint64_t trace_id, uint32_t seq, SpanKind kind,
                int32_t node, int64_t start_us, int64_t duration_us, const char* detail_fmt, ...)
    __attribute__((format(printf, 9, 10)));

// Same, but bypasses sampling (still gated on enabled): for component-scoped
// spans with no connection, like mesh gossip rounds.
void RecordSpanUnsampled(Tracer* tracer, TraceRing* ring, uint64_t trace_id, uint32_t seq,
                         SpanKind kind, int32_t node, int64_t start_us, int64_t duration_us,
                         const char* detail_fmt, ...) __attribute__((format(printf, 9, 10)));

}  // namespace lard

#endif  // SRC_UTIL_TRACING_H_
