#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"
#include "src/util/table.h"

namespace lard {

void FlagSet::AddInt(const std::string& name, int64_t* value, const std::string& help) {
  flags_.push_back({name, Type::kInt, value, help, std::to_string(*value)});
}

void FlagSet::AddDouble(const std::string& name, double* value, const std::string& help) {
  flags_.push_back({name, Type::kDouble, value, help, FormatDouble(*value, 4)});
}

void FlagSet::AddString(const std::string& name, std::string* value, const std::string& help) {
  flags_.push_back({name, Type::kString, value, help, *value});
}

void FlagSet::AddBool(const std::string& name, bool* value, const std::string& help) {
  flags_.push_back({name, Type::kBool, value, help, *value ? "true" : "false"});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool FlagSet::SetValue(const Flag& flag, const std::string& text) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || text.empty()) {
        return false;
      }
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Type::kDouble: {
      const double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || text.empty()) {
        return false;
      }
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = text;
      return true;
    case Type::kBool:
      if (text == "true" || text == "1") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (text == "false" || text == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
  }
  return false;
}

std::string FlagSet::Usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& flag : flags_) {
    out += "  --" + flag.name + "  (default " + flag.default_repr + ")  " + flag.help + "\n";
  }
  return out;
}

void FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", Usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(), Usage().c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s needs a value\n%s", arg.c_str(), Usage().c_str());
      std::exit(2);
    }
    const Flag* flag = Find(arg);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag --%s\n%s", arg.c_str(), Usage().c_str());
      std::exit(2);
    }
    if (!SetValue(*flag, value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n%s", arg.c_str(), value.c_str(),
                   Usage().c_str());
      std::exit(2);
    }
  }
}

}  // namespace lard
