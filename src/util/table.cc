#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/util/logging.h"

namespace lard {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::AddRow(std::vector<std::string> cells) {
  LARD_CHECK(cells.size() == columns_.size()) << "row width mismatch";
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::Cell(double v, int precision) {
  cells_.push_back(FormatDouble(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += "| ";
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string sep = "+";
  for (size_t c = 0; c < columns_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep + emit_row(columns_) + sep;
  for (const auto& row : rows_) {
    out += emit_row(row);
  }
  out += sep;
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += columns_[c];
    out += c + 1 < columns_.size() ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += c + 1 < row.size() ? "," : "\n";
    }
  }
  return out;
}

void Table::Print(const std::string& title, const std::string& csv_path) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (!f) {
      LARD_LOG(ERROR) << "cannot write " << csv_path;
      return;
    }
    f << ToCsv();
  }
}

}  // namespace lard
