// Liveness token for deferred callbacks: event-loop components post tasks
// and timers capturing `this`, which the loop may run after the component is
// destroyed (an in-place teardown, or the loop's final task drain at
// shutdown). Guard() wraps such a callback so it becomes a no-op once the
// owner invalidated the token — typically the first statement of its
// destructor.
//
//   class Server {
//     ~Server() { alive_.Invalidate(); }
//     void Tick() { loop_->Post(alive_.Guard([this] { ... })); }
//     LivenessToken alive_;
//   };
#ifndef SRC_UTIL_LIVENESS_H_
#define SRC_UTIL_LIVENESS_H_

#include <functional>
#include <memory>
#include <utility>

namespace lard {

class LivenessToken {
 public:
  // Call first in the owner's destructor: already-queued guarded callbacks
  // become no-ops from this point on.
  void Invalidate() { token_.reset(); }

  template <typename Fn>
  std::function<void()> Guard(Fn fn) const {
    return [weak = std::weak_ptr<char>(token_), fn = std::move(fn)]() {
      if (weak.lock() != nullptr) {
        fn();
      }
    };
  }

 private:
  std::shared_ptr<char> token_ = std::make_shared<char>('\0');
};

}  // namespace lard

#endif  // SRC_UTIL_LIVENESS_H_
