// Tiny command-line flag parser for examples and benches.
//
//   lard::FlagSet flags("fig07_sim_apache");
//   int nodes = 10;
//   flags.AddInt("nodes", &nodes, "maximum cluster size");
//   flags.Parse(argc, argv);   // accepts --nodes=4 and --nodes 4
#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lard {

class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  void AddInt(const std::string& name, int64_t* value, const std::string& help);
  void AddDouble(const std::string& name, double* value, const std::string& help);
  void AddString(const std::string& name, std::string* value, const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);

  // Parses argv; on --help prints usage and exits 0; on malformed input prints
  // usage and exits 2. Unrecognized flags are fatal (catches typos in bench
  // scripts early).
  void Parse(int argc, char** argv);

  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* Find(const std::string& name) const;
  static bool SetValue(const Flag& flag, const std::string& text);

  std::string program_;
  std::vector<Flag> flags_;
};

}  // namespace lard

#endif  // SRC_UTIL_FLAGS_H_
