// Annotated mutex wrappers: the only mutex types allowed outside src/util/
// (enforced by tools/lint/concurrency_lint.py). lard::Mutex is a std::mutex
// carrying the Clang Thread Safety Analysis capability attribute, so fields
// declared LARD_GUARDED_BY(mutex_) are compile-time checked under
// -Wthread-safety (see src/util/thread_annotations.h and docs/CONCURRENCY.md).
#ifndef SRC_UTIL_MUTEX_H_
#define SRC_UTIL_MUTEX_H_

#include <mutex>

#include "src/util/thread_annotations.h"

namespace lard {

class LARD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LARD_ACQUIRE() { mutex_.lock(); }
  void Unlock() LARD_RELEASE() { mutex_.unlock(); }
  bool TryLock() LARD_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  // For the rare std:: interop (std::condition_variable_any). Callers using
  // this bypass the analysis — prefer Lock/Unlock or MutexLock.
  std::mutex& native() LARD_RETURN_CAPABILITY(this) { return mutex_; }

 private:
  std::mutex mutex_;
};

// RAII lock, the annotated std::lock_guard equivalent.
class LARD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) LARD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }
  ~MutexLock() LARD_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mutex_;
};

}  // namespace lard

#endif  // SRC_UTIL_MUTEX_H_
