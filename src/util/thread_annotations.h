// Clang Thread Safety Analysis macros (the compile-time half of the
// concurrency contract; see docs/CONCURRENCY.md). Under Clang these expand to
// the TSA attributes so a -Wthread-safety build proves every LARD_GUARDED_BY
// field is only touched with its mutex held; under other compilers they
// vanish. Use them through lard::Mutex / lard::MutexLock (src/util/mutex.h) —
// raw std::mutex outside src/util/ is rejected by tools/lint/concurrency_lint.py.
#ifndef SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define LARD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LARD_THREAD_ANNOTATION(x)
#endif

// On a class: this type is a capability (a mutex).
#define LARD_CAPABILITY(x) LARD_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that acquires a capability in its constructor and
// releases it in its destructor (lard::MutexLock).
#define LARD_SCOPED_CAPABILITY LARD_THREAD_ANNOTATION(scoped_lockable)

// On a field: reads and writes require holding `x`.
#define LARD_GUARDED_BY(x) LARD_THREAD_ANNOTATION(guarded_by(x))

// On a pointer/smart-pointer field: the *pointed-to* data requires `x` (the
// pointer itself may be read freely, e.g. set once in the constructor).
#define LARD_PT_GUARDED_BY(x) LARD_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: the caller must already hold the capability/ies.
#define LARD_REQUIRES(...) \
  LARD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the capability/ies (the function
// acquires them itself — annotating this catches self-deadlock).
#define LARD_EXCLUDES(...) \
  LARD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: acquires / releases the capability (Mutex::Lock/Unlock).
#define LARD_ACQUIRE(...) \
  LARD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LARD_RELEASE(...) \
  LARD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function: acquires the capability when returning `ret` (TryLock).
#define LARD_TRY_ACQUIRE(ret, ...) \
  LARD_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

// On a function: asserts (at runtime) that the capability is held, informing
// the analysis without acquiring anything.
#define LARD_ASSERT_CAPABILITY(x) \
  LARD_THREAD_ANNOTATION(assert_capability(x))

// On a function returning a reference to a mutex, so callers can lock
// through accessors.
#define LARD_RETURN_CAPABILITY(x) LARD_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for disciplines the analysis cannot express (e.g. locking a
// dynamic set of mutexes in a loop, or hybrid loop-confined/locked state).
// Every use carries a comment explaining the manual proof.
#define LARD_NO_THREAD_SAFETY_ANALYSIS \
  LARD_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_UTIL_THREAD_ANNOTATIONS_H_
