// Deterministic random number generation and the distributions the workload
// generator needs. Header-only; no global state — every component that needs
// randomness owns an Rng seeded from its config, which keeps simulations and
// generated traces exactly reproducible.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace lard {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    LARD_CHECK(n > 0);
    // Lemire's multiply-shift rejection method for unbiased bounded integers.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    uint64_t low = static_cast<uint64_t>(m);
    if (low < n) {
      uint64_t threshold = -n % n;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    LARD_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Exponential with the given mean (mean = 1/lambda).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Log-normal with parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma) { return std::exp(mu + sigma * NextGaussian()); }

  // Pareto with scale x_m and shape alpha (heavy tail for alpha near 1).
  double NextPareto(double x_m, double alpha) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return x_m / std::pow(u, 1.0 / alpha);
  }

  // Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  // Geometric number of trials >= 1 with success probability p.
  uint64_t NextGeometric(double p) {
    LARD_CHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) {
      return 1;
    }
    double u = NextDouble();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return 1 + static_cast<uint64_t>(std::log(u) / std::log(1.0 - p));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha.
// Used for Web document popularity (Zipf-like, per Arlitt & Williamson).
// O(log n) per sample via binary search on the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha) : cdf_(n) {
    LARD_CHECK(n > 0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) {
      cdf_[i] /= sum;
    }
    cdf_.back() = 1.0;  // guard against rounding
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // First index with cdf >= u.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lard

#endif  // SRC_UTIL_RNG_H_
