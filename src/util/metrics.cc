#include "src/util/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace lard {
namespace {

int BucketFor(double value) {
  if (!(value >= 1.0)) {
    return 0;  // negatives, NaN and sub-unit samples land in bucket 0
  }
  int octave = static_cast<int>(std::log2(value));
  double frac = value / std::exp2(octave);  // in [1, 2) modulo rounding
  if (frac >= 2.0) {
    ++octave;
    frac = 1.0;
  }
  const int sub = std::min(static_cast<int>((frac - 1.0) * MetricHistogram::kSubBuckets),
                           MetricHistogram::kSubBuckets - 1);
  const int bucket = octave * MetricHistogram::kSubBuckets + sub;
  return bucket >= MetricHistogram::kBuckets ? MetricHistogram::kBuckets - 1 : bucket;
}

// Splits "name{label=\"x\"}" into the canonical family name and the label
// block (empty when unlabeled) — Prometheus # TYPE lines and quantile labels
// need the bare family name.
void SplitName(const std::string& name, std::string* base, std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

// Appends one label to an existing (possibly empty) label block.
std::string WithExtraLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) {
    return "{" + extra + "}";
  }
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

std::string FormatDouble(double value) {
  char buf[64];
  // %.17g round-trips but is noisy; %.6g is plenty for monitoring output.
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// JSON string escaping for metric names (quotes appear in label syntax).
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void MetricHistogram::Observe(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++17 has no atomic<double>::fetch_add; CAS-loop the sum.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value, std::memory_order_relaxed)) {
  }
}

double MetricHistogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double MetricHistogram::BucketUpperBound(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::exp2(octave) * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

double MetricHistogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  const double target = static_cast<double>(total) * p / 100.0;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricCounter>();
  }
  return slot.get();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricGauge>();
  }
  return slot.get();
}

MetricHistogram* MetricsRegistry::Histogram(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricHistogram>();
  }
  return slot.get();
}

std::string MetricsRegistry::WithNode(const std::string& name, int32_t node) {
  return name + "{node=\"" + std::to_string(node) + "\"}";
}

std::string MetricsRegistry::WithFe(const std::string& name, int32_t fe) {
  return name + "{fe=\"" + std::to_string(fe) + "\"}";
}

std::string MetricsRegistry::RenderText() const {
  MutexLock lock(&mutex_);
  std::ostringstream out;
  std::string base;
  std::string labels;
  // Group by family so exactly one # TYPE line precedes each family's
  // samples. Name order alone is not enough: '{' sorts after '_', so
  // "a{...}" lands after "a_b" and a last-family check would re-emit
  // "# TYPE a" — invalid exposition format.
  std::map<std::string, std::string> families;
  for (const auto& [name, counter] : counters_) {
    SplitName(name, &base, &labels);
    families[base] += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [family, body] : families) {
    out << "# TYPE " << family << " counter\n" << body;
  }
  families.clear();
  for (const auto& [name, gauge] : gauges_) {
    SplitName(name, &base, &labels);
    families[base] += name + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [family, body] : families) {
    out << "# TYPE " << family << " gauge\n" << body;
  }
  families.clear();
  for (const auto& [name, histogram] : histograms_) {
    SplitName(name, &base, &labels);
    std::string& body = families[base];
    body += base + WithExtraLabel(labels, "quantile=\"0.5\"") + " " +
            FormatDouble(histogram->Percentile(50)) + "\n";
    body += base + WithExtraLabel(labels, "quantile=\"0.9\"") + " " +
            FormatDouble(histogram->Percentile(90)) + "\n";
    body += base + WithExtraLabel(labels, "quantile=\"0.99\"") + " " +
            FormatDouble(histogram->Percentile(99)) + "\n";
    body += base + "_count" + labels + " " + std::to_string(histogram->count()) + "\n";
    body += base + "_sum" + labels + " " + FormatDouble(histogram->sum()) + "\n";
  }
  for (const auto& [family, body] : families) {
    out << "# TYPE " << family << " summary\n" << body;
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  MutexLock lock(&mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << JsonQuote(name) << ":" << counter->value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ",") << JsonQuote(name) << ":" << FormatDouble(gauge->value());
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << JsonQuote(name) << ":{\"count\":" << histogram->count()
        << ",\"sum\":" << FormatDouble(histogram->sum())
        << ",\"p50\":" << FormatDouble(histogram->Percentile(50))
        << ",\"p90\":" << FormatDouble(histogram->Percentile(90))
        << ",\"p99\":" << FormatDouble(histogram->Percentile(99)) << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

}  // namespace lard
