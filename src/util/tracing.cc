#include "src/util/tracing.h"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "src/util/logging.h"

namespace lard {
namespace {

// splitmix64: cheap, well-mixed — consecutive conn ids must not all land in
// (or all miss) the sample.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// JSON string escaping for span details (paths and policy keys flow in).
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void FillSpan(TraceSpan* span, uint64_t trace_id, uint32_t seq, SpanKind kind, int32_t node,
              int64_t start_us, int64_t duration_us, const char* detail_fmt, va_list args) {
  span->trace_id = trace_id;
  span->seq = seq;
  span->kind = kind;
  span->node = node;
  span->start_us = start_us;
  span->duration_us = duration_us;
  std::vsnprintf(span->detail, sizeof(span->detail), detail_fmt, args);
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAccept:
      return "accept";
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kPolicy:
      return "policy";
    case SpanKind::kHandoff:
      return "handoff";
    case SpanKind::kConsult:
      return "consult";
    case SpanKind::kAdopt:
      return "adopt";
    case SpanKind::kServe:
      return "serve";
    case SpanKind::kDiskWait:
      return "disk_wait";
    case SpanKind::kLateral:
      return "lateral";
    case SpanKind::kFlush:
      return "flush";
    case SpanKind::kJournal:
      return "journal";
    case SpanKind::kReplay:
      return "replay";
    case SpanKind::kReassign:
      return "reassign";
    case SpanKind::kGossip:
      return "gossip";
    case SpanKind::kClose:
      return "close";
  }
  return "unknown";
}

TraceRing::TraceRing(std::string name, size_t capacity)
    : name_(std::move(name)),
      capacity_(capacity == 0 ? 1 : capacity),
      slots_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Record(const TraceSpan& span) {
  MutexLock lock(&mutex_);
  slots_[next_] = span;
  next_ = (next_ + 1) % slots_.size();
  size_ = std::min(size_ + 1, slots_.size());
  ++recorded_;
}

std::vector<TraceSpan> TraceRing::Snapshot() const {
  MutexLock lock(&mutex_);
  std::vector<TraceSpan> out;
  out.reserve(size_);
  // Oldest slot is `next_` once the ring has wrapped, 0 before.
  const size_t start = size_ == slots_.size() ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(slots_[(start + i) % slots_.size()]);
  }
  return out;
}

uint64_t TraceRing::recorded() const {
  MutexLock lock(&mutex_);
  return recorded_;
}

TraceRing* Tracer::Ring(const std::string& name) {
  MutexLock lock(&mutex_);
  for (const auto& ring : rings_) {
    if (ring->name() == name) {
      return ring.get();
    }
  }
  rings_.push_back(std::make_unique<TraceRing>(name, config_.ring_capacity));
  return rings_.back().get();
}

bool Tracer::Sampled(uint64_t trace_id) const {
  if (!config_.enabled) {
    return false;
  }
  if (config_.sample_every <= 1) {
    return true;
  }
  return Mix64(trace_id) % config_.sample_every == 0;
}

// Locks a dynamic set of ring mutexes in a loop — a discipline TSA cannot
// express (the capability set is runtime-sized), so the analysis is disabled
// here and the proof is manual: lock order is fixed (tracer mutex, then rings
// in creation order) and no other path holds two of these locks at once, so
// this cannot deadlock. Writers stall for the duration of one memcpy-scale
// copy.
std::vector<TraceRingSnapshot> Tracer::SnapshotAll() const
    LARD_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(&mutex_);
  // Take every ring's lock before copying any ring: the copies form one
  // coherent epoch across rings instead of N reads racing with writers on
  // other loop threads.
  for (const auto& ring : rings_) {
    ring->mutex_.Lock();
  }
  std::vector<TraceRingSnapshot> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    TraceRingSnapshot snap;
    snap.name = ring->name_;
    snap.capacity = ring->capacity_;
    snap.recorded = ring->recorded_;
    snap.spans.reserve(ring->size_);
    const size_t start = ring->size_ == ring->slots_.size() ? ring->next_ : 0;
    for (size_t i = 0; i < ring->size_; ++i) {
      snap.spans.push_back(ring->slots_[(start + i) % ring->slots_.size()]);
    }
    out.push_back(std::move(snap));
  }
  for (auto it = rings_.rbegin(); it != rings_.rend(); ++it) {
    (*it)->mutex_.Unlock();
  }
  return out;
}

std::vector<TraceSpan> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> spans;
  for (const TraceRingSnapshot& ring : SnapshotAll()) {
    for (const TraceSpan& span : ring.spans) {
      if (span.trace_id == trace_id) {
        spans.push_back(span);
      }
    }
  }
  std::sort(spans.begin(), spans.end(), [](const TraceSpan& a, const TraceSpan& b) {
    return a.start_us != b.start_us ? a.start_us < b.start_us : a.seq < b.seq;
  });
  return spans;
}

bool Tracer::HasRing(const std::string& name) const {
  MutexLock lock(&mutex_);
  for (const auto& ring : rings_) {
    if (ring->name() == name) {
      return true;
    }
  }
  return false;
}

std::string Tracer::RenderJson(const std::string& component) const {
  // One coherent capture of every ring, then group by trace id (ordered map
  // so output is stable for tests and diffing).
  std::vector<TraceRingSnapshot> rings = SnapshotAll();
  if (!component.empty()) {
    rings.erase(std::remove_if(rings.begin(), rings.end(),
                               [&component](const TraceRingSnapshot& ring) {
                                 return ring.name != component;
                               }),
                rings.end());
  }
  struct Annotated {
    TraceSpan span;
    const std::string* ring;
  };
  std::map<uint64_t, std::vector<Annotated>> by_trace;
  std::ostringstream rings_json;
  bool first_ring = true;
  for (const TraceRingSnapshot& ring : rings) {
    for (const TraceSpan& span : ring.spans) {
      by_trace[span.trace_id].push_back(Annotated{span, &ring.name});
    }
    rings_json << (first_ring ? "" : ",") << "{\"name\":\"" << JsonEscape(ring.name.c_str())
               << "\",\"capacity\":" << ring.capacity << ",\"recorded\":" << ring.recorded
               << "}";
    first_ring = false;
  }

  std::ostringstream out;
  out << "{\"sample_every\":" << config_.sample_every
      << ",\"enabled\":" << (config_.enabled ? "true" : "false") << ",\"traces\":[";
  bool first_trace = true;
  for (auto& [trace_id, spans] : by_trace) {
    std::sort(spans.begin(), spans.end(), [](const Annotated& a, const Annotated& b) {
      return a.span.start_us != b.span.start_us ? a.span.start_us < b.span.start_us
                                                : a.span.seq < b.span.seq;
    });
    out << (first_trace ? "" : ",") << "{\"trace_id\":" << trace_id << ",\"spans\":[";
    bool first_span = true;
    for (const Annotated& entry : spans) {
      const TraceSpan& span = entry.span;
      out << (first_span ? "" : ",") << "{\"kind\":\"" << SpanKindName(span.kind)
          << "\",\"seq\":" << span.seq << ",\"node\":" << span.node
          << ",\"start_us\":" << span.start_us << ",\"duration_us\":" << span.duration_us
          << ",\"ring\":\"" << JsonEscape(entry.ring->c_str()) << "\",\"detail\":\""
          << JsonEscape(span.detail) << "\"}";
      first_span = false;
    }
    out << "]}";
    first_trace = false;
  }
  out << "],\"rings\":[" << rings_json.str() << "]}";
  return out.str();
}

std::string Tracer::RenderChrome(const std::string& component) const {
  // Chrome trace-event format: one complete ("X") event per span, each ring
  // presented as a named pseudo-thread ("M" thread_name metadata). One
  // coherent capture feeds both the metadata and the events.
  std::vector<TraceRingSnapshot> rings = SnapshotAll();
  if (!component.empty()) {
    rings.erase(std::remove_if(rings.begin(), rings.end(),
                               [&component](const TraceRingSnapshot& ring) {
                                 return ring.name != component;
                               }),
                rings.end());
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (size_t tid = 0; tid < rings.size(); ++tid) {
    out << (first ? "" : ",") << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << JsonEscape(rings[tid].name.c_str()) << "\"}}";
    first = false;
    for (const TraceSpan& span : rings[tid].spans) {
      out << ",{\"name\":\"" << SpanKindName(span.kind) << "\",\"cat\":\"lard\",\"ph\":\"X\""
          << ",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << span.start_us
          << ",\"dur\":" << std::max<int64_t>(span.duration_us, 1) << ",\"args\":{\"trace_id\":\""
          << span.trace_id << "\",\"seq\":" << span.seq << ",\"node\":" << span.node
          << ",\"detail\":\"" << JsonEscape(span.detail) << "\"}}";
    }
  }
  out << "]}";
  return out.str();
}

void Tracer::LogSlow(const TraceSpan& final_span) {
  LARD_LOG(WARNING) << "slow request: trace=" << final_span.trace_id << " seq=" << final_span.seq
                    << " node=" << final_span.node << " took " << final_span.duration_us
                    << "us (threshold " << slow_threshold_us() << "us) "
                    << final_span.detail;
  if (!Sampled(final_span.trace_id)) {
    return;  // unsampled: only the summary line is available
  }
  for (const TraceSpan& span : SpansForTrace(final_span.trace_id)) {
    LARD_LOG(WARNING) << "  span " << SpanKindName(span.kind) << " seq=" << span.seq
                      << " node=" << span.node << " start=" << span.start_us
                      << "us dur=" << span.duration_us << "us " << span.detail;
  }
}

int64_t TraceNowUs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void RecordSpan(Tracer* tracer, TraceRing* ring, uint64_t trace_id, uint32_t seq, SpanKind kind,
                int32_t node, int64_t start_us, int64_t duration_us, const char* detail_fmt, ...) {
  if (tracer == nullptr || ring == nullptr || !tracer->Sampled(trace_id)) {
    return;
  }
  TraceSpan span;
  va_list args;
  va_start(args, detail_fmt);
  FillSpan(&span, trace_id, seq, kind, node, start_us, duration_us, detail_fmt, args);
  va_end(args);
  ring->Record(span);
}

void RecordSpanUnsampled(Tracer* tracer, TraceRing* ring, uint64_t trace_id, uint32_t seq,
                         SpanKind kind, int32_t node, int64_t start_us, int64_t duration_us,
                         const char* detail_fmt, ...) {
  if (tracer == nullptr || ring == nullptr || !tracer->enabled()) {
    return;
  }
  TraceSpan span;
  va_list args;
  va_start(args, detail_fmt);
  FillSpan(&span, trace_id, seq, kind, node, start_us, duration_us, detail_fmt, args);
  va_end(args);
  ring->Record(span);
}

}  // namespace lard
