// Streaming statistics and histograms used by the simulator, the prototype
// load generator and the benchmark harnesses.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lard {

// Count / mean / variance / min / max without storing samples
// (Welford's online algorithm).
class StreamingStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another accumulator into this one (parallel reduction).
  void Merge(const StreamingStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact percentiles over stored samples. Suitable for the volumes produced by
// our benches (<= a few million doubles).
class PercentileTracker {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  // p in [0, 100]. Returns 0 when empty. Sorts lazily (amortized).
  double Percentile(double p) const;
  size_t count() const { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Log2-bucketed histogram for long-tailed quantities (sizes, latencies).
// Bucket i covers [2^i, 2^(i+1)).
class LogHistogram {
 public:
  void Add(uint64_t value);

  uint64_t total_count() const { return total_; }
  // Renders "  [4096,8192): ###### 1234" style lines.
  std::string ToString() const;
  // Upper bound of the smallest prefix of buckets covering fraction `q` of
  // the samples (approximate quantile).
  uint64_t ApproxQuantile(double q) const;

 private:
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(64, 0);
  uint64_t total_ = 0;
};

}  // namespace lard

#endif  // SRC_UTIL_STATS_H_
