// The front-end's crash-replay journal (failure re-handoff beyond the
// cooperative drain window): for every handed-off P-HTTP connection the
// front-end retains a dup of the client socket and the serialized bytes of
// every request whose response has not yet fully reached the client. When a
// back-end dies *uncooperatively* (heartbeat loss / control-session EOF — no
// kHandback), the journal is everything needed to continue the connection on
// a surviving node: the tail of unacknowledged requests to re-serve, and the
// byte offset of the first response already delivered (the splice point).
//
// Bookkeeping contract per connection:
//   * entries_ always holds exactly the *unacknowledged* requests, oldest
//     first. Acks (kReplayAck from the serving node) pop completed entries.
//   * head splice offset = adoption_splice_ + head_partial_: bytes of
//     entries_.front()'s response delivered by earlier nodes (accumulated
//     across repeated crashes) plus bytes the current node has flushed.
//   * only tails that are entirely idempotent (per the front-end's method
//     policy, GET/HEAD by default) are replayable; a non-idempotent entry or
//     a capacity overflow turns a later crash into a clean giveup
//     (502/close) instead of a spliced half-response.
//
// Single-threaded (the owning front-end's loop thread).
#ifndef SRC_PROTO_REPLAY_JOURNAL_H_
#define SRC_PROTO_REPLAY_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/net/fd.h"

namespace lard {

struct ReplayJournalConfig {
  // Per-connection caps; crossing either drops the connection's protection
  // (the journal must stay bounded — a client pipelining faster than its
  // node serves cannot grow front-end memory without limit).
  size_t max_entries_per_conn = 256;
  size_t max_bytes_per_conn = 512 * 1024;
};

class ReplayJournal {
 public:
  struct Entry {
    std::string bytes;   // the request, re-serialized (replayable verbatim)
    std::string method;  // idempotency is judged per method
    std::string path;    // seeds the reassignment's cache affinity
    bool idempotent = false;
  };

  // The crash-time verdict for one connection.
  struct Plan {
    bool tracked = false;     // the journal knows this connection
    bool replayable = false;  // tail all idempotent, not overflowed
    // True when response bytes of the head entry already reached the client:
    // a giveup must then close without injecting a 502 into the stream.
    bool mid_response = false;
    uint64_t splice_offset = 0;
    std::vector<Entry> entries;  // the unacknowledged tail, oldest first
    // Consumed-but-incomplete request prefix at the serving node (its parser
    // buffer): replayed verbatim after the entries, so the suffix still in
    // the client socket completes the request at the adopting node instead
    // of arriving torn.
    std::string partial_tail;
  };

  explicit ReplayJournal(ReplayJournalConfig config) : config_(config) {}

  // Starts protecting `conn`. `client_fd` is the front-end's retained dup of
  // the client socket; the journal owns it until Drop().
  void Track(ConnId conn, UniqueFd client_fd);
  bool Tracks(ConnId conn) const { return records_.count(conn) != 0; }

  // Appends one request to the journal (handoff batch at the front-end,
  // kJournalAppend for requests parsed only at the back-end). Overflow drops
  // the connection's protection: entries are released, the record stays (the
  // fd and the overflow verdict are still needed at crash time).
  void Append(ConnId conn, Entry entry);

  // Progress from the serving node: `completed` responses fully flushed
  // since it adopted the connection, `partial` bytes of the next one.
  void Ack(ConnId conn, uint64_t completed, uint64_t partial);

  // Replaces the stored partial tail (the serving node's parser buffer;
  // empty = it drained into a complete, separately-appended request).
  void SetPartialTail(ConnId conn, std::string buffered);

  // The connection moved nodes cooperatively (drain/migration handback): the
  // journal restarts from exactly the requests being replayed to the new
  // node, plus the handback stream's unparsed suffix. No partial response
  // exists — handbacks flush first.
  void Rebuild(ConnId conn, std::vector<Entry> entries, std::string partial_tail);

  // Crash-time verdict (does not mutate).
  Plan PlanFor(ConnId conn) const;

  // A kReplay for `conn` was sent: delivered-prefix bookkeeping rolls into
  // adoption_splice and the new node's ack counting starts from zero.
  void NoteReplaySent(ConnId conn);

  // The retained client fd (owned by the journal; dup before shipping), or
  // -1 when the connection is untracked.
  int client_fd(ConnId conn) const;

  // Stops protecting `conn` and closes the retained fd. Idempotent.
  void Drop(ConnId conn);

  size_t tracked_connections() const { return records_.size(); }
  uint64_t overflows() const { return overflows_; }

 private:
  struct Record {
    std::deque<Entry> entries;
    std::string partial_tail;
    UniqueFd fd;
    uint64_t entry_bytes = 0;
    // Responses completed at the current serving node, as of the last ack.
    uint64_t node_completed = 0;
    // Bytes of entries.front()'s response delivered by *previous* nodes
    // (non-zero only while the head entry survived an earlier crash replay).
    uint64_t adoption_splice = 0;
    // Bytes of entries.front()'s response flushed by the current node.
    uint64_t head_partial = 0;
    bool overflowed = false;
  };

  ReplayJournalConfig config_;
  std::unordered_map<ConnId, Record> records_;
  uint64_t overflows_ = 0;
};

}  // namespace lard

#endif  // SRC_PROTO_REPLAY_JOURNAL_H_
