#include "src/proto/control_protocol.h"

namespace lard {
namespace {

void EncodeDirectives(WireWriter* writer, const std::vector<RequestDirective>& directives) {
  writer->U32(static_cast<uint32_t>(directives.size()));
  for (const auto& directive : directives) {
    writer->U8(static_cast<uint8_t>(directive.action));
    writer->U32(static_cast<uint32_t>(directive.node));
    writer->Str(directive.path);
    writer->U8(directive.cache_after_miss ? 1 : 0);
  }
}

// Minimum encoded size of one directive: action u8 + node u32 + path length
// u32 + cache u8. Bounding the declared count by remaining/10 keeps a
// malicious 4-byte count from reserving gigabytes before the reads fail.
constexpr size_t kMinDirectiveBytes = 10;

bool DecodeDirectives(WireReader* reader, std::vector<RequestDirective>* directives) {
  const uint32_t count = reader->U32();
  if (count > 1u << 20 || count > reader->remaining() / kMinDirectiveBytes) {
    return false;
  }
  directives->clear();
  directives->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RequestDirective directive;
    const uint8_t action = reader->U8();
    if (action > static_cast<uint8_t>(DirectiveAction::kMigrate)) {
      return false;
    }
    directive.action = static_cast<DirectiveAction>(action);
    directive.node = static_cast<NodeId>(reader->U32());
    directive.path = reader->Str();
    directive.cache_after_miss = reader->U8() != 0;
    directives->push_back(std::move(directive));
  }
  return reader->ok();
}

}  // namespace

std::string EncodeTelemetry(const TelemetryMsg& msg) {
  WireWriter writer;
  writer.U64(msg.seq);
  writer.U64(static_cast<uint64_t>(msg.t_ms));
  writer.U32(static_cast<uint32_t>(msg.samples.size()));
  for (const auto& sample : msg.samples) {
    writer.Str(sample.name);
    writer.F64(sample.value);
  }
  return writer.Take();
}

bool DecodeTelemetry(std::string_view payload, TelemetryMsg* msg) {
  WireReader reader(payload);
  msg->seq = reader.U64();
  msg->t_ms = static_cast<int64_t>(reader.U64());
  const uint32_t count = reader.U32();
  // Each sample costs at least its name length prefix (u32) + value (f64).
  constexpr size_t kMinSampleBytes = 12;
  if (count > 1u << 16 || count > reader.remaining() / kMinSampleBytes) {
    return false;
  }
  msg->samples.clear();
  msg->samples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TelemetrySample sample;
    sample.name = reader.Str();
    sample.value = reader.F64();
    msg->samples.push_back(std::move(sample));
  }
  return reader.Complete();
}

std::string EncodeHeartbeat(const HeartbeatMsg& msg) {
  WireWriter writer;
  writer.U64(msg.seq);
  writer.U32(msg.disk_queue_len);
  writer.U32(msg.active_conns);
  return writer.Take();
}

bool DecodeHeartbeat(std::string_view payload, HeartbeatMsg* msg) {
  WireReader reader(payload);
  msg->seq = reader.U64();
  msg->disk_queue_len = reader.U32();
  msg->active_conns = reader.U32();
  return reader.Complete();
}

std::string EncodeHandoff(const HandoffMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.U8(msg.autonomous ? 1 : 0);
  EncodeDirectives(&writer, msg.directives);
  writer.Str(msg.unparsed_input);
  writer.U8(msg.replay_protected ? 1 : 0);
  return writer.Take();
}

bool DecodeHandoff(std::string_view payload, HandoffMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->autonomous = reader.U8() != 0;
  if (!DecodeDirectives(&reader, &msg->directives)) {
    return false;
  }
  msg->unparsed_input = reader.Str();
  msg->replay_protected = reader.U8() != 0;
  return reader.Complete();
}

std::string EncodeReplay(const ReplayMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.U32(static_cast<uint32_t>(msg.origin_node));
  writer.U64(msg.splice_offset);
  writer.U8(msg.autonomous ? 1 : 0);
  EncodeDirectives(&writer, msg.directives);
  writer.Str(msg.replay_input);
  return writer.Take();
}

bool DecodeReplay(std::string_view payload, ReplayMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->origin_node = static_cast<NodeId>(reader.U32());
  msg->splice_offset = reader.U64();
  msg->autonomous = reader.U8() != 0;
  if (!DecodeDirectives(&reader, &msg->directives)) {
    return false;
  }
  msg->replay_input = reader.Str();
  return reader.Complete();
}

std::string EncodeReplayAck(const ReplayAckMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.U64(msg.completed);
  writer.U64(msg.partial_bytes);
  return writer.Take();
}

bool DecodeReplayAck(std::string_view payload, ReplayAckMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->completed = reader.U64();
  msg->partial_bytes = reader.U64();
  return reader.Complete();
}

std::string EncodeJournalAppend(const JournalAppendMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.Str(msg.method);
  writer.Str(msg.path);
  writer.Str(msg.request_bytes);
  return writer.Take();
}

bool DecodeJournalAppend(std::string_view payload, JournalAppendMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->method = reader.Str();
  msg->path = reader.Str();
  msg->request_bytes = reader.Str();
  return reader.Complete();
}

std::string EncodeJournalTail(const JournalTailMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.Str(msg.buffered);
  return writer.Take();
}

bool DecodeJournalTail(std::string_view payload, JournalTailMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->buffered = reader.Str();
  return reader.Complete();
}

std::string EncodeHandback(const HandbackMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.U32(static_cast<uint32_t>(msg.target_node));
  EncodeDirectives(&writer, msg.directives);
  writer.Str(msg.replay_input);
  return writer.Take();
}

bool DecodeHandback(std::string_view payload, HandbackMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->target_node = static_cast<NodeId>(reader.U32());
  if (!DecodeDirectives(&reader, &msg->directives)) {
    return false;
  }
  msg->replay_input = reader.Str();
  return reader.Complete();
}

std::string EncodeConsult(const ConsultMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  writer.U32(msg.disk_queue_len);
  writer.U32(static_cast<uint32_t>(msg.paths.size()));
  for (const auto& path : msg.paths) {
    writer.Str(path);
  }
  return writer.Take();
}

bool DecodeConsult(std::string_view payload, ConsultMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  msg->disk_queue_len = reader.U32();
  const uint32_t count = reader.U32();
  // Each path costs at least its u32 length prefix on the wire.
  if (count > 1u << 20 || count > reader.remaining() / 4) {
    return false;
  }
  msg->paths.clear();
  msg->paths.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    msg->paths.push_back(reader.Str());
  }
  return reader.Complete();
}

std::string EncodeAssignments(const AssignmentsMsg& msg) {
  WireWriter writer;
  writer.U64(msg.conn_id);
  EncodeDirectives(&writer, msg.directives);
  return writer.Take();
}

bool DecodeAssignments(std::string_view payload, AssignmentsMsg* msg) {
  WireReader reader(payload);
  msg->conn_id = reader.U64();
  if (!DecodeDirectives(&reader, &msg->directives)) {
    return false;
  }
  return reader.Complete();
}

std::string EncodeU64(uint64_t value) {
  WireWriter writer;
  writer.U64(value);
  return writer.Take();
}

bool DecodeU64(std::string_view payload, uint64_t* value) {
  WireReader reader(payload);
  *value = reader.U64();
  return reader.Complete();
}

std::string EncodeU32(uint32_t value) {
  WireWriter writer;
  writer.U32(value);
  return writer.Take();
}

bool DecodeU32(std::string_view payload, uint32_t* value) {
  WireReader reader(payload);
  *value = reader.U32();
  return reader.Complete();
}

}  // namespace lard
