// Deterministic synthetic content for the prototype back-ends (DESIGN.md §2:
// the substitution for the Rice servers' real document tree). Bodies are
// generated on demand from the target's path and size — no gigabytes on disk,
// yet every byte is reproducible, so the load generator can verify responses
// end-to-end.
#ifndef SRC_PROTO_CONTENT_STORE_H_
#define SRC_PROTO_CONTENT_STORE_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace lard {

class ContentStore {
 public:
  // `catalog` must outlive the store; it defines the document tree.
  explicit ContentStore(const TargetCatalog* catalog);

  // Body bytes for `target`: "<path>#<size>#" followed by a deterministic
  // byte pattern, exactly Get(target).size_bytes long (a header longer than
  // the document is truncated).
  std::string BodyFor(TargetId target) const;

  // The body a client should expect for a path of the given size — used for
  // end-to-end verification without a catalog round-trip.
  static std::string ExpectedBody(const std::string& path, uint64_t size_bytes);

  // Resolves a path to a target id; kInvalidTarget when absent (-> 404).
  TargetId Resolve(const std::string& path) const { return catalog_->Find(path); }

  uint64_t SizeOf(TargetId target) const { return catalog_->Get(target).size_bytes; }
  const TargetCatalog& catalog() const { return *catalog_; }

 private:
  const TargetCatalog* catalog_;
};

}  // namespace lard

#endif  // SRC_PROTO_CONTENT_STORE_H_
