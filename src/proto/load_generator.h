// Closed-loop HTTP client load generator (Section 8.1's "event-driven program
// that simulates multiple HTTP clients ... each simulated client makes
// requests as fast as the server cluster can handle them").
//
// Worker threads replay trace sessions with blocking sockets: P-HTTP mode
// opens one connection per session, sends each batch pipelined, and reads all
// of the batch's responses before the next batch; HTTP/1.0 mode opens one
// connection per request. Responses are verified against the deterministic
// content store (prefix + length), making every bench an end-to-end
// correctness check too.
#ifndef SRC_PROTO_LOAD_GENERATOR_H_
#define SRC_PROTO_LOAD_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/stats.h"

namespace lard {

struct LoadGeneratorConfig {
  uint16_t port = 0;           // front-end port
  // Replicated front-end tier: when non-empty, sessions are dealt
  // round-robin across these ports (DNS/VIP spraying) and `port` is ignored.
  std::vector<uint16_t> ports;
  int num_clients = 16;        // concurrent client workers
  bool http10 = false;         // flatten sessions to one request per connection
  bool verify_bodies = true;   // check prefix/length of every response
  int64_t max_sessions = -1;   // cap (-1 = whole trace)
  // Stop issuing new sessions after this long (0 = no limit); in-flight
  // sessions complete.
  int64_t time_limit_ms = 0;
  // Per-socket receive timeout (SO_RCVTIMEO). 0 = block forever. Membership
  // scenarios need this: a *killed* back-end holds its client sockets open
  // but silent, and the affected sessions must fail over to fresh
  // connections instead of hanging the worker.
  int64_t recv_timeout_ms = 0;
  // Record one timestamped latency sample per completed batch (SLO curves:
  // drain/migration storms are judged by per-request p50/p95/p99 over time,
  // not by the mean). Off by default — samples cost memory on long runs.
  bool record_latencies = false;
  // Open-loop arrival mode (> 0): sessions start at Poisson arrival instants
  // at this aggregate rate instead of as fast as the cluster responds. The
  // whole arrival schedule is precomputed from open_loop_seed; workers sleep
  // until each instant and record how late they actually started (the
  // coordinated-omission guard: a saturated cluster shows up as growing
  // start lag and rising tail latency, not as a silently slowed schedule).
  // The closed-loop knobs (num_clients, max_sessions, time_limit_ms) keep
  // their meanings.
  double open_loop_rps = 0.0;
  uint64_t open_loop_seed = 1;
};

// One completed batch: when it finished (offset from load start), how long
// it took, and how many pipelined requests it carried (each request of a
// batch experiences the batch's latency — the pipelining contract).
struct LatencySample {
  int64_t t_ms = 0;
  double latency_ms = 0.0;
  uint32_t requests = 0;
};

struct LoadResult {
  uint64_t sessions = 0;
  uint64_t requests = 0;
  uint64_t responses_ok = 0;
  uint64_t responses_bad = 0;    // non-200 or body mismatch
  uint64_t transport_errors = 0; // connect/read/write failures
  uint64_t bytes_received = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double throughput_mbps = 0.0;
  double mean_batch_latency_ms = 0.0;
  double p95_batch_latency_ms = 0.0;
  // Filled when config.record_latencies: every batch completion across all
  // workers, unordered (callers window/sort as needed).
  std::vector<LatencySample> latency_samples;
  // Open-loop mode only (config.open_loop_rps > 0). Start lag is how far
  // past its scheduled arrival instant each session actually began; sustained
  // growth means the offered rate exceeds what generator + cluster sustain.
  double offered_rps = 0.0;
  double mean_start_lag_ms = 0.0;
  double max_start_lag_ms = 0.0;
  uint64_t late_sessions = 0;  // began > 1ms behind schedule
};

// Replays `trace` against the cluster at 127.0.0.1:config.port and blocks
// until done. Sessions are dealt to workers in trace order.
LoadResult RunLoad(const LoadGeneratorConfig& config, const Trace& trace);

}  // namespace lard

#endif  // SRC_PROTO_LOAD_GENERATOR_H_
