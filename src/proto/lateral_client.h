// Client side of the back-end-to-back-end lateral fetch path (Section 7.4).
// The paper implements remote fetching over NFS cross-mounts and notes that
// "persistent HTTP connections among the backend nodes" are the equivalent
// alternative — which is what we build: one persistent HTTP/1.1 connection
// per peer, pipelined, with responses matched to fetches in FIFO order.
// The relaying front-end reuses this class for its back-end connections.
//
// All methods on the owning event loop's thread.
#ifndef SRC_PROTO_LATERAL_CLIENT_H_
#define SRC_PROTO_LATERAL_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/http/response_parser.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/util/liveness.h"

namespace lard {

class LateralClient {
 public:
  // status, body. status 0 = transport failure.
  using FetchCallback = std::function<void(int status, std::string body)>;

  // `timeout_ms` bounds each fetch: a peer that accepts but never answers —
  // a *killed* node's listener keeps accepting into the kernel backlog until
  // its process is torn down — would otherwise wedge the FIFO pipeline (and
  // the client connection being served) forever. On expiry the whole
  // pipeline fails with status 0 (callers fall back to a local serve) and
  // the next fetch reconnects. <= 0 disables.
  LateralClient(EventLoop* loop, uint16_t peer_port, int64_t timeout_ms = 2000);

  // Issues GET `path`; callbacks fire in issue order. Connects lazily on
  // first use; a transport failure fails all in-flight fetches with status 0
  // and the next fetch reconnects.
  void Fetch(const std::string& path, FetchCallback callback);

  uint64_t fetches_issued() const { return fetches_issued_; }
  uint64_t fetches_timed_out() const { return fetches_timed_out_; }

 private:
  bool EnsureConnected();
  void OnData(std::string_view data);
  void OnClose();

  EventLoop* loop_;
  uint16_t peer_port_ = 0;
  int64_t timeout_ms_ = 0;
  // Guards the per-fetch deadline timers: the owning back-end can be torn
  // down in place while its loop keeps running.
  LivenessToken alive_;
  std::unique_ptr<Connection> conn_;
  ResponseParser parser_;
  std::deque<FetchCallback> pending_;
  uint64_t fetches_issued_ = 0;
  uint64_t fetches_completed_ = 0;  // answered or failed (FIFO, monotone)
  uint64_t fetches_timed_out_ = 0;
};

}  // namespace lard

#endif  // SRC_PROTO_LATERAL_CLIENT_H_
