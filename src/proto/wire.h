// Tiny binary encoder/decoder for the prototype's control-session messages.
// Little-endian, length-prefixed strings. A reader that runs out of bytes or
// sees malformed data flips into a failed state checked once at the end
// (monadic style keeps call sites linear).
#ifndef SRC_PROTO_WIRE_H_
#define SRC_PROTO_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace lard {

class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  // IEEE-754 double carried through the U64 little-endian framing.
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Ensure(1)) {
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Ensure(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Ensure(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t len = U32();
    if (!Ensure(len)) {
      return "";
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  // True when every read so far was in bounds and all bytes were consumed.
  bool Complete() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Ensure(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace lard

#endif  // SRC_PROTO_WIRE_H_
