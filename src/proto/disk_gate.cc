#include "src/proto/disk_gate.h"

#include <time.h>

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lard {

DiskGate::DiskGate(EventLoop* loop, const DiskCostModel& costs, double time_scale)
    : loop_(loop), costs_(costs), time_scale_(time_scale) {
  LARD_CHECK(time_scale_ > 0.0);
}

int64_t DiskGate::NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void DiskGate::Read(uint64_t bytes, std::function<void()> done) {
  const double service_ms = DiskServiceTimeUs(costs_, bytes) * time_scale_ / 1000.0;
  const int64_t now = NowMs();
  const int64_t start = std::max(now, busy_until_ms_);
  const int64_t completion =
      start + std::max<int64_t>(1, static_cast<int64_t>(std::llround(service_ms)));
  busy_until_ms_ = completion;
  ++outstanding_;
  ++total_reads_;
  loop_->ScheduleAfterMs(completion - now, alive_.Guard([this, done = std::move(done)]() {
                           --outstanding_;
                           done();
                         }));
}

}  // namespace lard
