// Prototype front-end node (Sections 7.1–7.3): accepts client TCP
// connections, reads the first (batch of) request(s), runs the src/core
// Dispatcher, and
//
//   * in the handoff mechanisms, passes the client socket fd plus the bytes
//     received so far to the chosen back-end over that back-end's control
//     session (our user-space TCP single handoff), then keeps serving the
//     connection's dispatcher consults — answering with *tagged requests*
//     that direct the handling node to serve locally or fetch laterally
//     (back-end request forwarding);
//   * in the multiple-handoff mechanism, additionally relays kHandback
//     messages: a back-end that must migrate a connection flushes, detaches
//     the client fd and returns it here; we forward it to the target node as
//     a fresh handoff carrying the unserved-request replay (Section 7.2's
//     sketched design, which the paper's prototype did not implement);
//   * in the relaying mechanism, never hands off: it proxies every request to
//     a per-request back-end choice over persistent back-end connections and
//     relays the response bytes itself.
//
// The front-end is also the cluster's control plane anchor: it tracks
// back-end liveness via kHeartbeat messages on the control sessions, declares
// a silent node dead after `heartbeat_timeout_ms` and auto-removes it from
// the dispatcher (the kill-a-back-end scenario), and exposes the membership
// operations the admin API drives — AddNode, DrainNode, RemoveNode,
// SetPolicy.
//
// Threading model (reactor-per-core): the front-end runs on an EventLoopGroup
// of N epoll loops. Loop 0 is the control-plane loop — back-end control
// sessions, heartbeats/health sweeps, mesh gossip, the replay journal and the
// admin server all live there and nowhere else. Client connections shard
// across all N loops (per-loop SO_REUSEPORT listeners when the kernel allows,
// round-robin fd handoff from a single loop-0 listener otherwise); a
// connection, its parser and its raw-byte capture are pinned to the owning
// loop for their whole lifetime. The shared routing state (dispatcher,
// live-connection set, disk table, mesh table, gossip hints) sits behind one
// mutex — a thread-safe façade rather than per-loop shards — so every loop
// decides over the same coherent vcache/load view; see
// docs/ARCHITECTURE.md "Threading model" for why. A shard loop that hands a
// connection off finishes the loop-0-owned half (journal, control-session
// send) by posting a CompleteHandoff to loop 0. With one loop the group
// degenerates to the old single-threaded front-end, bit-for-bit.
#ifndef SRC_PROTO_FRONTEND_H_
#define SRC_PROTO_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/dispatcher.h"
#include "src/http/request_parser.h"
#include "src/mesh/mesh_state.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/event_loop_group.h"
#include "src/net/framed_channel.h"
#include "src/obs/samplers.h"
#include "src/obs/slo_watchdog.h"
#include "src/obs/time_series.h"
#include "src/proto/control_protocol.h"
#include "src/proto/lateral_client.h"
#include "src/proto/replay_journal.h"
#include "src/trace/trace.h"
#include "src/util/liveness.h"
#include "src/util/metrics.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/tracing.h"

namespace lard {

struct FrontEndConfig {
  int num_nodes = 1;
  // Replicated front-end tier (the mesh). fe_id names this replica;
  // num_frontends > 1 arms the gossip machinery: the dispatcher decides over
  // local + gossiped remote load, every control session announces the
  // replica (kFeHello), and per-FE labelled metrics are published alongside
  // the shared (cluster-total) instruments.
  int fe_id = 0;
  int num_frontends = 1;
  // Mesh sync period (only meaningful with num_frontends > 1).
  int64_t gossip_interval_ms = 50;
  Policy policy = Policy::kExtendedLard;
  // Non-empty: PolicyRegistry name overriding `policy` (plugin policies).
  std::string policy_name;
  // Capacity weight per initial node (padded with 1.0); weighted policies
  // normalize load by weight.
  std::vector<double> node_weights;
  // Supported in the prototype: kSingleHandoff, kBackEndForwarding,
  // kMultipleHandoff (our extension: the paper's prototype never built it —
  // we migrate connections via fd hand-back through the front-end) and
  // kRelayingFrontEnd.
  Mechanism mechanism = Mechanism::kBackEndForwarding;
  LardParams params;
  uint64_t virtual_cache_bytes = 32ull * 1024 * 1024;
  uint16_t listen_port = 0;  // 0 = pick a free port
  // Relay-mode back-end fetch deadline (see BackendConfig::lateral_timeout_ms).
  int64_t lateral_timeout_ms = 2000;
  // A back-end silent (no heartbeat, no disk report) for this long is
  // declared dead and auto-removed. <= 0 disables liveness tracking (the
  // control-session-EOF path still removes crashed nodes).
  int64_t heartbeat_timeout_ms = 2000;
  // Graceful removal: a live node being admin-removed first drains and gives
  // its connections back (re-handoff); after this grace period whatever is
  // left is hard-removed. <= 0 removes immediately (old drop semantics).
  int64_t retire_grace_ms = 1000;
  // Keep-alive bound for front-end-owned client connections: a connection
  // with no bytes in or out for this long is closed and its shard state
  // reaped (the P-HTTP idle reaper; the paper's back-ends use the companion
  // BackendConfig::idle_close_ms for adopted connections). The deadline is a
  // per-connection timer-wheel entry rearmed on every read/write, so the
  // cost is O(1) per event at any connection count. Runtime-tunable via
  // POST /idletimeout. <= 0 disables.
  int64_t idle_timeout_ms = 30000;
  // Crash-transparent request replay: the front-end retains a dup of every
  // handed-off client socket plus a bounded journal of unacknowledged
  // requests, and when a back-end dies *without* handing its connections
  // back (kill, missed heartbeats, control EOF) the orphans are re-handed
  // off to survivors with the journaled idempotent tail replayed and the
  // response stream spliced at the recorded offset. Only meaningful for the
  // handoff mechanisms (relaying keeps connections at the front-end).
  bool replay_enabled = true;
  ReplayJournalConfig replay_journal;
  // Methods whose requests may be replayed after a crash (the journal's
  // idempotency policy). A non-idempotent request in the unacknowledged tail
  // turns the crash into a clean 502/close for that client instead.
  std::vector<std::string> idempotent_methods = {"GET", "HEAD"};
  // Optional shared registry (lard_fe_*, lard_cluster_* instruments).
  MetricsRegistry* metrics = nullptr;
  // Telemetry sampling period for this front-end's TimeSeriesStore (conn/
  // handoff/replay rates, loop health, process gauges) and the SLO watchdog
  // evaluation cadence. <= 0 disables the telemetry pipeline on this FE
  // (back-end kTelemetry rows are still mirrored if they arrive).
  int64_t telemetry_interval_ms = 0;
  // Watchdog rules evaluated every telemetry tick. Empty = a built-in
  // default set (back-end p99 latency, giveup/replay rates, loop wakeup
  // delay, back-end load skew).
  std::vector<SloRule> slo_rules;
  // Optional request tracer: accept/parse/policy/handoff/replay spans are
  // recorded into per-loop rings — "fe<fe_id>" for loop 0 (the historic name)
  // and "fe<fe_id>.<k>" for shard loop k — sampled by trace id, so FE and
  // back-end spans of one connection are kept or dropped together.
  Tracer* tracer = nullptr;
};

struct FrontEndCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> handoffs{0};
  std::atomic<uint64_t> consults{0};
  std::atomic<uint64_t> relayed_requests{0};
  std::atomic<uint64_t> migrations{0};  // hand-backs relayed (multiple handoff)
  std::atomic<uint64_t> rehandoffs{0};  // drain givebacks re-handed-off to a new node
  std::atomic<uint64_t> replays{0};  // crashed-node conns re-handed-off with a journal replay
  std::atomic<uint64_t> replay_giveups{0};  // orphans unreplayable (non-idempotent/overflow/no node)
  std::atomic<uint64_t> heartbeats{0};
  std::atomic<uint64_t> auto_removals{0};  // nodes declared dead by health tracking
  std::atomic<uint64_t> rejected_no_backend{0};  // 503s with zero assignable nodes
  std::atomic<uint64_t> idle_closes{0};  // FE-owned conns reaped at the idle deadline
};

class FrontEnd {
 public:
  // `catalog` maps request paths to targets (sizes) for the dispatcher's
  // virtual caches; must outlive the front-end. `loops` is the reactor
  // group this front-end runs on (loop 0 = control plane; all loops carry
  // client connections); it must outlive the front-end too.
  FrontEnd(const FrontEndConfig& config, EventLoopGroup* loops, const TargetCatalog* catalog);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  // Loop-0 thread. control_fds[i] is the unix-socket end of node i's control
  // session. Opens the client listener(s); port available via port() after.
  void Start(std::vector<UniqueFd> control_fds);

  // Loop-0 thread; relaying mechanism only: connect to the back-ends' HTTP
  // (lateral) ports (every shard loop gets its own persistent connections).
  void ConnectBackends(const std::vector<uint16_t>& backend_http_ports);

  // --- control plane (loop-0 thread; the admin server calls these) ---

  // Registers a freshly started back-end: control session + (relay mode) its
  // HTTP port + capacity weight. Returns the new node's id.
  NodeId AddNode(UniqueFd control_fd, uint16_t backend_http_port, double weight = 1.0);
  // Stops new assignments to `node` and asks it (kDrain) to give its idle
  // persistent connections back for re-handoff to surviving nodes.
  bool DrainNode(NodeId node);
  // Removes `node`. A live node with connections retires gracefully: drain +
  // giveback, then the hard removal once its connections have migrated (or
  // after retire_grace_ms). Dead/silent nodes are removed immediately. Safe
  // on live, draining and already-dead nodes (idempotent; returns false when
  // nothing changed).
  bool RemoveNode(NodeId node);
  // Invoked on the loop-0 thread after a node's removal completes (control
  // session torn down) — the harness stops the node's thread here.
  void set_on_node_removed(std::function<void(NodeId)> cb) { on_node_removed_ = std::move(cb); }
  // Runtime policy switch (future decisions only). The name overload accepts
  // any PolicyRegistry name and returns false on an unknown one.
  void SetPolicy(Policy policy) LARD_EXCLUDES(state_mutex_);
  bool SetPolicyByName(const std::string& name) LARD_EXCLUDES(state_mutex_);
  // Membership + health snapshot as the admin API's JSON body.
  std::string DescribeNodesJson() const LARD_EXCLUDES(state_mutex_);
  // Burns one dispatcher node-id slot (add + immediate remove) so a
  // front-end joining an established cluster keeps its node ids aligned with
  // the tier across slots whose nodes already died.
  void BurnNodeSlot() LARD_EXCLUDES(state_mutex_);

  // --- the front-end mesh (replicated tier) ---

  // Loop-0 thread. Wires the gossip channel to peer front-end `peer_fe_id`
  // (one FramedChannel per peer pair; the harness builds the full mesh).
  void AttachPeer(uint32_t peer_fe_id, UniqueFd gossip_fd);
  // This replica's mesh state as JSON: epoch, gossip seq, per-peer lag/seq/
  // epoch/load, violation counters. Thread-safe (admin runs on FE 0's loop;
  // the snapshot is refreshed on every gossip tick under a mutex).
  std::string DescribeMeshJson() const LARD_EXCLUDES(mesh_json_mutex_);

  // --- telemetry (thread-safe; stores are internally synchronized) ---

  // This replica's own telemetry series (null when telemetry is disabled).
  const TimeSeriesStore* telemetry() const { return telemetry_.get(); }
  // The SLO watchdog (null when telemetry is disabled).
  const SloWatchdog* watchdog() const { return watchdog_.get(); }
  // Merged verdict for /cluster/health roll-ups; kOk when telemetry is off.
  HealthStatus health_status() const {
    return watchdog_ == nullptr ? HealthStatus::kOk : watchdog_->status();
  }
  // JSON object *fragment* ("\"fe0\":{...},\"be1\":{...}") mapping component
  // name to its series (GET /timeseries). `component` non-empty restricts to
  // that one component; `metric` filters series by substring; window_ms <= 0
  // renders full retention. include_nodes adds the mirrored back-end stores.
  std::string DescribeTimeSeriesJson(const std::string& metric, const std::string& component,
                                     int64_t window_ms, bool include_nodes) const
      LARD_EXCLUDES(telemetry_mutex_);
  // This replica's health view (GET /cluster/health): watchdog status +
  // reasons, freshest per-component samples. Refreshed every telemetry tick
  // under a mutex (the DescribeMeshJson pattern); "{}" when telemetry is off.
  std::string DescribeHealthJson() const LARD_EXCLUDES(health_json_mutex_);

  uint16_t port() const { return port_.load(std::memory_order_acquire); }
  const FrontEndCounters& counters() const { return counters_; }

  // Runtime idle-deadline tuning (POST /idletimeout; thread-safe). New
  // deadlines apply to the next arm/rearm of each connection's timer; <= 0
  // stops reaping (already-armed timers fire once and no-op).
  void set_idle_timeout_ms(int64_t ms) { idle_timeout_ms_.store(ms, std::memory_order_relaxed); }
  int64_t idle_timeout_ms() const { return idle_timeout_ms_.load(std::memory_order_relaxed); }
  // Per-state open-connection gauges (also telemetry series): connections
  // owned by this front-end's shards vs. handed off (dispatcher-tracked but
  // living at a back-end, journal state still held here). Both thread-safe;
  // the handed-off count derives from the dispatcher so every control-plane
  // path (handback, failure replay, giveup) is covered by construction.
  int64_t open_conns_fe_owned() const { return conns_fe_owned_.load(std::memory_order_relaxed); }
  int64_t open_conns_handed_off() const LARD_EXCLUDES(state_mutex_);
  // Lock-free view of the dispatcher for loop-0/test callers (via
  // InspectReplica, which serializes on this front-end's control-plane
  // loop); cross-thread readers must use DispatcherCountersSnapshot().
  const Dispatcher& dispatcher() const LARD_NO_THREAD_SAFETY_ANALYSIS {
    return *dispatcher_;
  }
  int fe_loops() const { return static_cast<int>(shards_.size()); }

  // Coherent cross-thread copy of the dispatcher's decision counters (and,
  // optionally, its open-connection count), taken under the routing-state
  // mutex — the shard loops mutate the counters concurrently, so a raw
  // counters() read from another thread would be torn.
  DispatcherCounters DispatcherCountersSnapshot(size_t* open_connections = nullptr) const
      LARD_EXCLUDES(state_mutex_);

  // Times a client-connection callback fired on a loop other than the one
  // the connection is pinned to, plus every off-thread touch of loop-confined
  // state the loops' own AssertInLoopThread() counted (release builds; debug
  // builds abort instead). Always 0 by construction; exported so the
  // pinning-under-churn tests can assert the invariant directly.
  uint64_t pinning_violations() const {
    uint64_t total = pinning_violations_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
      total += shard->loop->pinning_violations();
    }
    return total;
  }

 private:
  struct LoopShard;

  // Hot per-connection struct: at 100k+ connections per process its size is
  // the front-end's memory floor, so cold state is packed or heap-deferred.
  // The relay queue (relaying mode only — the handoff mechanisms never queue
  // here) is lazily allocated: a libstdc++ deque is ~80 bytes inline plus a
  // ~512-byte map block the moment it constructs, which would dwarf the rest
  // of the struct for every handed-off connection.
  struct FeConn {
    ConnId id = 0;
    LoopShard* shard = nullptr;  // owning loop; all callbacks fire there
    std::unique_ptr<Connection> conn;
    RequestParser parser;
    std::string raw_bytes;  // everything received (shipped on handoff)
    // Idle-deadline wheel timer on the owning loop (0 = none armed):
    // rearmed on every byte in/out, fired = reap the connection. Deadlines
    // past the wheel horizon fall back to a lazy check: the timer fires,
    // compares last_activity_ms, and re-arms for the remainder.
    EventLoop::TimerId idle_timer = 0;
    int64_t last_activity_ms = 0;
    // Relaying mode queue of parsed-but-unserved requests (see above).
    std::unique_ptr<std::deque<std::pair<HttpRequest, NodeId>>> relay_queue;
    bool in_dispatcher = false;
    bool serving = false;
    bool closed = false;
  };

  // One reactor shard: a loop plus everything pinned to it. Client
  // connections never migrate between shards; only the detached fd leaves
  // (to a back-end, via loop 0). Shard 0 is loop 0 and also hosts the
  // control plane.
  struct LoopShard {
    EventLoop* loop = nullptr;
    int index = 0;
    UniqueFd listener;  // per-shard SO_REUSEPORT socket (or the fallback's)
    std::unordered_map<ConnId, std::unique_ptr<FeConn>> conns;
    ConnId next_conn_id = 0;
    TraceRing* trace_ring = nullptr;  // "fe<k>" for shard 0, "fe<k>.<n>" else
    std::vector<std::unique_ptr<LateralClient>> relays;  // relaying mode
  };

  // The loop-0-owned half of a shard-initiated handoff: journal bookkeeping
  // plus the control-session send. Built on the shard loop (which owns the
  // parse and the fd dup), executed on loop 0 (which owns nodes_ and the
  // journal).
  struct PendingHandoff {
    NodeId node = kInvalidNode;
    HandoffMsg msg;
    UniqueFd client_fd;    // the detached socket to ship
    UniqueFd retained_fd;  // journal dup (invalid when unprotected/dup failed)
    std::vector<ReplayJournal::Entry> journal_entries;
    std::string partial_tail;
    TraceRing* trace_ring = nullptr;
    bool traced = false;
    size_t request_count = 0;
  };

  // Per-back-end control-plane state, indexed by NodeId (slots persist after
  // removal so ids stay stable). Loop-0 confined.
  struct NodeLink {
    std::unique_ptr<FramedChannel> control;
    int64_t last_heartbeat_ms = 0;   // also bumped by disk reports/consults
    bool heartbeat_seen = false;     // a real kHeartbeat arrived (age is valid)
    uint64_t heartbeat_seq = 0;
    uint32_t reported_conns = 0;
    // Non-zero once this node's *detected* failure (heartbeat loss or
    // control EOF) has been processed. Heartbeat loss and session EOF can
    // both fire for one dead node; the epoch makes detection idempotent so
    // orphans are never replayed or reassigned twice.
    uint64_t failure_epoch = 0;
    MetricCounter* handoff_counter = nullptr;
  };

  class DiskTable;

  void OnAccept(LoopShard* shard, uint32_t events);
  // Takes ownership of a fresh client socket on `shard`'s loop thread: the
  // shed-at-the-door check, FeConn construction, callback pinning.
  void AdoptClientFd(LoopShard* shard, UniqueFd fd);
  void OnClientData(FeConn* conn, std::string_view data);
  void OnClientClosed(FeConn* conn);
  void DestroyConn(FeConn* conn);

  // --- idle-deadline reaper (each call on the connection's shard loop) ---

  // Arms (or re-arms after a config change) `conn`'s idle timer.
  void ArmIdleTimer(FeConn* conn);
  // Bytes moved in either direction: push the deadline out. The wheel rearm
  // is O(1); a dead/fired timer id falls back to a fresh arm.
  void TouchIdleTimer(FeConn* conn);
  // The deadline fired with no intervening activity: close + reap.
  void OnIdleDeadline(LoopShard* shard, ConnId id);

  void HandoffFlow(FeConn* conn, std::vector<HttpRequest> requests);
  // Loop 0. Re-checks the target's control session (the shard's dispatcher
  // pick can race a node death), journals the retained dup, and ships the
  // connection. Sheds with a raw 503 when the target died in flight.
  void CompleteHandoff(PendingHandoff pending);
  void RelayFlow(FeConn* conn, std::vector<HttpRequest> requests);
  void ProcessNextRelay(LoopShard* shard, ConnId id);

  void OnControlMessage(NodeId node, uint8_t type, std::string payload, UniqueFd fd)
      LARD_EXCLUDES(state_mutex_);
  // Locked (state_mutex_) helpers — callers hold the lock.
  void HandleConsult(NodeId node, const ConsultMsg& msg) LARD_REQUIRES(state_mutex_);
  // Giveback (target kInvalidNode) or dead-target handback: reassign via the
  // dispatcher and re-handoff; 503-close the client when no node is
  // assignable.
  void RehandoffConnection(NodeId from_node, HandbackMsg msg, UniqueFd fd)
      LARD_REQUIRES(state_mutex_);
  // Asks the dispatcher for a live placement of `conn`, processing stale
  // dead-pick removals along the way (shared by the drain re-handoff and the
  // crash-replay paths). Returns kInvalidNode when nothing is assignable.
  NodeId PickLiveNode(ConnId conn, const std::vector<TargetId>& pending,
                      Dispatcher::ReassignReason reason) LARD_REQUIRES(state_mutex_);

  // --- crash-transparent replay (all loop 0) ---

  // The journal applies to handed-off connections only (never relaying).
  bool ReplayEligible() const {
    return config_.replay_enabled && config_.mechanism != Mechanism::kRelayingFrontEnd;
  }
  bool IsIdempotent(const std::string& method) const;
  // Restarts `conn`'s journal from the unserved requests a handback carries
  // (cooperative node change: drain giveback or migration relay).
  void RebuildJournalFromHandback(ConnId conn, const HandbackMsg& msg)
      LARD_REQUIRES(state_mutex_);
  // Crash path for one orphaned connection of `dead_node`: replay the
  // journaled idempotent tail onto a surviving node over kReplay, or give up
  // cleanly (best-effort 502/close, counted).
  void TryReplayOrphan(ConnId conn, NodeId dead_node) LARD_REQUIRES(state_mutex_);
  // Completes a graceful admin removal once `node`'s connections migrated
  // away (or its grace period expired).
  void MaybeFinalizeRetire(NodeId node) LARD_REQUIRES(state_mutex_);
  // Connection-granularity policies/mechanisms never consult per request.
  // Callers hold state_mutex_ (reads the dispatcher's policy).
  bool AutonomousHandoffs() const LARD_REQUIRES(state_mutex_) {
    return !(dispatcher_->policy().per_request_distribution() &&
             (config_.mechanism == Mechanism::kBackEndForwarding ||
              config_.mechanism == Mechanism::kMultipleHandoff));
  }

  // Wires one control session into nodes_[node] (creates the slot).
  void AttachControl(NodeId node, UniqueFd control_fd);
  // Health sweep: auto-remove nodes whose heartbeats stopped.
  void CheckNodeHealth() LARD_EXCLUDES(state_mutex_);
  // Shared removal path for admin removes, heartbeat timeouts and control
  // EOFs. `reason` goes to the log and the removal counters. Caller holds
  // state_mutex_.
  bool RemoveNodeInternal(NodeId node, const char* reason) LARD_REQUIRES(state_mutex_);
  // Loop 0 only: nodes_ (and the channels in it) are loop-0 confined.
  bool NodeLive(NodeId node) const {
    return node >= 0 && node < static_cast<NodeId>(nodes_.size()) &&
           nodes_[static_cast<size_t>(node)].control != nullptr &&
           nodes_[static_cast<size_t>(node)].control->open();
  }

  std::vector<TargetId> PathsToTargets(const std::vector<std::string>& paths) const;
  RequestDirective DirectiveFor(const std::string& path, const Assignment& assignment) const;
  int64_t NowMs() const;
  // Periodic heartbeat sweep; reschedules itself while the front-end lives.
  void ScheduleHealthSweep(int64_t period_ms);
  // One telemetry tick (loop 0, self-rescheduling guarded timer): samples
  // this replica's rates/gauges into telemetry_, evaluates the watchdog over
  // the freshest local + mirrored values, refreshes the health snapshot.
  void TelemetryTick() LARD_EXCLUDES(state_mutex_, telemetry_mutex_, health_json_mutex_);
  // The mirror store for back-end `node` (created on first telemetry row).
  TimeSeriesStore* NodeTelemetry(NodeId node) LARD_EXCLUDES(telemetry_mutex_);
  // Runs `fn` on loop 0: inline when already there (the fe_loops=1 fast
  // path and every control-plane caller), posted otherwise.
  void RunOnLoop0(std::function<void()> fn);

  // Mesh internals (loop 0; locked helpers note their caller's lock).
  bool MeshEnabled() const { return mesh_ != nullptr; }
  // Queues (node, target) vcache news for the next outgoing gossip delta.
  // Caller holds state_mutex_.
  void RecordFetchHints(const std::vector<TargetId>& targets,
                        const std::vector<Assignment>& assignments)
      LARD_REQUIRES(state_mutex_);
  void OnPeerMessage(uint32_t peer, uint8_t type, std::string payload)
      LARD_EXCLUDES(state_mutex_);
  void OnPeerClosed(uint32_t peer) LARD_REQUIRES(state_mutex_);
  // One gossip tick: publish this replica's delta, refresh the /mesh
  // snapshot and the labelled gauges; reschedules itself.
  void GossipTick() LARD_EXCLUDES(state_mutex_);
  void UpdateMeshSnapshot() LARD_REQUIRES(state_mutex_) LARD_EXCLUDES(mesh_json_mutex_);

  FrontEndConfig config_;
  EventLoopGroup* loops_;
  EventLoop* loop_;  // loops_->loop(0): the control-plane loop
  const TargetCatalog* catalog_;
  // Guards deferred callbacks (posted erases, health/retire timers), which
  // the loops may drain after this front-end is torn down. Invalidated first
  // in the destructor.
  LivenessToken alive_;

  // The routing-state façade lock: dispatcher_, live_in_dispatcher_,
  // disk_table_, mesh_ and pending_hints_ are mutated from every shard loop
  // (client batches) and loop 0 (control traffic, membership, gossip), and
  // all of them feed one LARD decision, so they share one mutex. Uncontended
  // with fe_loops=1. nodes_, journal_ and the fe_peers_ channels are NOT
  // under this lock — they are loop-0 confined by design (checked by
  // AssertInLoopThread() and the concurrency linter, not TSA).
  mutable Mutex state_mutex_;
  std::unique_ptr<DiskTable> disk_table_ LARD_PT_GUARDED_BY(state_mutex_);
  std::unique_ptr<Dispatcher> dispatcher_ LARD_PT_GUARDED_BY(state_mutex_);
  // Atomic: Start() publishes the bound port on this replica's loop while
  // Cluster::ports() readers may already see the replica in fes_.
  std::atomic<uint16_t> port_{0};
  std::vector<NodeLink> nodes_;  // index = NodeId; loop-0 confined

  // Reactor shards (size = loops_->size()); shard 0 runs on loop 0.
  std::vector<std::unique_ptr<LoopShard>> shards_;
  // Fallback accept path (SO_REUSEPORT unavailable): the single loop-0
  // listener round-robins accepted fds across shards.
  bool fd_handoff_accept_ = false;
  size_t next_accept_shard_ = 0;  // loop-0 confined

  // Conns with dispatcher state.
  std::set<ConnId> live_in_dispatcher_ LARD_GUARDED_BY(state_mutex_);
  // Admin-removed live nodes awaiting giveback.
  std::set<NodeId> retiring_ LARD_GUARDED_BY(state_mutex_);
  std::function<void(NodeId)> on_node_removed_;

  // Crash replay: the retained client fds + unacknowledged request tails.
  // Loop-0 confined (mutated alongside nodes_ on the control plane).
  ReplayJournal journal_;
  // Monotone counter stamped into NodeLink::failure_epoch per detected death.
  uint64_t next_failure_epoch_ LARD_GUARDED_BY(state_mutex_) = 1;
  // The connection PickLiveNode is currently placing (0 = none): a nested
  // stale-pick removal must leave it to the outer caller instead of
  // replaying it a second time.
  ConnId placement_in_progress_ LARD_GUARDED_BY(state_mutex_) = 0;

  // The mesh (num_frontends > 1; null otherwise — the pointer itself is set
  // once in the constructor, so MeshEnabled() may read it lock-free).
  std::unique_ptr<MeshStateTable> mesh_ LARD_PT_GUARDED_BY(state_mutex_);
  std::map<uint32_t, std::unique_ptr<FramedChannel>> fe_peers_;  // loop-0 confined
  // (node << 32) | target
  std::unordered_set<uint64_t> pending_hints_ LARD_GUARDED_BY(state_mutex_);
  uint64_t gossip_seq_ LARD_GUARDED_BY(state_mutex_) = 0;
  uint64_t gossip_sent_ LARD_GUARDED_BY(state_mutex_) = 0;
  mutable Mutex mesh_json_mutex_;
  // Refreshed each tick; read by the admin thread.
  std::string mesh_json_ LARD_GUARDED_BY(mesh_json_mutex_);

  // Telemetry: this replica's own store + one mirror store per back-end
  // (fed by kTelemetry rows on loop 0, read by the admin thread). The store
  // objects are internally synchronized; the mirror map itself needs the
  // mutex because loop 0 inserts while admin readers iterate.
  std::unique_ptr<TimeSeriesStore> telemetry_;
  std::unique_ptr<SloWatchdog> watchdog_;
  mutable Mutex telemetry_mutex_;
  std::map<NodeId, std::unique_ptr<TimeSeriesStore>> node_telemetry_
      LARD_GUARDED_BY(telemetry_mutex_);
  mutable Mutex health_json_mutex_;
  std::string health_json_ LARD_GUARDED_BY(health_json_mutex_);
  // Window samplers + scratch (loop-0 confined, like nodes_).
  CounterRateSampler rate_conns_;
  CounterRateSampler rate_handoffs_;
  CounterRateSampler rate_consults_;
  CounterRateSampler rate_replays_;
  CounterRateSampler rate_giveups_;
  CounterRateSampler rate_rejected_;
  CounterRateSampler rate_idle_closes_;
  std::vector<HistogramWindowSampler> wakeup_windows_;  // one per loop
  std::vector<std::pair<int, double>> telemetry_scratch_;
  int64_t telemetry_last_ms_ = 0;

  Tracer* tracer_ = nullptr;
  TraceRing* trace_ring_ = nullptr;  // shard 0's ring; control-plane spans

  FrontEndCounters counters_;
  std::atomic<uint64_t> pinning_violations_{0};
  // Runtime-tunable idle deadline (seeded from config_.idle_timeout_ms);
  // read on every arm/rearm from the shard loops, written by the admin path.
  std::atomic<int64_t> idle_timeout_ms_{0};
  // Shard-owned open connections (accepted, pre-handoff or relaying).
  // Atomic — bumped on the shard loops, read by telemetry and tests. The
  // handed-off twin is derived from the dispatcher (open_conns_handed_off).
  std::atomic<int64_t> conns_fe_owned_{0};
  MetricCounter* metric_idle_closes_ = nullptr;
  MetricGauge* metric_active_nodes_ = nullptr;
  MetricCounter* metric_auto_removals_ = nullptr;
  MetricCounter* metric_heartbeats_ = nullptr;
  MetricCounter* metric_connections_ = nullptr;
  MetricCounter* metric_rehandoffs_ = nullptr;
  MetricCounter* metric_replays_ = nullptr;
  MetricCounter* metric_replay_giveups_ = nullptr;
  // Per-FE labelled twins (replicated tier only; null otherwise).
  MetricCounter* metric_fe_connections_ = nullptr;
  MetricCounter* metric_fe_handoffs_ = nullptr;
  MetricCounter* metric_fe_rehandoffs_ = nullptr;
  MetricGauge* metric_mesh_epoch_ = nullptr;
  MetricGauge* metric_mesh_lag_ms_ = nullptr;
  MetricGauge* metric_mesh_peers_ = nullptr;
  MetricGauge* metric_mesh_divergence_ = nullptr;
  MetricCounter* metric_gossip_sent_ = nullptr;
  MetricCounter* metric_gossip_applied_ = nullptr;
};

}  // namespace lard

#endif  // SRC_PROTO_FRONTEND_H_
