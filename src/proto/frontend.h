// Prototype front-end node (Sections 7.1–7.3): accepts client TCP
// connections, reads the first (batch of) request(s), runs the src/core
// Dispatcher, and
//
//   * in the handoff mechanisms, passes the client socket fd plus the bytes
//     received so far to the chosen back-end over that back-end's control
//     session (our user-space TCP single handoff), then keeps serving the
//     connection's dispatcher consults — answering with *tagged requests*
//     that direct the handling node to serve locally or fetch laterally
//     (back-end request forwarding);
//   * in the multiple-handoff mechanism, additionally relays kHandback
//     messages: a back-end that must migrate a connection flushes, detaches
//     the client fd and returns it here; we forward it to the target node as
//     a fresh handoff carrying the unserved-request replay (Section 7.2's
//     sketched design, which the paper's prototype did not implement);
//   * in the relaying mechanism, never hands off: it proxies every request to
//     a per-request back-end choice over persistent back-end connections and
//     relays the response bytes itself.
//
// Load accounting and cache modeling live in the shared Dispatcher; this
// class is plumbing. Runs entirely on its EventLoop thread.
#ifndef SRC_PROTO_FRONTEND_H_
#define SRC_PROTO_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/dispatcher.h"
#include "src/http/request_parser.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/framed_channel.h"
#include "src/proto/control_protocol.h"
#include "src/proto/lateral_client.h"
#include "src/trace/trace.h"

namespace lard {

struct FrontEndConfig {
  int num_nodes = 1;
  Policy policy = Policy::kExtendedLard;
  // Supported in the prototype: kSingleHandoff, kBackEndForwarding,
  // kMultipleHandoff (our extension: the paper's prototype never built it —
  // we migrate connections via fd hand-back through the front-end) and
  // kRelayingFrontEnd.
  Mechanism mechanism = Mechanism::kBackEndForwarding;
  LardParams params;
  uint64_t virtual_cache_bytes = 32ull * 1024 * 1024;
  uint16_t listen_port = 0;  // 0 = pick a free port
};

struct FrontEndCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> handoffs{0};
  std::atomic<uint64_t> consults{0};
  std::atomic<uint64_t> relayed_requests{0};
  std::atomic<uint64_t> migrations{0};  // hand-backs relayed (multiple handoff)
};

class FrontEnd {
 public:
  // `catalog` maps request paths to targets (sizes) for the dispatcher's
  // virtual caches; must outlive the front-end.
  FrontEnd(const FrontEndConfig& config, EventLoop* loop, const TargetCatalog* catalog);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  // Loop thread. control_fds[i] is the unix-socket end of node i's control
  // session. Opens the client listener; port available via port() after.
  void Start(std::vector<UniqueFd> control_fds);

  // Loop thread; relaying mechanism only: connect to the back-ends' HTTP
  // (lateral) ports.
  void ConnectBackends(const std::vector<uint16_t>& backend_http_ports);

  uint16_t port() const { return port_; }
  const FrontEndCounters& counters() const { return counters_; }
  const Dispatcher& dispatcher() const { return *dispatcher_; }

 private:
  struct FeConn {
    ConnId id = 0;
    std::unique_ptr<Connection> conn;
    RequestParser parser;
    std::string raw_bytes;  // everything received (shipped on handoff)
    // Relaying mode state:
    bool in_dispatcher = false;
    std::deque<std::pair<HttpRequest, NodeId>> relay_queue;
    bool serving = false;
    bool closed = false;
  };

  class DiskTable;

  void OnAccept(uint32_t events);
  void OnClientData(FeConn* conn, std::string_view data);
  void OnClientClosed(FeConn* conn);
  void DestroyConn(FeConn* conn);

  void HandoffFlow(FeConn* conn, std::vector<HttpRequest> requests);
  void RelayFlow(FeConn* conn, std::vector<HttpRequest> requests);
  void ProcessNextRelay(ConnId id);

  void OnControlMessage(NodeId node, uint8_t type, std::string payload, UniqueFd fd);
  void HandleConsult(NodeId node, const ConsultMsg& msg);

  std::vector<TargetId> PathsToTargets(const std::vector<std::string>& paths) const;
  RequestDirective DirectiveFor(const std::string& path, const Assignment& assignment) const;

  FrontEndConfig config_;
  EventLoop* loop_;
  const TargetCatalog* catalog_;

  std::unique_ptr<DiskTable> disk_table_;
  std::unique_ptr<Dispatcher> dispatcher_;
  UniqueFd listener_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<FramedChannel>> controls_;  // index = NodeId
  std::vector<std::unique_ptr<LateralClient>> relays_;    // relaying mode

  std::unordered_map<ConnId, std::unique_ptr<FeConn>> conns_;
  std::set<ConnId> live_in_dispatcher_;  // conns with dispatcher state
  ConnId next_conn_id_ = 1;

  FrontEndCounters counters_;
};

}  // namespace lard

#endif  // SRC_PROTO_FRONTEND_H_
