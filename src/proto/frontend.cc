#include "src/proto/frontend.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "src/http/tagging.h"
#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {

// Last-reported disk queue length per back-end — the dispatcher's
// BackendStatsProvider view (updated from kDiskReport messages and consult
// piggybacks; all on the loop thread).
class FrontEnd::DiskTable final : public BackendStatsProvider {
 public:
  explicit DiskTable(int num_nodes) : queue_lengths_(static_cast<size_t>(num_nodes), 0) {}
  int DiskQueueLength(NodeId node) const override {
    return queue_lengths_[static_cast<size_t>(node)];
  }
  void Update(NodeId node, int length) { queue_lengths_[static_cast<size_t>(node)] = length; }

 private:
  std::vector<int> queue_lengths_;
};

FrontEnd::FrontEnd(const FrontEndConfig& config, EventLoop* loop, const TargetCatalog* catalog)
    : config_(config), loop_(loop), catalog_(catalog) {
  LARD_CHECK(loop_ != nullptr);
  LARD_CHECK(catalog_ != nullptr);
  LARD_CHECK(config_.mechanism == Mechanism::kSingleHandoff ||
             config_.mechanism == Mechanism::kBackEndForwarding ||
             config_.mechanism == Mechanism::kMultipleHandoff ||
             config_.mechanism == Mechanism::kRelayingFrontEnd)
      << "prototype supports single/multiple handoff, BE forwarding and relaying";
  disk_table_ = std::make_unique<DiskTable>(config_.num_nodes);

  DispatcherConfig dispatch_config;
  dispatch_config.policy = config_.policy;
  dispatch_config.mechanism = config_.mechanism;
  dispatch_config.params = config_.params;
  dispatch_config.num_nodes = config_.num_nodes;
  dispatch_config.virtual_cache_bytes = config_.virtual_cache_bytes;
  dispatcher_ = std::make_unique<Dispatcher>(dispatch_config, catalog_, disk_table_.get());
}

FrontEnd::~FrontEnd() = default;

void FrontEnd::Start(std::vector<UniqueFd> control_fds) {
  LARD_CHECK(control_fds.size() == static_cast<size_t>(config_.num_nodes));
  for (int node = 0; node < config_.num_nodes; ++node) {
    UniqueFd fd = std::move(control_fds[static_cast<size_t>(node)]);
    LARD_CHECK_OK(SetNonBlocking(fd.get(), true));
    auto channel = std::make_unique<FramedChannel>(loop_, std::move(fd));
    channel->set_on_message([this, node](uint8_t type, std::string payload, UniqueFd passed_fd) {
      OnControlMessage(node, type, std::move(payload), std::move(passed_fd));
    });
    channel->set_on_close(
        [node]() { LARD_LOG(WARNING) << "front-end: control session to node " << node << " lost"; });
    channel->Start();
    controls_.push_back(std::move(channel));
  }

  auto listener = ListenTcp(config_.listen_port, &port_);
  LARD_CHECK(listener.ok()) << listener.status().ToString();
  listener_ = std::move(listener.value());
  LARD_CHECK_OK(SetNonBlocking(listener_.get(), true));
  loop_->Register(listener_.get(), EPOLLIN, [this](uint32_t events) { OnAccept(events); });
}

void FrontEnd::ConnectBackends(const std::vector<uint16_t>& backend_http_ports) {
  LARD_CHECK(backend_http_ports.size() == static_cast<size_t>(config_.num_nodes));
  relays_.clear();
  for (int node = 0; node < config_.num_nodes; ++node) {
    relays_.push_back(
        std::make_unique<LateralClient>(loop_, backend_http_ports[static_cast<size_t>(node)]));
  }
}

void FrontEnd::OnAccept(uint32_t) {
  while (true) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      LARD_LOG(ERROR) << "front-end accept: " << std::strerror(errno);
      return;
    }
    (void)SetTcpNoDelay(fd);
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<FeConn>();
    FeConn* raw = conn.get();
    raw->id = next_conn_id_++;
    raw->conn = std::make_unique<Connection>(loop_, UniqueFd(fd));
    raw->conn->set_on_data([this, id = raw->id](std::string_view data) {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        OnClientData(it->second.get(), data);
      }
    });
    raw->conn->set_on_close([this, id = raw->id]() {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        OnClientClosed(it->second.get());
      }
    });
    raw->conn->Start();
    conns_.emplace(raw->id, std::move(conn));

    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      raw->in_dispatcher = true;
      live_in_dispatcher_.insert(raw->id);
      dispatcher_->OnConnectionOpen(raw->id);
    }
  }
}

void FrontEnd::OnClientData(FeConn* conn, std::string_view data) {
  if (conn->closed) {
    return;
  }
  conn->raw_bytes.append(data.data(), data.size());
  std::vector<HttpRequest> requests;
  if (conn->parser.Feed(data, &requests) == RequestParser::State::kError) {
    conn->conn->Write("HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
    conn->conn->CloseAfterFlush();
    DestroyConn(conn);
    return;
  }
  if (requests.empty()) {
    return;
  }
  if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
    RelayFlow(conn, std::move(requests));
  } else {
    HandoffFlow(conn, std::move(requests));
  }
}

std::vector<TargetId> FrontEnd::PathsToTargets(const std::vector<std::string>& paths) const {
  std::vector<TargetId> targets;
  targets.reserve(paths.size());
  for (const auto& path : paths) {
    targets.push_back(catalog_->Find(path));
  }
  return targets;
}

RequestDirective FrontEnd::DirectiveFor(const std::string& path,
                                        const Assignment& assignment) const {
  RequestDirective directive;
  directive.cache_after_miss = assignment.cache_after_miss;
  if (assignment.action == AssignmentAction::kForward) {
    directive.action = DirectiveAction::kLateral;
    directive.path = TagPathForNode(path, assignment.node);
  } else if (assignment.action == AssignmentAction::kMigrate) {
    directive.action = DirectiveAction::kMigrate;
    directive.node = assignment.node;
    directive.path = path;
  } else {
    directive.path = path;
  }
  return directive;
}

void FrontEnd::HandoffFlow(FeConn* conn, std::vector<HttpRequest> requests) {
  // The first batch: every complete request that arrived before we decided.
  std::vector<std::string> paths;
  paths.reserve(requests.size());
  for (const auto& request : requests) {
    paths.push_back(request.path);
  }

  dispatcher_->OnConnectionOpen(conn->id);
  live_in_dispatcher_.insert(conn->id);
  const std::vector<Assignment> assignments =
      dispatcher_->OnBatch(conn->id, PathsToTargets(paths));
  LARD_CHECK(!assignments.empty());
  const NodeId node = assignments[0].node;
  LARD_CHECK(assignments[0].action == AssignmentAction::kHandoff);

  HandoffMsg msg;
  msg.conn_id = conn->id;
  // Connection-granularity policies/mechanisms never consult per request.
  msg.autonomous = !(config_.policy == Policy::kExtendedLard &&
                     (config_.mechanism == Mechanism::kBackEndForwarding ||
                      config_.mechanism == Mechanism::kMultipleHandoff));
  msg.directives.reserve(assignments.size());
  for (size_t i = 0; i < assignments.size(); ++i) {
    msg.directives.push_back(DirectiveFor(paths[i], assignments[i]));
  }
  // Ship the whole byte stream we saw; the back-end re-parses it and pairs
  // requests with our directives 1:1 (the paper's "copy of request packets to
  // the dispatcher" in reverse).
  msg.unparsed_input = std::move(conn->raw_bytes);

  Connection::Detached detached = conn->conn->Detach();
  controls_[static_cast<size_t>(node)]->SendWithFd(static_cast<uint8_t>(ControlMsg::kHandoff),
                                                   EncodeHandoff(msg), std::move(detached.fd));
  counters_.handoffs.fetch_add(1, std::memory_order_relaxed);
  // Dispatcher state for this connection now lives on; our socket plumbing
  // does not. (Deferred: we are inside this Connection's on_data callback.)
  conn->closed = true;
  loop_->Post([this, id = conn->id]() { conns_.erase(id); });
}

void FrontEnd::RelayFlow(FeConn* conn, std::vector<HttpRequest> requests) {
  std::vector<std::string> paths;
  paths.reserve(requests.size());
  for (const auto& request : requests) {
    paths.push_back(request.path);
  }
  const std::vector<Assignment> assignments =
      dispatcher_->OnBatch(conn->id, PathsToTargets(paths));
  for (size_t i = 0; i < assignments.size(); ++i) {
    LARD_CHECK(assignments[i].action == AssignmentAction::kRelay);
    conn->relay_queue.emplace_back(std::move(requests[i]), assignments[i].node);
  }
  ProcessNextRelay(conn->id);
}

void FrontEnd::ProcessNextRelay(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  FeConn* conn = it->second.get();
  if (conn->serving || conn->closed || conn->relay_queue.empty()) {
    if (!conn->serving && !conn->closed && conn->relay_queue.empty() &&
        live_in_dispatcher_.count(id) != 0) {
      dispatcher_->OnConnectionIdle(id);
    }
    return;
  }
  auto [request, node] = std::move(conn->relay_queue.front());
  conn->relay_queue.pop_front();
  conn->serving = true;
  counters_.relayed_requests.fetch_add(1, std::memory_order_relaxed);

  LARD_CHECK(!relays_.empty()) << "relay mode requires ConnectBackends()";
  relays_[static_cast<size_t>(node)]->Fetch(
      request.path, [this, id, request](int status, std::string body) {
        auto it = conns_.find(id);
        if (it == conns_.end()) {
          return;
        }
        FeConn* conn = it->second.get();
        if (conn->closed || !conn->conn->open()) {
          return;
        }
        HttpResponse response;
        response.version = request.version;
        response.status = status == 0 ? 503 : status;
        response.reason = ReasonPhrase(response.status);
        response.body = std::move(body);
        const bool keep_alive = request.KeepAlive();
        if (!keep_alive) {
          response.headers.Add("Connection", "close");
        }
        conn->conn->Write(response.Serialize());
        conn->serving = false;
        if (!keep_alive) {
          conn->conn->CloseAfterFlush();
          DestroyConn(conn);
          return;
        }
        ProcessNextRelay(id);
      });
}

void FrontEnd::OnClientClosed(FeConn* conn) { DestroyConn(conn); }

void FrontEnd::DestroyConn(FeConn* conn) {
  if (conn->closed) {
    return;
  }
  conn->closed = true;
  if (conn->in_dispatcher && live_in_dispatcher_.erase(conn->id) > 0) {
    dispatcher_->OnConnectionClose(conn->id);
  }
  loop_->Post([this, id = conn->id]() { conns_.erase(id); });
}

void FrontEnd::OnControlMessage(NodeId node, uint8_t type, std::string payload, UniqueFd fd) {
  switch (static_cast<ControlMsg>(type)) {
    case ControlMsg::kHandback: {
      // Multiple handoff: a back-end flushed and detached the connection; we
      // relay it to the dispatcher-chosen target as a fresh (non-autonomous)
      // handoff carrying the unserved request replay.
      HandbackMsg msg;
      if (!DecodeHandback(payload, &msg) || !fd.valid() || msg.target_node < 0 ||
          msg.target_node >= config_.num_nodes) {
        LARD_LOG(ERROR) << "front-end: bad handback from node " << node;
        return;
      }
      if (live_in_dispatcher_.count(msg.conn_id) == 0) {
        return;  // connection died in flight; drop the fd (RAII closes it)
      }
      HandoffMsg handoff;
      handoff.conn_id = msg.conn_id;
      handoff.autonomous = false;
      handoff.directives = std::move(msg.directives);
      handoff.unparsed_input = std::move(msg.replay_input);
      controls_[static_cast<size_t>(msg.target_node)]->SendWithFd(
          static_cast<uint8_t>(ControlMsg::kHandoff), EncodeHandoff(handoff), std::move(fd));
      counters_.migrations.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case ControlMsg::kConsult: {
      ConsultMsg msg;
      if (!DecodeConsult(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad consult from node " << node;
        return;
      }
      HandleConsult(node, msg);
      return;
    }
    case ControlMsg::kIdle: {
      uint64_t conn_id = 0;
      if (DecodeU64(payload, &conn_id) && live_in_dispatcher_.count(conn_id) != 0) {
        dispatcher_->OnConnectionIdle(conn_id);
      }
      return;
    }
    case ControlMsg::kConnClosed: {
      uint64_t conn_id = 0;
      if (DecodeU64(payload, &conn_id) && live_in_dispatcher_.erase(conn_id) > 0) {
        dispatcher_->OnConnectionClose(conn_id);
      }
      return;
    }
    case ControlMsg::kDiskReport: {
      uint32_t queue_length = 0;
      if (DecodeU32(payload, &queue_length)) {
        disk_table_->Update(node, static_cast<int>(queue_length));
      }
      return;
    }
    default:
      LARD_LOG(ERROR) << "front-end: unexpected control message type " << static_cast<int>(type)
                      << " from node " << node;
  }
}

void FrontEnd::HandleConsult(NodeId node, const ConsultMsg& msg) {
  counters_.consults.fetch_add(1, std::memory_order_relaxed);
  disk_table_->Update(node, static_cast<int>(msg.disk_queue_len));
  if (live_in_dispatcher_.count(msg.conn_id) == 0) {
    return;  // connection raced away; the back-end will see kConnClosed state
  }
  const std::vector<Assignment> assignments =
      dispatcher_->OnBatch(msg.conn_id, PathsToTargets(msg.paths));
  AssignmentsMsg reply;
  reply.conn_id = msg.conn_id;
  reply.directives.reserve(assignments.size());
  for (size_t i = 0; i < assignments.size(); ++i) {
    reply.directives.push_back(DirectiveFor(msg.paths[i], assignments[i]));
  }
  controls_[static_cast<size_t>(node)]->Send(static_cast<uint8_t>(ControlMsg::kAssignments),
                                             EncodeAssignments(reply));
}

}  // namespace lard
